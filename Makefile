# Developer entry points. The tier-1 verification command is `make test`
# (the same line CI / ROADMAP.md specify); `make bench-smoke` runs the
# microbenchmarks once each without timing rounds as a fast regression
# signal — including one incremental K-search descent end-to-end, which
# fails if the pipeline silently falls back to per-K scratch solving;
# `make bench` runs the benchmarks for real; `make bench-json`
# regenerates every machine-readable BENCH_<name>.json perf record;
# `make bench-check` regenerates the counter-bearing records and fails
# on regressions vs the committed baselines (the CI perf gate);
# `make batch-smoke` runs the example manifest through the parallel
# fleet runner; `make chaos-smoke` runs the resilience chaos suite
# (fault injection seeded by CHAOS_SEED, fresh seeds in nightly CI);
# `make coverage` runs the tier-1 suite under pytest-cov
# with the CI coverage floor; `make lint` runs ruff; `make analyze`
# runs the solver-invariant static checker (repro.analysis — pure
# stdlib, always available) over src/scripts/benchmarks/examples with
# the incremental facts cache, exports the project call graph to
# callgraph.json, and prints a one-line timing/stats summary to
# stderr; `make typecheck` runs the typed-core mypy gate (mypy.ini);
# `make docs-check` runs the docs gate (scripts/check_docs.py — pure
# stdlib: intra-repo Markdown link/anchor integrity plus the
# public-API docstring-coverage floor).
#
# Tools that offline dev environments may lack (ruff, pytest-cov,
# mypy) are skipped with a notice locally but are hard failures when
# CI is set — a missing install must never green a CI job.

PYTHON ?= python
PYTHONPATH_PREFIX = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)
COV_FLOOR ?= 84
# Hypothesis profile for the differential fuzz harness: "ci" is seeded/
# deterministic (PR runs), "nightly" explores fresh seeds (scheduled CI).
HYPOTHESIS_PROFILE ?= ci
# Seed for the chaos-smoke fault-injection scenario: PR CI pins 0,
# nightly CI passes a fresh seed (`make chaos-smoke CHAOS_SEED=$RANDOM`).
CHAOS_SEED ?= 0

.PHONY: test lint analyze typecheck docs-check bench-smoke bench \
	bench-json bench-check batch-smoke coverage fuzz-smoke chaos-smoke

test:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -x -q

fuzz-smoke:
	$(PYTHONPATH_PREFIX) HYPOTHESIS_PROFILE=$(HYPOTHESIS_PROFILE) \
		$(PYTHON) -m pytest -q tests/test_component_pool.py

chaos-smoke:
	$(PYTHONPATH_PREFIX) CHAOS_SEED=$(CHAOS_SEED) \
		$(PYTHON) -m pytest -q tests/test_resilience.py

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples scripts; \
	elif [ -n "$(CI)" ]; then \
		echo "ruff is not installed but CI is set; refusing to false-pass"; \
		exit 1; \
	else \
		echo "ruff not installed; skipping lint (CI installs it)"; \
	fi

ANALYZE_PATHS ?= src scripts benchmarks examples
ANALYZE_CACHE ?= .repro-analysis-cache
ANALYZE_GRAPH ?= callgraph.json

analyze:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m repro.analysis $(ANALYZE_PATHS) \
		--cache-dir $(ANALYZE_CACHE) --graph $(ANALYZE_GRAPH)

typecheck:
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy --config-file mypy.ini -p repro; \
	elif [ -n "$(CI)" ]; then \
		echo "mypy is not installed but CI is set; refusing to false-pass"; \
		exit 1; \
	else \
		echo "mypy not installed; skipping typecheck (CI installs it)"; \
	fi

docs-check:
	$(PYTHON) scripts/check_docs.py

coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q \
			--cov=repro --cov-report=term-missing:skip-covered \
			--cov-fail-under=$(COV_FLOOR); \
	elif [ -n "$(CI)" ]; then \
		echo "pytest-cov is not installed but CI is set; refusing to false-pass"; \
		exit 1; \
	else \
		echo "pytest-cov not installed; skipping coverage (CI installs it)"; \
	fi

bench-smoke:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q --benchmark-disable \
		benchmarks/bench_solver_micro.py benchmarks/bench_preprocessing.py

bench:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q --benchmark-only benchmarks/bench_*.py

bench-json:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q --benchmark-disable benchmarks/bench_*.py

bench-check:
	$(PYTHON) scripts/check_bench.py

batch-smoke:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m repro batch examples/batch_manifest.json \
		--jobs 4 --task-timeout 8 --fallback exact-dsatur \
		--out batch-smoke.jsonl
