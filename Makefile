# Developer entry points. The tier-1 verification command is `make test`
# (the same line CI / ROADMAP.md specify); `make bench-smoke` runs the
# microbenchmarks once each without timing rounds as a fast regression
# signal — including one incremental K-search descent end-to-end, which
# fails if the pipeline silently falls back to per-K scratch solving;
# `make bench` runs the benchmarks for real; `make bench-json`
# regenerates every machine-readable BENCH_<name>.json perf record;
# `make lint` runs ruff (and skips with a notice when ruff is not
# installed, so offline environments keep working).

PYTHON ?= python
PYTHONPATH_PREFIX = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test lint bench-smoke bench bench-json

test:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint (CI installs it)"; \
	fi

bench-smoke:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q --benchmark-disable \
		benchmarks/bench_solver_micro.py benchmarks/bench_preprocessing.py

bench:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q --benchmark-only benchmarks/bench_*.py

bench-json:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q --benchmark-disable benchmarks/bench_*.py
