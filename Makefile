# Developer entry points. The tier-1 verification command is `make test`
# (the same line CI / ROADMAP.md specify); `make bench-smoke` runs the
# microbenchmarks once each without timing rounds as a fast regression
# signal; `make bench` runs them for real.

PYTHON ?= python
PYTHONPATH_PREFIX = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench-smoke bench

test:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q --benchmark-disable \
		benchmarks/bench_solver_micro.py benchmarks/bench_preprocessing.py

bench:
	$(PYTHONPATH_PREFIX) $(PYTHON) -m pytest -q --benchmark-only benchmarks/bench_*.py
