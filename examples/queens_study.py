#!/usr/bin/env python
"""Appendix-style study on a queens instance.

Reproduces the shape of the paper's Appendix Table 5 on queen5_5: every
instance-independent construction, with and without instance-dependent
lex-leader SBPs, on the PBS-II-profile solver — printing runtime,
status and the symmetry statistics that explain the differences.

Run:  python examples/queens_study.py
"""

import time

from repro.coloring import encode_coloring, solve_coloring
from repro.graphs import queens_graph
from repro.sbp import SBP_KINDS, apply_sbp
from repro.symmetry import PermutationGroup, detect_symmetries

K = 7  # color budget; chi(queen5_5) = 5


def main() -> None:
    graph = queens_graph(5, 5)
    print(f"instance: {graph}, color budget K={K}\n")

    print("symmetries remaining after each instance-independent construction:")
    base = encode_coloring(graph, K)
    for kind in SBP_KINDS:
        encoding = apply_sbp(base, kind)
        report = detect_symmetries(encoding.formula, node_limit=50000)
        print(
            f"  {kind:6s}: #S={report.order:.3g} #G={report.num_generators:3d} "
            f"(detected in {report.detection_seconds:.2f}s)"
        )

    print("\nsolve times (pbs2 profile):")
    print(f"{'SBP':8s} {'orig':>12s} {'with inst-dep SBPs':>20s}")
    for kind in SBP_KINDS:
        cells = []
        for inst_dep in (False, True):
            start = time.monotonic()
            result = solve_coloring(
                graph, K, solver="pbs2", sbp_kind=kind,
                instance_dependent=inst_dep, time_limit=120,
            )
            took = time.monotonic() - start
            cells.append(f"{result.status[:3]} {took:6.2f}s")
        print(f"{kind:8s} {cells[0]:>12s} {cells[1]:>20s}")

    result = solve_coloring(graph, K, solver="pbs2", sbp_kind="nu+sc", time_limit=120)
    print(f"\nchromatic number of queen5_5: {result.num_colors} ({result.status})")


if __name__ == "__main__":
    main()
