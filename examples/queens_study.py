#!/usr/bin/env python
"""Appendix-style study on a queens instance.

Reproduces the shape of the paper's Appendix Table 5 on queen5_5: every
instance-independent construction, with and without instance-dependent
lex-leader SBPs, on the PBS-II-profile backend — printing runtime,
status and the symmetry statistics that explain the differences.  The
grid is a base Pipeline specialized per cell (one ``symmetry(...)``
call each); the detection cache is shared across cells the way the
experiment tables share it.

Run:  python examples/queens_study.py
"""

import time

from repro.api import BudgetedOptimize, Pipeline
from repro.coloring import encode_coloring
from repro.graphs import queens_graph
from repro.sbp import SBP_KINDS, apply_sbp
from repro.symmetry import detect_symmetries

K = 7  # color budget; chi(queen5_5) = 5


def main() -> None:
    graph = queens_graph(5, 5)
    print(f"instance: {graph}, color budget K={K}\n")

    print("symmetries remaining after each instance-independent construction:")
    base_encoding = encode_coloring(graph, K)
    for kind in SBP_KINDS:
        encoding = apply_sbp(base_encoding, kind)
        report = detect_symmetries(encoding.formula, node_limit=50000)
        print(
            f"  {kind:6s}: #S={report.order:.3g} #G={report.num_generators:3d} "
            f"(detected in {report.detection_seconds:.2f}s)"
        )

    problem = BudgetedOptimize(graph, max_colors=K)
    base = Pipeline().solve(backend="pb-pbs2", time_limit=120)
    detection_cache = {}
    print("\nsolve times (pb-pbs2 backend):")
    print(f"{'SBP':8s} {'orig':>12s} {'with inst-dep SBPs':>20s}")
    for kind in SBP_KINDS:
        cells = []
        for inst_dep in (False, True):
            pipeline = base.symmetry(sbp_kind=kind, instance_dependent=inst_dep)
            start = time.monotonic()
            result = pipeline.run(problem, detection_cache=detection_cache)
            took = time.monotonic() - start
            cells.append(f"{result.status[:3]} {took:6.2f}s")
        print(f"{kind:8s} {cells[0]:>12s} {cells[1]:>20s}")

    result = base.symmetry(sbp_kind="nu+sc").run(problem)
    print(f"\nchromatic number of queen5_5: {result.num_colors} ({result.status})")


if __name__ == "__main__":
    main()
