#!/usr/bin/env python
"""Radio frequency assignment via graph coloring (paper Section 2.1).

Each geographic region needing F frequencies becomes an F-clique; all
bipartite edges are added between adjacent regions.  The paper points
out that this reduction *introduces extra instance-independent
symmetries* — the vertices of a region's clique are interchangeable —
on top of the color symmetries; this example shows both being detected
and broken, with the detection step configured (and its report
surfaced) through the Pipeline's symmetry stage.

Run:  python examples/frequency_assignment.py
"""

import itertools

from repro.api import BudgetedOptimize, Pipeline
from repro.coloring import encode_coloring
from repro.graphs import Graph
from repro.symmetry import detect_symmetries

# (region, frequencies needed); adjacency = overlapping broadcast areas.
REGIONS = [("north", 2), ("east", 3), ("south", 2), ("west", 2), ("center", 3)]
ADJACENT = [
    ("north", "east"), ("north", "west"), ("north", "center"),
    ("east", "south"), ("east", "center"),
    ("south", "west"), ("south", "center"), ("west", "center"),
]


def build_graph():
    """Reduce the assignment problem to coloring, per the paper."""
    vertex_of = {}
    graph = Graph(0, name="radio")
    for region, demand in REGIONS:
        vertex_of[region] = [graph.add_vertex() for _ in range(demand)]
        for u, v in itertools.combinations(vertex_of[region], 2):
            graph.add_edge(u, v)  # one distinct frequency per demand
    for a, b in ADJACENT:
        for u in vertex_of[a]:
            for v in vertex_of[b]:
                graph.add_edge(u, v)  # adjacent regions never share
    return graph, vertex_of


def main() -> None:
    graph, vertex_of = build_graph()
    print(f"reduced instance: {graph}")

    # The reduction's symmetries: colors always permute; additionally
    # each region's clique vertices are interchangeable.
    encoding = encode_coloring(graph, 8)
    report = detect_symmetries(encoding.formula, node_limit=50000)
    print(f"symmetries of the encoded instance: #S={report.order:.3g} "
          f"(#G={report.num_generators}) — includes the per-region "
          "vertex swaps the paper predicts")

    result = (
        Pipeline()
        .reduce(False)  # solve the reduction whole: keep its symmetries visible
        .symmetry(sbp_kind="nu+sc", instance_dependent=True,
                  detection_node_limit=50000)
        .solve(backend="pb-pbs2", time_limit=60)
        .run(BudgetedOptimize(graph, max_colors=8))
    )
    print(f"\nminimum number of frequencies: {result.num_colors} ({result.status})")
    print(f"(lex-leader SBPs built from {result.detection.num_generators} "
          "detected generators)")
    for region, vertices in vertex_of.items():
        freqs = sorted(result.coloring[v] for v in vertices)
        print(f"  {region:7s}: frequencies {freqs}")


if __name__ == "__main__":
    main()
