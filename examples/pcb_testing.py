#!/usr/bin/env python
"""Printed-circuit-board short testing via coloring (paper Section 2.1).

Nets that could short against each other cannot share a test group
("supernet"); minimizing test rounds = coloring the potential-short
graph.  This example runs the *same* :class:`ChromaticProblem` on three
registered backends — the paper's 0-1 ILP route (``pb-pbs2``), the
pure-CNF repeated-SAT route on one persistent solver
(``cdcl-incremental``), and the problem-specific DSATUR branch and
bound (``exact-dsatur``) — and checks they agree.  Swapping engines is
one string; no call-site surgery.

Run:  python examples/pcb_testing.py
"""

import random
import time

from repro.api import ChromaticProblem, Pipeline
from repro.graphs import Graph


def build_board(num_nets=30, seed=11):
    """Synthetic board: nets are random traces on a strip; a potential
    short exists between nets whose spans overlap closely."""
    rng = random.Random(seed)
    spans = []
    for _ in range(num_nets):
        start = rng.uniform(0, 0.9)
        spans.append((start, start + rng.uniform(0.02, 0.25)))
    graph = Graph(num_nets, name="pcb")
    for i in range(num_nets):
        for j in range(i + 1, num_nets):
            (s1, e1), (s2, e2) = spans[i], spans[j]
            if s1 < e2 and s2 < e1 and min(e1, e2) - max(s1, s2) > 0.01:
                graph.add_edge(i, j)
    return graph


def main() -> None:
    graph = build_board()
    print(f"potential-short graph: {graph}")
    problem = ChromaticProblem(graph)

    runs = {}
    for backend, sbp in (
        ("pb-pbs2", "nu+sc"),
        ("cdcl-incremental", "nu"),
        ("exact-dsatur", "none"),
    ):
        pipeline = (Pipeline()
                    .symmetry(sbp_kind=sbp)
                    .solve(backend=backend, time_limit=60))
        t0 = time.monotonic()
        runs[backend] = (pipeline.run(problem), time.monotonic() - t0)

    ilp, t_ilp = runs["pb-pbs2"]
    sat, t_sat = runs["cdcl-incremental"]
    bb, t_bb = runs["exact-dsatur"]
    print(f"0-1 ILP pipeline:    {ilp.num_colors} rounds in {t_ilp:.2f}s ({ilp.status})")
    print(f"repeated-SAT (CNF):  {sat.num_colors} rounds in {t_sat:.2f}s "
          f"({sat.status}, {len(sat.queries)} SAT calls on "
          f"{sat.solvers_created} solver)")
    print(f"DSATUR B&B baseline: {bb.num_colors} rounds in {t_bb:.2f}s")
    assert ilp.num_colors == sat.num_colors == bb.num_colors

    rounds = {}
    for net, group in sorted(ilp.coloring.items()):
        rounds.setdefault(group, []).append(net)
    print(f"\ntest plan ({len(rounds)} rounds):")
    for group, nets in sorted(rounds.items()):
        print(f"  round {group}: nets {nets}")


if __name__ == "__main__":
    main()
