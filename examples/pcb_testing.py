#!/usr/bin/env python
"""Printed-circuit-board short testing via coloring (paper Section 2.1).

Nets that could short against each other cannot share a test group
("supernet"); minimizing test rounds = coloring the potential-short
graph.  This example compares three of the repo's exact pipelines on
the same board: the paper's 0-1 ILP route, the pure-CNF repeated-SAT
route, and the problem-specific DSATUR branch and bound.

Run:  python examples/pcb_testing.py
"""

import random
import time

from repro.coloring import (
    chromatic_number_sat,
    exact_chromatic_number,
    solve_coloring,
)
from repro.graphs import Graph


def build_board(num_nets=30, seed=11):
    """Synthetic board: nets are random traces on a strip; a potential
    short exists between nets whose spans overlap closely."""
    rng = random.Random(seed)
    spans = []
    for _ in range(num_nets):
        start = rng.uniform(0, 0.9)
        spans.append((start, start + rng.uniform(0.02, 0.25)))
    graph = Graph(num_nets, name="pcb")
    for i in range(num_nets):
        for j in range(i + 1, num_nets):
            (s1, e1), (s2, e2) = spans[i], spans[j]
            if s1 < e2 and s2 < e1 and min(e1, e2) - max(s1, s2) > 0.01:
                graph.add_edge(i, j)
    return graph


def main() -> None:
    graph = build_board()
    print(f"potential-short graph: {graph}")

    t0 = time.monotonic()
    ilp = solve_coloring(graph, 12, solver="pbs2", sbp_kind="nu+sc", time_limit=60)
    t_ilp = time.monotonic() - t0

    t0 = time.monotonic()
    sat = chromatic_number_sat(graph, strategy="linear", sbp_kind="nu", time_limit=60)
    t_sat = time.monotonic() - t0

    t0 = time.monotonic()
    bb = exact_chromatic_number(graph, time_limit=60)
    t_bb = time.monotonic() - t0

    print(f"0-1 ILP pipeline:    {ilp.num_colors} rounds in {t_ilp:.2f}s ({ilp.status})")
    print(f"repeated-SAT (CNF):  {sat.chromatic_number} rounds in {t_sat:.2f}s "
          f"({sat.status}, {sat.sat_calls} SAT calls)")
    print(f"DSATUR B&B baseline: {bb.chromatic_number} rounds in {t_bb:.2f}s")
    assert ilp.num_colors == sat.chromatic_number == bb.chromatic_number

    rounds = {}
    for net, group in sorted(ilp.coloring.items()):
        rounds.setdefault(group, []).append(net)
    print(f"\ntest plan ({len(rounds)} rounds):")
    for group, nets in sorted(rounds.items()):
        print(f"  round {group}: nets {nets}")


if __name__ == "__main__":
    main()
