#!/usr/bin/env python
"""Register allocation by exact graph coloring (paper Section 2.1).

Compiles a toy straight-line program into live ranges, builds the
interference graph (Chaitin's construction: variables conflict when
simultaneously live), and finds the minimum number of registers with
the 0-1 ILP pipeline.  The paper's motivating scenario — checking
whether the program fits a fixed register budget K — is a sequence of
*decision* queries at different budgets, which is exactly what
:class:`repro.api.Session` exists for: every query runs on one
persistent solver, and raising the budget grows the encoding in place
instead of re-encoding.

Run:  python examples/register_allocation.py
"""

from repro.api import BudgetedOptimize, Pipeline, Session
from repro.graphs import Graph

# A toy three-address program: (target, sources) per instruction.
PROGRAM = [
    ("a", []),          # a = load
    ("b", []),          # b = load
    ("c", ["a", "b"]),  # c = a + b
    ("d", ["a"]),       # d = a * 2
    ("e", ["c", "d"]),  # e = c - d
    ("f", ["b"]),       # f = b + 1
    ("g", ["e", "f"]),  # g = e * f
    ("h", ["g", "d"]),  # h = g + d
    ("out", ["h", "c"]),  # out = h ^ c
]


def live_ranges(program):
    """Live range of each variable: [definition point, last use]."""
    defined, last_use = {}, {}
    for point, (target, sources) in enumerate(program):
        defined.setdefault(target, point)
        last_use[target] = max(last_use.get(target, point), point)
        for source in sources:
            last_use[source] = point
    return {v: (defined[v], last_use[v]) for v in defined}


def interference_graph(program):
    """Variables interfere when their live ranges overlap."""
    ranges = live_ranges(program)
    names = sorted(ranges)
    index = {name: i for i, name in enumerate(names)}
    graph = Graph(len(names), name="toy-program")
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            (s1, e1), (s2, e2) = ranges[u], ranges[v]
            if s1 < e2 and s2 < e1:  # strict overlap => both live at once
                graph.add_edge(index[u], index[v])
    return graph, names


def main() -> None:
    graph, names = interference_graph(PROGRAM)
    print(f"interference graph: {graph}")
    for u, v in graph.edges():
        print(f"  {names[u]} <-> {names[v]}")

    result = (
        Pipeline()
        .symmetry(sbp_kind="nu+sc")
        .solve(backend="pb-pbs2", time_limit=30)
        .run(BudgetedOptimize(graph, max_colors=len(names)))
    )
    print(f"\nminimum registers needed: {result.num_colors} ({result.status})")
    for vertex, color in sorted(result.coloring.items()):
        print(f"  {names[vertex]:4s} -> r{color}")

    # The paper's embedded-CPU scenario: does it fit in K registers?
    # One Session = one persistent solver for the whole budget sweep;
    # the final query *raises* the budget, growing the encoding in
    # place (no re-encode) on the very same solver.
    need = result.num_colors
    with Session(graph) as session:
        for budget in (need - 1, need, need + 1):
            feasible = session.decide(budget)
            verdict = "fits" if feasible.status == "SAT" else "does NOT fit"
            print(f"budget of {budget} registers: {verdict}")
        print(f"(all {len(session.queries)} budget checks shared "
              f"{session.solvers_created} persistent solver; "
              f"encoded horizon grew to {session.budget} colors)")


if __name__ == "__main__":
    main()
