#!/usr/bin/env python
"""Register allocation by exact graph coloring (paper Section 2.1).

Compiles a toy straight-line program into live ranges, builds the
interference graph (Chaitin's construction: variables conflict when
simultaneously live), and finds the minimum number of registers with
the 0-1 ILP pipeline.  Also shows the paper's motivating scenario:
checking whether the program fits a fixed register budget K, which is
exactly the K-coloring decision problem.

Run:  python examples/register_allocation.py
"""

from repro.coloring import solve_coloring
from repro.graphs import Graph

# A toy three-address program: (target, sources) per instruction.
PROGRAM = [
    ("a", []),          # a = load
    ("b", []),          # b = load
    ("c", ["a", "b"]),  # c = a + b
    ("d", ["a"]),       # d = a * 2
    ("e", ["c", "d"]),  # e = c - d
    ("f", ["b"]),       # f = b + 1
    ("g", ["e", "f"]),  # g = e * f
    ("h", ["g", "d"]),  # h = g + d
    ("out", ["h", "c"]),  # out = h ^ c
]


def live_ranges(program):
    """Live range of each variable: [definition point, last use]."""
    defined, last_use = {}, {}
    for point, (target, sources) in enumerate(program):
        defined.setdefault(target, point)
        last_use[target] = max(last_use.get(target, point), point)
        for source in sources:
            last_use[source] = point
    return {v: (defined[v], last_use[v]) for v in defined}


def interference_graph(program):
    """Variables interfere when their live ranges overlap."""
    ranges = live_ranges(program)
    names = sorted(ranges)
    index = {name: i for i, name in enumerate(names)}
    graph = Graph(len(names), name="toy-program")
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            (s1, e1), (s2, e2) = ranges[u], ranges[v]
            if s1 < e2 and s2 < e1:  # strict overlap => both live at once
                graph.add_edge(index[u], index[v])
    return graph, names


def main() -> None:
    graph, names = interference_graph(PROGRAM)
    print(f"interference graph: {graph}")
    for u, v in graph.edges():
        print(f"  {names[u]} <-> {names[v]}")

    result = solve_coloring(graph, num_colors=len(names), solver="pbs2",
                            sbp_kind="nu+sc", time_limit=30)
    print(f"\nminimum registers needed: {result.num_colors} ({result.status})")
    for vertex, color in sorted(result.coloring.items()):
        print(f"  {names[vertex]:4s} -> r{color}")

    # The paper's embedded-CPU scenario: does it fit in K registers?
    for budget in (result.num_colors - 1, result.num_colors):
        feasible = solve_coloring(graph, num_colors=max(budget, 1),
                                  solver="pbs2", sbp_kind="nu", time_limit=30)
        verdict = "fits" if feasible.status != "UNSAT" else "does NOT fit"
        print(f"budget of {budget} registers: {verdict}")


if __name__ == "__main__":
    main()
