#!/usr/bin/env python
"""Quickstart: exact minimum coloring through the ``repro.api`` stack.

Builds the queen5_5 DIMACS instance, describes *what* to solve with a
problem value object, *how* to solve it with a Pipeline (the paper's
best instance-independent SBP combination NU + SC, the PBS-II-profile
backend), and cross-checks the result against the DSATUR
branch-and-bound baseline — which is just the same problem run on a
different registered backend.

Run:  python examples/quickstart.py
"""

from repro.api import ChromaticProblem, Pipeline
from repro.coloring.verify import check_proper
from repro.graphs import dsatur, queens_graph


def main() -> None:
    graph = queens_graph(5, 5)
    print(f"instance: {graph}")

    heuristic_coloring, heuristic_colors = dsatur(graph)
    print(f"DSATUR heuristic upper bound: {heuristic_colors} colors")

    pipeline = (
        Pipeline()
        .symmetry(sbp_kind="nu+sc")     # the paper's best combination
        .solve(backend="pb-pbs2", time_limit=60)
    )
    problem = ChromaticProblem(graph)
    result = pipeline.run(problem)
    print(f"exact result: {result.status}, chromatic number = {result.chromatic_number}")
    check_proper(graph, result.coloring)
    print("coloring verified proper")
    print("stage trace:", ", ".join(
        f"{s.name} {s.seconds * 1000:.0f}ms" for s in result.stages))

    # Same problem, different backend — that is the whole registry idea.
    # (The DSATUR baseline takes no SBPs: it never builds a formula.)
    baseline = Pipeline().solve(backend="exact-dsatur", time_limit=60).run(problem)
    assert baseline.chromatic_number == result.chromatic_number, "backends disagree!"
    print(f"DSATUR branch-and-bound agrees: {baseline.chromatic_number}")

    classes = {}
    for vertex, color in sorted(result.coloring.items()):
        classes.setdefault(color, []).append(vertex)
    for color, members in sorted(classes.items()):
        print(f"  color {color}: squares {members}")


if __name__ == "__main__":
    main()
