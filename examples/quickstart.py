#!/usr/bin/env python
"""Quickstart: exact minimum coloring with symmetry breaking.

Builds the queen5_5 DIMACS instance, encodes it as 0-1 ILP, adds the
paper's best instance-independent SBP combination (NU + SC), solves
with the PBS-II-profile solver, and cross-checks the result against the
DSATUR branch-and-bound baseline.

Run:  python examples/quickstart.py
"""

from repro.coloring import exact_chromatic_number, solve_coloring
from repro.coloring.verify import check_proper
from repro.graphs import dsatur, queens_graph


def main() -> None:
    graph = queens_graph(5, 5)
    print(f"instance: {graph}")

    heuristic_coloring, heuristic_colors = dsatur(graph)
    print(f"DSATUR heuristic upper bound: {heuristic_colors} colors")

    result = solve_coloring(
        graph,
        num_colors=heuristic_colors,  # K budget, as in the paper
        solver="pbs2",
        sbp_kind="nu+sc",
        time_limit=60,
    )
    print(f"exact result: {result.status}, chromatic number = {result.num_colors}")
    check_proper(graph, result.coloring)
    print("coloring verified proper")

    baseline = exact_chromatic_number(graph, time_limit=60)
    assert baseline.chromatic_number == result.num_colors, "pipelines disagree!"
    print(f"DSATUR branch-and-bound agrees: {baseline.chromatic_number}")

    classes = {}
    for vertex, color in sorted(result.coloring.items()):
        classes.setdefault(color, []).append(vertex)
    for color, members in sorted(classes.items()):
        print(f"  color {color}: squares {members}")


if __name__ == "__main__":
    main()
