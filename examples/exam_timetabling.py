#!/usr/bin/env python
"""Exam timetabling as graph coloring (paper Section 2.1).

Courses that share students cannot sit exams in the same slot; the
minimum number of slots is the chromatic number of the conflict graph.
Demonstrates the instance-independent/instance-dependent SBP comparison
on a structured CSP: slots (colors) are fully interchangeable, so color
symmetry breaking pays off immediately.  Each configuration is one
specialization of a shared base Pipeline — only the symmetry stage
changes between runs.

Run:  python examples/exam_timetabling.py
"""

import random
import time

from repro.api import BudgetedOptimize, Pipeline
from repro.graphs import Graph, dsatur

COURSES = [
    "algebra", "analysis", "compilers", "databases", "geometry",
    "graphics", "logic", "networks", "os", "prob", "stats", "vision",
]


def build_conflicts(seed: int = 7) -> Graph:
    """Random student enrollments -> course conflict graph."""
    rng = random.Random(seed)
    graph = Graph(len(COURSES), name="exam-conflicts")
    for _student in range(40):
        enrolled = rng.sample(range(len(COURSES)), rng.randint(2, 4))
        for i, a in enumerate(enrolled):
            for b in enrolled[i + 1 :]:
                graph.add_edge(min(a, b), max(a, b))
    return graph


def main() -> None:
    graph = build_conflicts()
    print(f"conflict graph: {graph} (density {graph.density():.2f})")
    _, upper = dsatur(graph)
    print(f"DSATUR needs {upper} slots; trying to do better exactly...")

    problem = BudgetedOptimize(graph, max_colors=upper)
    base = Pipeline().solve(backend="pb-pbs2", time_limit=60)
    for sbp, inst_dep in (("none", False), ("nu+sc", False), ("none", True)):
        pipeline = base.symmetry(sbp_kind=sbp, instance_dependent=inst_dep)
        start = time.monotonic()
        result = pipeline.run(problem)
        label = sbp + ("+inst-dep" if inst_dep else "")
        print(
            f"  [{label:12s}] {result.status}: {result.num_colors} slots "
            f"in {time.monotonic() - start:.2f}s"
        )

    result = base.symmetry(sbp_kind="nu+sc").run(problem)
    print("\ntimetable:")
    slots = {}
    for course, slot in sorted(result.coloring.items()):
        slots.setdefault(slot, []).append(COURSES[course])
    for slot, courses in sorted(slots.items()):
        print(f"  slot {slot}: {', '.join(courses)}")


if __name__ == "__main__":
    main()
