"""Legacy setup shim: the offline environment lacks the `wheel` package
that PEP 660 editable installs require, so `pip install -e .` uses the
legacy setuptools develop path via this file."""
from setuptools import setup

setup()
