"""Hash-seed determinism of the symmetry stack (the RPR003 invariant).

The refinement/canonical-labeling code iterates adjacency structures;
if any of that iteration ran over raw sets, the canonical form (and
with it every differential comparison built on it) would depend on
``PYTHONHASHSEED``.  These tests pin the canonical certificate — and
the detected generator list — to be byte-identical across interpreter
instances launched with different hash seeds.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")

# Runs in a fresh interpreter per hash seed: build a structured graph,
# canonicalize it, detect symmetries, print a JSON certificate.
_PROBE = r"""
import hashlib
import json

from repro.graphs.generators import kneser_graph, queens_graph
from repro.symmetry.canonical import canonical_form
from repro.symmetry.automorphism import find_automorphisms

out = {}
for name, graph in (("queen4", queens_graph(4, 4)), ("kneser52", kneser_graph(5, 2))):
    cert = canonical_form(graph)
    out[name + "_canon"] = hashlib.sha256(repr(cert).encode()).hexdigest()
    search = find_automorphisms(graph)
    gens = sorted(p.image for p in search.generators)
    out[name + "_gens"] = hashlib.sha256(repr(gens).encode()).hexdigest()
print(json.dumps(out, sort_keys=True))
"""


def _run_probe(hashseed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_canonical_hashes_stable_across_hash_seeds():
    """Same certificates under PYTHONHASHSEED=0, 1 and 424242."""
    results = [_run_probe(seed) for seed in ("0", "1", "424242")]
    assert results[0] == results[1] == results[2]
    # Sanity: the probe produced all four certificates.
    assert len(results[0]) == 4


def test_refinement_is_insensitive_to_neighbor_set_order():
    """The equitable refinement must not read adjacency-set hash order.

    Simulated in-process: two Graph instances whose adjacency sets have
    different insertion (and thus iteration) histories must refine to
    the same partition, cell for cell.
    """
    from repro.graphs.graph import Graph
    from repro.symmetry.refinement import OrderedPartition, refine

    edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
    g_fwd = Graph(4)
    for u, v in edges:
        g_fwd.add_edge(u, v)
    g_rev = Graph(4)
    for u, v in reversed(edges):
        g_rev.add_edge(v, u)

    p_fwd = refine(g_fwd, OrderedPartition.unit(4))
    p_rev = refine(g_rev, OrderedPartition.unit(4))
    assert p_fwd.cells == p_rev.cells
