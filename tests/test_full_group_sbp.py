"""Crawford-style full-group SBP tests (vs generators-only breaking)."""

import pytest

from repro.core.formula import Formula
from repro.core.literals import lit_index
from repro.sat.brute import brute_force_solve
from repro.sbp.lex_leader import add_full_group_sbps, add_symmetry_breaking_predicates
from repro.symmetry.detect import detect_symmetries
from repro.symmetry.permutation import Permutation


def _symmetric_formula():
    # (x1|x2|x3) with full S_3 symmetry over the variables.
    f = Formula(num_vars=3)
    f.add_clause([1, 2, 3])
    return f


def test_full_group_breaks_more_than_generators():
    f_gen = _symmetric_formula()
    rep = detect_symmetries(f_gen)
    assert rep.order == 6
    f_full = f_gen.copy()
    add_symmetry_breaking_predicates(f_gen, rep.generators)
    add_full_group_sbps(f_full, rep.generators)
    # Count surviving assignments over the original 3 variables.
    def survivors(formula):
        count = 0
        for bits in range(8):
            probe = formula.copy()
            for v in range(1, 4):
                probe.add_clause([v if (bits >> (v - 1)) & 1 else -v])
            if brute_force_solve(probe).is_sat:
                count += 1
        return count

    gen_count = survivors(f_gen)
    full_count = survivors(f_full)
    assert full_count <= gen_count
    # Full-group lex-leader breaking is complete: one representative per
    # orbit. Orbits of the 7 models of (x|y|z) under S_3: weight-1,
    # weight-2, weight-3 -> exactly 3 representatives.
    assert full_count == 3


def test_full_group_preserves_satisfiability():
    f = _symmetric_formula()
    rep = detect_symmetries(f)
    add_full_group_sbps(f, rep.generators)
    assert brute_force_solve(f).is_sat


def test_element_limit_guard():
    # S_8 has 40320 elements; a tiny limit must refuse, not truncate.
    gens = [
        Permutation.from_mapping(16, {
            lit_index(i): lit_index(i + 1), lit_index(i + 1): lit_index(i),
            lit_index(-i): lit_index(-(i + 1)), lit_index(-(i + 1)): lit_index(-i),
        })
        for i in range(1, 8)
    ]
    f = Formula(num_vars=8)
    f.add_clause(list(range(1, 9)))
    with pytest.raises(ValueError):
        add_full_group_sbps(f, gens, element_limit=100)


def test_empty_generator_set():
    f = Formula(num_vars=1)
    f.add_clause([1])
    assert add_full_group_sbps(f, []) == 0


def test_full_group_on_coloring_instance():
    """On a small coloring encoding, full-group breaking keeps the
    optimum (soundness at the application level)."""
    from repro.coloring.encoding import encode_coloring
    from repro.graphs.graph import Graph
    from repro.pb.presets import solve_optimize

    g = Graph.from_edges(3, [(0, 1), (1, 2)])
    enc = encode_coloring(g, 3)
    rep = detect_symmetries(enc.formula)
    add_full_group_sbps(enc.formula, rep.generators, element_limit=20000)
    result = solve_optimize(enc.formula, preset="pbs2")
    assert result.is_optimal and result.best_value == 2
