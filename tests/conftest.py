"""Shared test configuration: seeded hypothesis profiles.

The differential property harness (``tests/test_component_pool.py``)
runs under one of three registered profiles, selected by the
``HYPOTHESIS_PROFILE`` environment variable:

* ``ci`` (the default) — derandomized: the same seed every run, so the
  tier-1 suite and the PR ``fuzz-smoke`` job are deterministic;
* ``nightly`` — fresh random seeds and a larger example budget, for the
  scheduled CI run that explores new inputs every night;
* ``dev`` — derandomized but small, for quick local iteration.

Solver-backed properties are orders of magnitude slower than the pure
functions hypothesis expects, so deadlines are disabled and the
too-slow health check suppressed in every profile.
"""

import os

from hypothesis import HealthCheck, settings

_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

settings.register_profile("ci", max_examples=20, derandomize=True, **_COMMON)
settings.register_profile("nightly", max_examples=150, derandomize=False, **_COMMON)
settings.register_profile("dev", max_examples=10, derandomize=True, **_COMMON)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
