"""Test-only batch plugins: misbehaving backends for the fleet runner.

Loaded into workers through the batch plugin hook (``--plugin`` /
``plugins=``), these exercise the failure paths deterministically —
CI cannot rely on a "naturally slow" instance staying slow across
hardware:

* ``sleepy`` — blocks well past any task timeout and *ignores* the
  cancel predicate: only the coordinator's hard kill ends it.
* ``dozy`` — blocks but polls ``ctx.cancelled()``: the cooperative
  timeout path (``RunContext`` cancel + ``SolveConfig.time_limit``).
* ``crash-once`` — dies with ``os._exit`` on the first attempt (leaving
  a marker file named by ``REPRO_CRASH_MARKER``), then delegates to
  ``cdcl-incremental``: the retry-on-worker-death path.
* ``always-crash`` — dies on every attempt: retry exhaustion and the
  death -> fallback promotion path.
"""

import os
import time

from repro.api import Backend, get_backend, register_backend
from repro.api.results import Result

_BLOCK_SECONDS = 30.0  # far past every timeout the tests use


class SleepyBackend(Backend):
    """Sleeps through cancellation; only a hard kill stops it."""

    name = "sleepy"
    description = "test backend: uninterruptible sleep"

    def run(self, problem, config, ctx):
        limit = config.solve.time_limit
        time.sleep(_BLOCK_SECONDS if limit is None else limit + _BLOCK_SECONDS)
        return Result(status="UNKNOWN")


class DozyBackend(Backend):
    """Blocks but honours the RunContext cancel predicate."""

    name = "dozy"
    description = "test backend: cooperative blocking"

    def run(self, problem, config, ctx):
        deadline = time.monotonic() + _BLOCK_SECONDS
        while time.monotonic() < deadline:
            if ctx.cancelled():
                return Result(status="UNKNOWN", cancelled=True)
            time.sleep(0.005)
        return Result(status="UNKNOWN")


class CrashOnceBackend(Backend):
    """Kills its process on the first attempt, then answers normally."""

    name = "crash-once"
    description = "test backend: dies once, then delegates"

    def run(self, problem, config, ctx):
        marker = os.environ.get("REPRO_CRASH_MARKER", "")
        if marker and not os.path.exists(marker):
            with open(marker, "w"):
                pass
            os._exit(3)
        return get_backend("cdcl-incremental").run(problem, config, ctx)


class AlwaysCrashBackend(Backend):
    """Kills its process on every attempt."""

    name = "always-crash"
    description = "test backend: dies every time"

    def run(self, problem, config, ctx):
        os._exit(3)


def _register() -> None:
    # Re-registering under the same name is an overwrite, so loading
    # this plugin twice (parent + worker) is harmless.
    register_backend(SleepyBackend())
    register_backend(DozyBackend())
    register_backend(CrashOnceBackend())
    register_backend(AlwaysCrashBackend())


_register()
