"""Tests of the incremental K-search subsystem and the assumption API.

Three layers, mirroring what the incremental descent relies on:

* solver-level: assumption-level backtracking, assumption-aware
  restarts, final-conflict (failed-assumption) extraction and its
  guarantees (the core really is jointly unsatisfiable);
* search-level: :class:`IncrementalKSearch` semantics, including the
  monotone ``permanent`` mode and the unsat core over colors;
* pipeline-level: property tests over the graph generator families
  asserting the incremental and from-scratch descents agree on the
  chromatic number and produce valid colorings, for both strategies.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.sat_pipeline import (
    IncrementalKSearch,
    chromatic_number_sat,
    encode_k_coloring_incremental,
)
from repro.coloring.verify import is_proper
from repro.graphs.generators import (
    book_graph,
    crown_graph,
    gnm_graph,
    gnp_graph,
    interference_graph,
    kneser_graph,
    mycielski_graph,
    queens_graph,
    wheel_graph,
)
from repro.graphs.graph import Graph
from repro.pb.engine import PBSolver
from repro.sat.cdcl import CDCLSolver
from repro.sat.result import SAT, UNSAT


# --------------------------------------------------------------- solver layer
def test_failed_assumptions_simple_core():
    solver = CDCLSolver()
    solver.add_clause([1, 2])
    result = solver.solve(assumptions=[-1, -2])
    assert result.is_unsat
    assert result.failed_assumptions == [-1, -2]
    # Not UNSAT on its own: solving again without assumptions succeeds.
    assert solver.solve().is_sat


def test_failed_assumptions_subset_only():
    solver = CDCLSolver()
    solver.add_clause([1, 2])
    # Assumption -5 is irrelevant to the conflict; the core must not
    # contain it.
    result = solver.solve(assumptions=[-5, -1, -2])
    assert result.is_unsat
    assert result.failed_assumptions == [-1, -2]


def test_failed_assumptions_through_propagation_chain():
    solver = CDCLSolver()
    solver.add_clause([-1, 2])   # 1 -> 2
    solver.add_clause([-2, 3])   # 2 -> 3
    solver.add_clause([-3, -4])  # 3 -> not 4
    result = solver.solve(assumptions=[1, 4])
    assert result.is_unsat
    assert result.failed_assumptions == [1, 4]


def test_failed_assumptions_empty_core_when_globally_unsat():
    solver = CDCLSolver()
    solver.add_clause([1])
    assert not solver.add_clause([-1])
    result = solver.solve(assumptions=[2])
    assert result.is_unsat
    assert result.failed_assumptions == []


def test_failed_assumptions_contradictory_pair():
    solver = CDCLSolver()
    solver.add_clause([1, 2])
    result = solver.solve(assumptions=[3, -3])
    assert result.is_unsat
    assert result.failed_assumptions == [3, -3]


def test_core_is_jointly_unsat_pigeonhole():
    # On a nontrivial UNSAT-under-assumptions instance, re-solving a
    # fresh solver under only the reported core must still be UNSAT.
    def php(pigeons, holes):
        solver = CDCLSolver()
        x = {}
        var = 0
        for p in range(pigeons):
            for h in range(holes):
                var += 1
                x[p, h] = var
        for p in range(pigeons):
            solver.add_clause([x[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-x[p1, h], -x[p2, h]])
        return solver, x

    solver, x = php(5, 5)
    # Forbid pigeon 0 from every hole via assumptions: UNSAT, and the
    # core is a subset of those bans that already blocks pigeon 0.
    assumptions = [-x[0, h] for h in range(5)]
    result = solver.solve(assumptions=assumptions)
    assert result.is_unsat
    core = result.failed_assumptions
    assert core and set(core) <= set(assumptions)
    fresh, _ = php(5, 5)
    assert fresh.solve(assumptions=core).is_unsat


def test_assumptions_released_between_calls():
    solver = CDCLSolver()
    solver.add_clause([1, 2, 3])
    assert solver.solve(assumptions=[-1, -2, -3]).is_unsat
    result = solver.solve(assumptions=[-1, -2])
    assert result.is_sat and result.model[3] is True
    assert solver.solve().is_sat


def test_assumption_backtracking_keeps_solver_reusable():
    # Learned state from an assumption-UNSAT call must not corrupt
    # later calls (the solver always returns to level 0).
    solver = CDCLSolver()
    for i in range(1, 6):
        solver.add_clause([i, i + 5])
    for _ in range(3):
        assert solver.solve(assumptions=[-1, -6]).is_unsat
        assert solver.decision_level == 0
        assert solver.solve().is_sat
        assert solver.decision_level == 0


def test_assumption_aware_restarts_stay_correct():
    # restart_base=1 restarts after every conflict; with assumptions the
    # restart must keep the assumption prefix and still be correct.
    solver = CDCLSolver(restart_base=1)
    x = {}
    var = 0
    for p in range(6):
        for h in range(5):
            var += 1
            x[p, h] = var
    for p in range(6):
        solver.add_clause([x[p, h] for h in range(5)])
    for h in range(5):
        for p1 in range(6):
            for p2 in range(p1 + 1, 6):
                solver.add_clause([-x[p1, h], -x[p2, h]])
    result = solver.solve(assumptions=[x[0, 0], x[1, 1]])
    assert result.is_unsat  # PHP 6->5 is UNSAT regardless
    # The refutation may or may not run through the assumptions, but
    # the reported core must be a subset of them, and the formula must
    # indeed be UNSAT without any assumptions at all.
    assert set(result.failed_assumptions) <= {x[0, 0], x[1, 1]}
    assert solver.solve().is_unsat


def test_pb_solver_supports_assumption_cores():
    solver = PBSolver()
    solver.add_linear_ge([(1, 1), (1, 2), (1, 3)], 2)
    result = solver.solve(assumptions=[-1, -2])
    assert result.is_unsat
    assert result.failed_assumptions == [-1, -2]
    assert solver.solve(assumptions=[-1]).is_sat


# --------------------------------------------------------------- search layer
def test_incremental_search_descent_and_core():
    g = mycielski_graph(3)  # chi = 4, triangle-free
    search = IncrementalKSearch(g, 5)
    status, coloring, _ = search.solve_k(4)
    assert status == SAT and is_proper(g, coloring)
    assert len(set(coloring.values())) <= 4
    status, coloring, failed = search.solve_k(3)
    assert status == UNSAT and coloring is None
    # The core over colors only mentions disabled colors (> 3).
    assert all(c in (4, 5) for c in failed)


def test_incremental_search_permanent_mode_is_monotone():
    g = mycielski_graph(3)
    search = IncrementalKSearch(g, 5)
    status, _, _ = search.solve_k(4, permanent=True)
    assert status == SAT
    with pytest.raises(ValueError):
        search.solve_k(5)  # k >= max_k rejected
    status, _, _ = search.solve_k(3, permanent=True)
    assert status == UNSAT
    with pytest.raises(ValueError):
        search.solve_k(4, permanent=True)  # non-monotone rejected
    with pytest.raises(ValueError):
        # Plain queries above the permanent ceiling are rejected too:
        # the level-0 units cannot be retracted by assumptions, so
        # answering would report a wrong UNSAT.
        search.solve_k(4)


def test_incremental_encoding_guards_every_color():
    g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])  # triangle
    formula, x, act = encode_k_coloring_incremental(g, 4)
    assert set(act) == {1, 2, 3, 4}
    solver = CDCLSolver(num_vars=formula.num_vars)
    assert solver.add_formula(formula)
    # Disabling one color leaves a 3-coloring; disabling two leaves
    # a 2-coloring attempt on a triangle: UNSAT.
    assert solver.solve(assumptions=[-act[4]]).is_sat
    result = solver.solve(assumptions=[-act[4], -act[3]])
    assert result.is_unsat
    failed = {a for a in (result.failed_assumptions or [])}
    assert failed <= {-act[4], -act[3]}


def test_solve_k_rejects_k_above_bound():
    search = IncrementalKSearch(mycielski_graph(3), 4)
    with pytest.raises(ValueError):
        search.solve_k(5)
    # Querying at the encoded horizon itself is legal — there are simply
    # no colors to switch off (myciel3 is 4-chromatic).
    status, coloring, _ = search.solve_k(4)
    assert status == SAT
    assert is_proper(mycielski_graph(3), coloring)


# -------------------------------------------------------------- pipeline layer
FAMILIES = [
    ("myciel3", lambda: mycielski_graph(3)),
    ("myciel4", lambda: mycielski_graph(4)),
    ("queens5", lambda: queens_graph(5, 5)),
    # queens7 (not 6): chi(queens7) = 7 equals the row-clique bound, so
    # both descents terminate without the (hours-hard) UNSAT-at-6 proof.
    ("queens7", lambda: queens_graph(7, 7)),
    ("crown8", lambda: crown_graph(8)),
    ("wheel9", lambda: wheel_graph(9)),
    ("kneser7_2", lambda: kneser_graph(7, 2)),
    ("book30", lambda: book_graph(30, 60, seed=5)),
    ("register", lambda: interference_graph(24, 40, 4, seed=2)),
    ("gnp18", lambda: gnp_graph(18, 0.4, seed=9)),
    ("gnm20", lambda: gnm_graph(20, 60, seed=4)),
]


@pytest.mark.parametrize("strategy", ["linear", "binary"])
@pytest.mark.parametrize("name,build", FAMILIES, ids=[n for n, _ in FAMILIES])
def test_incremental_matches_scratch_over_families(name, build, strategy):
    graph = build()
    incremental = chromatic_number_sat(
        graph, strategy=strategy, incremental=True, time_limit=120
    )
    scratch = chromatic_number_sat(
        graph, strategy=strategy, incremental=False, time_limit=120
    )
    assert incremental.status == "OPTIMAL"
    assert scratch.status == "OPTIMAL"
    assert incremental.chromatic_number == scratch.chromatic_number
    assert is_proper(graph, incremental.coloring)
    assert is_proper(graph, scratch.coloring)
    assert len(set(incremental.coloring.values())) == incremental.chromatic_number
    assert incremental.solvers_created <= 1
    assert incremental.incremental and not scratch.incremental


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10),
    p=st.floats(min_value=0.1, max_value=0.7),
    seed=st.integers(min_value=0, max_value=1000),
    strategy=st.sampled_from(["linear", "binary"]),
)
def test_incremental_matches_scratch_random_graphs(n, p, seed, strategy):
    # n/p are kept small enough that every descent finishes well inside
    # the time limit on any machine; should one run still be cut short
    # (status SAT, bound unproved), agreement on chi cannot be expected
    # and the example is skipped rather than failed.
    graph = gnp_graph(n, p, seed=seed)
    incremental = chromatic_number_sat(
        graph, strategy=strategy, incremental=True, time_limit=60
    )
    scratch = chromatic_number_sat(
        graph, strategy=strategy, incremental=False, time_limit=60
    )
    if not (incremental.status == scratch.status == "OPTIMAL"):
        return  # timed out on a slow machine: nothing to compare
    assert incremental.chromatic_number == scratch.chromatic_number
    if graph.num_vertices:
        assert is_proper(graph, incremental.coloring)


@pytest.mark.parametrize("sbp", ["none", "nu", "sc", "nu+sc"])
def test_incremental_descent_with_cnf_sbps(sbp):
    g = queens_graph(4, 4)
    result = chromatic_number_sat(
        g, strategy="linear", sbp_kind=sbp, incremental=True, time_limit=60
    )
    assert result.status == "OPTIMAL" and result.chromatic_number == 5
    assert is_proper(g, result.coloring)


def test_incremental_binary_uses_core_to_skip(monkeypatch):
    # The unsat core over colors can only ever tighten lo upward; verify
    # the bisection still answers correctly when cores fire.
    g = mycielski_graph(4)  # chi 5, clique bound 2: wide binary range
    result = chromatic_number_sat(
        g, strategy="binary", incremental=True, time_limit=120
    )
    assert result.status == "OPTIMAL" and result.chromatic_number == 5
    # Every queried K below chi must have been answered UNSAT.
    assert all(s == UNSAT for k, s in result.k_queries if k < 5)


def test_carry_heuristics_descent_agrees():
    # The carry mode keeps phases/VSIDS across queries (the repair
    # strategy); it is kept as an option for experimentation and must
    # produce the same answers as the default re-seeded descent.
    g = queens_graph(6, 6)
    search = IncrementalKSearch(g, 9)
    expected = {8: SAT, 7: SAT}
    for k in (8, 7):
        status, coloring, _ = search.solve_k(k, carry_heuristics=True)
        assert status == expected[k]
        assert is_proper(g, coloring)
        assert len(set(coloring.values())) <= k
    # A vertex whose color was dropped had its phases neutralized, not
    # its answer: the next query still finds a proper coloring.
    status, coloring, _ = search.solve_k(7, carry_heuristics=True)
    assert status == SAT and is_proper(g, coloring)
