"""Cancellation and time-limit paths across the API surface.

The contract under test (see ``repro.api.results.RunContext``): time
limits make the *engine* give up with UNKNOWN/best-so-far; the cancel
predicate is polled between stages, between K queries, *and inside
each query* (every few dozen conflicts in the CDCL search loop) and
makes the run return its best-so-far answer with ``cancelled=True`` —
neither ever raises.  The in-query polling closes the gap the ROADMAP
flagged after PR 4: a single monster UNSAT query inside a
``Session.chromatic`` used to be uninterruptible without the batch
layer's hard kill.  The batch layer's timeout -> fallback-promotion
path on top of this plumbing is covered in ``tests/test_batch.py``.
"""

import time

from repro.api import (
    BudgetedOptimize,
    ChromaticProblem,
    Pipeline,
    Session,
)
from repro.core.formula import Formula
from repro.graphs.generators import mycielski_graph, queens_graph
from repro.sat.cdcl import CDCLSolver


class FlipAfter:
    """A cancel predicate that turns true after N polls."""

    def __init__(self, polls: int):
        self.remaining = polls

    def __call__(self) -> bool:
        self.remaining -= 1
        return self.remaining < 0


def test_session_decide_time_limit_expiry_returns_unknown():
    # queens 6x6 at K=6 is a hard UNSAT proof; 0.2s cannot finish it.
    with Session(queens_graph(6, 6)) as session:
        result = session.decide(6, time_limit=0.2)
        assert result.status == "UNKNOWN"
        assert not result.solved
        assert session.queries == [(6, "UNKNOWN")]
        # The session survives an expired query: the same persistent
        # solver answers the easier budget afterwards.
        follow_up = session.decide(7)
        assert follow_up.status == "SAT"
        assert session.solvers_created == 1


def test_session_chromatic_cancel_returns_best_so_far():
    # Cancelled before the first K query: the heuristic bound comes
    # back as the best-so-far answer instead of an exception.
    cancel = FlipAfter(0)
    with Session(mycielski_graph(4), cancel=cancel) as session:
        result = session.chromatic()
    assert result.cancelled
    # Heuristic bound, optimality unproved: the degraded-but-verified
    # FEASIBLE contract.
    assert result.status == "FEASIBLE"
    assert result.degraded
    assert result.num_colors is not None
    assert result.coloring is not None


def test_pipeline_cancel_optimize_flow_returns_cancelled_unknown():
    result = (Pipeline()
              .solve(backend="pb-pbs2", time_limit=5)
              .run(BudgetedOptimize(mycielski_graph(4), 6),
                   cancel=lambda: True))
    assert result.cancelled
    assert result.status == "UNKNOWN"
    assert not result.solved


def test_pipeline_cancel_chromatic_descent_returns_best_so_far():
    result = (Pipeline()
              .solve(backend="cdcl-incremental", time_limit=5)
              .run(ChromaticProblem(mycielski_graph(4)),
                   cancel=lambda: True))
    assert result.cancelled
    assert result.status == "FEASIBLE"
    assert result.degraded
    # Best-so-far: a proper coloring exists even though the descent
    # never got to prove optimality.
    assert result.num_colors is not None
    assert result.coloring is not None


def test_pipeline_time_limit_chromatic_gives_unproved_bound():
    result = (Pipeline()
              .solve(backend="cdcl-incremental", time_limit=0.2)
              .run(ChromaticProblem(queens_graph(6, 6))))
    # The SAT chain descends fast; the K=6 UNSAT proof does not fit in
    # the budget, so the answer is a feasible-but-unproved bound.
    assert result.status in ("FEASIBLE", "UNKNOWN")
    assert not result.solved
    if result.status == "FEASIBLE":
        assert result.degraded
        assert result.num_colors is not None
        assert result.upper_bound == result.num_colors


def _pigeonhole(pigeons, holes):
    f = Formula()
    x = {(p, h): f.new_var() for p in range(pigeons) for h in range(holes)}
    for p in range(pigeons):
        f.add_clause([x[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                f.add_clause([-x[p1, h], -x[p2, h]])
    return f


def test_solver_should_stop_interrupts_mid_query():
    # The hole-count makes the refutation cost thousands of conflicts;
    # the stop predicate (polled every 64 conflicts) must cut it short
    # long before that, and the solver must survive for the next call.
    solver = CDCLSolver()
    assert solver.add_formula(_pigeonhole(7, 6))
    polls = FlipAfter(3)
    result = solver.solve(should_stop=polls)
    assert result.status == "UNKNOWN"
    assert polls.remaining < 0  # the predicate really was consulted
    assert result.stats.conflicts < 1000  # far short of the full proof
    # The same solver still finishes the proof when left alone.
    assert solver.solve().is_unsat


def test_interrupt_at_decision_poll_never_loses_vsids_vars():
    """An interrupt that fires at the decision poll must push the
    just-popped variable back on the VSIDS heap — losing it would make
    a later solve() on the same solver "run out" of variables and
    report a false SAT model."""
    solver = CDCLSolver()
    solver.add_clause([1, 2])
    for _ in range(4):
        # stats.decisions is cumulative, so align the counter with the
        # poll mask each round to force the interrupt mid-decision.
        solver.stats.decisions = 1023
        interrupted = solver.solve(should_stop=lambda: True)
        assert interrupted.status == "UNKNOWN"
    solver.stats.decisions = 0
    result = solver.solve()
    assert result.is_sat
    assert result.model[1] or result.model[2]  # the clause really holds


def test_session_cancel_interrupts_monster_unsat_query():
    """The ROADMAP gap: queens 6x6 at K=6 is an UNSAT proof far beyond
    any test budget, and the session has NO time limit — only the
    cancel predicate, which must fire *inside* the query."""
    start = time.monotonic()
    cancel = lambda: time.monotonic() - start > 0.5  # noqa: E731
    with Session(queens_graph(6, 6), cancel=cancel) as session:
        result = session.decide(6)  # no time_limit on purpose
    elapsed = time.monotonic() - start
    assert result.status == "UNKNOWN"
    assert result.cancelled
    assert elapsed < 30, f"in-query cancellation took {elapsed:.1f}s"


def test_session_chromatic_cancel_interrupts_mid_descent():
    # The descent reaches the monster K=6 UNSAT query after two cheap
    # SAT queries; the cancel must interrupt it from inside and the
    # best-so-far (K=7) answer must survive.
    start = time.monotonic()
    cancel = lambda: time.monotonic() - start > 1.0  # noqa: E731
    with Session(queens_graph(6, 6), cancel=cancel) as session:
        result = session.chromatic(strategy="linear")
    elapsed = time.monotonic() - start
    assert result.cancelled
    assert result.status == "FEASIBLE"
    assert result.degraded
    assert result.num_colors is not None
    assert result.coloring is not None
    assert elapsed < 30, f"in-query cancellation took {elapsed:.1f}s"


def test_pipeline_cancel_interrupts_mid_query():
    start = time.monotonic()
    cancel = lambda: time.monotonic() - start > 1.0  # noqa: E731
    result = (Pipeline()
              .solve(backend="cdcl-incremental")  # no time limit
              .run(ChromaticProblem(queens_graph(6, 6)), cancel=cancel))
    elapsed = time.monotonic() - start
    assert result.cancelled
    assert result.status in ("FEASIBLE", "UNKNOWN")
    assert elapsed < 30, f"in-query cancellation took {elapsed:.1f}s"


def test_cancel_cannot_revoke_a_bounds_proved_optimum():
    # queens 4x4: the clique bound meets the DSATUR bound, so the
    # chromatic number is proved without any solver query — a cancel
    # request cannot take the already-proved answer away.
    result = (Pipeline()
              .solve(backend="cdcl-incremental")
              .run(ChromaticProblem(queens_graph(4, 4)),
                   cancel=lambda: True))
    assert result.status == "OPTIMAL"
    assert result.num_colors == 5
    assert result.queries == []


def test_pb_minimize_linear_should_stop_interrupts_descent():
    """The PB bound-tightening loop must poll should_stop both between
    probes and inside each solve (the RPR002 invariant, extended to the
    optimizer in the static-analysis PR)."""
    from repro.pb.optimizer import minimize_linear

    f = _pigeonhole(7, 7)  # SAT, but a costly minimum
    f.set_objective([(1, v) for v in range(1, 8)])
    polls = FlipAfter(0)  # cancel at the very first loop-top poll
    result = minimize_linear(f, should_stop=polls)
    assert result.status == "UNKNOWN"
    assert polls.remaining < 0  # the predicate really was consulted


def test_pb_minimize_binary_should_stop_interrupts_bisection():
    from repro.pb.optimizer import minimize_binary

    f = _pigeonhole(7, 7)
    f.set_objective([(1, v) for v in range(1, 8)])
    for incremental in (True, False):
        polls = FlipAfter(0)  # cancel before the feasibility probe solves
        result = minimize_binary(f, incremental=incremental, should_stop=polls)
        assert result.status == "UNKNOWN"
        assert polls.remaining < 0


def test_pipeline_pb_backend_cancel_interrupts_minimize():
    # The PB backends now thread ctx.cancel into the optimizer: a
    # cancel that fires mid-minimize must come back as best-so-far.
    start = time.monotonic()
    cancel = lambda: time.monotonic() - start > 0.5  # noqa: E731
    result = (Pipeline()
              .solve(backend="pb-pbs2")  # no time limit on purpose
              .run(BudgetedOptimize(queens_graph(6, 6), 8), cancel=cancel))
    elapsed = time.monotonic() - start
    assert result.cancelled or result.solved
    assert elapsed < 30, f"in-query cancellation took {elapsed:.1f}s"


def test_bb_optimize_should_stop_interrupts_search():
    from repro.ilp.branch_and_bound import BranchAndBoundSolver

    f = _pigeonhole(6, 6)
    f.set_objective([(1, v) for v in range(1, 7)])
    polls = FlipAfter(0)  # cancel at the first node poll
    result = BranchAndBoundSolver().optimize(f, should_stop=polls)
    assert result.status == "UNKNOWN"
    assert polls.remaining < 0
