"""Cancellation and time-limit paths across the API surface.

The contract under test (see ``repro.api.results.RunContext``): time
limits make the *engine* give up with UNKNOWN/best-so-far; the cancel
predicate is polled between stages and between K queries and makes the
run return its best-so-far answer with ``cancelled=True`` — neither
ever raises.  The batch layer's timeout -> fallback-promotion path on
top of this plumbing is covered in ``tests/test_batch.py``.
"""

from repro.api import (
    BudgetedOptimize,
    ChromaticProblem,
    Pipeline,
    Session,
)
from repro.graphs.generators import mycielski_graph, queens_graph


class FlipAfter:
    """A cancel predicate that turns true after N polls."""

    def __init__(self, polls: int):
        self.remaining = polls

    def __call__(self) -> bool:
        self.remaining -= 1
        return self.remaining < 0


def test_session_decide_time_limit_expiry_returns_unknown():
    # queens 6x6 at K=6 is a hard UNSAT proof; 0.2s cannot finish it.
    with Session(queens_graph(6, 6)) as session:
        result = session.decide(6, time_limit=0.2)
        assert result.status == "UNKNOWN"
        assert not result.solved
        assert session.queries == [(6, "UNKNOWN")]
        # The session survives an expired query: the same persistent
        # solver answers the easier budget afterwards.
        follow_up = session.decide(7)
        assert follow_up.status == "SAT"
        assert session.solvers_created == 1


def test_session_chromatic_cancel_returns_best_so_far():
    # Cancelled before the first K query: the heuristic bound comes
    # back as the best-so-far answer instead of an exception.
    cancel = FlipAfter(0)
    with Session(mycielski_graph(4), cancel=cancel) as session:
        result = session.chromatic()
    assert result.cancelled
    assert result.status == "SAT"  # heuristic bound, optimality unproved
    assert result.num_colors is not None
    assert result.coloring is not None


def test_pipeline_cancel_optimize_flow_returns_cancelled_unknown():
    result = (Pipeline()
              .solve(backend="pb-pbs2", time_limit=5)
              .run(BudgetedOptimize(mycielski_graph(4), 6),
                   cancel=lambda: True))
    assert result.cancelled
    assert result.status == "UNKNOWN"
    assert not result.solved


def test_pipeline_cancel_chromatic_descent_returns_best_so_far():
    result = (Pipeline()
              .solve(backend="cdcl-incremental", time_limit=5)
              .run(ChromaticProblem(mycielski_graph(4)),
                   cancel=lambda: True))
    assert result.cancelled
    assert result.status == "SAT"
    # Best-so-far: a proper coloring exists even though the descent
    # never got to prove optimality.
    assert result.num_colors is not None
    assert result.coloring is not None


def test_pipeline_time_limit_chromatic_gives_unproved_bound():
    result = (Pipeline()
              .solve(backend="cdcl-incremental", time_limit=0.2)
              .run(ChromaticProblem(queens_graph(6, 6))))
    # The SAT chain descends fast; the K=6 UNSAT proof does not fit in
    # the budget, so the answer is a feasible-but-unproved bound.
    assert result.status in ("SAT", "UNKNOWN")
    assert not result.solved
    if result.status == "SAT":
        assert result.num_colors is not None


def test_cancel_cannot_revoke_a_bounds_proved_optimum():
    # queens 4x4: the clique bound meets the DSATUR bound, so the
    # chromatic number is proved without any solver query — a cancel
    # request cannot take the already-proved answer away.
    result = (Pipeline()
              .solve(backend="cdcl-incremental")
              .run(ChromaticProblem(queens_graph(4, 4)),
                   cancel=lambda: True))
    assert result.status == "OPTIMAL"
    assert result.num_colors == 5
    assert result.queries == []
