"""Cardinality -> CNF encoding tests: semantics vs brute force."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cnf_encodings import (
    build_totalizer,
    encode_at_least_k_totalizer,
    encode_at_most_k_sequential,
    encode_at_most_k_totalizer,
    encode_at_most_one_pairwise,
    encode_exactly_one_pairwise,
    pb_to_cnf,
)
from repro.core.formula import Formula
from repro.sat.cdcl import solve_formula


def _count_models_projected(formula, num_inputs):
    """Project models onto the first ``num_inputs`` variables."""
    seen = set()
    solver_formula = formula.copy()
    for bits in itertools.product([False, True], repeat=num_inputs):
        probe = solver_formula.copy()
        for v, bit in enumerate(bits, start=1):
            probe.add_clause([v if bit else -v])
        if solve_formula(probe).is_sat:
            seen.add(bits)
    return seen


def test_pairwise_amo():
    f = Formula(num_vars=3)
    added = encode_at_most_one_pairwise(f, [1, 2, 3])
    assert added == 3
    models = _count_models_projected(f, 3)
    assert models == {b for b in itertools.product([False, True], repeat=3) if sum(b) <= 1}


def test_pairwise_exactly_one():
    f = Formula(num_vars=3)
    encode_exactly_one_pairwise(f, [1, 2, 3])
    models = _count_models_projected(f, 3)
    assert models == {b for b in itertools.product([False, True], repeat=3) if sum(b) == 1}


def test_exactly_one_empty_rejected():
    with pytest.raises(ValueError):
        encode_exactly_one_pairwise(Formula(), [])


@pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 3), (4, 0), (3, 3)])
def test_sequential_at_most_k(n, k):
    f = Formula(num_vars=n)
    encode_at_most_k_sequential(f, list(range(1, n + 1)), k)
    models = _count_models_projected(f, n)
    expected = {b for b in itertools.product([False, True], repeat=n) if sum(b) <= k}
    assert models == expected


def test_sequential_negative_k():
    with pytest.raises(ValueError):
        encode_at_most_k_sequential(Formula(num_vars=2), [1, 2], -1)


@pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 2)])
def test_totalizer_at_most(n, k):
    f = Formula(num_vars=n)
    encode_at_most_k_totalizer(f, list(range(1, n + 1)), k)
    models = _count_models_projected(f, n)
    assert models == {b for b in itertools.product([False, True], repeat=n) if sum(b) <= k}


@pytest.mark.parametrize("n,k", [(3, 2), (4, 2), (5, 4)])
def test_totalizer_at_least(n, k):
    f = Formula(num_vars=n)
    encode_at_least_k_totalizer(f, list(range(1, n + 1)), k)
    models = _count_models_projected(f, n)
    assert models == {b for b in itertools.product([False, True], repeat=n) if sum(b) >= k}


def test_totalizer_at_least_too_big():
    with pytest.raises(ValueError):
        encode_at_least_k_totalizer(Formula(num_vars=2), [1, 2], 3)


def test_totalizer_outputs_are_unary_counter():
    f = Formula(num_vars=4)
    outputs = build_totalizer(f, [1, 2, 3, 4])
    assert len(outputs) == 4
    # Fix exactly 2 inputs true; outputs must read "exactly 2".
    probe = f.copy()
    for lit in (1, 2, -3, -4):
        probe.add_clause([lit])
    result = solve_formula(probe)
    assert result.is_sat
    assert result.model[outputs[0]] and result.model[outputs[1]]
    assert not result.model[outputs[2]] and not result.model[outputs[3]]


@pytest.mark.parametrize("strategy", ["sequential", "totalizer", "pairwise"])
def test_pb_to_cnf_equisatisfiable(strategy):
    f = Formula(num_vars=4)
    f.add_exactly_one([1, 2, 3])
    f.add_at_most([2, 3, 4], 2)
    f.add_clause([4])
    cnf = pb_to_cnf(f, strategy=strategy)
    assert not cnf.pb_constraints
    models = _count_models_projected(cnf, 4)
    expected = set()
    for bits in itertools.product([False, True], repeat=4):
        assignment = dict(enumerate(bits, start=1))
        if f.evaluate(assignment):
            expected.add(bits)
    assert models == expected


def test_pb_to_cnf_rejects_weighted():
    f = Formula(num_vars=2)
    f.add_pb([(2, 1), (1, 2)], ">=", 2)
    with pytest.raises(ValueError):
        pb_to_cnf(f)


def test_pb_to_cnf_negative_coefficients():
    # -x1 - x2 >= -1  ==  at most one of x1, x2.
    f = Formula(num_vars=2)
    f.add_pb([(-1, 1), (-1, 2)], ">=", -1)
    cnf = pb_to_cnf(f)
    models = _count_models_projected(cnf, 2)
    assert (True, True) not in models
    assert len(models) == 3


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=5),
    st.sampled_from(["sequential", "totalizer"]),
)
def test_cardinality_encodings_agree(n, k, strategy):
    f = Formula(num_vars=n)
    if strategy == "sequential":
        encode_at_most_k_sequential(f, list(range(1, n + 1)), min(k, n))
    else:
        encode_at_most_k_totalizer(f, list(range(1, n + 1)), min(k, n))
    models = _count_models_projected(f, n)
    expected = {
        b for b in itertools.product([False, True], repeat=n) if sum(b) <= min(k, n)
    }
    assert models == expected
