"""The docs gate's checking logic (scripts/check_docs.py).

Pins the three behaviours the gate relies on: GitHub's heading -> anchor
slug rules (including dedup suffixes), link/anchor resolution over real
files, and the AST docstring-coverage walk over the public API.  The
final test runs the gate against the repo itself — the same invocation
CI's docs job makes — so a broken link or a coverage dip fails here
before it fails there.
"""

import importlib.util
import os

import pytest

SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "scripts", "check_docs.py",
)


@pytest.fixture()
def check_docs():
    spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ------------------------------------------------------------- slug rules

@pytest.mark.parametrize("heading,slug", [
    ("Quick start", "quick-start"),
    ("Observability: traces, metrics, profiles",
     "observability-traces-metrics-profiles"),
    ("`repro.obs` internals", "reproobs-internals"),
    ("The [docs](docs/architecture.md) index", "the-docs-index"),
    ("UPPER_case_and-dashes", "upper_case_and-dashes"),
])
def test_github_slug(check_docs, heading, slug):
    assert check_docs.github_slug(heading, {}) == slug


def test_github_slug_dedup_suffixes(check_docs):
    seen = {}
    assert check_docs.github_slug("Same", seen) == "same"
    assert check_docs.github_slug("Same", seen) == "same-1"
    assert check_docs.github_slug("Same", seen) == "same-2"


# -------------------------------------------------------- heading anchors

def test_heading_anchors_skip_code_fences(check_docs, tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "# Title\n"
        "## Real section\n"
        "```\n"
        "# not a heading, just a shell comment\n"
        "```\n"
        "## Real section\n")
    anchors = check_docs.heading_anchors(str(doc))
    assert anchors == {"title", "real-section", "real-section-1"}


# ------------------------------------------------------- link resolution

def test_check_links_good_and_broken(check_docs, tmp_path):
    (tmp_path / "other.md").write_text("# Other title\n")
    doc = tmp_path / "index.md"
    doc.write_text(
        "[ok file](other.md)\n"
        "[ok anchor](other.md#other-title)\n"
        "[ok external](https://example.com/nope)\n"
        "[bad file](missing.md)\n"
        "[bad anchor](other.md#no-such-heading)\n")
    errors = check_docs.check_links([str(doc)])
    assert len(errors) == 2
    assert any("broken link -> missing.md" in e for e in errors)
    assert any("broken anchor -> other.md#no-such-heading" in e
               for e in errors)


def test_check_links_same_document_fragment(check_docs, tmp_path):
    doc = tmp_path / "self.md"
    doc.write_text("# Here\n[jump](#here)\n[bad](#gone)\n")
    errors = check_docs.check_links([str(doc)])
    assert len(errors) == 1
    assert "#gone" in errors[0]


# --------------------------------------------------- docstring coverage

def test_public_objects_walk(check_docs):
    import ast
    tree = ast.parse(
        '"""Module doc."""\n'
        "def documented():\n"
        '    """Yes."""\n'
        "def bare():\n"
        "    pass\n"
        "def _private():\n"
        "    pass\n"
        "class Thing:\n"
        '    """Doc."""\n'
        "    def method(self):\n"
        "        pass\n"
        "    def _hidden(self):\n"
        "        pass\n")
    objects = dict(check_docs.public_objects(tree, "mod"))
    assert objects == {
        "mod": True,
        "mod.documented": True,
        "mod.bare": False,
        "mod.Thing": True,
        "mod.Thing.method": False,
    }


def test_repo_docstring_coverage_above_floor(check_docs):
    documented, total, missing = check_docs.docstring_coverage()
    assert total > 0
    assert len(missing) == total - documented
    pct = 100.0 * documented / total
    assert pct >= check_docs.DOC_FLOOR


# -------------------------------------------------------------- the gate

def test_docs_gate_passes_on_repo(check_docs, capsys):
    assert check_docs.main([]) == 0
    out = capsys.readouterr().out
    assert "0 broken" in out


def test_docs_gate_fails_on_impossible_floor(check_docs, capsys):
    assert check_docs.main(["--floor", "100"]) == 1
    out = capsys.readouterr().out
    assert "below the 100.0% floor" in out
