"""Unit + property tests for PB constraints and normalization."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pbconstraint import (
    LinearGE,
    PBConstraint,
    at_least_k,
    at_most_k,
    exactly_one,
    normalize_terms,
)

lits = st.integers(min_value=-5, max_value=5).filter(lambda x: x != 0)
terms_strategy = st.lists(
    st.tuples(st.integers(min_value=-6, max_value=6), lits), min_size=1, max_size=5
)


def _eval_terms(terms, bound, assignment):
    total = sum(c for c, l in terms if ((l > 0) == assignment[abs(l)]))
    return total >= bound


@given(terms_strategy, st.integers(min_value=-10, max_value=10))
def test_normalization_preserves_semantics(terms, bound):
    norm, degree = normalize_terms(terms, bound)
    variables = sorted({abs(l) for _, l in terms})
    for values in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, values))
        assert _eval_terms(terms, bound, assignment) == _eval_terms(
            norm, degree, assignment
        ), (terms, bound, norm, degree, assignment)


@given(terms_strategy, st.integers(min_value=-10, max_value=10))
def test_normalized_coefficients_positive(terms, bound):
    norm, _ = normalize_terms(terms, bound)
    assert all(c > 0 for c, _ in norm)
    # No variable appears twice.
    vs = [abs(l) for _, l in norm]
    assert len(vs) == len(set(vs))


def test_normalize_merges_duplicates():
    norm, degree = normalize_terms([(2, 1), (3, 1)], 4)
    assert norm == [(4, 1)]  # saturated at the degree
    assert degree == 4


def test_normalize_cancels_complements():
    # 2*x + 3*~x >= 4  ==  2 + ~x >= 4  ==  ~x >= 2 : unsat after norm
    norm, degree = normalize_terms([(2, 1), (3, -1)], 4)
    constraint = LinearGE(norm, degree)
    assert constraint.is_unsatisfiable


def test_linear_ge_classification():
    assert LinearGE([(1, 1), (1, 2)], 1).is_clause
    assert LinearGE([(1, 1), (1, 2)], 2).is_cardinality
    assert not LinearGE([(2, 1), (1, 2)], 2).is_cardinality
    assert LinearGE([(1, 1)], 0).is_tautology
    assert LinearGE([(1, 1)], 2).is_unsatisfiable


def test_pb_relations_to_geq():
    pb = PBConstraint([(1, 1), (1, 2)], "=", 1)
    geqs = pb.to_geq()
    assert len(geqs) == 2
    assert PBConstraint([(1, 1)], ">=", 1).to_geq()[0].degree == 1


def test_pb_evaluate_each_relation():
    assignment = {1: True, 2: False}
    assert PBConstraint([(1, 1), (1, 2)], ">=", 1).evaluate(assignment)
    assert PBConstraint([(1, 1), (1, 2)], "<=", 1).evaluate(assignment)
    assert PBConstraint([(1, 1), (1, 2)], "=", 1).evaluate(assignment)
    assert not PBConstraint([(1, 1), (1, 2)], "=", 2).evaluate(assignment)


def test_invalid_relation_rejected():
    with pytest.raises(ValueError):
        PBConstraint([(1, 1)], ">", 0)


def test_helpers():
    assert exactly_one([1, 2, 3]).relation == "="
    assert at_most_k([1, 2], 1).relation == "<="
    assert at_least_k([1, 2], 1).relation == ">="


def test_slack():
    c = LinearGE([(2, 1), (1, 2)], 2)
    assert c.slack(lambda l: None) == 1
    assert c.slack(lambda l: False if l == 1 else None) == -1


def test_variables_sorted():
    pb = PBConstraint([(1, 4), (2, -2)], ">=", 1)
    assert pb.variables() == (2, 4)
