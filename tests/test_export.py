"""Instance/encoding export tests."""

import os

from repro.core.io_opb import read_opb
from repro.experiments.export import export_encodings, export_instances
from repro.experiments.instances import get_instance
from repro.graphs.dimacs import read_dimacs_graph


def test_export_instances_roundtrip(tmp_path):
    instances = [get_instance("myciel3"), get_instance("queen5_5")]
    paths = export_instances(str(tmp_path), instances)
    assert len(paths) == 2
    for path, instance in zip(paths, instances):
        assert os.path.exists(path)
        graph = read_dimacs_graph(path)
        assert graph.num_vertices == instance.num_vertices
        assert graph.num_edges == instance.num_edges


def test_export_encodings_roundtrip(tmp_path):
    instance = get_instance("myciel3")
    paths = export_encodings(str(tmp_path), k=4, sbp_kind="nu", instances=[instance])
    assert len(paths) == 1
    assert paths[0].endswith("myciel3.k4.nu.opb")
    formula = read_opb(paths[0])
    # n*K + K variables; NU adds K-1 clauses; n PB constraints survive.
    assert formula.num_vars == 11 * 4 + 4
    assert len(formula.pb_constraints) == 11


def test_export_plain_encoding_name(tmp_path):
    instance = get_instance("myciel3")
    paths = export_encodings(str(tmp_path), k=4, instances=[instance])
    assert paths[0].endswith("myciel3.k4.opb")
