"""Session semantics: many queries, one persistent solver, upward growth.

The acceptance contract of the API redesign: a :class:`repro.api.Session`
answers >= 2 consecutive queries — decision at K, then K-1, then the
budget raised back up — on *one* persistent solver without re-encoding,
and its answers agree with scratch solving across generator families.
"""

import pytest

from repro.api import ChromaticProblem, Pipeline, PipelineConfig, Session, SymmetryConfig
from repro.coloring.sat_pipeline import IncrementalKSearch
from repro.coloring.verify import is_proper
from repro.graphs.generators import (
    book_graph,
    crown_graph,
    gnp_graph,
    kneser_graph,
    mycielski_graph,
    queens_graph,
    wheel_graph,
)
from repro.graphs.graph import Graph
from repro.sat.result import SAT, UNSAT


# ----------------------------------------------------------- solver identity
def test_one_persistent_solver_across_down_and_up_queries():
    """Decision at K, then K-1, then the budget raised back above K —
    all on the same CDCL solver object, no re-encoding."""
    graph = queens_graph(5, 5)  # chi = 5
    session = Session(graph)
    at_5 = session.decide(5)
    solver = session._search.solver  # the one persistent engine
    at_4 = session.decide(4)
    session.raise_budget(7)
    at_7 = session.decide(7)
    at_5_again = session.decide(5)
    assert (at_5.status, at_4.status, at_7.status, at_5_again.status) == \
        (SAT, UNSAT, SAT, SAT)
    assert session.solvers_created == 1
    assert session._search.solver is solver  # same object throughout
    assert session.budget == 7  # horizon grew in place
    assert at_7.solvers_created == 1
    assert is_proper(graph, at_7.coloring)
    assert len(set(at_7.coloring.values())) <= 7
    assert session.queries == [(5, SAT), (4, UNSAT), (7, SAT), (5, SAT)]


def test_growth_adds_color_groups_instead_of_reencoding():
    """Raising the budget must reuse learned state: the solver keeps its
    clause database (clauses only ever grow) and variable count rises by
    exactly the new color groups."""
    graph = mycielski_graph(3)  # 11 vertices, chi = 4
    session = Session(graph)
    session.decide(3)  # encodes at horizon 3
    solver = session._search.solver
    vars_before = solver.num_vars
    session.raise_budget(5)
    assert session._search.solver is solver
    # 2 new colors x (11 vertices + 1 activator) + 1 extension literal.
    assert solver.num_vars == vars_before + 2 * (graph.num_vertices + 1) + 1
    result = session.decide(4)
    assert result.status == SAT and is_proper(graph, result.coloring)
    assert session.solvers_created == 1


def test_session_chromatic_after_decisions_stays_on_one_solver():
    graph = mycielski_graph(4)  # chi = 5
    session = Session(graph)
    assert session.decide(5).status == SAT
    assert session.decide(4).status == UNSAT
    chi = session.chromatic(strategy="binary")
    assert chi.status == "OPTIMAL" and chi.chromatic_number == 5
    assert session.solvers_created == 1
    # Every descent probe below chi is (still) refuted on the shared
    # clause database.
    assert all(status == UNSAT for k, status in chi.queries if k < 5)


# ----------------------------------------------------- agreement with scratch
FAMILIES = [
    ("myciel3", lambda: mycielski_graph(3)),
    ("queens4", lambda: queens_graph(4, 4)),
    ("wheel9", lambda: wheel_graph(9)),
    ("book7", lambda: book_graph(7, 14, seed=5)),
    ("crown8", lambda: crown_graph(8)),
    ("kneser5_2", lambda: kneser_graph(5, 2)),
    ("gnp18", lambda: gnp_graph(18, 0.4, seed=9)),
]


@pytest.mark.parametrize("name,build", FAMILIES)
def test_session_agrees_with_scratch(name, build):
    """Session answers (chromatic + the decision queries around chi)
    match from-scratch solving on every generator family."""
    graph = build()
    scratch = (Pipeline().solve(backend="cdcl-scratch", time_limit=120)
               .run(ChromaticProblem(graph)))
    assert scratch.status == "OPTIMAL", name
    chi = scratch.chromatic_number

    session = Session(graph)
    result = session.chromatic(strategy="linear", time_limit=120)
    assert result.status == "OPTIMAL", name
    assert result.chromatic_number == chi, name
    assert is_proper(graph, result.coloring), name
    # Decisions bracket the chromatic number on the same solver.
    assert session.decide(chi).status == SAT, name
    if chi > 1:
        assert session.decide(chi - 1).status == UNSAT, name
    up = session.decide(chi + 2)
    assert up.status == SAT and len(set(up.coloring.values())) <= chi + 2, name
    assert session.solvers_created == 1, name


def test_session_binary_and_linear_agree():
    graph = gnp_graph(16, 0.5, seed=3)
    chi_linear = Session(graph).chromatic(strategy="linear")
    chi_binary = Session(graph).chromatic(strategy="binary")
    assert chi_linear.status == chi_binary.status == "OPTIMAL"
    assert chi_linear.chromatic_number == chi_binary.chromatic_number


# ----------------------------------------------------------------- behaviour
def test_session_trivial_and_invalid_budgets():
    session = Session(Graph(0))
    assert session.decide(0).status == SAT
    assert session.chromatic().num_colors == 0
    graph_session = Session(mycielski_graph(3))
    assert graph_session.decide(0).status == UNSAT
    with pytest.raises(ValueError, match="positive"):
        graph_session.raise_budget(0)


def test_session_rejects_growth_unsafe_sbp():
    config = PipelineConfig(symmetry=SymmetryConfig(sbp_kind="nu"))
    with pytest.raises(ValueError, match="growth-safe"):
        Session(mycielski_graph(3), config=config)
    # SC pins specific colors; new colors never invalidate them.
    session = Session(
        queens_graph(4, 4), config=PipelineConfig(symmetry=SymmetryConfig(sbp_kind="sc"))
    )
    assert session.decide(5).status == SAT
    assert session.decide(4).status == UNSAT
    assert session.solvers_created == 1


def test_session_progress_and_cancellation():
    events = []
    session = Session(mycielski_graph(3), on_progress=events.append)
    session.decide(3)
    session.raise_budget(5)
    assert any(e.stage == "query" for e in events)
    assert any(e.stage == "grow" for e in events)

    # myciel4's DSATUR bound sits above its clique bound, so the descent
    # has real queries to cancel; a cancelled chromatic search returns
    # the best-so-far (heuristic) answer, flagged.
    cancelling = Session(mycielski_graph(4), cancel=lambda: True)
    result = cancelling.chromatic(strategy="linear")
    assert result.cancelled
    assert result.status in ("FEASIBLE", "UNKNOWN")
    assert result.num_colors is not None  # the DSATUR incumbent survives


def test_permanent_queries_rejected_on_growable_search():
    search = IncrementalKSearch(mycielski_graph(3), 4, growable=True)
    with pytest.raises(ValueError, match="permanent"):
        search.solve_k(3, permanent=True)
    with pytest.raises(ValueError, match="growable=True"):
        IncrementalKSearch(mycielski_graph(3), 4).grow_to(6)
