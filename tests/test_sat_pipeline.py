"""Pure-CNF coloring pipeline tests."""

import pytest

from repro.coloring.sat_pipeline import (
    chromatic_number_sat,
    encode_k_coloring_cnf,
    sat_k_colorable,
)
from repro.graphs.generators import mycielski_graph, queens_graph
from repro.graphs.graph import Graph

K4 = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])


def test_encoding_is_pure_cnf():
    formula, x = encode_k_coloring_cnf(mycielski_graph(3), 4)
    assert not formula.pb_constraints
    assert formula.objective is None
    assert len(x) == 11 * 4


def test_k_colorable_decision():
    status, coloring = sat_k_colorable(K4, 4)
    assert status == "SAT"
    assert K4.is_proper_coloring(coloring)
    status, coloring = sat_k_colorable(K4, 3)
    assert status == "UNSAT" and coloring is None


def test_zero_colors():
    status, _ = sat_k_colorable(K4, 0)
    assert status == "UNSAT"
    status, coloring = sat_k_colorable(Graph(0), 0)
    assert status == "SAT" and coloring == {}


@pytest.mark.parametrize("strategy", ["linear", "binary"])
@pytest.mark.parametrize("amo", ["pairwise", "sequential"])
def test_chromatic_number_myciel3(strategy, amo):
    result = chromatic_number_sat(
        mycielski_graph(3), strategy=strategy, amo_encoding=amo, time_limit=60
    )
    assert result.status == "OPTIMAL"
    assert result.chromatic_number == 4
    assert mycielski_graph(3).is_proper_coloring(result.coloring)


@pytest.mark.parametrize("sbp", ["none", "nu", "sc", "nu+sc"])
def test_cnf_sbps_preserve_answer(sbp):
    result = chromatic_number_sat(
        queens_graph(4, 4), strategy="linear", sbp_kind=sbp, time_limit=60
    )
    assert result.status == "OPTIMAL"
    assert result.chromatic_number == 5


def test_unsupported_sbp_rejected():
    with pytest.raises(ValueError):
        encode_k_coloring_cnf(K4, 3, sbp_kind="ca")
    with pytest.raises(ValueError):
        encode_k_coloring_cnf(K4, 3, amo_encoding="bdd")
    with pytest.raises(ValueError):
        chromatic_number_sat(K4, strategy="ternary")


def test_empty_graph():
    result = chromatic_number_sat(Graph(0))
    assert result.chromatic_number == 0 and result.status == "OPTIMAL"


def test_sat_pipeline_agrees_with_ilp_pipeline():
    from repro.coloring.solve import solve_coloring

    g = queens_graph(4, 4)
    sat_result = chromatic_number_sat(g, sbp_kind="nu", time_limit=60)
    ilp_result = solve_coloring(g, 6, sbp_kind="nu", time_limit=60)
    assert sat_result.chromatic_number == ilp_result.num_colors == 5


def test_sat_calls_counted():
    result = chromatic_number_sat(mycielski_graph(3), time_limit=60)
    assert result.sat_calls >= 1
