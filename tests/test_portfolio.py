"""Differential + structural tests for the portfolio racing backend.

The portfolio's contract mirrors the component pool's: racing several
engines on the same problem NEVER changes answers — the first
conclusive result is exactly what the reference engine
(``cdcl-incremental``) would have produced, because every racer is
sound and complete on the kinds it supports.  The tests here check
that contract differentially, plus the structural pieces: the race
stage record (winner, cancellations, exchanged bounds), first-
conclusive-cancels-the-rest, validation, and the clause-sharing
variant.
"""

import pytest

from repro.api import ChromaticProblem, DecisionProblem, Pipeline
from repro.coloring.verify import is_proper
from repro.experiments.instances import get_instance
from repro.graphs.generators import gnp_graph, mycielski_graph, queens_graph

RACERS = ("cdcl-incremental", "pb-pueblo", "exact-dsatur")


def race(problem, **solve_kwargs):
    solve_kwargs.setdefault("time_limit", 120)
    return (
        Pipeline()
        .solve(backend="portfolio", **solve_kwargs)
        .run(problem)
    )


def reference(problem):
    return (
        Pipeline()
        .solve(backend="cdcl-incremental", time_limit=120)
        .run(problem)
    )


def race_stage(result):
    stage = next((s for s in result.stages if s.name == "race"), None)
    assert stage is not None, "portfolio result carries no race stage"
    return stage


@pytest.mark.parametrize(
    "graph",
    [
        get_instance("myciel3").graph(),
        get_instance("myciel4").graph(),
        queens_graph(5, 5),
        gnp_graph(18, 0.4, seed=7),
    ],
    ids=["myciel3", "myciel4", "queen5_5", "gnp18"],
)
def test_portfolio_matches_reference_chromatic(graph):
    """The differential property: racing changes wall-clock, never answers."""
    raced = race(ChromaticProblem(graph))
    ref = reference(ChromaticProblem(graph))
    assert ref.status == "OPTIMAL"
    assert raced.status == "OPTIMAL"
    assert raced.chromatic_number == ref.chromatic_number
    assert raced.coloring is not None
    assert is_proper(graph, raced.coloring)
    assert len(set(raced.coloring.values())) == raced.chromatic_number


def test_portfolio_first_conclusive_cancels_the_rest():
    result = race(ChromaticProblem(get_instance("myciel4").graph()))
    stage = race_stage(result)
    assert tuple(stage.details["racers"]) == RACERS
    assert stage.details["winner"] in RACERS
    # Exactly the losers get cancelled: the winner's answer is in hand,
    # so nobody runs to their own deadline.
    assert stage.details["cancelled"] == len(RACERS) - 1
    # Bounds met at the optimum: the exchanged ub/lb close the window.
    assert stage.details["ub"] == stage.details["lb"] == 5
    assert result.upper_bound == result.lower_bound == 5


@pytest.mark.parametrize("k,expected", [(4, "UNSAT"), (5, "SAT")])
def test_portfolio_decision_queries(k, expected):
    graph = get_instance("myciel4").graph()  # chromatic number 5
    raced = race(DecisionProblem(graph, k))
    assert raced.status == expected
    if expected == "SAT":
        assert raced.coloring is not None
        assert is_proper(graph, raced.coloring)
        assert len(set(raced.coloring.values())) <= k


def test_portfolio_clause_sharing_matches_reference():
    """CDCL-vs-CDCL racing with learned-clause exchange stays sound:
    the descents are assumption-only, so every exported clause is
    implied by the shared formula."""
    graph = get_instance("myciel4").graph()
    raced = race(
        ChromaticProblem(graph),
        racers=("cdcl-incremental:linear", "cdcl-incremental:binary",
                "exact-dsatur"),
        share_clauses=True,
    )
    ref = reference(ChromaticProblem(graph))
    assert raced.status == "OPTIMAL"
    assert raced.chromatic_number == ref.chromatic_number == 5
    assert is_proper(graph, raced.coloring)


def test_portfolio_cancellation_returns_cancelled_result():
    result = (
        Pipeline()
        .solve(backend="portfolio", time_limit=120)
        .run(ChromaticProblem(mycielski_graph(4)), cancel=lambda: True)
    )
    assert result.cancelled
    assert result.status in ("FEASIBLE", "UNKNOWN")


def test_portfolio_rejects_degenerate_lineups():
    with pytest.raises(ValueError, match="at least 2"):
        race(ChromaticProblem(mycielski_graph(3)),
             racers=("cdcl-incremental",))
    with pytest.raises(ValueError, match="itself"):
        race(ChromaticProblem(mycielski_graph(3)),
             racers=("portfolio", "cdcl-incremental"))


def test_race_alias_resolves_to_portfolio():
    result = (
        Pipeline()
        .solve(backend="race", time_limit=120)
        .run(ChromaticProblem(get_instance("myciel3").graph()))
    )
    assert result.status == "OPTIMAL"
    assert result.chromatic_number == 4
    assert result.provenance.backend == "portfolio"
