"""Formula -> colored graph construction tests."""

from repro.core.formula import Formula
from repro.core.literals import lit_index
from repro.symmetry.detect import detect_symmetries
from repro.symmetry.formula_graph import (
    build_formula_graph,
    formula_perm_is_consistent,
)
from repro.symmetry.permutation import Permutation


def test_vertex_layout():
    f = Formula(num_vars=2)
    f.add_clause([1, 2])
    fg = build_formula_graph(f)
    # 4 literal vertices + 2 variable vertices, binary clause = direct edge.
    assert fg.num_literal_vertices == 4
    assert fg.graph.num_vertices == 6
    assert fg.graph.has_edge(lit_index(1), lit_index(2))


def test_long_clause_gets_vertex():
    f = Formula(num_vars=3)
    f.add_clause([1, 2, 3])
    fg = build_formula_graph(f)
    assert fg.graph.num_vertices == 6 + 3 + 1  # literals + vars + clause node


def test_unit_clause_marker():
    f = Formula(num_vars=1)
    f.add_clause([1])
    fg = build_formula_graph(f)
    assert fg.graph.num_vertices == 2 + 1 + 1


def test_pb_constraints_get_signature_colors():
    f = Formula(num_vars=4)
    f.add_exactly_one([1, 2])
    f.add_exactly_one([3, 4])
    f.add_at_most([1, 3], 1)
    fg = build_formula_graph(f)
    colors = fg.colors
    pb_nodes = [v for v in range(fg.num_literal_vertices + 4, fg.graph.num_vertices)]
    pb_colors = [colors[v] for v in pb_nodes]
    # The two exactly-one constraints share a color; the at-most differs.
    assert len(set(pb_colors)) == 2


def test_weighted_pb_creates_weight_nodes():
    f = Formula(num_vars=2)
    f.add_pb([(2, 1), (1, 2)], ">=", 2)
    fg = build_formula_graph(f)
    # literals(4) + vars(2) + constraint(1) + two weight nodes(2)
    assert fg.graph.num_vertices == 9


def test_objective_represented():
    f = Formula(num_vars=2)
    f.add_clause([1, 2])
    g_no_obj = build_formula_graph(f).graph.num_vertices
    f.set_objective([(1, 1), (1, 2)])
    g_obj = build_formula_graph(f).graph.num_vertices
    assert g_obj == g_no_obj + 1


def test_consistency_check():
    ok = Permutation([2, 3, 0, 1])  # swaps var1 and var2 with phases aligned
    assert formula_perm_is_consistent(ok)
    bad = Permutation([3, 2, 0, 1])  # maps pos1->neg2 but neg1->pos2 swapped wrong
    assert formula_perm_is_consistent(bad)  # phase-shift swap is consistent
    broken = Permutation([2, 1, 0, 3])  # pos1->pos2 but neg1 stays: inconsistent
    assert not formula_perm_is_consistent(broken)


def test_detect_finds_variable_swap():
    # x1 and x2 are interchangeable in (x1 | x2).
    f = Formula(num_vars=2)
    f.add_clause([1, 2])
    report = detect_symmetries(f)
    assert report.order == 2
    swap = Permutation([2, 3, 0, 1])
    assert any(g == swap for g in report.generators)


def test_detect_phase_shift():
    # x <-> ~x symmetry of the formula (x | y)(~x | y).
    f = Formula(num_vars=2)
    f.add_clause([1, 2])
    f.add_clause([-1, 2])
    report = detect_symmetries(f)
    assert report.order == 2  # flip x1's phase
    flip = Permutation([1, 0, 2, 3])
    assert any(g == flip for g in report.generators)


def test_detect_no_symmetries():
    f = Formula(num_vars=2)
    f.add_clause([1])
    f.add_clause([1, 2])
    report = detect_symmetries(f)
    assert report.order == 1
    assert report.num_generators == 0


def test_detected_symmetries_preserve_models():
    # Every detected generator must map models to models.
    f = Formula(num_vars=4)
    f.add_exactly_one([1, 2, 3, 4])
    report = detect_symmetries(f)
    assert report.order == 24  # all four variables interchangeable
    from repro.core.literals import index_lit

    model = {1: True, 2: False, 3: False, 4: False}
    for gen in report.generators:
        image = {}
        for v in range(1, 5):
            lit = v if model[v] else -v
            img = index_lit(gen(lit_index(lit)))
            image[abs(img)] = img > 0
        assert f.evaluate(image)
