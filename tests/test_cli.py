"""CLI tests (python -m repro and python -m repro.experiments)."""

import subprocess
import sys

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as experiments_main
from repro.graphs.dimacs import write_dimacs_graph
from repro.graphs.generators import mycielski_graph


@pytest.fixture()
def col_file(tmp_path):
    path = str(tmp_path / "myciel3.col")
    write_dimacs_graph(mycielski_graph(3), path)
    return path


def test_stats_command(capsys, col_file):
    assert repro_main(["stats", col_file]) == 0
    out = capsys.readouterr().out
    assert "vertices:    11" in out
    assert "edges:       20" in out


def test_color_command(capsys, col_file):
    code = repro_main(["color", col_file, "--sbp", "nu+sc", "--time-limit", "60"])
    out = capsys.readouterr().out
    assert code == 0
    assert "OPTIMAL" in out
    assert "colors used:      4" in out


def test_color_with_instance_dependent(capsys, col_file):
    code = repro_main([
        "color", col_file, "--instance-dependent", "--k", "5",
        "--time-limit", "60", "--show-coloring",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "symmetry gens:" in out
    assert "vertex 1:" in out


def test_color_pipeline_flags(capsys, col_file):
    code = repro_main(["color", col_file, "--time-limit", "60"])
    out = capsys.readouterr().out
    assert code == 0
    assert "kernel:" in out
    assert "preprocessing:" in out
    assert "colors used:      4" in out

    code = repro_main([
        "color", col_file, "--no-preprocess", "--no-reduce", "--time-limit", "60",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "kernel:" not in out
    assert "preprocessing:" not in out
    assert "colors used:      4" in out


def test_color_unsat_budget(capsys, col_file):
    code = repro_main(["color", col_file, "--k", "3", "--time-limit", "60"])
    out = capsys.readouterr().out
    assert code == 0  # UNSAT is a definitive (solved) outcome
    assert "UNSAT" in out


def test_detect_command(capsys, col_file):
    assert repro_main(["detect", col_file, "--k", "4"]) == 0
    out = capsys.readouterr().out
    assert "#S =" in out
    assert "generators:" in out


def test_detect_with_sbp(capsys, col_file):
    assert repro_main(["detect", col_file, "--k", "4", "--sbp", "li"]) == 0
    out = capsys.readouterr().out
    assert "#S = 1" in out  # LI kills every symmetry


def test_experiments_figure1(capsys):
    assert experiments_main(["figure1"]) == 0
    out = capsys.readouterr().out
    assert "48" in out and "12" in out


def test_experiments_unknown_scale():
    with pytest.raises(KeyError):
        experiments_main(["table1", "--scale", "galactic"])


def test_module_entrypoint_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True, timeout=60,
    )
    assert result.returncode == 0
    assert "color" in result.stdout


def test_chromatic_command(capsys, col_file):
    code = repro_main(["chromatic", col_file, "--time-limit", "60"])
    out = capsys.readouterr().out
    assert code == 0
    assert "OPTIMAL" in out
    assert "chromatic number: 4" in out
    assert "incremental (1 persistent solver)" in out
    assert "K queries:" in out


def test_chromatic_command_scratch_mode(capsys, col_file):
    code = repro_main([
        "chromatic", col_file, "--no-incremental", "--strategy", "binary",
        "--time-limit", "60",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "chromatic number: 4" in out
    assert "scratch" in out


def test_color_incremental_flag_accepted(capsys, col_file):
    code = repro_main([
        "color", col_file, "--no-incremental", "--time-limit", "60",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "colors used:      4" in out
