"""The public API surface: everything __all__ promises must exist.

Guards against re-export drift as modules evolve — a missing name in an
``__init__`` breaks downstream users even when all internal tests pass.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.sat",
    "repro.pb",
    "repro.ilp",
    "repro.graphs",
    "repro.graphs.generators",
    "repro.symmetry",
    "repro.sbp",
    "repro.coloring",
    "repro.api",
    "repro.experiments",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} should declare __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_readme_quickstart_runs():
    # The exact snippet from README.md must work.
    from repro.api import ChromaticProblem, Pipeline
    from repro.graphs import queens_graph

    result = (
        Pipeline()
        .symmetry(sbp_kind="nu+sc")
        .solve(backend="pb-pbs2", time_limit=120)
        .run(ChromaticProblem(queens_graph(5, 5)))
    )
    assert result.status == "OPTIMAL" and result.chromatic_number == 5


def test_docstrings_on_public_functions():
    import inspect

    undocumented = []
    for name in PACKAGES:
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{name}.{symbol}")
    assert not undocumented, f"missing docstrings: {undocumented}"
