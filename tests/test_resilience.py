"""The chaos suite: deadlines, retries, the WAL, and injected faults.

The resilience layer's contract, asserted here across every execution
tier (Pipeline / Session / component pool / batch runner):

* **degradation weakens optimality, never correctness** — a budget that
  expires mid-descent yields ``FEASIBLE`` with a *verified* best-so-far
  coloring and honest bounds, flagged ``degraded``;
* **faults never wedge the runner and never produce a wrong answer** —
  raise-in-stage, sleep-in-query, worker kill and clock skew each end
  in a finalized record whose coloring (if any) is proper;
* **crash-safe resume is exact** — a batch resumed from a torn WAL
  replays completed records byte-identically and re-solves only the
  rest;
* **everything is deterministic** — retry schedules, fault plans and
  the seeded chaos scenario are pure functions of their seeds.

``test_chaos_smoke_seeded_scenario`` is the ``make chaos-smoke`` entry
point: ``CHAOS_SEED`` picks the fault scenario (fixed in PRs, fresh
nightly — mirroring the fuzz-smoke job), so any nightly failure replays
locally from the seed alone.
"""

import json
import os
import shutil

import pytest

from repro.api import (
    BudgetedOptimize,
    ChromaticProblem,
    ComponentSessionPool,
    Pipeline,
    Session,
)
from repro.batch import solve_many
from repro.coloring.verify import is_proper
from repro.graphs.generators import mycielski_graph, queens_graph
from repro.graphs.graph import disjoint_union
from repro.resilience import (
    Deadline,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    clear_faults,
    corrupt_tail,
    install_faults,
    read_wal,
    reset_clock,
    seeded_plan,
    set_clock,
)
from repro.resilience.faults import FAULTS_ENV

CHAOS_PLUGIN = "repro.resilience.chaos_plugin"

#: Record fields that legitimately differ between two runs of the same
#: task (wall-clock measurements); everything else must be identical.
VOLATILE_KEYS = {"seconds", "stage_seconds", "solve_seconds", "wall_seconds"}


@pytest.fixture(autouse=True)
def _pristine_harness():
    """Every test starts and ends with no plan and the real clock."""
    clear_faults()
    yield
    clear_faults()
    os.environ.pop(FAULTS_ENV, None)


# ==========================================================================
# Deadline
# ==========================================================================


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    fake = FakeClock()
    set_clock(fake)
    yield fake
    reset_clock()


def test_deadline_unbounded_and_expired_construction(clock):
    unbounded = Deadline.after(None)
    assert not unbounded.bounded
    assert unbounded.remaining() is None
    assert not unbounded.expired()
    # A non-positive allotment is a well-formed, already-expired deadline.
    spent = Deadline.after(-3.0)
    assert spent.expired() and spent.remaining() == 0.0


def test_deadline_remaining_tracks_the_clock(clock):
    deadline = Deadline.after(10.0)
    assert deadline.remaining() == 10.0
    clock.now += 4.0
    assert deadline.remaining() == 6.0
    assert not deadline.expired()
    clock.now += 6.0
    assert deadline.expired() and deadline.remaining() == 0.0
    clock.now += 100.0
    assert deadline.remaining() == 0.0  # clamped, never negative


def test_deadline_child_never_outlives_parent(clock):
    parent = Deadline.after(10.0)
    assert parent.child(None).remaining() == 10.0
    assert parent.child(3.0).remaining() == 3.0
    assert parent.child(100.0).remaining() == 10.0  # clamped to parent
    assert parent.child(-1.0).expired()
    assert Deadline.unbounded().child(5.0).remaining() == 5.0


def test_deadline_split_is_weighted_with_a_floor_slice(clock):
    deadline = Deadline.after(8.0)
    a, b, c = deadline.split([6.0, 1.0, 1.0], floor_fraction=0.25)
    assert a.remaining() == 6.0  # 6/8 of the budget
    assert b.remaining() == 2.0  # floored up from 1.0 to 8 * 0.25
    assert c.remaining() == 2.0
    # Zero total weight: everything floors.
    zeros = deadline.split([0.0, 0.0], floor_fraction=0.25)
    assert [d.remaining() for d in zeros] == [2.0, 2.0]
    # Unbounded parent yields unbounded children.
    assert all(
        not d.bounded for d in Deadline.unbounded().split([1.0, 2.0])
    )
    with pytest.raises(ValueError, match="floor_fraction"):
        deadline.split([1.0], floor_fraction=1.5)


def test_deadline_share_lets_unused_budget_flow_forward(clock):
    deadline = Deadline.after(10.0)
    # First of two equal sequential consumers gets half...
    assert deadline.share(1.0, 2.0) == 5.0
    # ...but if it finishes instantly, the next call sees the full
    # remainder (weights recomputed over the consumers left).
    assert deadline.share(1.0, 1.0) == 10.0
    assert deadline.share(1.0, 10.0, floor_fraction=0.3) == 3.0  # floored
    assert deadline.share(5.0, 2.0) == 10.0  # capped at remaining
    assert Deadline.unbounded().share(1.0, 2.0) is None


def test_clock_skew_expires_deadlines_without_sleeping():
    from repro.resilience import fire

    install_faults(
        FaultPlan([FaultSpec(point="solver", kind="skew", at=1, seconds=120.0)])
    )
    deadline = Deadline.after(60.0)
    assert not deadline.expired()
    fire("solver")  # the skew fault replaces the module clock
    assert deadline.expired()
    clear_faults()  # undoes the seam: the real clock comes back
    assert not deadline.expired()


# ==========================================================================
# RetryPolicy
# ==========================================================================


def test_retry_schedule_is_deterministic_and_bounded():
    policy = RetryPolicy(max_retries=4, base_delay=0.5, backoff=3.0,
                         max_delay=5.0, jitter=0.1, seed=7)
    schedule = policy.schedule()
    assert schedule == RetryPolicy(
        max_retries=4, base_delay=0.5, backoff=3.0, max_delay=5.0,
        jitter=0.1, seed=7,
    ).schedule()
    assert len(schedule) == 4
    for attempt, delay in enumerate(schedule, start=1):
        raw = min(0.5 * 3.0 ** (attempt - 1), 5.0)
        assert raw * 0.9 <= delay <= raw * 1.1
    # A different seed jitters differently; zero jitter is exact.
    assert schedule != RetryPolicy(
        max_retries=4, base_delay=0.5, backoff=3.0, max_delay=5.0,
        jitter=0.1, seed=8,
    ).schedule()
    exact = RetryPolicy(max_retries=3, base_delay=1.0, backoff=2.0,
                        max_delay=30.0, jitter=0.0)
    assert exact.schedule() == [1.0, 2.0, 4.0]
    assert RetryPolicy(base_delay=0.0).delay(1) == 0.0


def test_retry_classification_transient_vs_fatal():
    policy = RetryPolicy(max_retries=2)
    assert policy.classify("died") == "transient"
    for outcome in ("timeout", "error", "inconclusive", "ok"):
        assert policy.classify(outcome) == "fatal"
    assert policy.should_retry("died", retries_used=0)
    assert policy.should_retry("died", retries_used=1)
    assert not policy.should_retry("died", retries_used=2)  # budget spent
    assert not policy.should_retry("timeout", retries_used=0)  # deterministic
    assert policy.should_promote("timeout")
    assert policy.should_promote("error")
    assert policy.should_promote("died")
    assert not policy.should_promote("ok")
    assert policy.classify_exception(BrokenPipeError()) == "transient"
    assert policy.classify_exception(ValueError()) == "fatal"


def test_retry_policy_validation():
    with pytest.raises(ValueError, match="max_retries"):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError, match="backoff"):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ValueError, match="jitter"):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError, match="1-based"):
        RetryPolicy().delay(0)


# ==========================================================================
# WAL
# ==========================================================================


def test_wal_round_trip_and_torn_tail(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    records = [{"index": i, "value": "x" * 20} for i in range(3)]
    with open(path, "w") as fh:
        from repro.resilience import append_record

        for record in records:
            append_record(fh, record)
    assert read_wal(path) == (records, 0)
    corrupt_tail(path, cut_bytes=7)
    recovered, dropped = read_wal(path)
    assert recovered == records[:2]
    assert dropped == 1


def test_wal_drops_everything_after_the_first_bad_line(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    with open(path, "w") as fh:
        fh.write(json.dumps({"index": 0}) + "\n")
        fh.write("NOT JSON\n")
        fh.write(json.dumps({"index": 2}) + "\n")
        fh.write(json.dumps(["not", "a", "dict"]) + "\n")
    records, dropped = read_wal(path)
    assert records == [{"index": 0}]
    assert dropped == 3  # the garbled line and everything after it
    empty = str(tmp_path / "empty.jsonl")
    open(empty, "w").close()
    assert read_wal(empty) == ([], 0)


# ==========================================================================
# Anytime degradation across tiers
# ==========================================================================


def _assert_degraded_but_verified(result, graph):
    assert result.status == "FEASIBLE"
    assert result.degraded
    assert result.feasible and result.is_sat and not result.solved
    assert result.coloring is not None
    assert is_proper(graph, result.coloring)
    assert result.upper_bound == result.num_colors
    if result.lower_bound is not None:
        assert result.lower_bound <= result.num_colors


@pytest.mark.parametrize("backend", ["cdcl-incremental", "cdcl-scratch"])
def test_pipeline_budget_expiry_degrades_to_verified_feasible(backend):
    graph = mycielski_graph(4)
    result = (Pipeline().solve(backend=backend, time_limit=1e-9)
              .run(ChromaticProblem(graph)))
    _assert_degraded_but_verified(result, graph)


def test_session_budget_expiry_degrades_to_verified_feasible():
    graph = mycielski_graph(4)
    result = Session(graph).chromatic(time_limit=1e-9)
    _assert_degraded_but_verified(result, graph)


def test_pool_budget_expiry_degrades_to_verified_feasible():
    graph = disjoint_union(mycielski_graph(4), mycielski_graph(3))
    with ComponentSessionPool(graph) as pool:
        result = pool.chromatic(time_limit=1e-9)
    _assert_degraded_but_verified(result, graph)


def test_prep_budget_cap_skips_optional_stages_not_the_solve():
    graph = queens_graph(5, 5)
    result = (Pipeline().symmetry(sbp_kind="nu").budget(prep_fraction=0.0)
              .solve(backend="pb-pbs2", time_limit=120)
              .run(BudgetedOptimize(graph, 7)))
    assert result.status == "OPTIMAL" and result.num_colors == 5
    skipped = {s.name for s in result.stages if s.details.get("skipped") == "budget"}
    assert {"sbp", "simplify"} <= skipped
    # With budget to spare the same stages run.
    full = (Pipeline().symmetry(sbp_kind="nu")
            .solve(backend="pb-pbs2", time_limit=120)
            .run(BudgetedOptimize(graph, 7)))
    assert full.status == "OPTIMAL" and full.num_colors == 5
    assert not any(s.details.get("skipped") for s in full.stages)


# ==========================================================================
# Fault plans
# ==========================================================================


def test_fault_spec_validation_and_env_round_trip():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(point="solver", kind="explode")
    with pytest.raises(ValueError, match="1-based"):
        FaultSpec(point="solver", kind="raise", at=0)
    plan = FaultPlan([
        FaultSpec(point="attempt", kind="kill", match="cdcl"),
        FaultSpec(point="solver", kind="sleep", at=2, seconds=0.5),
    ])
    again = FaultPlan.from_env(plan.to_env())
    assert again.specs == plan.specs
    assert again.to_env() == plan.to_env()


def test_fault_fires_exactly_once_on_the_nth_matching_hit():
    plan = FaultPlan([FaultSpec(point="solver", kind="raise", at=2)])
    plan.fire("solver")  # hit 1: armed, silent
    plan.fire("stage:solve")  # different point: not a hit
    with pytest.raises(FaultInjected):
        plan.fire("solver")  # hit 2: fires
    plan.fire("solver")  # hit 3: spent, silent
    matched = FaultPlan([FaultSpec(point="attempt", kind="raise", match="cdcl")])
    matched.fire("attempt", "exact-dsatur")  # filtered out by match
    with pytest.raises(FaultInjected):
        matched.fire("attempt", "cdcl-incremental")


def test_seeded_plan_is_a_pure_function_of_the_seed():
    for seed in range(20):
        assert seeded_plan(seed).to_env() == seeded_plan(seed).to_env()
    # The scenario space is actually explored.
    kinds = {spec.kind for seed in range(40) for spec in seeded_plan(seed).specs}
    assert kinds == {"raise", "sleep", "kill", "skew"}


# ==========================================================================
# Fault x tier matrix (through the batch runner: faults must finalize a
# record, never wedge the fleet, never yield an unverified coloring)
# ==========================================================================


def test_fault_raise_in_stage_promotes_to_fallback():
    install_faults(FaultPlan([FaultSpec(point="stage:solve", kind="raise")]))
    report = solve_many(
        [{"graph": "myciel3", "fallback": ["exact-dsatur"]}], jobs=0,
        include_colorings=True,
    )
    record = report.records[0]
    assert [a["outcome"] for a in record["attempts"]] == ["error", "ok"]
    assert record["status"] == "OPTIMAL" and record["num_colors"] == 4
    assert record["backend"] == "exact-dsatur"
    coloring = {int(v): c for v, c in record["coloring"].items()}
    assert is_proper(mycielski_graph(3), coloring)


def test_fault_sleep_in_query_times_out_with_verified_bound():
    install_faults(
        FaultPlan([FaultSpec(point="solver", kind="sleep", at=1, seconds=0.5)])
    )
    report = solve_many(
        [{"graph": "myciel4"}], jobs=0, task_timeout=0.2,
        include_colorings=True,
    )
    record = report.records[0]
    assert record["outcome"] == "timeout"
    assert record["status"] == "FEASIBLE" and record["degraded"] is True
    assert record["num_colors"] >= 5
    coloring = {int(v): c for v, c in record["coloring"].items()}
    assert is_proper(mycielski_graph(4), coloring)


def test_fault_clock_skew_degrades_instead_of_lying():
    install_faults(
        FaultPlan([FaultSpec(point="solver", kind="skew", at=1, seconds=1000.0)])
    )
    report = solve_many(
        [{"graph": "myciel4"}], jobs=0, task_timeout=30.0,
        include_colorings=True,
    )
    record = report.records[0]
    assert record["outcome"] == "timeout"
    assert record["status"] == "FEASIBLE" and record["degraded"] is True
    coloring = {int(v): c for v, c in record["coloring"].items()}
    assert is_proper(mycielski_graph(4), coloring)


def test_fault_worker_kill_retries_then_falls_back():
    # Hit counters are per-process: a fresh worker re-arms the plan, so
    # the match filter (backend name) is what lets the fallback through.
    plan = FaultPlan([FaultSpec(point="attempt", kind="kill", match="cdcl")])
    os.environ[FAULTS_ENV] = plan.to_env()
    report = solve_many(
        [{"graph": "myciel3", "fallback": ["exact-dsatur"]}],
        jobs=1, retries=1, plugins=[CHAOS_PLUGIN], include_colorings=True,
    )
    record = report.records[0]
    assert [a["outcome"] for a in record["attempts"]] == ["died", "died", "ok"]
    assert record["status"] == "OPTIMAL" and record["num_colors"] == 4
    assert record["backend"] == "exact-dsatur"
    coloring = {int(v): c for v, c in record["coloring"].items()}
    assert is_proper(mycielski_graph(3), coloring)


def test_fault_clock_skew_in_pool_workers_respects_parent_budget():
    """Deadline fairness under process fan-out: each worker re-creates
    its child deadline from the parent's split, so a clock skewed
    *inside* a worker (the plan rides ``REPRO_FAULTS`` into every
    worker) can only shrink that worker's view of its slice — the pool
    still finishes inside the parent budget and every answer stays a
    verified coloring."""
    import time as time_mod

    plan = FaultPlan(
        [FaultSpec(point="solver", kind="skew", at=1, seconds=1000.0)]
    )
    os.environ[FAULTS_ENV] = plan.to_env()
    graph = disjoint_union(
        mycielski_graph(3), mycielski_graph(4), queens_graph(4, 4)
    )
    t0 = time_mod.monotonic()
    result = (
        Pipeline()
        .solve(backend="cdcl-incremental", time_limit=20, pool_jobs=3)
        .run(ChromaticProblem(graph))
    )
    # Far under the 20s budget: the skew expires worker deadlines early
    # instead of extending them past the parent's.
    assert time_mod.monotonic() - t0 < 15.0
    assert result.status in ("OPTIMAL", "FEASIBLE")
    if result.status == "FEASIBLE":
        assert result.degraded
    assert result.coloring is not None
    assert is_proper(graph, result.coloring)
    assert result.num_colors >= 5  # honest: never undercuts myciel4's chi


def test_fault_racer_kill_mid_race_still_answers():
    """A racer SIGKILLed at its entry point (and again on its one
    retry — plan counters are per-process) drops out of the race; the
    survivors still deliver the proved optimum."""
    plan = FaultPlan([FaultSpec(point="racer", kind="kill", match="cdcl")])
    os.environ[FAULTS_ENV] = plan.to_env()
    graph = mycielski_graph(4)
    result = (
        Pipeline()
        .solve(backend="portfolio", time_limit=60)
        .run(ChromaticProblem(graph))
    )
    assert result.status == "OPTIMAL"
    assert result.chromatic_number == 5
    assert is_proper(graph, result.coloring)
    stage = next(s for s in result.stages if s.name == "race")
    assert stage.details["winner"] in ("pb-pueblo", "exact-dsatur")


# ==========================================================================
# Crash-safe resume
# ==========================================================================


def _scrub(value):
    if isinstance(value, dict):
        return {k: _scrub(v) for k, v in value.items() if k not in VOLATILE_KEYS}
    if isinstance(value, list):
        return [_scrub(v) for v in value]
    return value


def test_resume_from_torn_wal_equals_uninterrupted_run(tmp_path):
    tasks = [{"graph": "myciel3"}, {"graph": "myciel4"}, {"graph": "queen5_5"}]
    full = str(tmp_path / "full.jsonl")
    solve_many(tasks, jobs=0, jsonl_path=full)
    full_lines = open(full).read().splitlines()
    assert len(full_lines) == 4  # 3 records + summary

    # Crash after two records: keep them, tear the third mid-line.
    partial = str(tmp_path / "partial.jsonl")
    shutil.copy(full, partial)
    with open(partial, "w") as fh:
        fh.write("\n".join(full_lines[:3]))  # third line unterminated
    corrupt_tail(partial, cut_bytes=9)

    records, dropped = read_wal(partial)
    assert dropped == 1 and len(records) == 2
    resumed = str(tmp_path / "resumed.jsonl")
    solve_many(tasks, jobs=0, jsonl_path=resumed, resume_records=records)
    resumed_lines = open(resumed).read().splitlines()
    # Replayed records are byte-identical; the re-solved record and the
    # summary agree modulo wall-clock fields.
    assert resumed_lines[:2] == full_lines[:2]
    assert [_scrub(json.loads(line)) for line in resumed_lines] == [
        _scrub(json.loads(line)) for line in full_lines
    ]


def test_resume_ignores_records_from_a_different_manifest():
    # A record that does not name this manifest's task at that index is
    # dropped and the task re-runs — resuming against the wrong WAL can
    # waste work but never fabricate an answer.
    report = solve_many(
        [{"graph": "myciel3"}], jobs=0,
        resume_records=[
            {"index": 0, "task": "somethingelse", "status": "ERROR"},
            {"index": 99, "task": "myciel3", "status": "ERROR"},
            {"index": "zero", "task": "myciel3", "status": "ERROR"},
        ],
    )
    record = report.records[0]
    assert record["status"] == "OPTIMAL" and record["num_colors"] == 4


def test_cli_resume_flag_end_to_end(tmp_path, capsys):
    from repro.__main__ import main as repro_main

    manifest = tmp_path / "m.json"
    manifest.write_text(json.dumps(
        {"tasks": [{"graph": "myciel3"}, {"graph": "queen5_5"}]}
    ))
    out = str(tmp_path / "out.jsonl")
    assert repro_main(["batch", str(manifest), "--out", out, "--quiet"]) == 0
    lines = open(out).read().splitlines()
    # Crash mid-second-record, resume in place.
    with open(out, "w") as fh:
        fh.write(lines[0] + "\n" + lines[1][:25])
    assert repro_main(
        ["batch", str(manifest), "--out", out, "--resume", out]
    ) == 0
    resumed = open(out).read().splitlines()
    assert resumed[0] == lines[0]
    assert _scrub(json.loads(resumed[1])) == _scrub(json.loads(lines[1]))
    err = capsys.readouterr().err
    assert "1 torn/corrupt line(s) dropped" in err


# ==========================================================================
# The seeded chaos smoke (the `make chaos-smoke` entry point)
# ==========================================================================

_EXPECTED_CHI = {"myciel3": 4, "queen5_5": 5}
_GRAPHS = {"myciel3": mycielski_graph(3), "queen5_5": queens_graph(5, 5)}


def test_chaos_smoke_seeded_scenario():
    """One seeded fault scenario against a small fleet: whatever the
    fault does, every record finalizes, no coloring is improper, and no
    reported chromatic number undercuts the true one."""
    seed = int(os.environ.get("CHAOS_SEED", "0"))
    plan = seeded_plan(seed)
    tasks = [
        {"graph": name, "fallback": ["exact-dsatur"]} for name in _GRAPHS
    ]
    races = any(spec.point == "racer" for spec in plan.specs)
    kills = any(spec.kind == "kill" for spec in plan.specs)
    if races:
        # Worker-kill-during-race: the plan reaches each racer process
        # through the environment; losing a racer must not change
        # answers (the survivors race on).
        os.environ[FAULTS_ENV] = plan.to_env()
        for name, graph in _GRAPHS.items():
            result = (
                Pipeline()
                .solve(backend="portfolio", time_limit=30)
                .run(ChromaticProblem(graph))
            )
            assert result.status == "OPTIMAL"
            assert result.chromatic_number == _EXPECTED_CHI[name]
            assert is_proper(graph, result.coloring)
        return
    if kills:
        # Worker kills need real worker processes; the plan reaches
        # them through the environment + the chaos plugin import hook.
        os.environ[FAULTS_ENV] = plan.to_env()
        report = solve_many(
            tasks, jobs=1, retries=1, task_timeout=10.0,
            plugins=[CHAOS_PLUGIN], include_colorings=True,
        )
    else:
        install_faults(plan)
        report = solve_many(
            tasks, jobs=0, retries=1, task_timeout=5.0,
            include_colorings=True,
        )

    assert len(report.records) == len(tasks)
    for record in report.records:
        name = record["task"]
        chi = _EXPECTED_CHI[name]
        assert record["outcome"] in ("ok", "timeout", "error", "died")
        if record["status"] == "OPTIMAL":
            assert record["num_colors"] == chi
        elif record["status"] == "FEASIBLE":
            assert record["degraded"] is True
            assert record["num_colors"] >= chi
        if record.get("coloring"):
            coloring = {int(v): c for v, c in record["coloring"].items()}
            assert is_proper(_GRAPHS[name], coloring)
            assert len(set(coloring.values())) == record["num_colors"]
    summary = report.summary
    assert sum(summary["outcomes"].values()) == len(tasks)
