"""Canonical labeling and isomorphism tests."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import mycielski_graph, queens_graph
from repro.graphs.graph import Graph
from repro.symmetry.canonical import (
    are_isomorphic,
    canonical_form,
    canonical_labeling,
    isomorphism_mapping,
)


def _random_graph(n, seed):
    rng = random.Random(seed)
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.5:
                g.add_edge(u, v)
    return g


def _shuffled(graph, seed):
    rng = random.Random(seed)
    perm = list(range(graph.num_vertices))
    rng.shuffle(perm)
    return graph.relabel(perm)


def test_canonical_form_invariant_under_relabeling():
    for seed in range(10):
        g = _random_graph(7, seed)
        h = _shuffled(g, seed + 100)
        assert canonical_form(g) == canonical_form(h), seed


def test_non_isomorphic_distinguished():
    path = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    star = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
    assert canonical_form(path) != canonical_form(star)
    assert not are_isomorphic(path, star)


def test_are_isomorphic_positive():
    g = queens_graph(3, 4)
    h = _shuffled(g, 42)
    assert are_isomorphic(g, h)
    assert are_isomorphic(mycielski_graph(3), _shuffled(mycielski_graph(3), 7))


def test_size_mismatch_fast_path():
    assert not are_isomorphic(Graph(3), Graph(4))
    a = Graph.from_edges(3, [(0, 1)])
    b = Graph.from_edges(3, [(0, 1), (1, 2)])
    assert not are_isomorphic(a, b)


def test_colored_isomorphism():
    # Same graph, incompatible color multisets -> not isomorphic.
    g = Graph.from_edges(2, [(0, 1)])
    assert are_isomorphic(g, g, colors_a=[0, 1], colors_b=[1, 0])
    assert not are_isomorphic(g, g, colors_a=[0, 0], colors_b=[0, 1])


def test_colors_distinguish_orientation():
    # Path a-b-c colored (red, blue, blue) vs (blue, blue, red) are
    # isomorphic; vs (blue, red, blue) are not.
    path = Graph.from_edges(3, [(0, 1), (1, 2)])
    assert are_isomorphic(path, path, colors_a=[0, 1, 1], colors_b=[1, 1, 0])
    assert not are_isomorphic(path, path, colors_a=[0, 1, 1], colors_b=[1, 0, 1])


def test_isomorphism_mapping_explicit():
    g = _random_graph(6, 5)
    h = _shuffled(g, 99)
    mapping = isomorphism_mapping(g, h)
    assert mapping is not None
    for u, v in g.edges():
        assert h.has_edge(mapping(u), mapping(v))


def test_isomorphism_mapping_none_for_different_graphs():
    path = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    cycle = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    assert isomorphism_mapping(path, cycle) is None


def test_empty_graph():
    assert canonical_labeling(Graph(0)) == []
    assert are_isomorphic(Graph(0), Graph(0))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.data())
def test_canonical_invariance_property(n, data):
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if data.draw(st.booleans()):
                g.add_edge(u, v)
    perm = data.draw(st.permutations(range(n)))
    h = g.relabel(list(perm))
    assert canonical_form(g) == canonical_form(h)
    assert are_isomorphic(g, h)
