"""The observability layer: trace codec, hooks, metrics, report, CLI.

The contracts asserted here (docs/observability.md,
docs/TRACE_FORMAT.md):

* **byte-exact round trip** — decoding a trace and re-encoding its
  records reproduces the input byte-for-byte (canonical varints, raw
  payload preservation);
* **torn-tail tolerance** — a trace cut mid-record (crashed writer)
  yields every complete record plus an honest ``truncated_bytes``
  count, mirroring the WAL contract of ``repro.resilience.read_wal``;
* **forward compatibility** — unknown event ids are skippable via the
  length prefix, so catalogue growth is not a format bump;
* **exact accounting** — per-phase conflict/propagation totals in the
  rendered profile equal the solver's own cumulative ``SolverStats``
  on a fixed descent;
* **determinism** — deterministic metric snapshots are byte-identical
  across ``--jobs`` levels, and tracing never perturbs the search.
"""

import io
import json

import pytest

from repro.api import ChromaticProblem, Pipeline, solve_many
from repro.graphs.generators import mycielski_graph
from repro.obs import (
    MetricsRegistry,
    Tracer,
    TraceWriter,
    active_tracer,
    build_profile,
    decode_record,
    encode_trace,
    get_registry,
    quantile_from_buckets,
    read_trace,
    render_report,
    scoped_registry,
    tracing,
    write_trace,
)
from repro.obs import events as ev
from repro.obs.__main__ import main as obs_main
from repro.obs.trace import (
    MAGIC,
    TraceError,
    TraceRecord,
    decode_uvarint,
    encode_uvarint,
    pack_fields,
)
from repro.sat.factory import new_solver


# --------------------------------------------------------------- varints


@pytest.mark.parametrize("value", [0, 1, 127, 128, 129, 300, 16383, 16384,
                                   2**32, 2**63, 2**64 - 1])
def test_uvarint_roundtrip(value):
    data = encode_uvarint(value)
    decoded, pos = decode_uvarint(data)
    assert decoded == value and pos == len(data)


def test_uvarint_is_minimal():
    assert encode_uvarint(0) == b"\x00"
    assert encode_uvarint(127) == b"\x7f"
    assert encode_uvarint(128) == b"\x80\x01"
    assert encode_uvarint(150) == b"\x96\x01"  # the TRACE_FORMAT.md example


def test_uvarint_rejects_negative_and_truncated():
    with pytest.raises(TraceError):
        encode_uvarint(-1)
    with pytest.raises(TraceError):
        decode_uvarint(b"\x80")  # continuation bit set, no next byte
    with pytest.raises(TraceError):
        decode_uvarint(b"\xff" * 11)  # over the 10-byte cap


# ------------------------------------------------------- trace round trip


def _sample_records():
    return [
        TraceRecord(ev.SOLVE_BEGIN, 0, pack_fields((1, 0))),
        TraceRecord(ev.CONFLICT, 150, pack_fields((1, 4, 2, 37))),
        TraceRecord(ev.SOLVE_END, 12, pack_fields((1, 1, 5, 9, 40, 0, 3, 0))),
        TraceRecord(ev.K_QUERY_END, 3, pack_fields((4, 2, 5, 9, 40, 0))),
    ]


def test_trace_reencode_is_byte_identical():
    wire = encode_trace(_sample_records())
    log = read_trace(wire)
    assert log.truncated_bytes == 0
    assert encode_trace(log.records, log.version) == wire


def test_worked_example_from_trace_format_md():
    record = TraceRecord(ev.CONFLICT, 150, pack_fields((1, 4, 2, 37)))
    assert record.encode() == bytes.fromhex("039601040104022 5".replace(" ", ""))
    assert record.fields == (1, 4, 2, 37)


def test_writer_reader_roundtrip_via_file(tmp_path):
    path = str(tmp_path / "t.trace")
    with TraceWriter(path) as writer:
        writer.emit(ev.SOLVE_BEGIN, (1, 0))
        writer.emit(ev.RESTART, (1, 64))
    log = read_trace(path)
    assert [r.event for r in log.records] == [ev.SOLVE_BEGIN, ev.RESTART]
    assert log.records[1].fields == (1, 64)


def test_torn_tail_is_dropped_and_counted():
    wire = encode_trace(_sample_records())
    whole = read_trace(wire)
    # Chop the stream at every byte offset inside the final record: the
    # reader must never raise, never lose a *complete* record, and must
    # report exactly the bytes it could not decode.
    last_start = len(wire) - len(whole.records[-1].encode())
    for cut in range(last_start + 1, len(wire)):
        log = read_trace(wire[:cut])
        assert len(log.records) == len(whole.records) - 1
        assert log.truncated_bytes == cut - last_start


def test_unknown_event_is_skipped_not_fatal():
    records = [
        TraceRecord(99, 5, b"\xde\xad\xbe\xef"),  # not in the catalogue
        TraceRecord(ev.RESTART, 1, pack_fields((1, 2))),
    ]
    log = read_trace(encode_trace(records))
    assert [r.event for r in log.records] == [99, ev.RESTART]
    decoded = decode_record(log.records[0])
    assert decoded["event"] == "event#99" and decoded["payload_bytes"] == 4
    # and the re-encode is still byte-exact (opaque payload preserved)
    assert encode_trace(log.records) == encode_trace(records)


def test_bad_magic_and_future_version_raise():
    with pytest.raises(TraceError):
        read_trace(b"NOPE" + b"\x01")
    with pytest.raises(TraceError):
        read_trace(MAGIC + encode_uvarint(99))


def test_write_trace_path_form(tmp_path):
    path = str(tmp_path / "w.trace")
    write_trace(path, _sample_records())
    assert read_trace(path).records == _sample_records()


# ---------------------------------------------------------------- metrics


def test_counters_gauges_histograms_and_labels():
    reg = MetricsRegistry()
    reg.inc("solver_conflicts_total", 3)
    reg.inc("solver_solve_total", status="SAT")
    reg.inc("solver_solve_total", status="SAT")
    reg.gauge("batch_queue_depth", 7)
    reg.observe("solver_solve_conflicts", 42)
    snap = reg.snapshot()
    assert snap["counters"]["solver_conflicts_total"] == 3
    assert snap["counters"]['solver_solve_total{status="SAT"}'] == 2
    assert snap["gauges"]["batch_queue_depth"] == 7
    hist = snap["histograms"]["solver_solve_conflicts"]
    assert hist["count"] == 1 and hist["sum"] == 42
    assert sum(hist["buckets"].values()) == 1


def test_label_names_are_sorted_in_the_key():
    reg = MetricsRegistry()
    reg.inc("x_total", b="2", a="1")
    assert list(reg.snapshot()["counters"]) == ['x_total{a="1",b="2"}']


def test_deterministic_snapshot_excludes_seconds():
    reg = MetricsRegistry()
    reg.inc("pipeline_runs_total")
    reg.observe_seconds("pipeline_stage_seconds", 0.25, stage="solve")
    full = reg.snapshot()
    det = reg.snapshot(deterministic_only=True)
    assert "histograms" in full and "histograms" not in det
    assert det["counters"] == {"pipeline_runs_total": 1}


def test_snapshot_json_is_sorted_and_stable():
    reg = MetricsRegistry()
    reg.inc("b_total")
    reg.inc("a_total")
    text = reg.to_json()
    assert text == json.dumps(reg.snapshot(), sort_keys=True, indent=2)
    assert text.index('"a_total"') < text.index('"b_total"')


def test_quantile_from_buckets():
    reg = MetricsRegistry()
    for value in (1, 1, 3, 8, 900):
        reg.observe("k", value)
    hist = reg.snapshot()["histograms"]["k"]
    assert quantile_from_buckets(hist, 0.5) == 5.0   # 3rd of 5 -> (2, 5]
    assert quantile_from_buckets(hist, 0.99) == 1000.0
    assert quantile_from_buckets({"count": 0, "buckets": {}}, 0.5) is None


def test_scoped_registry_stacks_and_restores():
    base = get_registry()
    with scoped_registry() as inner:
        assert get_registry() is inner and inner is not base
        get_registry().inc("scoped_total")
        with scoped_registry() as inner2:
            assert get_registry() is inner2
        assert get_registry() is inner
    assert get_registry() is base
    assert "scoped_total" not in base.snapshot().get("counters", {})


# ----------------------------------------------- hooks and end-to-end


def test_tracing_attaches_via_factory_and_restores():
    assert active_tracer() is None
    sink = io.BytesIO()
    with tracing(sink) as tracer:
        assert active_tracer() is tracer
        s1 = new_solver(num_vars=2)
        s2 = new_solver(num_vars=2)
        assert s1.tracer is tracer and s2.tracer is tracer
        assert (s1.tracer_id, s2.tracer_id) == (1, 2)
    assert active_tracer() is None
    untraced = new_solver(num_vars=2)
    assert untraced.tracer is None


def test_report_totals_match_solver_stats_exactly():
    """The acceptance contract: profile sums == the solver's own stats."""
    sink = io.BytesIO()
    with scoped_registry() as registry, tracing(sink):
        result = (
            Pipeline()
            .solve(backend="cdcl-incremental", strategy="linear",
                   time_limit=120)
            .run(ChromaticProblem(mycielski_graph(3)))
        )
    assert result.status == "OPTIMAL" and result.chromatic_number == 4
    log = read_trace(sink.getvalue())
    assert log.truncated_bytes == 0
    profile = build_profile(log)

    totals = profile["totals"]
    assert totals["conflicts"] == result.stats.conflicts
    assert totals["decisions"] == result.stats.decisions
    assert totals["propagations"] == result.stats.propagations
    assert totals["restarts"] == result.stats.restarts
    # one phase per recorded K query, statuses agree in order
    assert [(p["k"], p["status"]) for p in profile["phases"]] == [
        (k, status) for k, status in result.queries]
    # the metrics registry saw the same counts
    counters = registry.snapshot()["counters"]
    assert counters["solver_conflicts_total"] == result.stats.conflicts
    assert counters["solver_propagations_total"] == result.stats.propagations
    # and the text renderer carries the exact totals
    text = render_report(profile)
    assert f"{result.stats.conflicts} conflicts" in text


def test_tracing_does_not_perturb_the_search():
    problem = ChromaticProblem(mycielski_graph(3))
    pipeline = Pipeline().solve(backend="cdcl-incremental", time_limit=120)
    baseline = pipeline.run(problem)
    with tracing(io.BytesIO()):
        traced = pipeline.run(problem)
    assert traced.stats.conflicts == baseline.stats.conflicts
    assert traced.stats.propagations == baseline.stats.propagations
    assert traced.queries == baseline.queries


def test_component_pool_events_present():
    graph = mycielski_graph(3)
    from repro.graphs.graph import disjoint_union
    union = disjoint_union(graph, mycielski_graph(2))
    sink = io.BytesIO()
    with tracing(sink):
        result = (
            Pipeline()
            .solve(backend="cdcl-incremental", time_limit=120)
            .run(ChromaticProblem(union))
        )
    assert result.status == "OPTIMAL"
    events = {r.event for r in read_trace(sink.getvalue()).records}
    assert ev.POOL_BEGIN in events and ev.POOL_END in events
    assert ev.COMPONENT_BEGIN in events and ev.COMPONENT_END in events


def test_deadline_expiry_and_degradation_are_traced():
    sink = io.BytesIO()
    with scoped_registry() as registry, tracing(sink):
        result = (
            Pipeline()
            .solve(backend="cdcl-incremental", strategy="linear",
                   time_limit=1e-9)
            .run(ChromaticProblem(mycielski_graph(4)))
        )
    assert result.status == "FEASIBLE" and result.degraded
    profile = build_profile(read_trace(sink.getvalue()))
    assert profile["resilience"]["deadline_expired"] >= 1
    assert profile["resilience"]["degraded"] >= 1
    counters = registry.snapshot()["counters"]
    assert counters.get("pipeline_degraded_total", 0) >= 1
    assert any(k.startswith("deadline_expired_total") for k in counters)


# ------------------------------------------------------------------- CLI


def _solved_trace(tmp_path):
    path = str(tmp_path / "run.trace")
    with tracing(path):
        (Pipeline()
         .solve(backend="cdcl-incremental", time_limit=120)
         .run(ChromaticProblem(mycielski_graph(3))))
    return path


def test_cli_report_and_dump(tmp_path, capsys):
    path = _solved_trace(tmp_path)
    assert obs_main(["report", path]) == 0
    out = capsys.readouterr().out
    assert "trace:" in out and "K=" in out

    assert obs_main(["report", path, "--json"]) == 0
    profile = json.loads(capsys.readouterr().out)
    assert profile["totals"]["conflicts"] >= 0 and profile["phases"]

    assert obs_main(["dump", path, "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "more record(s)" in out


def test_cli_error_exits(tmp_path, capsys):
    assert obs_main(["report", str(tmp_path / "missing.trace")]) == 2
    bad = tmp_path / "bad.trace"
    bad.write_bytes(b"NOPE\x01")
    assert obs_main(["report", str(bad)]) == 2
    capsys.readouterr()


# ------------------------------------------------------------ batch merge


def _tiny_tasks():
    return [
        {"graph": {"generator": "mycielski", "args": [3]}},
        {"graph": {"generator": "queens", "args": [4, 4]}},
    ]


def test_batch_records_carry_deterministic_metrics():
    inline = list(solve_many(_tiny_tasks(), jobs=0))
    pooled = list(solve_many(_tiny_tasks(), jobs=2))
    # myciel3 needs a real descent; queens(4,4) closes from bounds alone
    # and still reports the pipeline counter.
    counters = inline[0]["metrics"]["counters"]
    assert counters["solver_created_total"] >= 1
    for rec_inline, rec_pooled in zip(inline, pooled):
        assert any(key.startswith("pipeline_runs_total")
                   for key in rec_inline["metrics"]["counters"])
        assert rec_inline["metrics"] == rec_pooled["metrics"], (
            "attempt metrics must be byte-comparable across --jobs levels")
        assert not any(
            "_seconds" in key
            for group in rec_inline["metrics"].values()
            for key in group)
