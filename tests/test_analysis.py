"""Graph analysis tests: degeneracy, components, bipartiteness, bounds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.analysis import (
    chromatic_bounds,
    connected_components,
    count_triangles,
    degeneracy_bound,
    degeneracy_ordering,
    is_bipartite,
)
from repro.graphs.coloring_heuristics import greedy_coloring
from repro.graphs.generators import mycielski_graph, queens_graph
from repro.graphs.graph import Graph


def test_degeneracy_known_values():
    # Trees have degeneracy 1; cycles 2; K_n has n-1.
    path = Graph.from_edges(5, [(i, i + 1) for i in range(4)])
    assert degeneracy_ordering(path)[1] == 1
    cycle = Graph.from_edges(5, [(i, (i + 1) % 5) for i in range(5)])
    assert degeneracy_ordering(cycle)[1] == 2
    k4 = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
    assert degeneracy_ordering(k4)[1] == 3
    assert degeneracy_ordering(Graph(0)) == ([], 0)


def test_degeneracy_ordering_is_permutation():
    g = queens_graph(4, 4)
    order, _ = degeneracy_ordering(g)
    assert sorted(order) == list(range(16))


def test_greedy_on_degeneracy_order_respects_bound():
    for g in (queens_graph(4, 4), mycielski_graph(4)):
        order, d = degeneracy_ordering(g)
        _, colors = greedy_coloring(g, order)
        assert colors <= d + 1


def test_degeneracy_bound_vs_max_degree():
    # Star graph: max degree n-1 but degeneracy 1.
    star = Graph.from_edges(6, [(0, i) for i in range(1, 6)])
    assert degeneracy_bound(star) == 2
    assert star.max_degree() == 5


def test_connected_components():
    g = Graph.from_edges(6, [(0, 1), (1, 2), (4, 5)])
    assert connected_components(g) == [[0, 1, 2], [3], [4, 5]]
    assert connected_components(Graph(0)) == []


def test_is_bipartite():
    even_cycle = Graph.from_edges(4, [(i, (i + 1) % 4) for i in range(4)])
    ok, sides = is_bipartite(even_cycle)
    assert ok
    assert all(sides[u] != sides[v] for u, v in even_cycle.edges())
    odd_cycle = Graph.from_edges(5, [(i, (i + 1) % 5) for i in range(5)])
    assert is_bipartite(odd_cycle) == (False, None)
    assert is_bipartite(Graph(3))[0]  # edgeless graphs are bipartite


def test_count_triangles():
    k4 = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
    assert count_triangles(k4) == 4
    assert count_triangles(mycielski_graph(4)) == 0  # triangle-free
    assert count_triangles(Graph(3)) == 0


def test_chromatic_bounds_cases():
    assert chromatic_bounds(Graph(0)) == (0, 0)
    assert chromatic_bounds(Graph(4)) == (1, 1)
    even_cycle = Graph.from_edges(4, [(i, (i + 1) % 4) for i in range(4)])
    assert chromatic_bounds(even_cycle) == (2, 2)
    lo, hi = chromatic_bounds(queens_graph(5, 5))
    assert lo <= 5 <= hi


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=9), st.data())
def test_bounds_bracket_truth_on_random_graphs(n, data):
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if data.draw(st.booleans()):
                g.add_edge(u, v)
    lo, hi = chromatic_bounds(g)
    assert lo <= hi
    from repro.coloring.exact_dsatur import exact_chromatic_number

    chi = exact_chromatic_number(g).chromatic_number
    assert lo <= chi <= hi
    order, d = degeneracy_ordering(g)
    _, greedy_colors = greedy_coloring(g, order)
    assert greedy_colors <= d + 1
