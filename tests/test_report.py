"""Report artifact tests."""

import json

import pytest

from repro.experiments.instances import ScalePreset
from repro.experiments.report import list_reports, load_report, save_report
from repro.experiments.tables import render_table1, table1


def test_save_and_load_roundtrip(tmp_path):
    rows = [{"a": 1}, {"a": 2}]
    path = save_report(str(tmp_path), "demo", rows, "a table", {"scale": "test"})
    payload = load_report(path)
    assert payload["experiment"] == "demo"
    assert payload["rows"] == rows
    assert payload["metadata"]["scale"] == "test"
    md = (tmp_path / "demo.md").read_text()
    assert "a table" in md and "scale: test" in md


def test_dataclass_serialization(tmp_path):
    scale = ScalePreset(
        name="test", instance_names=("myciel3",),
        k_primary=4, k_secondary=5, time_limit=5.0,
        detection_node_limit=1000, solvers=("pbs2",),
    )
    rows = table1(scale, per_instance_budget=5.0)
    path = save_report(str(tmp_path), "table1", rows, render_table1(rows, 4))
    payload = load_report(path)
    assert payload["rows"][0]["name"] == "myciel3"
    assert payload["rows"][0]["measured_chi"] == 4


def test_list_reports(tmp_path):
    assert list_reports(str(tmp_path / "missing")) == []
    save_report(str(tmp_path), "one", [], "x")
    save_report(str(tmp_path), "two", [], "y")
    reports = list_reports(str(tmp_path))
    assert len(reports) == 2
    assert all(p.endswith(".json") for p in reports)


def test_load_rejects_non_report(tmp_path):
    bogus = tmp_path / "x.json"
    bogus.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ValueError):
        load_report(str(bogus))


def test_non_jsonable_values_reprd(tmp_path):
    class Weird:
        def __repr__(self):
            return "<weird>"

    path = save_report(str(tmp_path), "w", {"obj": Weird()}, "t")
    payload = load_report(path)
    assert payload["rows"]["obj"] == "<weird>"
