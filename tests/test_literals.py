"""Unit tests for literal encoding helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.literals import (
    check_literal,
    index_lit,
    is_positive,
    lit_index,
    max_var,
    neg,
    var_of,
)

literals = st.integers(min_value=-500, max_value=500).filter(lambda x: x != 0)


def test_var_of():
    assert var_of(3) == 3
    assert var_of(-3) == 3


def test_neg():
    assert neg(4) == -4
    assert neg(-4) == 4


def test_is_positive():
    assert is_positive(1)
    assert not is_positive(-1)


def test_lit_index_layout():
    assert lit_index(1) == 0
    assert lit_index(-1) == 1
    assert lit_index(2) == 2
    assert lit_index(-2) == 3


@given(literals)
def test_index_roundtrip(lit):
    assert index_lit(lit_index(lit)) == lit


@given(literals)
def test_index_pairs_variables(lit):
    # A literal and its complement occupy adjacent indices (xor 1).
    assert lit_index(lit) ^ 1 == lit_index(-lit)


def test_max_var():
    assert max_var([]) == 0
    assert max_var([1, -5, 3]) == 5


def test_check_literal_rejects_zero():
    with pytest.raises(ValueError):
        check_literal(0)


def test_check_literal_rejects_bool():
    with pytest.raises(ValueError):
        check_literal(True)


def test_check_literal_passes_through():
    assert check_literal(-7) == -7
