"""Permutation group (Schreier-Sims) tests."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symmetry.group import PermutationGroup, orbit_of, orbit_partition, orbits
from repro.symmetry.permutation import Permutation


def adjacent_transpositions(n):
    return [Permutation.from_cycles(n, [(i, i + 1)]) for i in range(n - 1)]


def test_symmetric_group_orders():
    for n in range(2, 8):
        assert PermutationGroup(adjacent_transpositions(n)).order() == math.factorial(n)


def test_trivial_group():
    g = PermutationGroup([], degree=5)
    assert g.order() == 1
    assert g.contains(Permutation.identity(5))
    assert not g.contains(Permutation.from_cycles(5, [(0, 1)]))


def test_cyclic_group():
    p = Permutation.from_cycles(7, [tuple(range(7))])
    g = PermutationGroup([p])
    assert g.order() == 7
    assert g.contains(p.power(3))


def test_dihedral_group():
    rot = Permutation.from_cycles(5, [(0, 1, 2, 3, 4)])
    ref = Permutation.from_cycles(5, [(1, 4), (2, 3)])
    assert PermutationGroup([rot, ref]).order() == 10


def test_klein_four():
    a = Permutation.from_cycles(4, [(0, 1), (2, 3)])
    b = Permutation.from_cycles(4, [(0, 2), (1, 3)])
    g = PermutationGroup([a, b])
    assert g.order() == 4
    assert g.contains(a * b)
    assert not g.contains(Permutation.from_cycles(4, [(0, 1)]))


def test_direct_product():
    gens = adjacent_transpositions(4)
    shifted = [
        Permutation.from_cycles(8, [(4 + i, 5 + i)]) for i in range(3)
    ]
    lifted = [Permutation(list(g.image) + [4, 5, 6, 7]) for g in gens]
    assert PermutationGroup(lifted + shifted).order() == 24 * 24


def test_membership_by_sifting():
    g = PermutationGroup(adjacent_transpositions(5))
    assert g.contains(Permutation([4, 3, 2, 1, 0]))
    # Even permutation group: alternating A_4 from 3-cycles.
    a4 = PermutationGroup(
        [Permutation.from_cycles(4, [(0, 1, 2)]), Permutation.from_cycles(4, [(1, 2, 3)])]
    )
    assert a4.order() == 12
    assert not a4.contains(Permutation.from_cycles(4, [(0, 1)]))  # odd


def test_orbits():
    gens = [Permutation.from_cycles(5, [(0, 1)]), Permutation.from_cycles(5, [(2, 3)])]
    assert orbits(gens, 5) == [[0, 1], [2, 3], [4]]
    assert orbit_of(0, gens) == {0, 1}
    assert orbit_partition(gens, 5) == [0, 0, 2, 2, 4]


def test_large_degree_small_group():
    # S_6 embedded in degree 500: order must ignore fixed points.
    gens = [Permutation.from_cycles(500, [(i, i + 1)]) for i in range(5)]
    assert PermutationGroup(gens).order() == 720


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=3, max_value=6), st.data())
def test_order_matches_closure(n, data):
    gens = [
        Permutation(data.draw(st.permutations(range(n))))
        for _ in range(data.draw(st.integers(min_value=1, max_value=2)))
    ]
    gens = [g for g in gens if not g.is_identity]
    group = PermutationGroup(gens, degree=n)
    elements = {Permutation.identity(n)}
    frontier = list(gens)
    while frontier:
        e = frontier.pop()
        for h in list(elements):
            for prod in (e * h, h * e):
                if prod not in elements:
                    elements.add(prod)
                    frontier.append(prod)
    assert group.order() == len(elements)
    for e in list(elements)[:8]:
        assert group.contains(e)
