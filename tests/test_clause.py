"""Unit + property tests for CNF clauses."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.clause import Clause

lits = st.integers(min_value=-8, max_value=8).filter(lambda x: x != 0)


def test_canonicalization_dedup_and_order():
    assert Clause([2, 1, 2]).literals == (1, 2)
    assert Clause([-1, 1]).literals == (1, -1)  # var order, pos before neg


def test_equality_and_hash():
    assert Clause([3, 1]) == Clause([1, 3])
    assert hash(Clause([3, 1])) == hash(Clause([1, 3]))
    assert Clause([1]) != Clause([2])


def test_is_unit_and_empty():
    assert Clause([5]).is_unit
    assert Clause([]).is_empty
    assert not Clause([1, 2]).is_empty


def test_tautology():
    assert Clause([1, -1]).is_tautology
    assert not Clause([1, 2]).is_tautology


def test_variables():
    assert Clause([-3, 1, 2]).variables() == (1, 2, 3)


def test_evaluate():
    clause = Clause([1, -2])
    assert clause.evaluate({1: True, 2: True})
    assert clause.evaluate({1: False, 2: False})
    assert not clause.evaluate({1: False, 2: True})


def test_rejects_zero_literal():
    with pytest.raises(ValueError):
        Clause([0])


def test_apply_renaming():
    clause = Clause([1, -2])
    renamed = clause.apply_renaming({1: 3, -1: -3, -2: 2, 2: -2})
    assert renamed == Clause([3, 2])


@given(st.lists(lits, min_size=1, max_size=6))
def test_canonical_form_is_idempotent(literals):
    once = Clause(literals)
    twice = Clause(once.literals)
    assert once == twice


@given(st.lists(lits, min_size=1, max_size=6), st.randoms())
def test_order_invariance(literals, rng):
    shuffled = list(literals)
    rng.shuffle(shuffled)
    assert Clause(literals) == Clause(shuffled)


@given(st.lists(lits, min_size=1, max_size=6))
def test_evaluate_matches_semantics(literals):
    clause = Clause(literals)
    if clause.is_tautology:
        return
    assignment = {abs(l): (l < 0) for l in literals}  # falsify everything
    assert not clause.evaluate(assignment)
    flipped = dict(assignment)
    first = clause.literals[0]
    flipped[abs(first)] = first > 0
    assert clause.evaluate(flipped)
