"""Graph ADT tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.graph import Graph


def triangle():
    return Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


def test_basic_counts():
    g = triangle()
    assert g.num_vertices == 3
    assert g.num_edges == 3
    assert g.degree(0) == 2
    assert g.max_degree() == 2


def test_add_edge_dedup():
    g = Graph(2)
    assert g.add_edge(0, 1)
    assert not g.add_edge(1, 0)
    assert g.num_edges == 1


def test_self_loop_rejected():
    g = Graph(1)
    with pytest.raises(ValueError):
        g.add_edge(0, 0)


def test_out_of_range_rejected():
    g = Graph(2)
    with pytest.raises(IndexError):
        g.add_edge(0, 5)


def test_edges_iteration_ordered():
    g = triangle()
    assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 2)]
    assert all(u < v for u, v in g.edges())


def test_add_vertex():
    g = Graph(1)
    v = g.add_vertex()
    assert v == 1
    g.add_edge(0, 1)
    assert g.has_edge(0, 1)


def test_density():
    assert triangle().density() == 1.0
    assert Graph(5).density() == 0.0


def test_copy_independent():
    g = triangle()
    h = g.copy()
    h.add_vertex()
    assert g.num_vertices == 3
    assert h.num_vertices == 4


def test_complement():
    g = Graph.from_edges(4, [(0, 1)])
    comp = g.complement()
    assert comp.num_edges == 5
    assert not comp.has_edge(0, 1)
    assert comp.has_edge(2, 3)


def test_subgraph():
    g = triangle()
    g.add_vertex()
    g.add_edge(2, 3)
    sub = g.subgraph([1, 2, 3])
    assert sub.num_vertices == 3
    assert sorted(sub.edges()) == [(0, 1), (1, 2)]


def test_subgraph_duplicate_rejected():
    with pytest.raises(ValueError):
        triangle().subgraph([0, 0])


def test_relabel_and_automorphism():
    g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])  # path
    reversed_path = [3, 2, 1, 0]
    assert g.relabel(reversed_path) == g
    assert g.is_automorphism(reversed_path)
    assert not g.is_automorphism([1, 0, 2, 3])  # breaks adjacency
    assert not g.is_automorphism([0, 0, 1, 2])  # not a permutation


def test_relabel_requires_permutation():
    with pytest.raises(ValueError):
        triangle().relabel([0, 1, 1])


def test_is_proper_coloring():
    g = triangle()
    assert g.is_proper_coloring({0: 1, 1: 2, 2: 3})
    assert not g.is_proper_coloring({0: 1, 1: 1, 2: 2})
    assert not g.is_proper_coloring({0: 1, 1: 2})  # missing vertex


@given(st.integers(min_value=0, max_value=8), st.data())
def test_edge_count_consistency(n, data):
    g = Graph(n)
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = data.draw(st.lists(st.sampled_from(pairs), max_size=10)) if pairs else []
    for u, v in chosen:
        g.add_edge(u, v)
    assert g.num_edges == len(set(chosen))
    assert g.num_edges == sum(g.degree(v) for v in g.vertices()) // 2
    assert g.num_edges == len(list(g.edges()))
