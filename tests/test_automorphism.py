"""Automorphism search tests against known groups and brute force."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import mycielski_graph, queens_graph
from repro.graphs.graph import Graph
from repro.symmetry.automorphism import find_automorphisms
from repro.symmetry.group import PermutationGroup


def group_order(graph, colors=None):
    result = find_automorphisms(graph, colors=colors)
    assert result.complete
    for gen in result.generators:
        assert graph.is_automorphism(list(gen.image))
    if not result.generators:
        return 1
    return PermutationGroup(result.generators, degree=graph.num_vertices).order()


def brute_order(graph, colors=None):
    n = graph.num_vertices
    count = 0
    for perm in itertools.permutations(range(n)):
        if colors is not None and any(colors[v] != colors[perm[v]] for v in range(n)):
            continue
        if graph.is_automorphism(list(perm)):
            count += 1
    return count


def test_cycle_graphs_dihedral():
    for n in (3, 4, 5, 6):
        g = Graph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])
        assert group_order(g) == 2 * n


def test_complete_and_empty():
    k4 = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
    assert group_order(k4) == 24
    assert group_order(Graph(4)) == 24
    assert group_order(Graph(0)) == 1


def test_path_graph():
    g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    assert group_order(g) == 2


def test_petersen_graph():
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0),
             (5, 7), (7, 9), (9, 6), (6, 8), (8, 5),
             (0, 5), (1, 6), (2, 7), (3, 8), (4, 9)]
    g = Graph.from_edges(10, edges)
    assert group_order(g) == 120


def test_queens_board_symmetries():
    # Square boards admit the dihedral group of the square.
    assert group_order(queens_graph(4, 4)) == 8
    # Rectangular boards only flips: identity, h, v, 180-rotation.
    assert group_order(queens_graph(3, 4)) == 4


def test_mycielski_grotzsch():
    # myciel3 (the Grotzsch-family graph) has automorphism group D5.
    assert group_order(mycielski_graph(3)) == 10


def test_colors_restrict_automorphisms():
    g = Graph.from_edges(4, [(i, (i + 1) % 4) for i in range(4)])  # C4: order 8
    assert group_order(g) == 8
    # Distinguishing one vertex leaves only the flip fixing it.
    assert group_order(g, colors=[1, 0, 0, 0]) == 2
    assert group_order(g, colors=[1, 2, 3, 4]) == 1


def test_node_limit_marks_incomplete():
    g = Graph(8)  # S_8: search tree bigger than 3 nodes
    result = find_automorphisms(g, node_limit=3)
    assert not result.complete


def test_disjoint_triangles_swap():
    g = Graph.from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    # 3! per triangle, times the swap of the two triangles: 6*6*2.
    assert group_order(g) == 72


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.data())
def test_matches_brute_force_on_random_graphs(n, data):
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if data.draw(st.booleans()):
                g.add_edge(u, v)
    assert group_order(g) == brute_order(g)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.data())
def test_matches_brute_force_with_colors(n, data):
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if data.draw(st.booleans()):
                g.add_edge(u, v)
    colors = [data.draw(st.integers(min_value=0, max_value=1)) for _ in range(n)]
    assert group_order(g, colors=colors) == brute_order(g, colors=colors)
