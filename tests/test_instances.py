"""Benchmark registry tests."""

import pytest

from repro.experiments.instances import (
    QUEENS_NAMES,
    REGISTRY,
    SCALES,
    all_instances,
    get_instance,
    get_scale,
)


def test_twenty_instances():
    assert len(REGISTRY) == 20
    assert len(all_instances()) == 20


def test_paper_table1_names_present():
    expected = {
        "anna", "david", "DSJC125.1", "DSJC125.9", "games120", "huck",
        "jean", "miles250", "mulsol.i.2", "mulsol.i.4", "myciel3",
        "myciel4", "myciel5", "queen5_5", "queen6_6", "queen7_7",
        "queen8_12", "zeroin.i.1", "zeroin.i.2", "zeroin.i.3",
    }
    assert set(REGISTRY) == expected


@pytest.mark.parametrize("name", ["myciel3", "myciel4", "queen5_5", "huck", "jean"])
def test_generators_match_registry_sizes(name):
    instance = get_instance(name)
    graph = instance.graph()  # asserts sizes internally
    assert graph.num_vertices == instance.num_vertices
    assert graph.num_edges == instance.num_edges
    assert graph.name == name


def test_generators_deterministic():
    a = get_instance("anna").graph()
    b = get_instance("anna").graph()
    assert a == b


def test_register_instances_exceed_paper_k():
    from repro.graphs.cliques import clique_lower_bound

    for name in ("mulsol.i.2", "zeroin.i.1"):
        instance = get_instance(name)
        assert instance.chromatic is None  # "> 20" in the paper
        assert clique_lower_bound(instance.graph()) > 20


def test_unknown_instance():
    with pytest.raises(KeyError):
        get_instance("nope")


def test_scales():
    assert set(SCALES) >= {"bench", "tiny", "small", "paper"}
    paper = get_scale("paper")
    assert paper.k_primary == 20 and paper.k_secondary == 30
    assert paper.time_limit == 1000.0
    assert len(paper.instances()) == 20
    bench = get_scale("bench")
    assert all(n in REGISTRY for n in bench.instance_names)
    with pytest.raises(KeyError):
        get_scale("huge")


def test_queens_names_subset():
    assert set(QUEENS_NAMES) <= set(REGISTRY)
