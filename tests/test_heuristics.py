"""Coloring heuristic tests: greedy, Welsh-Powell, DSATUR."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.coloring_heuristics import (
    dsatur,
    greedy_coloring,
    saturation_degree,
    welsh_powell,
)
from repro.graphs.generators import mycielski_graph, queens_graph
from repro.graphs.graph import Graph


def _bipartite(n_left, n_right):
    g = Graph(n_left + n_right)
    for u in range(n_left):
        for v in range(n_right):
            g.add_edge(u, n_left + v)
    return g


def test_greedy_proper_and_color_count():
    g = queens_graph(4, 4)
    coloring, colors = greedy_coloring(g)
    assert g.is_proper_coloring(coloring)
    assert colors == max(coloring.values()) + 1


def test_greedy_custom_order_validated():
    g = Graph(3)
    with pytest.raises(ValueError):
        greedy_coloring(g, order=[0, 0, 1])


def test_welsh_powell_proper():
    g = mycielski_graph(4)
    coloring, colors = welsh_powell(g)
    assert g.is_proper_coloring(coloring)
    assert colors >= 5  # chi(myciel4) = 5


def test_dsatur_empty_graph():
    coloring, colors = dsatur(Graph(0))
    assert coloring == {} and colors == 0


def test_dsatur_bipartite_optimal():
    # DSATUR is exact on bipartite graphs (Brelaz 1979).
    coloring, colors = dsatur(_bipartite(5, 7))
    assert colors == 2
    assert _bipartite(5, 7).is_proper_coloring(coloring)


def test_dsatur_clique_exact():
    g = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
    _, colors = dsatur(g)
    assert colors == 4


def test_dsatur_queens():
    coloring, colors = dsatur(queens_graph(5, 5))
    assert queens_graph(5, 5).is_proper_coloring(coloring)
    assert 5 <= colors <= 8


def test_saturation_degree():
    g = Graph.from_edges(3, [(0, 1), (0, 2)])
    assert saturation_degree(g, {1: 1, 2: 1}, 0) == 1
    assert saturation_degree(g, {1: 1, 2: 2}, 0) == 2
    assert saturation_degree(g, {}, 0) == 0


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=10), st.data())
def test_all_heuristics_proper_on_random_graphs(n, data):
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if data.draw(st.booleans()):
                g.add_edge(u, v)
    for coloring, colors in (greedy_coloring(g), welsh_powell(g), dsatur(g)):
        assert g.is_proper_coloring(coloring)
        assert colors <= g.max_degree() + 1  # greedy bound
