"""Soundness and completeness tests for the NU/CA/LI/SC constructions.

The key property from the paper's Section 3: each construction is
*sound* — it preserves the optimal color count — and they form a
strength hierarchy (LI breaks all color symmetry, NU only null-color
symmetry, SC a few assignments).
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.encoding import encode_coloring
from repro.graphs.graph import Graph
from repro.pb.presets import solve_optimize
from repro.sbp.instance_independent import (
    SBP_KINDS,
    add_cardinality_ordering,
    add_lowest_index_ordering,
    add_null_color_elimination,
    add_selective_coloring,
    apply_sbp,
)


def random_graph(n, edges):
    g = Graph(n)
    for u, v in edges:
        g.add_edge(u, v)
    return g


def brute_chromatic(graph, max_colors):
    for k in range(1, max_colors + 1):
        for assignment in itertools.product(range(k), repeat=graph.num_vertices):
            if all(assignment[u] != assignment[v] for u, v in graph.edges()):
                return k
    # Not colorable within the budget: report strictly more than the
    # budget so callers' `expected > k` guards actually fire (returning
    # `max_colors` here made K5 at k=4 look 4-colorable and the random
    # property test below flag a correct UNSAT as a failure).
    return max_colors + 1


def optimum(graph, k, kind):
    encoding = apply_sbp(encode_coloring(graph, k), kind)
    result = solve_optimize(encoding.formula, preset="pbs2")
    return result.status, result.best_value


def test_clause_counts():
    g = random_graph(4, [(0, 1), (1, 2)])
    enc = encode_coloring(g, 3)
    base_clauses = len(enc.formula.clauses)
    e = enc.copy()
    assert add_null_color_elimination(e) == 2
    assert len(e.formula.clauses) == base_clauses + 2
    e = enc.copy()
    assert add_cardinality_ordering(e) == 2
    assert len(e.formula.pb_constraints) == 4 + 2  # n exactly-ones + CA
    e = enc.copy()
    added = add_lowest_index_ordering(e)
    assert added > 0
    assert e.formula.num_vars == enc.formula.num_vars + 2 * 4 * 3  # P and V
    e = enc.copy()
    assert add_selective_coloring(e) == 2


def test_sc_pins_max_degree_vertex():
    g = random_graph(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
    enc = encode_coloring(g, 3)
    add_selective_coloring(enc)
    units = [c for c in enc.formula.clauses if len(c) == 1]
    assert any(c.literals == (enc.x(0, 1),) for c in units)
    # Highest-degree neighbor of vertex 0 is 1 or 2 (degree 2 each).
    assert any(c.literals in ((enc.x(1, 2),), (enc.x(2, 2),)) for c in units)


def test_unknown_kind_rejected():
    g = random_graph(2, [(0, 1)])
    with pytest.raises(ValueError):
        apply_sbp(encode_coloring(g, 2), "xyz")


def test_apply_sbp_does_not_mutate_original():
    g = random_graph(3, [(0, 1)])
    enc = encode_coloring(g, 2)
    before = enc.formula.stats()
    apply_sbp(enc, "li")
    assert enc.formula.stats() == before


TRIANGLE_PLUS = random_graph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])  # Figure 1


@pytest.mark.parametrize("kind", SBP_KINDS)
def test_figure1_graph_optimum_preserved(kind):
    status, value = optimum(TRIANGLE_PLUS, 4, kind)
    assert status == "OPTIMAL" and value == 3


@pytest.mark.parametrize("kind", SBP_KINDS)
def test_bipartite_optimum_preserved(kind):
    g = random_graph(4, [(0, 2), (0, 3), (1, 2), (1, 3)])
    status, value = optimum(g, 4, kind)
    assert status == "OPTIMAL" and value == 2


@pytest.mark.parametrize("kind", SBP_KINDS)
def test_unsat_preserved(kind):
    # K4 cannot be 3-colored under any sound SBP.
    k4 = random_graph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
    status, _ = optimum(k4, 3, kind)
    assert status == "UNSAT"


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.data())
def test_all_kinds_preserve_optimum_on_random_graphs(n, data):
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if data.draw(st.booleans())
    ]
    g = random_graph(n, edges)
    k = min(n, 4)
    expected = brute_chromatic(g, k)
    if expected > k:
        return
    for kind in SBP_KINDS:
        status, value = optimum(g, k, kind)
        assert status == "OPTIMAL", (kind, edges)
        assert value == expected, (kind, edges, value, expected)


def test_li_breaks_all_color_symmetry():
    """After LI, the formula has no symmetries at all (paper Table 2)."""
    from repro.symmetry.detect import detect_symmetries

    enc = apply_sbp(encode_coloring(TRIANGLE_PLUS, 3), "li")
    report = detect_symmetries(enc.formula)
    assert report.order == 1


def test_nu_leaves_nonnull_color_symmetry():
    from repro.symmetry.detect import detect_symmetries

    enc = apply_sbp(encode_coloring(TRIANGLE_PLUS, 4), "nu")
    report = detect_symmetries(enc.formula)
    assert report.order > 1
