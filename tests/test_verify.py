"""Coloring verification helper tests."""

import pytest

from repro.coloring.verify import check_proper, color_class_sizes, is_proper
from repro.graphs.graph import Graph

TRIANGLE = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


def test_check_proper_accepts_valid():
    check_proper(TRIANGLE, {0: 1, 1: 2, 2: 3})


def test_check_proper_rejects_monochromatic_edge():
    with pytest.raises(ValueError, match="monochromatic"):
        check_proper(TRIANGLE, {0: 1, 1: 1, 2: 2})


def test_check_proper_rejects_uncolored():
    with pytest.raises(ValueError, match="uncolored"):
        check_proper(TRIANGLE, {0: 1, 1: 2})


def test_is_proper():
    assert is_proper(TRIANGLE, {0: 1, 1: 2, 2: 3})
    assert not is_proper(TRIANGLE, {0: 1, 1: 1, 2: 2})


def test_color_class_sizes():
    assert color_class_sizes({0: 1, 1: 2, 2: 1}) == {1: 2, 2: 1}
    assert color_class_sizes({}) == {}
