"""Differential harness for the per-component Session pool.

The pool's contract: composing kernelization (component split) with
per-component persistent solvers NEVER changes answers.  On
hypothesis-generated disconnected graphs — disjoint unions of 2-4
components drawn from the generator families — the chromatic number
must agree across four independent engines:

* the component pool (``cdcl-incremental`` + ``split_components``),
* the single whole-kernel persistent solver (``split_components=False``),
* from-scratch solving (``cdcl-scratch``),
* the DSATUR branch and bound (``exact-dsatur``, no formula pipeline),

and every reported coloring must properly color its graph — checked
per component as well as end to end (``repro.coloring.verify``).

Profiles: deterministic seeds in PRs, fresh seeds nightly — see
``tests/conftest.py``.
"""

import pytest
from hypothesis import given, strategies as st

from repro.api import ChromaticProblem, ComponentSessionPool, Pipeline
from repro.coloring.verify import is_proper
from repro.experiments.instances import get_instance
from repro.graphs.analysis import connected_components
from repro.graphs.generators import (
    book_graph,
    crown_graph,
    gnp_graph,
    mycielski_graph,
    queens_graph,
    wheel_graph,
)
from repro.graphs.graph import Graph, disjoint_union


def cycle_graph(n: int) -> Graph:
    return Graph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])


# One strategy per generator family, sized to keep every engine (the
# brute-ish scratch descent included) under a second per component.
COMPONENT = st.one_of(
    st.builds(mycielski_graph, st.integers(2, 3)),
    st.builds(queens_graph, st.integers(3, 4), st.integers(3, 4)),
    st.builds(wheel_graph, st.integers(4, 9)),
    st.builds(cycle_graph, st.integers(3, 9)),
    st.builds(crown_graph, st.integers(3, 5)),
    st.builds(
        gnp_graph,
        st.integers(4, 12),
        st.sampled_from([0.3, 0.5, 0.7]),
        st.integers(0, 10_000),
    ),
    st.builds(
        book_graph,
        st.integers(9, 12),
        st.integers(6, 18),
        st.integers(0, 10_000),
    ),
)

UNIONS = st.lists(COMPONENT, min_size=2, max_size=4).map(
    lambda graphs: disjoint_union(*graphs)
)


def chromatic(graph, backend, **solve_kwargs):
    return (
        Pipeline()
        .solve(backend=backend, time_limit=120, **solve_kwargs)
        .run(ChromaticProblem(graph))
    )


@given(UNIONS)
def test_pool_agrees_with_single_solver_scratch_and_dsatur(graph):
    """The differential property: four engines, one chromatic number."""
    pool = chromatic(graph, "cdcl-incremental", split_components=True)
    whole = chromatic(graph, "cdcl-incremental", split_components=False)
    scratch = chromatic(graph, "cdcl-scratch")
    dsatur = chromatic(graph, "exact-dsatur")
    assert pool.status == "OPTIMAL"
    assert whole.status == "OPTIMAL"
    assert scratch.status == "OPTIMAL"
    assert dsatur.status == "OPTIMAL"
    assert (
        pool.chromatic_number
        == whole.chromatic_number
        == scratch.chromatic_number
        == dsatur.chromatic_number
    )
    for result in (pool, whole, scratch, dsatur):
        assert result.coloring is not None
        assert is_proper(graph, result.coloring)
        assert len(set(result.coloring.values())) == result.chromatic_number


@given(UNIONS)
def test_pool_per_component_models_and_provenance(graph):
    """Structural contract of the pool itself: one persistent solver per
    component at most, per-component traces, per-component proper
    colorings."""
    with ComponentSessionPool(graph) as pool:
        result = pool.chromatic()
        assert result.status == "OPTIMAL"
        assert len(pool.sessions) == len(pool.components)
        assert len(result.components) == len(pool.components)
        assert result.solvers_created == sum(
            trace.solvers_created for trace in result.components
        )
        for trace in result.components:
            assert trace.status == "OPTIMAL"
            assert trace.solvers_created <= 1  # one persistent solver each
            assert trace.vertices == len(pool.components[trace.index])
        # Largest-first scheduling.
        sizes = [trace.vertices for trace in result.components]
        assert sizes == sorted(sizes, reverse=True)
        # The merged coloring restricted to every *original* component is
        # itself a proper model of that component.
        assert is_proper(graph, result.coloring)
        for component in connected_components(graph):
            sub = graph.subgraph(component)
            sub_coloring = {
                local: result.coloring[original]
                for local, original in enumerate(component)
            }
            assert is_proper(sub, sub_coloring)


# --------------------------------------------------------------- fixed cases
def test_pool_on_union_of_two_registry_instances():
    """The acceptance benchmark: a union of two registry instances runs
    one persistent solver per component and matches scratch."""
    graph = disjoint_union(
        get_instance("myciel3").graph(), get_instance("myciel4").graph()
    )
    pool = chromatic(graph, "cdcl-incremental", split_components=True)
    scratch = chromatic(graph, "cdcl-scratch")
    assert scratch.status == "OPTIMAL"
    assert pool.status == "OPTIMAL"
    assert pool.chromatic_number == scratch.chromatic_number == 5
    # One persistent solver per component, visible in the merged result.
    assert len(pool.components) == 2
    assert pool.solvers_created == 2
    for trace in pool.components:
        assert trace.status == "OPTIMAL"
        assert trace.solvers_created == 1
        assert trace.queries, "component descent must have queried the solver"
    assert pool.provenance.backend == "cdcl-incremental"
    assert pool.provenance.config["split_components"] is True
    # The whole-kernel run keeps its historical single-solver shape.
    whole = chromatic(graph, "cdcl-incremental", split_components=False)
    assert whole.chromatic_number == 5
    assert whole.solvers_created <= 1
    assert whole.components == []


def test_pool_respects_max_colors_cap():
    graph = disjoint_union(
        get_instance("myciel3").graph(), get_instance("myciel4").graph()
    )
    capped = (Pipeline()
              .solve(backend="cdcl-incremental", time_limit=120)
              .run(ChromaticProblem(graph, max_colors=4)))
    assert capped.status == "UNSAT"  # myciel4 needs 5
    exact = (Pipeline()
             .solve(backend="cdcl-incremental", time_limit=120)
             .run(ChromaticProblem(graph, max_colors=5)))
    assert exact.status == "OPTIMAL"
    assert exact.chromatic_number == 5


def test_pool_threads_agree_with_sequential():
    # All three components have clique bound 2 (mycielskians and odd
    # cycles are triangle-free), so peeling at the union's clique bound
    # dissolves none of them and the kernel keeps 3 components.
    graph = disjoint_union(
        get_instance("myciel3").graph(),
        get_instance("myciel4").graph(),
        cycle_graph(7),
    )
    sequential = chromatic(graph, "cdcl-incremental", split_components=True)
    threaded = chromatic(
        graph, "cdcl-incremental", split_components=True, pool_threads=3
    )
    assert sequential.status == threaded.status == "OPTIMAL"
    assert sequential.chromatic_number == threaded.chromatic_number
    assert len(threaded.components) == len(sequential.components) == 3
    assert is_proper(graph, threaded.coloring)


def test_pool_processes_agree_with_threads_and_sequential():
    """The process tier is answer-identical to the in-process tiers."""
    graph = disjoint_union(
        get_instance("myciel3").graph(),
        get_instance("myciel4").graph(),
        cycle_graph(7),
    )
    sequential = chromatic(graph, "cdcl-incremental", split_components=True)
    processes = chromatic(
        graph, "cdcl-incremental", split_components=True, pool_jobs=3
    )
    assert sequential.status == processes.status == "OPTIMAL"
    assert sequential.chromatic_number == processes.chromatic_number == 5
    assert len(processes.components) == 3
    for trace in processes.components:
        assert trace.status == "OPTIMAL"
    assert is_proper(graph, processes.coloring)
    assert len(set(processes.coloring.values())) == 5


def test_pool_unsat_early_exit_interrupts_threaded_siblings(monkeypatch):
    """Regression: a definitive UNSAT from one component must cancel the
    in-flight sibling descents instead of letting them run to their own
    deadlines.  The big component is pinned in a stop-aware stall; the
    only way the test finishes fast is the pool broadcasting the small
    component's UNSAT."""
    import time as time_mod

    graph = disjoint_union(mycielski_graph(5), mycielski_graph(3))
    real = ComponentSessionPool._solve_component
    interrupted = []

    def stalled(self, index, limit, strategy, max_colors):
        if index == 0:  # largest-first: index 0 is myciel5
            deadline = time_mod.monotonic() + 30.0
            while time_mod.monotonic() < deadline:
                if self._stop.is_set():
                    interrupted.append(index)
                    break
                time_mod.sleep(0.01)
        return real(self, index, limit, strategy, max_colors)

    monkeypatch.setattr(ComponentSessionPool, "_solve_component", stalled)
    t0 = time_mod.monotonic()
    with ComponentSessionPool(graph, threads=2) as pool:
        result = pool.chromatic(max_colors=3)  # myciel3 is UNSAT at 3, fast
    assert time_mod.monotonic() - t0 < 20.0
    assert interrupted == [0], "sibling descent was not interrupted"
    assert result.status == "UNSAT"
    assert not result.cancelled  # UNSAT is definitive, not a cancellation
    assert not result.degraded


def test_pool_unsat_early_exit_kills_process_siblings(monkeypatch):
    """Same regression on the process tier: the worker solving the big
    component is stalled via the fault seam; the small component's
    UNSAT must terminate it rather than wait the stall out."""
    import json
    import time as time_mod

    stall = [{"point": "racer", "kind": "sleep", "at": 1,
              "seconds": 30.0, "match": "component:0"}]
    monkeypatch.setenv("REPRO_FAULTS", json.dumps(stall))
    graph = disjoint_union(mycielski_graph(5), mycielski_graph(3))
    t0 = time_mod.monotonic()
    with ComponentSessionPool(graph, jobs=2) as pool:
        result = pool.chromatic(max_colors=3)
    assert time_mod.monotonic() - t0 < 20.0
    assert result.status == "UNSAT"
    # The stalled sibling was killed before settling: no trace for it.
    assert [trace.index for trace in result.components] == [1]
    assert not result.cancelled
    assert not result.degraded


def test_connected_kernel_falls_back_to_whole_kernel_descent():
    result = chromatic(
        mycielski_graph(4), "cdcl-incremental", split_components=True
    )
    assert result.status == "OPTIMAL" and result.chromatic_number == 5
    assert result.components == []  # pool did not engage
    assert result.solvers_created == 1


def test_pool_cancel_returns_best_so_far():
    graph = disjoint_union(mycielski_graph(4), mycielski_graph(4))
    pool = ComponentSessionPool(graph, cancel=lambda: True)
    result = pool.chromatic()
    assert result.cancelled
    assert result.status in ("FEASIBLE", "UNKNOWN")
    assert result.coloring is not None  # the heuristic incumbents survive
    assert is_proper(graph, result.coloring)


def test_pool_rejects_growth_unsafe_sbp():
    from repro.api import PipelineConfig, SymmetryConfig

    config = PipelineConfig(symmetry=SymmetryConfig(sbp_kind="nu"))
    with pytest.raises(ValueError, match="growth-safe"):
        ComponentSessionPool(disjoint_union(queens_graph(4, 4), wheel_graph(6)),
                             config=config)
    # Through the backend the same config silently falls back to the
    # whole-kernel descent instead of erroring.
    result = (
        Pipeline()
        .symmetry(sbp_kind="nu")
        .solve(backend="cdcl-incremental", time_limit=120)
        .run(ChromaticProblem(disjoint_union(queens_graph(4, 4), wheel_graph(6))))
    )
    assert result.status == "OPTIMAL"
    assert result.components == []
