"""Unit tests for the named variable pool."""

import pytest

from repro.core.variables import VariablePool


def test_fresh_is_consecutive():
    pool = VariablePool()
    assert pool.fresh() == 1
    assert pool.fresh() == 2
    assert pool.num_vars == 2


def test_start_offset():
    pool = VariablePool(start=10)
    assert pool.fresh() == 11


def test_named_allocation_and_lookup():
    pool = VariablePool()
    x = pool.new("x", 1, 2)
    assert pool.lookup("x", 1, 2) == x
    assert pool.name_of(x) == ("x", 1, 2)


def test_duplicate_key_rejected():
    pool = VariablePool()
    pool.new("k")
    with pytest.raises(KeyError):
        pool.new("k")


def test_get_or_new_idempotent():
    pool = VariablePool()
    a = pool.get_or_new("y", 3)
    b = pool.get_or_new("y", 3)
    assert a == b


def test_contains_and_len():
    pool = VariablePool()
    pool.new("a")
    pool.fresh()
    assert "a" in pool
    assert "b" not in pool
    assert len(pool) == 2


def test_single_element_key_unwrapped():
    pool = VariablePool()
    v = pool.new("solo")
    assert pool.lookup("solo") == v
    assert pool.name_of(v) == "solo"


def test_items_enumerates_named():
    pool = VariablePool()
    a = pool.new("a")
    pool.fresh()  # anonymous, not in items
    assert dict(pool.items()) == {"a": a}


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        VariablePool(start=-1)
