"""The example scripts must run cleanly (they are user-facing docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "register_allocation.py",
        "exam_timetabling.py",
        "frequency_assignment.py",
        "pcb_testing.py",
    ],
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_reports_chromatic_number():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert "chromatic number = 5" in result.stdout


def test_register_allocation_budget_check():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "register_allocation.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert "does NOT fit" in result.stdout
    assert "fits" in result.stdout
