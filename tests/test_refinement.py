"""Equitable partition refinement tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import queens_graph
from repro.graphs.graph import Graph
from repro.symmetry.refinement import (
    OrderedPartition,
    individualize,
    is_equitable,
    refine,
)


def test_unit_partition():
    part = OrderedPartition.unit(4)
    assert part.cells == [[0, 1, 2, 3]]
    assert not part.is_discrete
    assert part.first_non_singleton() == 0


def test_from_colors():
    part = OrderedPartition.from_colors([1, 0, 1, 0])
    assert part.cells == [[1, 3], [0, 2]]
    assert part.cell_of[0] == 1


def test_partition_validation():
    with pytest.raises(ValueError):
        OrderedPartition([[0, 1], [1, 2]], 3)
    with pytest.raises(ValueError):
        OrderedPartition([[0], []], 1)


def test_labeling_requires_discrete():
    part = OrderedPartition([[1], [0]], 2)
    assert part.labeling() == [1, 0]
    with pytest.raises(ValueError):
        OrderedPartition.unit(2).labeling()


def test_refine_path_graph():
    # Path 0-1-2: endpoints split from the middle vertex.
    g = Graph.from_edges(3, [(0, 1), (1, 2)])
    refined = refine(g, OrderedPartition.unit(3))
    assert is_equitable(g, refined)
    shapes = sorted(len(c) for c in refined.cells)
    assert shapes == [1, 2]


def test_refine_regular_graph_stays_coarse():
    # Cycles are regular: the unit partition is already equitable.
    g = Graph.from_edges(5, [(i, (i + 1) % 5) for i in range(5)])
    refined = refine(g, OrderedPartition.unit(5))
    assert len(refined.cells) == 1


def test_refine_respects_initial_colors():
    g = Graph.from_edges(4, [(0, 1), (2, 3)])
    start = OrderedPartition.from_colors([0, 0, 1, 1])
    refined = refine(g, start)
    assert is_equitable(g, refined)
    for cell in refined.cells:
        colors = {0 if v < 2 else 1 for v in cell}
        assert len(colors) == 1  # never merges across initial colors


def test_individualize():
    part = OrderedPartition.unit(3)
    child = individualize(part, 0, 1)
    assert child.cells == [[1], [0, 2]]
    with pytest.raises(ValueError):
        individualize(part, 0, 99)


def test_individualize_singleton_noop():
    part = OrderedPartition([[0], [1, 2]], 3)
    child = individualize(part, 0, 0)
    assert child.cells == part.cells


def test_refine_after_individualization():
    g = Graph.from_edges(4, [(i, (i + 1) % 4) for i in range(4)])  # C4
    part = refine(g, OrderedPartition.unit(4))
    assert len(part.cells) == 1
    child = refine(g, individualize(part, 0, 0), active=[0])
    assert is_equitable(g, child)
    # Individualizing one vertex of C4 separates its antipode.
    assert sorted(len(c) for c in child.cells) == [1, 1, 2]


def test_shape_and_copy():
    part = OrderedPartition([[0, 1], [2]], 3)
    assert part.shape() == [2, 1]
    dup = part.copy()
    dup.cells[0].append(99)
    assert part.cells[0] == [0, 1]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=9), st.data())
def test_refinement_is_equitable_on_random_graphs(n, data):
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if data.draw(st.booleans()):
                g.add_edge(u, v)
    refined = refine(g, OrderedPartition.unit(n))
    assert is_equitable(g, refined)
    # Refinement of an equitable partition is stable (idempotent shapes).
    again = refine(g, refined)
    assert again.shape() == refined.shape()


def test_refinement_invariant_under_relabeling():
    g = queens_graph(3, 3)
    perm = [8, 6, 7, 2, 0, 1, 5, 3, 4]
    h = g.relabel(perm)
    shape_g = refine(g, OrderedPartition.unit(9)).shape()
    shape_h = refine(h, OrderedPartition.unit(9)).shape()
    assert shape_g == shape_h
