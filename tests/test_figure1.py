"""Figure 1 reproduction tests: the exact counts from the paper's example."""

from repro.experiments.figure1 import (
    figure1_counts,
    figure1_graph,
    render_figure1,
)


def test_figure1_graph_shape():
    g = figure1_graph()
    assert g.num_vertices == 4
    assert g.num_edges == 4
    # V1 V2 V3 form a clique, V4 hangs off V3.
    assert g.has_edge(0, 1) and g.has_edge(0, 2) and g.has_edge(1, 2)
    assert g.has_edge(2, 3)
    assert not g.has_edge(0, 3) and not g.has_edge(1, 3)


def test_counts_match_paper_narrative():
    rows = {r.sbp_kind: r for r in figure1_counts()}
    # Free color permutation: 2 partitions x P(4,3) ordered color choices.
    assert rows["none"].optimal_allowed == 48
    # NU: used colors form a prefix -> 3! orderings per partition.
    assert rows["nu"].optimal_allowed == 12
    # CA: the size-2 class takes color 1; singletons split 2 ways.
    assert rows["ca"].optimal_allowed == 4
    # LI: unique assignment per partition.
    assert rows["li"].optimal_allowed == 2
    # Monotone strength hierarchy.
    assert (
        rows["none"].optimal_allowed
        > rows["nu"].optimal_allowed
        > rows["ca"].optimal_allowed
        > rows["li"].optimal_allowed
    )
    # SC prunes but is instance-lucky rather than complete.
    assert rows["sc"].optimal_allowed < rows["none"].optimal_allowed
    # Combinations never admit more than their parts.
    assert rows["nu+sc"].optimal_allowed <= min(
        rows["nu"].optimal_allowed, rows["sc"].optimal_allowed
    )


def test_every_construction_keeps_an_optimum():
    for row in figure1_counts():
        assert row.optimal_allowed >= 1, row.sbp_kind


def test_render():
    text = render_figure1(figure1_counts())
    assert "none" in text and "li" in text
