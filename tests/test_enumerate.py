"""Solution enumeration tests — mechanical Figure-1-style counting."""

import pytest

from repro.coloring.encoding import encode_coloring
from repro.coloring.enumerate import (
    count_colorings,
    distinct_colorings,
    enumerate_models,
)
from repro.core.formula import Formula
from repro.experiments.figure1 import figure1_graph
from repro.graphs.graph import Graph
from repro.sbp.instance_independent import apply_sbp


def test_enumerate_models_simple():
    f = Formula(num_vars=2)
    f.add_clause([1, 2])
    models = list(enumerate_models(f, [1, 2]))
    assert len(models) == 3
    assert all(m[1] or m[2] for m in models)


def test_enumerate_models_projection():
    # Auxiliary variable 3 is free; projection onto {1,2} dedups it.
    f = Formula(num_vars=3)
    f.add_clause([1, 2])
    models = list(enumerate_models(f, [1, 2]))
    assert len(models) == 3


def test_enumerate_models_limit():
    f = Formula(num_vars=3)
    f.add_clause([1, 2, 3])
    assert len(list(enumerate_models(f, [1, 2, 3], limit=2))) == 2


def test_enumerate_empty_projection_rejected():
    f = Formula(num_vars=1)
    f.add_clause([1])
    with pytest.raises(ValueError):
        list(enumerate_models(f, []))


def test_count_matches_figure1():
    """Mechanical reproduction of Figure 1's 48 -> 12 -> 4 -> 2 chain."""
    graph = figure1_graph()
    base = encode_coloring(graph, 4)
    counts = {}
    for kind in ("none", "nu", "ca", "li"):
        counts[kind] = count_colorings(apply_sbp(base, kind), optimal_only=True)
    assert counts == {"none": 48, "nu": 12, "ca": 4, "li": 2}


def test_count_all_vs_optimal():
    graph = Graph.from_edges(2, [(0, 1)])
    enc = encode_coloring(graph, 2)
    assert count_colorings(enc) == 2  # (1,2) and (2,1)
    assert count_colorings(enc, optimal_only=True) == 2  # chi = 2 anyway


def test_distinct_colorings_are_proper():
    graph = figure1_graph()
    enc = apply_sbp(encode_coloring(graph, 4), "li")
    colorings = distinct_colorings(enc, limit=10)
    assert colorings
    for coloring in colorings:
        assert graph.is_proper_coloring(coloring)
