"""PB engine tests: propagation, backtracking, and fuzz vs brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formula import Formula
from repro.pb.engine import PBSolver
from repro.sat.brute import brute_force_solve


def _solve(formula):
    solver = PBSolver()
    if not solver.add_formula(formula):
        return "UNSAT", None
    result = solver.solve()
    return result.status, result.model


def test_cardinality_at_least():
    f = Formula(num_vars=3)
    f.add_at_least([1, 2, 3], 2)
    f.add_clause([-1])
    status, model = _solve(f)
    assert status == "SAT" and model[2] and model[3]


def test_exactly_one_propagates():
    f = Formula(num_vars=3)
    f.add_exactly_one([1, 2, 3])
    f.add_clause([-2])
    f.add_clause([-3])
    status, model = _solve(f)
    assert status == "SAT" and model[1]


def test_weighted_constraint_propagation():
    # 3a + b + c >= 3 forces a once b is false.
    f = Formula(num_vars=3)
    f.add_pb([(3, 1), (1, 2), (1, 3)], ">=", 3)
    f.add_clause([-2])
    status, model = _solve(f)
    assert status == "SAT" and model[1]


def test_conflicting_pb_unsat():
    f = Formula(num_vars=2)
    f.add_at_least([1, 2], 2)
    f.add_at_most([1, 2], 1)
    assert _solve(f)[0] == "UNSAT"


def test_equality_constraint():
    f = Formula(num_vars=4)
    f.add_pb([(1, v) for v in range(1, 5)], "=", 2)
    status, model = _solve(f)
    assert status == "SAT"
    assert sum(model.values()) == 2


def test_unit_pb_becomes_clause():
    f = Formula(num_vars=1)
    f.add_pb([(5, 1)], ">=", 3)
    status, model = _solve(f)
    assert status == "SAT" and model[1]


def test_unsatisfiable_at_load():
    solver = PBSolver()
    assert solver.add_linear_ge([(1, 1), (1, 2)], 3) is False
    assert solver.solve().is_unsat


def test_tautology_skipped():
    solver = PBSolver()
    assert solver.add_linear_ge([(1, 1)], 0)
    assert solver.solve().is_sat


def test_incremental_tightening():
    # Mimics the optimizer: repeatedly add objective bounds.
    f = Formula(num_vars=4)
    f.add_at_least([1, 2, 3, 4], 1)
    solver = PBSolver()
    assert solver.add_formula(f)
    count = 4
    while True:
        result = solver.solve()
        if result.is_unsat:
            break
        count = sum(result.model.values())
        ok = solver.add_linear_ge([(-1, v) for v in range(1, 5)], -(count - 1))
        if not ok:
            break
    assert count == 1


@st.composite
def random_pb_formula(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    f = Formula(num_vars=n)
    num_pb = draw(st.integers(min_value=1, max_value=5))
    for _ in range(num_pb):
        width = draw(st.integers(min_value=1, max_value=n))
        vs = draw(
            st.lists(
                st.integers(min_value=1, max_value=n),
                min_size=width, max_size=width, unique=True,
            )
        )
        terms = [
            (draw(st.integers(min_value=-4, max_value=4)),
             v * draw(st.sampled_from([1, -1])))
            for v in vs
        ]
        relation = draw(st.sampled_from([">=", "<=", "="]))
        f.add_pb(terms, relation, draw(st.integers(min_value=-4, max_value=5)))
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        width = draw(st.integers(min_value=1, max_value=3))
        f.add_clause(
            [
                draw(st.integers(min_value=1, max_value=n))
                * draw(st.sampled_from([1, -1]))
                for _ in range(width)
            ]
        )
    return f


@settings(max_examples=120, deadline=None)
@given(random_pb_formula())
def test_pb_engine_matches_brute_force(formula):
    expected = brute_force_solve(formula)
    status, model = _solve(formula)
    assert status == expected.status
    if status == "SAT":
        assert formula.evaluate(model)
