"""End-to-end simplification pipeline tests.

The pipeline stages (graph kernelization before encoding, CNF
simplification after encoding) must never change an answer — only how
fast it arrives.  These tests pin that invariant on the DIMACS-style
instance families the paper calls out as sparse (books, register
interference) plus the standard dense controls.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.sat_pipeline import chromatic_number_sat, sat_k_colorable
from repro.coloring.solve import find_chromatic_number, solve_coloring
from repro.graphs.generators import (
    book_graph,
    interference_graph,
    mycielski_graph,
    queens_graph,
)
from repro.graphs.graph import Graph

SPARSE_INSTANCES = [
    ("book", lambda: book_graph(40, 90, seed=3)),
    ("register", lambda: interference_graph(30, 60, 4, seed=1)),
    ("myciel3", lambda: mycielski_graph(3)),
    ("two-triangles", lambda: Graph.from_edges(
        6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])),
]


@pytest.mark.parametrize("name,make", SPARSE_INSTANCES)
def test_pipeline_preserves_chromatic_number(name, make):
    graph = make()
    raw = find_chromatic_number(graph, preprocess=False, reduce=False, time_limit=60)
    piped = find_chromatic_number(graph, time_limit=60)
    assert piped.status == raw.status == "OPTIMAL"
    assert piped.num_colors == raw.num_colors
    assert graph.is_proper_coloring(piped.coloring)


def test_default_pipeline_engages_on_sparse_graph():
    graph = book_graph(40, 90, seed=3)
    result = find_chromatic_number(graph, time_limit=60)
    info = result.pipeline
    assert info is not None and info.reduce and info.preprocess
    # Sparse book graphs peel away entirely at the clique bound.
    assert info.peeled_vertices > 0
    assert info.kernel_vertices < graph.num_vertices


def test_preprocess_reports_simplification_on_dense_graph():
    result = solve_coloring(queens_graph(4, 4), 5, sbp_kind="nu+sc", time_limit=60)
    info = result.pipeline
    assert info is not None and info.simplify is not None
    # The SC units must fold into the clause database.
    assert info.simplify.units_propagated >= 1
    assert info.simplify.clauses_after < info.simplify.clauses_before
    assert result.status == "OPTIMAL" and result.num_colors == 5


def test_reduced_unsat_budget():
    k4 = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
    result = solve_coloring(k4, 3, reduce=True, time_limit=30)
    assert result.status == "UNSAT" and result.num_colors is None


def test_reduced_components_colored_independently():
    # Two disjoint K4s: the kernel splits, each component is solved on
    # its own, and colors are reused across components.
    edges = []
    for base in (0, 4):
        edges += [(base + i, base + j) for i in range(4) for j in range(i + 1, 4)]
    g = Graph.from_edges(8, edges)
    result = solve_coloring(g, 5, reduce=True, time_limit=60)
    assert result.status == "OPTIMAL"
    assert result.num_colors == 4
    assert g.is_proper_coloring(result.coloring)


@pytest.mark.parametrize("preprocess,reduce", [(True, False), (False, True), (True, True)])
def test_sat_pipeline_stage_combinations(preprocess, reduce):
    g = mycielski_graph(3)
    result = chromatic_number_sat(
        g, preprocess=preprocess, reduce=reduce, time_limit=60
    )
    assert result.status == "OPTIMAL"
    assert result.chromatic_number == 4
    assert g.is_proper_coloring(result.coloring)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=7), st.integers(min_value=1, max_value=4),
       st.data())
def test_sat_decision_agrees_across_pipeline(n, k, data):
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if data.draw(st.booleans()):
                g.add_edge(u, v)
    baseline, _ = sat_k_colorable(g, k, preprocess=False, reduce=False)
    for preprocess, reduce in ((True, False), (True, True)):
        status, coloring = sat_k_colorable(g, k, preprocess=preprocess, reduce=reduce)
        assert status == baseline
        if status == "SAT":
            assert g.is_proper_coloring(coloring)
            assert max(coloring.values(), default=1) <= k
