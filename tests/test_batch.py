"""The batch subsystem: manifests, the fleet runner, and the CLI.

The slow/crashy backends come from ``tests/batch_plugins.py`` via the
batch plugin hook — CI cannot rely on a "naturally slow" instance
staying slow across hardware, so the timeout/fallback/retry paths are
driven by backends that misbehave deterministically.
"""

import json
import os

import pytest

from repro.__main__ import main as repro_main
from repro.api import ChromaticProblem, DecisionProblem
from repro.batch import (
    BatchRunner,
    GraphSpec,
    TaskSpec,
    as_task,
    load_manifest,
    solve_many,
)
from repro.experiments.instances import get_instance
from repro.experiments.runner import run_cell
from repro.graphs.dimacs import write_dimacs_graph
from repro.graphs.generators import mycielski_graph, queens_graph

PLUGIN = os.path.join(os.path.dirname(__file__), "batch_plugins.py")


# ---------------------------------------------------------------- manifests


def test_graph_spec_variants(tmp_path):
    col = str(tmp_path / "m3.col")
    write_dimacs_graph(mycielski_graph(3), col)
    assert GraphSpec.from_value(col).build().num_vertices == 11
    assert GraphSpec.from_value("myciel3").build().num_vertices == 11
    gen = GraphSpec.from_value({"generator": "queens", "args": [4, 4]})
    assert gen.build().num_edges == queens_graph(4, 4).num_edges
    kw = GraphSpec.from_value({"generator": "mycielski", "args": {"k": 3}})
    assert kw.build().num_vertices == 11
    inline = GraphSpec.from_value({"vertices": 3, "edges": [[0, 1], [1, 2]]})
    assert inline.build().num_edges == 2
    roundtrip = GraphSpec.from_value(inline.to_dict())
    assert roundtrip.build().num_edges == 2


def test_graph_spec_validation():
    with pytest.raises(ValueError, match="exactly one"):
        GraphSpec()
    with pytest.raises(ValueError, match="exactly one"):
        GraphSpec(path="a.col", instance="myciel3")
    with pytest.raises(ValueError, match="registered"):
        GraphSpec(generator="nonesuch")
    with pytest.raises(ValueError, match="unknown graph spec fields"):
        GraphSpec.from_value({"instance": "myciel3", "bogus": 1})


def test_task_spec_validation():
    graph = GraphSpec(instance="myciel3")
    with pytest.raises(ValueError, match="unknown problem kind"):
        TaskSpec(graph=graph, kind="nonesuch")
    with pytest.raises(ValueError, match="needs 'k'"):
        TaskSpec(graph=graph, kind="decision")
    with pytest.raises(ValueError, match="needs 'max_colors'"):
        TaskSpec(graph=graph, kind="budgeted")
    with pytest.raises(ValueError, match="unknown task fields"):
        TaskSpec.from_dict({"graph": "myciel3", "bogus": 1})
    with pytest.raises(ValueError, match="'graph'"):
        TaskSpec.from_dict({"kind": "chromatic"})
    task = TaskSpec.from_dict(
        {"graph": "myciel3", "kind": "budgeted", "max_colors": 5,
         "fallback": "cplex-bb,exact-dsatur"})
    assert task.kind == "budgeted-optimize"
    assert task.backends == ("cdcl-incremental", "cplex-bb", "exact-dsatur")
    again = TaskSpec.from_dict(task.to_dict())
    assert again == task


def test_unknown_backend_named_at_construction():
    with pytest.raises(ValueError, match="registered backends"):
        BatchRunner([{"graph": "myciel3", "backend": "nonesuch"}])
    with pytest.raises(ValueError, match="registered backends"):
        BatchRunner([{"graph": "myciel3", "fallback": ["nonesuch"]}])


def test_load_manifest_json_defaults_and_names(tmp_path):
    path = tmp_path / "m.json"
    path.write_text(json.dumps({
        "defaults": {"kind": "decision", "k": 4},
        "tasks": [
            {"graph": "myciel3"},
            {"graph": "myciel3"},
            {"graph": "queen5_5", "kind": "chromatic"},
        ],
    }))
    manifest = load_manifest(str(path))
    assert [t.name for t in manifest.tasks] == ["myciel3", "myciel3#2", "queen5_5"]
    assert manifest.tasks[0].kind == "decision"
    assert manifest.tasks[0].k == 4
    # chromatic override drops the decision default's meaning, not its k
    assert manifest.tasks[2].kind == "chromatic"


def test_load_manifest_jsonl_running_defaults(tmp_path):
    path = tmp_path / "m.jsonl"
    lines = [
        {"defaults": {"backend": "cdcl-scratch"}},
        {"graph": "myciel3"},
        {"defaults": {"backend": "cdcl-incremental"}},
        {"graph": "queen5_5"},
    ]
    path.write_text("\n".join(json.dumps(line) for line in lines))
    manifest = load_manifest(str(path))
    assert [t.backend for t in manifest.tasks] == [
        "cdcl-scratch", "cdcl-incremental"]


def test_as_task_accepts_problems():
    graph = mycielski_graph(3)
    chromatic = as_task(ChromaticProblem(graph))
    assert chromatic.kind == "chromatic"
    assert chromatic.graph.build().num_edges == graph.num_edges
    named = as_task(("my-task", DecisionProblem(graph, 4)))
    assert named.name == "my-task" and named.k == 4
    with pytest.raises(ValueError, match="cannot interpret"):
        as_task(42)


# ------------------------------------------------------------- fleet runner


def test_solve_many_inline_matches_known_answers():
    report = solve_many([
        {"graph": "myciel3"},
        {"graph": "myciel3", "kind": "decision", "k": 3},
        {"graph": {"generator": "queens", "args": [4, 4]},
         "kind": "budgeted", "max_colors": 6, "backend": "pb-pbs2"},
    ], jobs=0)
    statuses = [(r["task"], r["status"], r["num_colors"]) for r in report]
    # (solve_many keeps caller-supplied names as-is; only load_manifest
    # uniquifies duplicates — the tables rely on exact instance names.)
    assert statuses == [
        ("myciel3", "OPTIMAL", 4),
        ("myciel3", "UNSAT", None),
        ("queens(4,4)", "OPTIMAL", 5),
    ]
    assert report.summary["outcomes"] == {"ok": 3}
    assert [r["index"] for r in report] == [0, 1, 2]


def test_solve_many_streams_records_in_manifest_order(tmp_path):
    seen = []
    out = str(tmp_path / "out.jsonl")
    report = solve_many(
        [{"graph": "myciel3"}, {"graph": "queen5_5"}, {"graph": "myciel4",
          "kind": "decision", "k": 5}],
        jobs=2,
        on_record=lambda r: seen.append(r["index"]),
        jsonl_path=out,
    )
    assert seen == [0, 1, 2]
    lines = [json.loads(line) for line in open(out)]
    assert [line["task"] for line in lines[:-1]] == [
        "myciel3", "queen5_5", "myciel4"]
    assert "summary" in lines[-1]
    assert lines[-1]["summary"] == report.summary


def test_cooperative_timeout_promotes_to_fallback():
    report = solve_many(
        [{"graph": "myciel3", "backend": "dozy",
          "fallback": ["cdcl-incremental"]}],
        jobs=1, task_timeout=0.4, plugins=[PLUGIN],
    )
    record = report.records[0]
    assert record["status"] == "OPTIMAL" and record["num_colors"] == 4
    assert record["backend"] == "cdcl-incremental"
    assert [a["outcome"] for a in record["attempts"]] == ["timeout", "ok"]
    assert record["provenance"]["backend"] == "cdcl-incremental"
    assert report.summary["fallback_promotions"] == 1


def test_hard_kill_timeout_promotes_to_fallback():
    report = solve_many(
        [{"graph": "myciel3", "backend": "sleepy",
          "fallback": ["cdcl-incremental"]}],
        jobs=1, task_timeout=0.3, kill_grace=0.3, plugins=[PLUGIN],
    )
    record = report.records[0]
    assert record["status"] == "OPTIMAL" and record["num_colors"] == 4
    assert [a["outcome"] for a in record["attempts"]] == ["timeout", "ok"]


def test_timeout_without_fallback_reports_unknown():
    report = solve_many(
        [{"graph": "myciel3", "backend": "dozy"}],
        jobs=1, task_timeout=0.3, plugins=[PLUGIN],
    )
    record = report.records[0]
    assert record["outcome"] == "timeout"
    assert record["status"] == "UNKNOWN"
    assert record["timed_out"] is True


def test_inline_mode_times_out_cooperatively():
    report = solve_many(
        [{"graph": "myciel3", "backend": "dozy",
          "fallback": ["cdcl-incremental"]}],
        jobs=0, task_timeout=0.3, plugins=[PLUGIN],
    )
    record = report.records[0]
    assert record["status"] == "OPTIMAL"
    assert [a["outcome"] for a in record["attempts"]] == ["timeout", "ok"]


def test_worker_death_retries_then_succeeds(tmp_path, monkeypatch):
    marker = str(tmp_path / "crashed-once")
    monkeypatch.setenv("REPRO_CRASH_MARKER", marker)
    report = solve_many(
        [{"graph": "myciel3", "backend": "crash-once"}],
        jobs=1, plugins=[PLUGIN],
    )
    record = report.records[0]
    assert record["status"] == "OPTIMAL" and record["num_colors"] == 4
    assert [a["outcome"] for a in record["attempts"]] == ["died", "ok"]
    assert report.summary["retries"] == 1
    assert os.path.exists(marker)


def test_worker_death_exhausts_retries_then_falls_back(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CRASH_MARKER", "")  # crash-once crashes never
    report = solve_many(
        [{"graph": "myciel3", "backend": "always-crash",
          "fallback": ["cdcl-incremental"]}],
        jobs=1, retries=1, plugins=[PLUGIN],
    )
    record = report.records[0]
    assert record["status"] == "OPTIMAL"
    outcomes = [a["outcome"] for a in record["attempts"]]
    assert outcomes == ["died", "died", "ok"]  # retry, then promote


def test_worker_death_without_fallback_is_an_error():
    report = solve_many(
        [{"graph": "myciel3", "backend": "always-crash"}],
        jobs=1, retries=1, plugins=[PLUGIN],
    )
    record = report.records[0]
    assert record["outcome"] == "died"
    assert record["status"] == "ERROR"
    assert len(record["attempts"]) == 2


def test_failed_chain_keeps_best_partial_answer():
    # Attempt 1 (cdcl) times out on the hard K=6 UNSAT proof but has a
    # feasible coloring in hand; attempt 2 (always-crash) dies.  The
    # final record must keep attempt 1's bound, not the crash's ERROR.
    report = solve_many(
        [{"graph": "queen6_6", "fallback": ["always-crash"]}],
        jobs=1, task_timeout=1.0, retries=0, plugins=[PLUGIN],
    )
    record = report.records[0]
    assert record["outcome"] == "died"  # the chain's ending, honestly
    assert record["status"] == "FEASIBLE"  # ...but the bound survives
    assert record["degraded"] is True
    assert record["num_colors"] is not None
    assert record["backend"] == "cdcl-incremental"
    assert [a["outcome"] for a in record["attempts"]] == ["timeout", "died"]


def test_backend_exception_promotes_without_retry():
    # brute refuses queens(4,4) chromatic (k=2 already needs 32 > 22
    # encoding variables), so the chain must advance on "error".
    report = solve_many(
        [{"graph": {"generator": "queens", "args": [4, 4]},
          "backend": "brute", "fallback": ["cdcl-incremental"],
          "reduce": False}],
        jobs=1,
    )
    record = report.records[0]
    assert record["status"] == "OPTIMAL" and record["num_colors"] == 5
    assert [a["outcome"] for a in record["attempts"]] == ["error", "ok"]


def test_run_cell_batch_matches_sequential():
    instances = [get_instance(n) for n in ("myciel3", "myciel4", "queen5_5")]
    kwargs = dict(k=6, solver="pbs2", sbp_kind="nu", instance_dependent=False,
                  time_limit=30.0, detection_node_limit=20000)
    sequential = run_cell(instances, **kwargs)
    parallel = run_cell(instances, jobs=2, **kwargs)
    assert sequential.num_solved == parallel.num_solved == 3
    for left, right in zip(sequential.records, parallel.records):
        assert (left.instance, left.status, left.num_colors, left.solved) == (
            right.instance, right.status, right.num_colors, right.solved)


# ----------------------------------------------------- acceptance: CLI runs


def _acceptance_manifest(tmp_path) -> str:
    """>= 16 instances, one deterministically slow one with a fallback."""
    tasks = [
        {"graph": "myciel3"},
        {"graph": "myciel3", "kind": "decision", "k": 3},
        {"graph": "myciel3", "kind": "decision", "k": 4},
        {"graph": "queen5_5"},
        {"graph": "queen5_5", "kind": "decision", "k": 5},
        {"graph": {"generator": "queens", "args": [4, 4], "name": "q44"}},
        {"graph": {"generator": "queens", "args": [4, 5], "name": "q45"}},
        {"graph": {"generator": "mycielski", "args": [2], "name": "m2"}},
        {"graph": {"generator": "gnm", "args": {"n": 30, "m": 60, "seed": 3},
                   "name": "gnm30"}},
        {"graph": {"generator": "gnm", "args": {"n": 40, "m": 90, "seed": 4},
                   "name": "gnm40"}},
        {"graph": "huck", "kind": "decision", "k": 11},
        {"graph": "jean", "kind": "decision", "k": 10},
        {"graph": "jean", "kind": "budgeted", "max_colors": 11,
         "backend": "pb-pbs2", "sbp_kind": "nu+sc"},
        {"graph": "david", "kind": "budgeted", "max_colors": 12,
         "backend": "pb-pueblo", "sbp_kind": "nu"},
        {"graph": {"generator": "queens", "args": [3, 3], "name": "q33"},
         "backend": "exact-dsatur"},
        {"graph": {"generator": "mycielski", "args": [3], "name": "m3-scratch"},
         "backend": "cdcl-scratch"},
        # The injected slow instance: blocks until the task timeout,
        # then the fallback backend answers it.
        {"graph": "myciel3", "name": "slow-one", "backend": "dozy",
         "fallback": ["cdcl-incremental"]},
    ]
    path = tmp_path / "acceptance.json"
    path.write_text(json.dumps({"tasks": tasks}))
    return str(path)


def _run_cli(manifest: str, out: str, jobs: int) -> list:
    code = repro_main([
        "batch", manifest, "--jobs", str(jobs), "--task-timeout", "2",
        "--plugin", PLUGIN, "--out", out, "--quiet",
    ])
    assert code == 0
    return [json.loads(line) for line in open(out)]


def test_cli_jobs4_matches_jobs1_on_16_instance_manifest(tmp_path):
    """The PR's acceptance gate: --jobs 4 == --jobs 1, manifest order,
    with the slow instance timing out into its fallback backend."""
    manifest = _acceptance_manifest(tmp_path)
    parallel = _run_cli(manifest, str(tmp_path / "p.jsonl"), jobs=4)
    serial = _run_cli(manifest, str(tmp_path / "s.jsonl"), jobs=1)

    par_records, par_summary = parallel[:-1], parallel[-1]["summary"]
    ser_records = serial[:-1]
    assert len(par_records) == len(ser_records) == 17

    def key(record):
        prov = record.get("provenance", {})
        return (record["index"], record["task"], record["status"],
                record["num_colors"], record["backend"],
                record["outcome"], prov.get("backend"))

    assert [key(r) for r in par_records] == [key(r) for r in ser_records]
    # Deterministic manifest order, independent of completion order.
    assert [r["index"] for r in par_records] == list(range(17))
    # Every task conclusively answered (the slow one via its fallback).
    assert all(r["outcome"] == "ok" for r in par_records)
    slow = next(r for r in par_records if r["task"] == "slow-one")
    assert [a["outcome"] for a in slow["attempts"]] == ["timeout", "ok"]
    assert slow["backend"] == "cdcl-incremental"
    assert slow["provenance"]["backend"] == "cdcl-incremental"
    assert par_summary["fallback_promotions"] >= 1
    assert par_summary["jobs"] == 4


def test_cli_stdout_and_exit_codes(tmp_path, capsys):
    manifest = tmp_path / "m.json"
    manifest.write_text(json.dumps([{"graph": "myciel3"}]))
    code = repro_main(["batch", str(manifest), "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    record = json.loads(out.splitlines()[0])
    assert record["task"] == "myciel3" and record["status"] == "OPTIMAL"

    empty = tmp_path / "empty.json"
    empty.write_text("[]")
    assert repro_main(["batch", str(empty)]) == 2

    crashy = tmp_path / "crashy.json"
    crashy.write_text(json.dumps(
        [{"graph": "myciel3", "backend": "always-crash"}]))
    code = repro_main([
        "batch", str(crashy), "--plugin", PLUGIN, "--quiet",
        "--out", str(tmp_path / "crash.jsonl"),
    ])
    assert code == 1


def test_manifest_level_plugins_register_backends(tmp_path):
    manifest = tmp_path / "m.json"
    manifest.write_text(json.dumps({
        "plugins": [PLUGIN],
        "tasks": [{"graph": "myciel3", "backend": "dozy",
                   "fallback": ["cdcl-incremental"]}],
    }))
    loaded = load_manifest(str(manifest))
    assert loaded.plugins == (PLUGIN,)
    assert loaded.tasks[0].backend == "dozy"
