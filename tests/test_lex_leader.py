"""Lex-leader SBP tests: soundness (models preserved per orbit) and size."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formula import Formula
from repro.core.literals import lit_index
from repro.sat.brute import brute_force_count, brute_force_solve
from repro.sbp.lex_leader import (
    add_lex_leader_sbp,
    add_symmetry_breaking_predicates,
    generator_support_vars,
)
from repro.symmetry.detect import detect_symmetries
from repro.symmetry.permutation import Permutation


def var_swap(n, a, b):
    """Literal-index permutation swapping variables a and b."""
    mapping = {
        lit_index(a): lit_index(b), lit_index(b): lit_index(a),
        lit_index(-a): lit_index(-b), lit_index(-b): lit_index(-a),
    }
    return Permutation.from_mapping(2 * n, mapping)


def test_support_vars():
    p = var_swap(3, 1, 3)
    assert generator_support_vars(p) == [1, 3]


def test_swap_sbp_blocks_half_the_orbit():
    # (x1 | x2) with swap symmetry: SBP keeps 10 and kills 01... or the
    # converse; either way exactly the symmetric models drop.
    f = Formula(num_vars=2)
    f.add_clause([1, 2])
    before = brute_force_count(f)
    add_lex_leader_sbp(f, var_swap(2, 1, 2))
    # Aux chain variables add degrees of freedom; check satisfiability
    # of each original assignment instead of raw counts.
    assert before == 3
    kept = set()
    for x1 in (False, True):
        for x2 in (False, True):
            probe = f.copy()
            probe.add_clause([1 if x1 else -1])
            probe.add_clause([2 if x2 else -2])
            if brute_force_solve(probe).is_sat:
                kept.add((x1, x2))
    assert (True, True) in kept
    assert len(kept) == 2  # one of (01),(10) eliminated


def test_phase_shift_generator():
    # Flip symmetry on x1: SBP pins x1 to one phase.
    f = Formula(num_vars=2)
    f.add_clause([1, 2])
    f.add_clause([-1, 2])
    flip = Permutation([1, 0, 2, 3])
    added = add_lex_leader_sbp(f, flip)
    assert added == 1  # single unit clause (~x1)
    result = brute_force_solve(f)
    assert result.is_sat


def test_sbp_preserves_satisfiability_with_all_generators():
    f = Formula(num_vars=4)
    f.add_exactly_one([1, 2, 3, 4])
    report = detect_symmetries(f)
    added = add_symmetry_breaking_predicates(f, report.generators)
    assert added > 0
    result = brute_force_solve(f)
    assert result.is_sat


def test_support_cap_limits_size():
    n = 12
    mapping = {}
    for v in range(1, n, 2):
        mapping.update({
            lit_index(v): lit_index(v + 1), lit_index(v + 1): lit_index(v),
            lit_index(-v): lit_index(-(v + 1)), lit_index(-(v + 1)): lit_index(-v),
        })
    big = Permutation.from_mapping(2 * n, mapping)
    f1 = Formula(num_vars=n)
    f1.add_clause([1, 2])
    full = add_lex_leader_sbp(f1.copy(), big, support_cap=None)
    capped = add_lex_leader_sbp(f1.copy(), big, support_cap=2)
    assert capped < full


def test_degree_check():
    f = Formula(num_vars=1)
    f.add_clause([1])
    big = Permutation.identity(10)
    try:
        add_lex_leader_sbp(f, big)
        assert False, "expected ValueError"
    except ValueError:
        pass


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.data())
def test_sbp_soundness_on_random_symmetric_formulas(n, data):
    """For formulas symmetric under a var swap, adding the swap's SBP
    never changes satisfiability."""
    a, b = 1, 2
    f = Formula(num_vars=n)
    # Build clauses invariant under swapping variables a and b.
    for _ in range(data.draw(st.integers(min_value=1, max_value=4))):
        lits = data.draw(
            st.lists(
                st.integers(min_value=3, max_value=max(3, n)).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=0, max_size=2,
            )
        ) if n >= 3 else []
        sign = data.draw(st.sampled_from([1, -1]))
        f.add_clause(lits + [sign * a, sign * b])
        f.add_clause(lits + [sign * b, sign * a])
    status_before = brute_force_solve(f).status
    add_lex_leader_sbp(f, var_swap(n, a, b))
    assert brute_force_solve(f).status == status_before
