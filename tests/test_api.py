"""The repro.api surface: problems, configs, backends, pipelines, results.

Covers the API-redesign contract:

* problem value objects validate eagerly;
* every stage config rejects bad names with a ``ValueError`` naming the
  registered choices (never a deep ``KeyError``);
* the backend registry resolves names and aliases, and plugging in a
  new backend requires no call-site changes;
* pipelines are immutable builders, stages are reorderable, and every
  result carries per-stage stats and provenance;
* the legacy entry points are deprecation shims that agree with the
  API, including the ``max_colors=0`` infeasibility regression.
"""

import warnings

import pytest

from repro.api import (
    Backend,
    BudgetedOptimize,
    ChromaticProblem,
    DecisionProblem,
    Pipeline,
    PipelineConfig,
    Result,
    SHATTER_STAGE_ORDER,
    SolveConfig,
    SymmetryConfig,
    available_backends,
    get_backend,
    register_backend,
    solve_problem,
)
from repro.api.backends import _REGISTRY
from repro.graphs.generators import mycielski_graph, queens_graph
from repro.graphs.graph import Graph

TRIANGLE_PLUS = Graph.from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)], name="fig1")


# ------------------------------------------------------------------ problems
def test_problem_validation():
    with pytest.raises(ValueError, match="non-negative"):
        DecisionProblem(TRIANGLE_PLUS, -1)
    with pytest.raises(ValueError, match="non-negative"):
        BudgetedOptimize(TRIANGLE_PLUS, -2)
    with pytest.raises(ValueError, match="non-negative"):
        ChromaticProblem(TRIANGLE_PLUS, max_colors=-1)
    with pytest.raises(ValueError, match="Graph"):
        ChromaticProblem("not a graph")
    # Zero budgets are valid *input* (they mean infeasible, not error).
    assert BudgetedOptimize(TRIANGLE_PLUS, 0).max_colors == 0
    assert DecisionProblem(TRIANGLE_PLUS, 0).k == 0


# ------------------------------------------------------------------- configs
def test_bad_names_raise_value_error_with_choices():
    with pytest.raises(ValueError) as exc:
        SolveConfig(backend="minisat")
    assert "pb-pbs2" in str(exc.value) and "cdcl-incremental" in str(exc.value)
    with pytest.raises(ValueError) as exc:
        SymmetryConfig(sbp_kind="zz")
    assert "nu+sc" in str(exc.value)
    with pytest.raises(ValueError, match="linear"):
        SolveConfig(strategy="ternary")
    with pytest.raises(ValueError, match="pairwise"):
        Pipeline().encode(amo="commander")


def test_stage_order_validation():
    with pytest.raises(ValueError, match="permutation"):
        PipelineConfig(order=("reduce", "encode", "solve"))
    with pytest.raises(ValueError, match="start with"):
        PipelineConfig(order=("encode", "reduce", "sbp", "simplify", "detect", "solve"))
    # The historical Shatter order (detect before simplify) is legal.
    config = PipelineConfig(order=SHATTER_STAGE_ORDER)
    assert config.formula_stages() == ("sbp", "detect", "simplify")


# ------------------------------------------------------------------ registry
def test_registry_resolves_names_and_aliases():
    assert get_backend("pb-pbs2").name == "pb-pbs2"
    assert get_backend("pbs2").name == "pb-pbs2"  # legacy alias
    names = set(available_backends())
    assert {"pb-pbs2", "pb-galena", "pb-pueblo", "cplex-bb",
            "cdcl-incremental", "cdcl-scratch", "brute",
            "exact-dsatur"} <= names
    with pytest.raises(ValueError) as exc:
        get_backend("nope")
    assert "registered backends" in str(exc.value)


def test_new_backend_plugs_in_without_call_site_changes():
    class GreedyBackend(Backend):
        name = "test-greedy"
        description = "DSATUR heuristic as a (non-exact) backend"
        supports = ("chromatic",)
        sbp_kinds = ("none",)

        def run(self, problem, config, ctx):
            from repro.graphs.coloring_heuristics import dsatur

            coloring, ub = dsatur(problem.graph)
            return Result(
                status="SAT",  # feasible, optimality not proved
                num_colors=ub,
                coloring={v: c + 1 for v, c in coloring.items()},
            )

    register_backend(GreedyBackend())
    try:
        result = (Pipeline().solve(backend="test-greedy")
                  .run(ChromaticProblem(queens_graph(4, 4))))
        # A SAT answer from an optimization backend degrades to FEASIBLE
        # at the Pipeline boundary: verified coloring, no optimality proof.
        assert result.status == "FEASIBLE" and result.num_colors >= 5
        assert result.degraded and result.feasible
        assert result.provenance.backend == "test-greedy"
        # Unsupported problem kinds fail fast at the boundary.
        with pytest.raises(ValueError, match="decision"):
            Pipeline().solve(backend="test-greedy").run(
                DecisionProblem(TRIANGLE_PLUS, 3))
    finally:
        _REGISTRY.pop("test-greedy", None)


# ----------------------------------------------------------------- pipelines
def test_pipeline_builder_is_immutable():
    base = Pipeline().symmetry(sbp_kind="nu")
    specialized = base.solve(backend="pb-pueblo")
    assert base.config.solve.backend == "pb-pbs2"
    assert specialized.config.solve.backend == "pb-pueblo"
    assert specialized.config.symmetry.sbp_kind == "nu"


@pytest.mark.parametrize("backend", ["pb-pbs2", "pb-galena", "pb-pueblo", "cplex-bb"])
def test_budgeted_optimize_across_backends(backend):
    result = (Pipeline().solve(backend=backend, time_limit=30)
              .run(BudgetedOptimize(TRIANGLE_PLUS, 4)))
    assert result.status == "OPTIMAL" and result.num_colors == 3
    assert TRIANGLE_PLUS.is_proper_coloring(result.coloring)
    assert result.provenance.backend == backend


@pytest.mark.parametrize("backend,chi", [
    ("pb-pbs2", 4), ("cdcl-incremental", 4), ("cdcl-scratch", 4),
    ("exact-dsatur", 4),
])
def test_chromatic_across_backends(backend, chi):
    result = (Pipeline().solve(backend=backend, time_limit=60)
              .run(ChromaticProblem(mycielski_graph(3))))
    assert result.status == "OPTIMAL" and result.chromatic_number == chi


def test_decision_across_backends():
    for backend in ("pb-pbs2", "cdcl-incremental", "exact-dsatur"):
        sat = (Pipeline().solve(backend=backend, time_limit=30)
               .run(DecisionProblem(mycielski_graph(3), 4)))
        unsat = (Pipeline().solve(backend=backend, time_limit=30)
                 .run(DecisionProblem(mycielski_graph(3), 3)))
        assert sat.status == "SAT", backend
        assert unsat.status == "UNSAT", backend


def test_brute_backend_matches_cdcl_on_tiny_graph():
    tiny = Graph.from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
    brute = Pipeline().solve(backend="brute").run(ChromaticProblem(tiny))
    cdcl = (Pipeline().solve(backend="cdcl-incremental")
            .run(ChromaticProblem(tiny)))
    assert brute.status == "OPTIMAL"
    assert brute.chromatic_number == cdcl.chromatic_number == 3


def test_stage_order_is_honoured():
    problem = BudgetedOptimize(queens_graph(4, 4), 6)
    default = (Pipeline().reduce(False)
               .symmetry(sbp_kind="nu", instance_dependent=True)
               .solve(backend="pb-pbs2", time_limit=60))
    shatter = default.stage_order(*SHATTER_STAGE_ORDER)
    r_default = default.run(problem)
    r_shatter = shatter.run(problem)
    assert r_default.status == r_shatter.status == "OPTIMAL"
    assert r_default.num_colors == r_shatter.num_colors == 5
    # Default order simplifies first, so detect sees fewer clauses than
    # the Shatter order's raw encoding — both still find symmetries.
    assert r_default.detection is not None and r_shatter.detection is not None
    names_default = [s.name for s in r_default.stages]
    names_shatter = [s.name for s in r_shatter.stages]
    assert names_default.index("simplify") < names_default.index("detect")
    assert names_shatter.index("detect") < names_shatter.index("simplify")


def test_result_stages_and_provenance():
    pipeline = (Pipeline().symmetry(sbp_kind="nu+sc")
                .solve(backend="pb-pbs2", time_limit=60))
    result = pipeline.run(BudgetedOptimize(queens_graph(4, 4), 6))
    names = [s.name for s in result.stages]
    assert names[0] == "reduce" and names[-1] == "solve"
    assert "encode" in names and "simplify" in names
    assert result.total_seconds >= result.solve_seconds >= 0
    assert result.pipeline.preprocess
    prov = result.provenance
    assert prov.problem == "budgeted-optimize"
    assert prov.backend == "pb-pbs2"
    assert prov.config["sbp_kind"] == "nu+sc"
    assert prov.stage_order[0] == "reduce"
    # A fully peeled graph is solved by the reduce stage alone — the
    # stage trace records exactly that.
    peeled = pipeline.run(BudgetedOptimize(TRIANGLE_PLUS, 4))
    assert peeled.status == "OPTIMAL" and peeled.num_colors == 3
    assert [s.name for s in peeled.stages] == ["reduce"]
    assert peeled.pipeline.peeled_vertices == 4


def test_progress_and_cancellation():
    events = []
    result = (Pipeline().solve(backend="pb-pbs2", time_limit=30)
              .run(BudgetedOptimize(queens_graph(4, 4), 6),
                   on_progress=events.append))
    assert result.status == "OPTIMAL"
    assert any(e.stage == "encode" for e in events)
    assert any(e.stage == "solve" for e in events)
    # Cancelling immediately returns UNKNOWN with cancelled=True.
    cancelled = (Pipeline().solve(backend="pb-pbs2", time_limit=30)
                 .run(BudgetedOptimize(queens_graph(4, 4), 6),
                      cancel=lambda: True))
    assert cancelled.cancelled and cancelled.status == "UNKNOWN"


# ----------------------------------------------------- budgets / infeasibility
def test_zero_budget_is_unsat_not_one_color():
    g = mycielski_graph(3)
    for problem in (ChromaticProblem(g, max_colors=0), BudgetedOptimize(g, 0),
                    DecisionProblem(g, 0)):
        result = Pipeline().solve(backend="pb-pbs2").run(problem)
        assert result.status == "UNSAT", problem
        assert result.num_colors is None
    # The empty graph is trivially 0-colorable within a 0 budget.
    empty = ChromaticProblem(Graph(0), max_colors=0)
    result = Pipeline().solve(backend="pb-pbs2").run(empty)
    assert result.status == "OPTIMAL" and result.num_colors == 0


def test_find_chromatic_number_zero_budget_regression():
    # Regression: max_colors=0 used to be clamped to max(ub, 1) and
    # silently "solved" with one color.
    from repro.coloring.solve import find_chromatic_number

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        result = find_chromatic_number(mycielski_graph(3), max_colors=0)
        assert result.status == "UNSAT"
        assert result.num_colors is None
        # A cap below chi is likewise infeasible, never loosened.
        capped = find_chromatic_number(mycielski_graph(3), max_colors=3)
        assert capped.status == "UNSAT"


# ------------------------------------------------------------------- shims
def test_legacy_entry_points_are_deprecation_shims():
    from repro.coloring.solve import find_chromatic_number, solve_coloring

    with pytest.warns(DeprecationWarning, match="repro.api"):
        legacy = solve_coloring(TRIANGLE_PLUS, 4, time_limit=30)
    modern = Pipeline().reduce(False).solve(
        backend="pb-pbs2", time_limit=30).run(BudgetedOptimize(TRIANGLE_PLUS, 4))
    assert legacy.status == modern.status == "OPTIMAL"
    assert legacy.num_colors == modern.num_colors == 3

    with pytest.warns(DeprecationWarning, match="repro.api"):
        legacy_chi = find_chromatic_number(mycielski_graph(3), time_limit=60)
    assert legacy_chi.status == "OPTIMAL" and legacy_chi.num_colors == 4


def test_solve_problem_convenience():
    result = solve_problem(BudgetedOptimize(TRIANGLE_PLUS, 4))
    assert result.status == "OPTIMAL" and result.num_colors == 3
