"""Generic ILP branch-and-bound tests (the CPLEX-profile solver)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formula import Formula
from repro.ilp.branch_and_bound import BranchAndBoundSolver, solve_ilp
from repro.ilp.model import formula_to_ilp
from repro.sat.brute import brute_force_optimize, brute_force_solve


def test_model_shapes():
    f = Formula(num_vars=3)
    f.add_clause([1, -2])
    f.add_pb([(2, 1), (1, 3)], "=", 2)
    f.set_objective([(1, 1), (1, -3)])
    model = formula_to_ilp(f)
    assert model.num_vars == 3
    assert model.row_count() == 3  # clause + two rows for the equality
    assert model.objective_offset == 1  # from the negative literal


def test_simple_optimum():
    f = Formula(num_vars=4)
    f.add_clause([1, 2])
    f.add_clause([3, 4])
    f.set_objective([(1, v) for v in range(1, 5)])
    result = solve_ilp(f)
    assert result.is_optimal and result.best_value == 2


def test_infeasible():
    f = Formula(num_vars=1)
    f.add_clause([1])
    f.add_clause([-1])
    f.set_objective([(1, 1)])
    assert solve_ilp(f).is_unsat


def test_decide():
    f = Formula(num_vars=2)
    f.add_exactly_one([1, 2])
    result = BranchAndBoundSolver().decide(f)
    assert result.is_sat
    assert f.evaluate(result.model)


def test_node_limit_unknown():
    # A formula that needs branching, squeezed to zero nodes.
    f = Formula(num_vars=6)
    for i in range(1, 6):
        f.add_exactly_one([i, i + 1])
    f.set_objective([(1, v) for v in range(1, 7)])
    result = BranchAndBoundSolver(node_limit=0).optimize(f)
    assert result.is_unknown


def test_invalid_branch_rule():
    with pytest.raises(ValueError):
        BranchAndBoundSolver(branch_rule="spam")


def test_objective_required_for_optimize():
    f = Formula(num_vars=1)
    f.add_clause([1])
    with pytest.raises(ValueError):
        BranchAndBoundSolver().optimize(f)


@st.composite
def ilp_problem(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    f = Formula(num_vars=n)
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        width = draw(st.integers(min_value=1, max_value=n))
        vs = draw(st.lists(st.integers(min_value=1, max_value=n),
                           min_size=width, max_size=width, unique=True))
        terms = [
            (draw(st.integers(min_value=-3, max_value=3)),
             v * draw(st.sampled_from([1, -1])))
            for v in vs
        ]
        f.add_pb(terms, draw(st.sampled_from([">=", "<=", "="])),
                 draw(st.integers(min_value=-2, max_value=4)))
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        f.add_clause([
            draw(st.integers(min_value=1, max_value=n)) * draw(st.sampled_from([1, -1]))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        ])
    f.set_objective(
        [(draw(st.integers(min_value=1, max_value=3)),
          v * draw(st.sampled_from([1, -1])))
         for v in range(1, n + 1)]
    )
    return f


@settings(max_examples=40, deadline=None)
@given(ilp_problem())
def test_bb_matches_brute_force(formula):
    expected = brute_force_optimize(formula)
    actual = solve_ilp(formula)
    assert actual.status == expected.status
    if actual.is_optimal:
        assert actual.best_value == expected.best_value
        assert formula.evaluate(actual.best_model)


@settings(max_examples=25, deadline=None)
@given(ilp_problem())
def test_bb_decide_matches_brute_force(formula):
    expected = brute_force_solve(formula)
    actual = BranchAndBoundSolver().decide(formula)
    assert actual.status == expected.status
