"""CNF preprocessing tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formula import Formula
from repro.sat.brute import brute_force_solve
from repro.sat.preprocessing import (
    preprocess,
    simplify_formula,
    subsume_clauses,
)


def test_unit_propagation_chain():
    f = Formula(num_vars=3)
    f.add_clause([1])
    f.add_clause([-1, 2])
    f.add_clause([-2, 3])
    result = preprocess(f)
    assert not result.is_unsat
    assert result.forced == {1: True, 2: True, 3: True}
    assert result.units_propagated == 3
    assert not result.formula.clauses


def test_unit_conflict_unsat():
    f = Formula(num_vars=1)
    f.add_clause([1])
    f.add_clause([-1])
    assert preprocess(f).is_unsat


def test_pure_literal_elimination():
    f = Formula(num_vars=3)
    f.add_clause([1, 2])
    f.add_clause([1, 3])
    f.add_clause([-2, -3])
    result = preprocess(f)
    # x1 is pure positive: gets fixed, its clauses vanish.
    assert result.forced.get(1) is True
    assert result.pure_eliminated >= 1


def test_subsumption():
    f = Formula(num_vars=3)
    f.add_clause([1, 2])
    f.add_clause([1, 2, 3])
    f.add_clause([-1, -2])
    f.add_clause([-1, -2, -3])
    result = preprocess(f)
    assert result.subsumed == 2


def test_self_subsuming_resolution():
    # (a | b) and (a | ~b | c) strengthen the second to (a | c).
    f = Formula(num_vars=3)
    f.add_clause([1, 2])
    f.add_clause([1, -2, 3])
    f.add_clause([-1, 2])  # keep the formula from collapsing to units
    result = preprocess(f)
    assert result.strengthened >= 1


def test_tautology_is_not_a_subsumer():
    # Regression: the old pairwise loop "strengthened" (2|~4) to (~4)
    # by resolving against the tautology (2|~2) — resolving on a
    # tautology yields the other clause back, never a strengthening.
    # This exact formula is SAT but used to preprocess to UNSAT.
    f = Formula(num_vars=4)
    f.add_clause([-1])
    f.add_clause([2, -2])
    f.add_clause([2, -4])
    f.add_clause([2, 4])
    assert brute_force_solve(f).status == "SAT"
    result = preprocess(f)
    assert not result.is_unsat
    assert result.tautologies_removed == 1
    model = result.extend_model({})
    assert f.evaluate(model)


def test_tautologies_dropped_at_subsumption_level():
    # Direct engine call: a tautology neither subsumes nor strengthens —
    # it is simply dropped ((2|~2) must not turn (2|~4) into (~4)).
    kept, subsumed, strengthened = subsume_clauses([(2, -2), (2, -4)])
    assert kept == [(2, -4)]
    assert subsumed == 0 and strengthened == 0


def test_strengthened_clauses_are_requeued():
    # Regression: the old loop sorted clauses by length once; a clause
    # strengthened mid-pass could shrink below the current pivot length
    # and its new subsumption/strengthening opportunities were skipped.
    # (1|2) strengthens (-1|2) to (2); the re-queued unit (2) must then
    # subsume (2|3) and (2|4|5) in the same call.
    kept, subsumed, strengthened = subsume_clauses(
        [(1, 2), (-1, 2), (2, 3), (2, 4, 5)]
    )
    assert strengthened >= 1
    # The unit (2) then subsumes everything else, including the clause
    # it was strengthened from.
    assert kept == [(2,)]
    assert subsumed == 3


def test_preprocess_reaches_unit_fixpoint_after_strengthening():
    f = Formula(num_vars=5)
    f.add_clause([1, 2])
    f.add_clause([-1, 2])
    f.add_clause([2, 3])
    f.add_clause([2, 4, 5])
    result = preprocess(f)
    assert not result.is_unsat
    assert result.forced[2] is True
    assert result.formula.clauses == []


def test_variable_elimination_round_trip():
    # x2 is resolved away; the model must still assign it correctly.
    f = Formula(num_vars=3)
    f.add_clause([1, 2])
    f.add_clause([-2, 3])
    result = preprocess(f)
    assert not result.is_unsat
    model = result.extend_model({})
    assert f.evaluate(model)


def test_rejects_pb():
    f = Formula(num_vars=2)
    f.add_pb([(1, 1), (1, 2)], ">=", 1)
    with pytest.raises(ValueError):
        preprocess(f)


def _random_cnf(data, max_vars=6, max_clauses=12, max_width=3):
    n = data.draw(st.integers(min_value=1, max_value=max_vars))
    f = Formula(num_vars=n)
    for _ in range(data.draw(st.integers(min_value=1, max_value=max_clauses))):
        width = data.draw(st.integers(min_value=1, max_value=max_width))
        f.add_clause([
            data.draw(st.integers(min_value=1, max_value=n))
            * data.draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ])
    return f


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_preprocessing_preserves_satisfiability(data):
    f = _random_cnf(data)
    before = brute_force_solve(f).status
    result = preprocess(f)
    if result.is_unsat:
        assert before == "UNSAT"
        return
    # Forced assignment must extend to a model iff the original had one.
    reduced = result.formula.copy()
    for var, value in result.forced.items():
        reduced.add_clause([var if value else -var])
    after = brute_force_solve(reduced).status
    assert after == before


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_preprocessing_model_round_trip(data):
    # Stronger than equisatisfiability: a model of the reduced formula,
    # run through extend_model, must satisfy the *original* formula —
    # including variables removed by pure-literal and variable
    # elimination.
    f = _random_cnf(data)
    before = brute_force_solve(f).status
    result = preprocess(f)
    if result.is_unsat:
        assert before == "UNSAT"
        return
    assert before == "SAT"
    sub = brute_force_solve(result.formula)
    assert sub.status == "SAT"
    model = result.extend_model(sub.model)
    assert set(model) == set(range(1, f.num_vars + 1))
    assert f.evaluate(model)


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_simplify_formula_is_model_preserving(data):
    # simplify_formula must keep mixed CNF+PB formulas logically
    # equivalent: same status, and every model of the simplified
    # formula satisfies the original directly (no reconstruction).
    f = _random_cnf(data, max_vars=5, max_clauses=10)
    if data.draw(st.booleans()):
        lits = [
            v * data.draw(st.sampled_from([1, -1]))
            for v in range(1, f.num_vars + 1)
        ]
        f.add_pb([(1, l) for l in lits], ">=",
                 data.draw(st.integers(min_value=0, max_value=f.num_vars)))
    before = brute_force_solve(f)
    out, stats = simplify_formula(f)
    if out is None:
        assert before.status == "UNSAT"
        return
    assert out.num_vars == f.num_vars
    # Forced literals are substituted into PB constraints, so a
    # constraint may shrink or disappear (when trivially satisfied),
    # but never multiply.
    assert len(out.pb_constraints) <= len(f.pb_constraints)
    after = brute_force_solve(out)
    assert after.status == before.status
    if after.status == "SAT":
        assert f.evaluate(after.model)


def test_simplify_formula_keeps_objective():
    f = Formula(num_vars=3)
    f.add_clause([1])
    f.add_clause([-1, 2])
    f.add_clause([2, 3])
    f.set_objective([(1, 2), (1, 3)])
    out, stats = simplify_formula(f)
    assert out is not None
    assert out.objective == f.objective
    assert stats.units_propagated >= 2
    # Units derived by propagation stay visible as unit clauses.
    unit_lits = {c.literals[0] for c in out.clauses if c.is_unit}
    assert {1, 2} <= unit_lits


def test_simplify_substitutes_forced_into_pb():
    # A forced true literal moves its coefficient onto the bound; a
    # forced false literal disappears from the terms.
    f = Formula(num_vars=4)
    f.add_clause([1])       # force 1 = True
    f.add_clause([-2])      # force 2 = False
    f.add_pb([(2, 1), (3, 2), (1, 3), (1, 4)], ">=", 3)
    out, stats = simplify_formula(f)
    assert out is not None
    assert stats.pb_tightened == 1
    (pb,) = out.pb_constraints
    assert pb.terms == ((1, 3), (1, 4))
    assert pb.relation == ">=" and pb.bound == 1  # 3 - coef(1) = 1
    # Units stay visible, so the conjunction is still equivalent.
    unit_lits = {c.literals[0] for c in out.clauses if c.is_unit}
    assert {1, -2} <= unit_lits


def test_simplify_drops_satisfied_pb():
    f = Formula(num_vars=3)
    f.add_clause([1])
    f.add_clause([2])
    f.add_pb([(1, 1), (1, 2)], ">=", 2)  # satisfied by the forced units
    out, stats = simplify_formula(f)
    assert out is not None
    assert out.pb_constraints == []
    assert stats.pb_satisfied == 1


def test_simplify_detects_pb_infeasible_under_units():
    f = Formula(num_vars=2)
    f.add_clause([-1])
    f.add_clause([-2])
    f.add_pb([(1, 1), (1, 2)], ">=", 1)  # both terms forced false
    out, stats = simplify_formula(f)
    assert out is None


def test_simplify_pb_equality_substitution():
    f = Formula(num_vars=3)
    f.add_clause([1])
    f.add_pb([(1, 1), (1, 2), (1, 3)], "=", 1)  # exactly-one, one forced
    out, stats = simplify_formula(f)
    assert out is not None
    (pb,) = out.pb_constraints
    assert pb.relation == "=" and pb.bound == 0
    assert pb.terms == ((1, 2), (1, 3))
