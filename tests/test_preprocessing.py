"""CNF preprocessing tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formula import Formula
from repro.sat.brute import brute_force_solve
from repro.sat.preprocessing import preprocess


def test_unit_propagation_chain():
    f = Formula(num_vars=3)
    f.add_clause([1])
    f.add_clause([-1, 2])
    f.add_clause([-2, 3])
    result = preprocess(f)
    assert not result.is_unsat
    assert result.forced == {1: True, 2: True, 3: True}
    assert result.units_propagated == 3
    assert not result.formula.clauses


def test_unit_conflict_unsat():
    f = Formula(num_vars=1)
    f.add_clause([1])
    f.add_clause([-1])
    assert preprocess(f).is_unsat


def test_pure_literal_elimination():
    f = Formula(num_vars=3)
    f.add_clause([1, 2])
    f.add_clause([1, 3])
    f.add_clause([-2, -3])
    result = preprocess(f)
    # x1 is pure positive: gets fixed, its clauses vanish.
    assert result.forced.get(1) is True
    assert result.pure_eliminated >= 1


def test_subsumption():
    f = Formula(num_vars=3)
    f.add_clause([1, 2])
    f.add_clause([1, 2, 3])
    f.add_clause([-1, -2])
    f.add_clause([-1, -2, -3])
    result = preprocess(f)
    assert result.subsumed == 2


def test_self_subsuming_resolution():
    # (a | b) and (a | ~b | c) strengthen the second to (a | c).
    f = Formula(num_vars=3)
    f.add_clause([1, 2])
    f.add_clause([1, -2, 3])
    f.add_clause([-1, 2])  # keep the formula from collapsing to units
    result = preprocess(f)
    assert result.strengthened >= 1


def test_rejects_pb():
    f = Formula(num_vars=2)
    f.add_pb([(1, 1), (1, 2)], ">=", 1)
    with pytest.raises(ValueError):
        preprocess(f)


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_preprocessing_preserves_satisfiability(data):
    n = data.draw(st.integers(min_value=1, max_value=6))
    f = Formula(num_vars=n)
    for _ in range(data.draw(st.integers(min_value=1, max_value=12))):
        width = data.draw(st.integers(min_value=1, max_value=3))
        f.add_clause([
            data.draw(st.integers(min_value=1, max_value=n))
            * data.draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ])
    before = brute_force_solve(f).status
    result = preprocess(f)
    if result.is_unsat:
        assert before == "UNSAT"
        return
    # Forced assignment must extend to a model iff the original had one.
    reduced = result.formula.copy()
    for var, value in result.forced.items():
        reduced.add_clause([var if value else -var])
    after = brute_force_solve(reduced).status
    assert after == before
