"""Section 4.3 comparators: Coudert, Benhamou NECSP, Mehrotra-Trick."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.coudert import coudert_chromatic_number
from repro.coloring.mehrotra_trick import (
    build_mt_formula,
    maximal_independent_sets,
    mt_chromatic_number,
)
from repro.coloring.necsp import necsp_chromatic_number, solve_necsp
from repro.graphs.generators import mycielski_graph, queens_graph
from repro.graphs.graph import Graph


def brute_chromatic(graph, limit=6):
    for k in range(1, limit + 1):
        for a in itertools.product(range(k), repeat=graph.num_vertices):
            if all(a[u] != a[v] for u, v in graph.edges()):
                return k
    return limit + 1


# ---------------------------------------------------------------- Coudert
def test_coudert_known_instances():
    assert coudert_chromatic_number(mycielski_graph(3)).chromatic_number == 4
    assert coudert_chromatic_number(queens_graph(5, 5)).chromatic_number == 5


def test_coudert_result_proper_and_optimal():
    g = queens_graph(5, 5)
    result = coudert_chromatic_number(g)
    assert result.optimal
    assert g.is_proper_coloring(result.coloring)


def test_coudert_empty_graph():
    assert coudert_chromatic_number(Graph(0)).chromatic_number == 0


def test_coudert_node_limit():
    result = coudert_chromatic_number(queens_graph(6, 6), node_limit=1)
    assert result.chromatic_number >= 7  # incumbent from DSATUR


# ------------------------------------------------------------------ NECSP
def test_necsp_decision():
    k4 = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
    assert solve_necsp(k4, 4).status == "SAT"
    assert solve_necsp(k4, 3).status == "UNSAT"
    assert solve_necsp(k4, 0).status == "UNSAT"
    assert solve_necsp(Graph(0), 1).status == "SAT"


def test_necsp_assignment_proper():
    g = queens_graph(5, 5)
    result = solve_necsp(g, 5)
    assert result.status == "SAT"
    assert g.is_proper_coloring(result.assignment)


def test_necsp_chromatic_known():
    assert necsp_chromatic_number(mycielski_graph(3)).chromatic_number == 4
    assert necsp_chromatic_number(queens_graph(5, 5)).chromatic_number == 5


def test_value_symmetry_breaking_prunes():
    """Benhamou's claim: interchangeable-value branching explores fewer
    nodes on UNSAT queries (where the whole tree must be refuted)."""
    g = queens_graph(5, 5)
    with_sb = solve_necsp(g, 4, break_value_symmetry=True)
    without_sb = solve_necsp(g, 4, break_value_symmetry=False, node_limit=2_000_000)
    assert with_sb.status == "UNSAT"
    if without_sb.status == "UNSAT":
        assert with_sb.nodes_explored <= without_sb.nodes_explored


# ---------------------------------------------------------- Mehrotra-Trick
def test_mis_enumeration_triangle():
    triangle = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
    sets = maximal_independent_sets(triangle)
    assert sorted(sorted(s) for s in sets) == [[0], [1], [2]]


def test_mis_enumeration_path():
    path = Graph.from_edges(3, [(0, 1), (1, 2)])
    sets = {frozenset(s) for s in maximal_independent_sets(path)}
    assert sets == {frozenset({0, 2}), frozenset({1})}


def test_mis_limit():
    g = Graph(10)  # one maximal set: everything
    assert len(maximal_independent_sets(g)) == 1
    empty_graph_sets = maximal_independent_sets(Graph(0))
    assert empty_graph_sets == []


def test_mt_formula_shape():
    triangle = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
    columns = maximal_independent_sets(triangle)
    formula, var_map = build_mt_formula(triangle, columns)
    assert len(var_map) == 3
    assert len(formula.clauses) == 3  # one cover constraint per vertex
    assert len(formula.objective) == 3


def test_mt_chromatic_known():
    assert mt_chromatic_number(mycielski_graph(3)).chromatic_number == 4
    result = mt_chromatic_number(queens_graph(4, 4), time_limit=120)
    assert result.chromatic_number == 5
    assert queens_graph(4, 4).is_proper_coloring(result.coloring)


def test_mt_has_no_color_symmetry():
    """The paper: the MT formulation 'inherently breaks problem
    symmetries' — no K! color factor ever appears."""
    from repro.symmetry.detect import detect_symmetries

    g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])  # C4
    columns = maximal_independent_sets(g)
    formula, _ = build_mt_formula(g, columns)
    report = detect_symmetries(formula)
    # Aut(C4) has order 8; color symmetry would multiply by K! >= 6.
    assert report.order <= 8


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.data())
def test_all_baselines_agree(n, data):
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if data.draw(st.booleans()):
                g.add_edge(u, v)
    expected = brute_chromatic(g, limit=n)
    assert coudert_chromatic_number(g).chromatic_number == expected
    assert necsp_chromatic_number(g).chromatic_number == expected
    assert mt_chromatic_number(g).chromatic_number == expected
