"""The whole-program layer of ``repro.analysis``: fact extraction, the
project call graph, the interprocedural rules RPR008–RPR010, and the
incremental facts cache.

Fixture-driven like the per-file suite, but each scenario is a
*multi-module tree* under ``tests/analysis_fixtures/proj/<scenario>/``
(cross-file imports, the bug split across files), analyzed with
:func:`run_project` so the full pipeline — extraction, graph assembly,
propagation, suppression — is exercised end to end.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    build_call_graph,
    extract_module_facts,
    package_rel,
    render_json,
    run_project,
)
from repro.analysis.core import SourceFile

FIXTURES = Path(__file__).parent / "analysis_fixtures"
PROJ = FIXTURES / "proj"
SRC = Path(__file__).parent.parent / "src"


def scenario_findings(name: str) -> list:
    """(rel, rule_id) pairs for every finding in one scenario tree."""
    report = run_project([PROJ / name])
    return sorted(
        (result.rel, finding.rule_id)
        for result in report.files
        for finding in result.findings
    )


# --------------------------------------------------------------------------
# Interprocedural positives: the bug is split across files
# --------------------------------------------------------------------------


def test_rpr008_flags_callback_dropped_at_module_boundary():
    assert scenario_findings("rpr008_drop") == [
        ("api/facade.py", "RPR008"),
    ]


def test_rpr008_resolves_through_package_reexport():
    # ``from repro.sat import search`` where ``search`` lives in
    # ``repro/sat/engine.py`` and is re-exported by the package
    # ``__init__`` — resolution must chase the re-export chain.
    assert scenario_findings("rpr008_reexport") == [
        ("api/facade.py", "RPR008"),
    ]


def test_rpr008_flags_explicit_none_as_a_drop():
    assert scenario_findings("rpr008_explicit_none") == [
        ("pb/descent.py", "RPR008"),
    ]


def test_rpr009_flags_deadline_not_passed_to_blocking_callee():
    assert scenario_findings("rpr009_drop") == [
        ("api/driver.py", "RPR009"),
    ]


def test_rpr009_sees_transitively_blocking_callees():
    assert scenario_findings("rpr009_transitive") == [
        ("api/driver.py", "RPR009"),
    ]


def test_rpr010_flags_cross_module_set_order_taint():
    assert scenario_findings("rpr010_direct") == [
        ("coloring/chooser.py", "RPR010"),
    ]


def test_rpr010_propagates_taint_across_two_hops_with_witness():
    report = run_project([PROJ / "rpr010_chain"])
    findings = [
        f for r in report.files for f in r.findings
    ]
    assert [(f.rule_id,) for f in findings] == [("RPR010",)]
    finding = findings[0]
    assert "orbit_info" in finding.message
    # The witness chain names the middle hop and the root cause.
    assert "annotate" in finding.message
    assert "time.time()" in finding.message


# --------------------------------------------------------------------------
# Interprocedural negatives: forwarding/sorting/seeding make it clean
# --------------------------------------------------------------------------


@pytest.mark.parametrize(
    "scenario",
    [
        "rpr008_forward_ok",
        "rpr008_nested_ok",
        "rpr009_share_ok",
        "rpr009_nonblocking_ok",
        "rpr010_sorted_ok",
        "rpr010_seeded_ok",
    ],
)
def test_negative_scenario_is_clean(scenario):
    assert scenario_findings(scenario) == []


def test_interprocedural_finding_is_suppressible(tmp_path):
    tree = tmp_path / "case"
    shutil.copytree(PROJ / "rpr008_drop", tree)
    facade = tree / "repro" / "api" / "facade.py"
    text = facade.read_text()
    assert "search(formula)" in text
    facade.write_text(
        text.replace(
            "    return search(formula)  # should_stop never forwarded",
            "    # repro: allow[RPR008] wrapper is only used for warmup probes\n"
            "    return search(formula)",
        )
    )
    report = run_project([tree])
    findings = [f for r in report.files for f in r.findings]
    suppressed = [f for r in report.files for f in r.suppressed]
    assert findings == []
    assert [f.rule_id for f in suppressed] == ["RPR008"]


# --------------------------------------------------------------------------
# Call-graph structure
# --------------------------------------------------------------------------


def test_call_graph_resolves_cross_module_imports():
    report = run_project([PROJ / "rpr008_drop"])
    graph = report.graph
    assert "repro.api.facade:solve_formula" in graph.nodes
    assert "repro.sat.engine:search" in graph.nodes
    callees = {
        e.callee for e in graph.callees_of("repro.api.facade:solve_formula")
    }
    assert "repro.sat.engine:search" in callees
    # Entry points and loop propagation feed RPR008's reachability cone.
    assert "repro.api.facade:solve_formula" in graph.entry_points
    assert "repro.sat.engine:search" in graph.loop_bearing


def test_call_graph_loop_bearing_is_transitive():
    report = run_project([PROJ / "rpr009_transitive"])
    graph = report.graph
    assert "repro.graphs.refine:pump" in graph.loop_bearing
    assert "repro.graphs.refine:refine" in graph.loop_bearing


def test_call_graph_taint_is_transitive():
    report = run_project([PROJ / "rpr010_chain"])
    graph = report.graph
    assert graph.tainted("repro.graphs.clock:stamp")
    assert graph.tainted("repro.graphs.meta:annotate")
    assert "time.time()" in graph.taint_witness["repro.graphs.meta:annotate"]


def test_call_graph_export_is_deterministic_and_complete():
    first = run_project([PROJ / "rpr010_chain"]).graph.to_dict()
    second = run_project([PROJ / "rpr010_chain"]).graph.to_dict()
    assert first == second
    assert {"modules", "nodes", "edges", "unresolved_calls"} <= set(first)
    keys = [n["key"] for n in first["nodes"]]
    assert keys == sorted(keys)
    tainted = {n["key"] for n in first["nodes"] if n["tainted"]}
    assert "repro.graphs.clock:stamp" in tainted


def test_facts_extraction_classifies_params_and_calls():
    path = PROJ / "rpr008_drop" / "repro" / "sat" / "engine.py"
    facts = extract_module_facts(SourceFile.load(path, package_rel(path)))
    assert facts.module == "repro.sat.engine"
    by_name = {f.qname: f for f in facts.functions}
    assert by_name["search"].accepts_stop
    assert by_name["search"].has_unbounded_loop
    assert not by_name["step"].accepts_stop
    facade = PROJ / "rpr008_drop" / "repro" / "api" / "facade.py"
    ffacts = extract_module_facts(SourceFile.load(facade, package_rel(facade)))
    (call,) = [
        c for f in ffacts.functions for c in f.calls if c.target == "search"
    ]
    assert not call.passes_stop


# --------------------------------------------------------------------------
# Incremental cache
# --------------------------------------------------------------------------


def test_warm_cache_extracts_nothing_and_reports_identically(tmp_path):
    cache_dir = tmp_path / "cache"
    cold = run_project([PROJ / "rpr008_drop"], cache_dir=cache_dir)
    assert cold.stats.extracted == 2 and cold.stats.cached == 0
    warm = run_project([PROJ / "rpr008_drop"], cache_dir=cache_dir)
    assert warm.stats.extracted == 0 and warm.stats.cached == 2
    assert render_json(cold.files, []) == render_json(warm.files, [])
    assert all(r.from_cache for r in warm.files)


def test_editing_one_file_invalidates_only_that_entry(tmp_path):
    tree = tmp_path / "case"
    shutil.copytree(PROJ / "rpr008_forward_ok", tree)
    cache_dir = tmp_path / "cache"
    run_project([tree], cache_dir=cache_dir)
    facade = tree / "repro" / "api" / "facade.py"
    facade.write_text(
        facade.read_text().replace(
            "search(formula, should_stop=should_stop)", "search(formula)"
        )
    )
    second = run_project([tree], cache_dir=cache_dir)
    assert second.stats.extracted == 1 and second.stats.cached == 1
    # The edit reintroduced the module-boundary drop; cached facts for
    # the *other* file still feed the graph correctly.
    findings = [f for r in second.files for f in r.findings]
    assert [f.rule_id for f in findings] == ["RPR008"]


def test_corrupt_cache_store_degrades_to_cold_run(tmp_path):
    cache_dir = tmp_path / "cache"
    run_project([PROJ / "rpr008_drop"], cache_dir=cache_dir)
    (cache_dir / "facts.json").write_text("{not json")
    report = run_project([PROJ / "rpr008_drop"], cache_dir=cache_dir)
    assert report.stats.extracted == 2
    findings = [f for r in report.files for f in r.findings]
    assert [f.rule_id for f in findings] == ["RPR008"]


def test_rule_selection_change_invalidates_cache(tmp_path):
    cache_dir = tmp_path / "cache"
    run_project([PROJ / "rpr008_drop"], cache_dir=cache_dir)
    narrowed = run_project(
        [PROJ / "rpr008_drop"], ["RPR002", "RPR008"], cache_dir=cache_dir
    )
    assert narrowed.stats.extracted == 2  # different rules_key: no reuse
    findings = [f for r in narrowed.files for f in r.findings]
    assert [f.rule_id for f in findings] == ["RPR008"]


def test_parallel_extraction_matches_serial(tmp_path):
    serial = run_project([PROJ / "rpr010_chain"])
    parallel = run_project([PROJ / "rpr010_chain"], jobs=2)
    assert render_json(serial.files, []) == render_json(parallel.files, [])
    assert serial.graph.to_dict() == parallel.graph.to_dict()


# --------------------------------------------------------------------------
# CLI surface (--cache-dir / --jobs / --graph / stats line)
# --------------------------------------------------------------------------


def _cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=SRC.parent,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        timeout=300,
    )


def test_cli_interprocedural_finding_and_stats_line():
    proc = _cli(str(PROJ / "rpr008_drop"))
    assert proc.returncode == 1
    assert "RPR008" in proc.stdout
    assert "analyzed 2 file(s)" in proc.stderr
    assert "2 extracted, 0 cached" in proc.stderr


def test_cli_cache_warm_run_is_byte_identical(tmp_path):
    cache = str(tmp_path / "cache")
    cold = _cli("--json", "--cache-dir", cache, str(PROJ / "rpr010_chain"))
    warm = _cli("--json", "--cache-dir", cache, str(PROJ / "rpr010_chain"))
    assert cold.stdout == warm.stdout
    assert "3 extracted" in cold.stderr
    assert "0 extracted, 3 cached" in warm.stderr


def test_cli_graph_export(tmp_path):
    out = tmp_path / "callgraph.json"
    proc = _cli("--graph", str(out), str(PROJ / "rpr009_transitive"))
    assert proc.returncode == 1
    doc = json.loads(out.read_text())
    assert any(
        n["key"] == "repro.graphs.refine:pump" and n["loop_bearing"]
        for n in doc["nodes"]
    )


def test_cli_list_rules_includes_project_rules():
    proc = _cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("RPR008", "RPR009", "RPR010"):
        assert rule_id in proc.stdout
