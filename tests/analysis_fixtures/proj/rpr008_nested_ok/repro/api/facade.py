"""RPR008 negative: a nested function receives the callback through
its default binding (closure-style), so calling it bare is not a drop."""


def solve_locally(formula, should_stop=None):
    def inner(should_stop=should_stop):
        while True:
            if should_stop is not None and should_stop():
                return None
            if advance(formula):
                return formula

    return inner()


def advance(formula):
    return True
