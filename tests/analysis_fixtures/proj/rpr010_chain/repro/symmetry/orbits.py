"""RPR010 positive: the nondeterminism is two hops away; the witness
chain in the finding walks annotate -> stamp -> time.time()."""

from repro.graphs.meta import annotate


def orbit_info(info):
    return annotate(info)
