"""The taint root: a wall-clock read two modules away from the solver."""

import time


def stamp():
    return time.time()
