"""A clean-looking middle module: tainted only transitively."""

from repro.graphs.clock import stamp


def annotate(info):
    info["at"] = stamp()
    return info
