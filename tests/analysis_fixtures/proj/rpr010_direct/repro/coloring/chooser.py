"""RPR010 positive: deterministic-scope code imports hash-order
nondeterminism from a helper module RPR003 cannot see."""

from repro.graphs.pick import pick_first


def choose_branch_vertex(graph, candidates):
    return pick_first(candidates)
