"""A helper outside the deterministic scope whose result depends on
set iteration order — clean per-file, but a taint root."""


def pick_first(items):
    for value in set(items):
        return value
    return None
