"""RPR009 negative: the remaining slice of the deadline flows into the
blocking callee as its time limit."""

from repro.graphs.bounds import lower_bound


def minimize_colors(graph, deadline):
    return lower_bound(graph, time_limit=deadline.remaining())
