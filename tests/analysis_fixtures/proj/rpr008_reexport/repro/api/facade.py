"""RPR008 positive through a re-export: the callee is imported from
the package ``__init__``, so resolution must chase the re-export chain
to find the loop-bearing engine function."""

from repro.sat import search


def solve_formula(formula, should_stop=None):
    return search(formula)
