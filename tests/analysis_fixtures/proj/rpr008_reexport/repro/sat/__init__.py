"""Package façade re-exporting the engine's entry point."""

from .engine import search

__all__ = ["search"]
