"""RPR008 negative: the facade forwards the callback, so cancellation
flows through the module boundary."""

from repro.sat.engine import search


def solve_formula(formula, should_stop=None):
    return search(formula, should_stop=should_stop)
