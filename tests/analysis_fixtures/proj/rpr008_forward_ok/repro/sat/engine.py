"""Loop-bearing engine that polls its stop callback (per-file clean)."""


def search(formula, should_stop=None):
    best = None
    while True:
        if should_stop is not None and should_stop():
            return best
        best, done = step(formula, best)
        if done:
            return best


def step(formula, best):
    return best, True
