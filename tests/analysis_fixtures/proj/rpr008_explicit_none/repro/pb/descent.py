"""RPR008 positive: passing ``should_stop=None`` is an explicit drop,
not a forward — the subtree below is still uncancellable."""

from repro.sat.engine import probe


def run_descent(formula, should_stop=None):
    return probe(formula, should_stop=None)
