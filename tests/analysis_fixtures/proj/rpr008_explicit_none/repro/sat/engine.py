"""Loop-bearing probe that polls its stop callback (per-file clean)."""


def probe(formula, should_stop=None):
    while True:
        if should_stop is not None and should_stop():
            return None
        if advance(formula):
            return formula


def advance(formula):
    return True
