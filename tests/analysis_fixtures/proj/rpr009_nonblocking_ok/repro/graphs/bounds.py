"""A bound estimate that accepts a deadline but never blocks."""


def estimate(graph, deadline=None):
    return graph.num_vertices
