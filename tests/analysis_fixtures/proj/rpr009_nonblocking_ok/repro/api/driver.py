"""RPR009 negative: the callee accepts a deadline but is not
loop-bearing, so not passing one cannot leave it running unbounded."""

from repro.graphs.bounds import estimate


def minimize_colors(graph, deadline):
    return estimate(graph)
