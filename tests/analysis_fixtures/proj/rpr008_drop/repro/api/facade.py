"""RPR008 positive: the facade accepts the stop callback but drops it
at the module boundary — the engine's loop becomes uncancellable while
both files look fine in isolation."""

from repro.sat.engine import search


def solve_formula(formula, should_stop=None):
    return search(formula)  # should_stop never forwarded
