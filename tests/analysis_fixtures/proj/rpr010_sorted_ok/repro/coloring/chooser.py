"""RPR010 negative: the cross-module helper is order-deterministic."""

from repro.graphs.pick import pick_first


def choose_branch_vertex(graph, candidates):
    return pick_first(candidates)
