"""A helper that sorts before iterating: deterministic, no taint."""


def pick_first(items):
    for value in sorted(set(items)):
        return value
    return None
