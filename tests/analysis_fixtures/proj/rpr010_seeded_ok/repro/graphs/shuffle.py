"""A helper using a *seeded* RNG instance: reproducible, no taint."""

import random


def shuffled(items, seed):
    rng = random.Random(seed)
    out = list(items)
    rng.shuffle(out)
    return out
