"""RPR010 negative: seeded randomness is deterministic by construction."""

from repro.graphs.shuffle import shuffled


def restart_order(variables, seed):
    return shuffled(variables, seed)
