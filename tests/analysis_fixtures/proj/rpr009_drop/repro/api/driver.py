"""RPR009 positive: the driver holds a deadline but calls the blocking
bound without passing any time budget — the callee can outlive it."""

from repro.graphs.bounds import lower_bound


def minimize_colors(graph, deadline):
    return lower_bound(graph)
