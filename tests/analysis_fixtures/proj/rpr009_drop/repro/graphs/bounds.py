"""A blocking bound computation that can accept a time limit."""


def lower_bound(graph, time_limit=None):
    best = 0
    while True:
        improved, best = tighten(graph, best)
        if not improved:
            return best


def tighten(graph, best):
    return False, best
