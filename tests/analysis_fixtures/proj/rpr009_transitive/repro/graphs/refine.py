"""A budget-aware entry whose blocking loop hides one call deeper —
``refine`` is loop-bearing only transitively."""


def refine(graph, budget=None):
    return pump(graph)


def pump(graph):
    while True:
        if not shrink(graph):
            return graph


def shrink(graph):
    return False
