"""RPR009 positive: the callee blocks only transitively (its loop is
one call deeper), but dropping the deadline is just as unbounded."""

from repro.graphs.refine import refine


def optimize_layout(graph, deadline):
    return refine(graph)
