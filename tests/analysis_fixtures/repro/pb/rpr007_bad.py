"""RPR007 positive fixture: hand-rolled deadline arithmetic."""

import time


def wait_until_done(time_limit):
    start = time.monotonic()
    while True:  # noqa: fixture loop, not a solve path (RPR002 scope only)
        if time.monotonic() - start > time_limit:  # finding 1: compare
            return False
        if time.time() > start + time_limit:  # finding 2: wall-clock compare
            return False


def shrink_budget(time_limit, start):
    budget = time_limit - (time.monotonic() - start)  # finding 3: budget arithmetic
    return budget


def kill_horizon(task_timeout):
    kill_at = time.monotonic() + task_timeout  # finding 4: deadline arithmetic
    return kill_at
