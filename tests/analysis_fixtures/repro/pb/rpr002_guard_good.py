"""RPR002 negatives for the tightened poll check: the call shape and
the conditional-guard shape both count as genuine polling."""


def solve_with_callback(formula, should_stop=None):
    best = None
    while True:
        if should_stop is not None and should_stop():  # call shape
            return best
        best, done = improve(formula, best)
        if done:
            return best


def solve_with_flag(formula, cancel_flag=False):
    best = None
    while True:
        if cancel_flag:  # guard shape: no call, but the loop can exit on it
            return best
        best, done = improve(formula, best)
        if done:
            return best


def improve(formula, best):
    return best, True
