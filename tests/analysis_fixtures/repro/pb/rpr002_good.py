"""RPR002 negatives: polled loop; unbounded loop outside solve paths."""


def minimize_bound(solver, formula, should_stop=None):
    best = None
    while True:  # fine: the loop polls should_stop
        if should_stop is not None and should_stop():
            return best
        result = solver.run(formula)
        if result.is_unsat:
            return best
        best = result.value


def drain_queue(queue):
    while True:  # fine: not a solve-path function name
        item = queue.get()
        if item is None:
            return
