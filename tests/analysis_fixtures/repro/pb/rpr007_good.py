"""RPR007 negative fixture: Deadline for expiry, raw clock for elapsed."""

import time

from repro.resilience import Deadline


def wait_until_done(time_limit):
    deadline = Deadline.after(time_limit)
    while not deadline.expired():
        pass
    return deadline.remaining()


def measure_elapsed():
    # Elapsed-time *measurement* is allowed: no compare, no deadline
    # keyword in the statement.
    start = time.monotonic()
    do_work()
    seconds = time.monotonic() - start
    return seconds


def do_work():
    return None
