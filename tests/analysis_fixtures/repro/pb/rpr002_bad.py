"""RPR002 positive: unbounded solve loop without a stop poll."""


def minimize_bound(solver, formula):
    best = None
    while True:  # violation: no should_stop/cancel anywhere in the loop
        result = solver.run(formula)
        if result.is_unsat:
            return best
        best = result.value
