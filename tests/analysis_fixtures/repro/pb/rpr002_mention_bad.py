"""RPR002 positives for the tightened poll check: both loops *mention*
a stop-ish name but neither calls it, guards on it, nor forwards it —
the loop cannot exit because of it, so the mention must not count."""


def solve_rounds(formula, should_stop=None):
    best = None
    while True:
        _unused = should_stop  # bare alias: not a poll
        best, done = improve(formula, best)
        if done:
            return best


def solve_epochs(formula):
    early_stop_rounds = 0
    while True:
        early_stop_rounds += 1  # stop-ish *name*, nothing stop-ish about it
        if improve(formula, None)[1]:
            return early_stop_rounds


def improve(formula, best):
    return best, True
