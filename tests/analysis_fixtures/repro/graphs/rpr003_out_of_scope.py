"""RPR003 negative by scope: graphs/ is not solver-decision code."""


def collect(vertices: set):
    return [v for v in vertices]  # not flagged: outside the rule's scope
