"""RPR004 positive: incremental-context preprocess without frozen=."""

from repro.sat.preprocessing import preprocess


class IncrementalSearch:
    def setup(self, formula):
        # violation: elimination may resolve away assumption selectors
        return preprocess(formula)


class Session:
    def warm(self, formula):
        return preprocess(formula, max_rounds=5)  # violation
