"""RPR004 negatives: frozen= passed, or non-incremental context."""

from repro.sat.preprocessing import preprocess


class IncrementalSearch:
    def setup(self, formula, frozen_vars):
        return preprocess(formula, frozen=frozen_vars)  # fine


def one_shot(formula):
    return preprocess(formula)  # fine: no persistent solver to betray
