"""Naming an unknown rule in a suppression is an RPR000 error."""


def encode(formula, clause):
    formula.add_clause(clause)  # repro: allow[RPR999] no such rule exists
