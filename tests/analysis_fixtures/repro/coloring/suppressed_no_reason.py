"""A reasonless suppression is itself an error (RPR000) and does not
silence the underlying finding."""


def encode(formula, clause):
    formula.clauses.append(clause)  # repro: allow[RPR001]
