"""RPR005 positive: direct engine construction outside the chokepoints."""

from repro.sat.cdcl import CDCLSolver


def fresh_probe(formula):
    solver = CDCLSolver(num_vars=formula.num_vars)  # violation
    solver.add_formula(formula)
    return solver.solve()
