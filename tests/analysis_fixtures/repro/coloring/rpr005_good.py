"""RPR005 negative: construction through the swappable factory."""

from repro.sat.factory import new_solver


def fresh_probe(formula):
    solver = new_solver(num_vars=formula.num_vars)  # the sanctioned path
    solver.add_formula(formula)
    return solver.solve()
