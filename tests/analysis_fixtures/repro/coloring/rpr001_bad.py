"""RPR001 positive: raw clause-list mutation outside sat/."""


def encode(formula, clause, other):
    formula.clauses.append(clause)  # violation: bypasses add_clause
    formula.clauses.extend(other)  # violation
    formula.clauses = [clause]  # violation: wholesale replacement
