"""Suppression fixtures: reasoned allows silence their findings."""


def encode(formula, clause):
    formula.clauses.append(clause)  # repro: allow[RPR001] migration shim until PR 7 rewires intake
    # repro: allow[RPR001] second shim, standalone-comment form
    formula.clauses.extend([clause])
    formula.add_clause(clause)
