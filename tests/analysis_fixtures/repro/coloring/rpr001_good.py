"""RPR001 negative: intake through add_clause, plus look-alikes."""


def encode(formula, clause, items):
    formula.add_clause(clause)  # the sanctioned intake path
    items.append(clause)  # not a .clauses target
    formula.colors.append(3)  # some other attribute list
    return len(formula.clauses)  # reading is fine
