"""RPR003 negatives: sorted iteration and order-insensitive consumption."""

import random
import time


def walk(graph, vertices: set, items):
    for v in sorted(vertices):  # sorted at the iteration site
        graph.visit(v)
    for w in items:  # unknown type: not flagged
        graph.visit(w)
    total = sum(v for v in vertices)  # order-insensitive consumer
    biggest = max(vertices)  # order-insensitive consumer
    mirror = {v for v in vertices}  # set-to-set: no order leak
    rng = random.Random(42)  # seeded instance is fine
    deadline = time.monotonic()  # monotonic clock is fine
    return total, biggest, mirror, rng.random(), deadline
