"""RPR003 positives: order-sensitive iteration, shared RNG, wall clock."""

import random
import time


def walk(graph, vertices: set):
    for v in vertices:  # violation: set iteration into decisions
        graph.visit(v)
    for w in graph.neighbors(0):  # violation: set-returning method
        graph.visit(w)
    order = [v for v in vertices]  # violation: list comp over a set
    first = list(graph.neighbors(1))  # violation: list() conversion
    key = {}
    for k in key.keys():  # violation: insertion-ordered key iteration
        graph.visit(k)
    jitter = random.random()  # violation: shared unseeded RNG
    now = time.time()  # violation: wall clock
    return order, first, jitter, now
