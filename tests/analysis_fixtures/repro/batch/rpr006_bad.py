"""RPR006 positives: unpicklable payloads at the process-pool boundary."""

from concurrent.futures import ProcessPoolExecutor


def launch(ctx, payload, pool):
    proc = ctx.Process(target=lambda: payload.run())  # violation: lambda
    proc.start()
    pool.apply_async(lambda x: x + 1, (1,))  # violation: lambda

    def helper():
        return payload.run()

    ctx.Process(target=helper).start()  # violation: closure


def fan_out(items):
    executor = ProcessPoolExecutor()

    def work(item):
        return item * 2

    return [executor.submit(work, item) for item in items]  # violation
