"""RPR006 positives: unpicklable payloads at the pool/executor boundary."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


def launch(ctx, payload, pool):
    proc = ctx.Process(target=lambda: payload.run())  # violation: lambda
    proc.start()
    pool.apply_async(lambda x: x + 1, (1,))  # violation: lambda

    def helper():
        return payload.run()

    ctx.Process(target=helper).start()  # violation: closure


def fan_out(items):
    executor = ProcessPoolExecutor()

    def work(item):
        return item * 2

    return [executor.submit(work, item) for item in items]  # violation


def fan_out_threads(items, solver):
    executor = ThreadPoolExecutor()
    results = list(executor.map(lambda i: solver.solve(i), items))  # violation

    def work(item):
        return solver.solve(item)

    results.extend(executor.submit(work, item) for item in items)  # violation
    return results
