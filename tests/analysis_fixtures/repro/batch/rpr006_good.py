"""RPR006 negatives: top-level payloads on every pool/executor tier."""

from concurrent.futures import ThreadPoolExecutor


def _worker_entry(payload):
    return payload


def _solve_item(solver, item):
    return solver.solve(item)


def launch(ctx, payload):
    # fine: module-level callable + picklable args
    proc = ctx.Process(target=_worker_entry, args=(payload,))
    proc.start()


def fan_out(items, solver):
    # fine: thread executors take the same top-level payloads as process
    # pools, so the tier stays swappable
    executor = ThreadPoolExecutor()
    return [executor.submit(_solve_item, solver, item) for item in items]
