"""RPR006 negatives: top-level payloads; thread pools may close over."""

from concurrent.futures import ThreadPoolExecutor


def _worker_entry(payload):
    return payload


def launch(ctx, payload):
    # fine: module-level callable + picklable args
    proc = ctx.Process(target=_worker_entry, args=(payload,))
    proc.start()


def fan_out(items, solver):
    executor = ThreadPoolExecutor()

    def work(item):
        return solver.solve(item)  # closures are fine in-process

    return [executor.submit(work, item) for item in items]
