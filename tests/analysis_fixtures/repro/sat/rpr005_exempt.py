"""RPR005 negative by scope: sat/ may of course build its own engine."""

from .cdcl import CDCLSolver


def make_engine(num_vars):
    return CDCLSolver(num_vars=num_vars)  # allowed inside sat/
