"""RPR001 negative by scope: sat/ owns the clause list."""


class Engine:
    def __init__(self):
        self.clauses = []

    def add_clause(self, clause):
        self.clauses.append(clause)  # allowed here: this IS the chokepoint
