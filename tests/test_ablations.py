"""Ablation driver tests (fast parameters)."""

from repro.experiments.ablations import (
    ablate_formula_growth,
    ablate_strategy,
    ablate_support_cap,
)
from repro.experiments.instances import ScalePreset

FAST = ScalePreset(
    name="test", instance_names=("myciel3",),
    k_primary=4, k_secondary=5, time_limit=10.0,
    detection_node_limit=20000, solvers=("pbs2",),
)


def test_support_cap_monotone_size():
    rows = ablate_support_cap(
        instance_name="myciel3", k=4, caps=(2, 16, None), time_limit=20.0
    )
    assert [r.cap for r in rows] == [2, 16, None]
    assert rows[0].clauses_added <= rows[1].clauses_added <= rows[2].clauses_added
    assert all(r.status == "OPTIMAL" for r in rows)


def test_strategy_agreement():
    rows = ablate_strategy(instance_name="myciel3", k=5, time_limit=20.0)
    assert {r.strategy for r in rows} == {"linear", "binary"}
    values = {r.value for r in rows if r.status == "OPTIMAL"}
    assert values == {4}


def test_formula_growth_ordering():
    rows = ablate_formula_growth(FAST)
    by_kind = {r.sbp_kind: r for r in rows}
    assert by_kind["none"].growth_vs_none == 1.0
    assert by_kind["li"].growth_vs_none > by_kind["nu"].growth_vs_none
    assert by_kind["nu"].num_clauses == by_kind["none"].num_clauses + FAST.k_primary - 1
    # CA adds PB constraints, not clauses.
    assert by_kind["ca"].num_clauses == by_kind["none"].num_clauses
    assert by_kind["ca"].num_pb == by_kind["none"].num_pb + FAST.k_primary - 1
