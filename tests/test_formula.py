"""Unit tests for the Formula container."""

import pytest

from repro.core.formula import Formula, FormulaStats


def test_new_var_and_growth():
    f = Formula()
    v1 = f.new_var()
    v2 = f.new_var("named")
    assert (v1, v2) == (1, 2)
    assert f.num_vars == 2
    f.add_clause([10])
    assert f.num_vars == 10  # grows to cover mentioned variables


def test_add_clause_skip_tautology():
    f = Formula(num_vars=2)
    kept = f.add_clause([1, 2], skip_tautology=True)
    assert kept is not None
    skipped = f.add_clause([1, -1, 2], skip_tautology=True)
    assert skipped is None
    assert len(f.clauses) == 1
    # A skipped tautology must not inflate the variable range either.
    assert f.add_clause([5, -5], skip_tautology=True) is None
    assert f.num_vars == 2
    # Without the flag, tautologies stay legal input (they are SAT).
    taut = f.add_clause([1, -1])
    assert taut is not None and taut.is_tautology
    assert len(f.clauses) == 2


def test_add_clause_canonical():
    f = Formula(num_vars=3)
    clause = f.add_clause([3, 1, 3])
    assert clause.literals == (1, 3)
    assert len(f.clauses) == 1


def test_empty_clause_rejected():
    f = Formula()
    with pytest.raises(ValueError):
        f.add_clause([])


def test_add_pb_and_helpers():
    f = Formula(num_vars=3)
    f.add_pb([(2, 1), (1, -2)], ">=", 1)
    f.add_exactly_one([1, 2, 3])
    f.add_at_most([1, 2], 1)
    f.add_at_least([2, 3], 1)
    assert f.stats() == FormulaStats(3, 0, 4)


def test_objective_and_value():
    f = Formula(num_vars=2)
    f.set_objective([(1, 1), (2, -2)])
    assert f.objective_value({1: True, 2: True}) == 1
    assert f.objective_value({1: True, 2: False}) == 3
    with pytest.raises(ValueError):
        f.set_objective([(1, 1)], sense="avg")


def test_evaluate_mixed():
    f = Formula(num_vars=2)
    f.add_clause([1, 2])
    f.add_pb([(1, 1), (1, 2)], "<=", 1)
    assert f.evaluate({1: True, 2: False})
    assert not f.evaluate({1: True, 2: True})  # violates the PB
    assert not f.evaluate({1: False, 2: False})  # violates the clause


def test_copy_is_independent():
    f = Formula(num_vars=1)
    f.add_clause([1])
    g = f.copy()
    g.add_clause([-1])
    assert len(f.clauses) == 1
    assert len(g.clauses) == 2
    assert g.num_vars == f.num_vars


def test_stats_addition():
    a = FormulaStats(1, 2, 3)
    b = FormulaStats(10, 20, 30)
    assert a + b == FormulaStats(11, 22, 33)


def test_repr_mentions_sizes():
    f = Formula(num_vars=2)
    f.add_clause([1, 2])
    assert "clauses=1" in repr(f)
