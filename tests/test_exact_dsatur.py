"""Exact DSATUR branch-and-bound tests."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.exact_dsatur import exact_chromatic_number
from repro.graphs.generators import mycielski_graph, queens_graph
from repro.graphs.graph import Graph


def brute_chromatic(graph, limit=6):
    for k in range(1, limit + 1):
        for a in itertools.product(range(k), repeat=graph.num_vertices):
            if all(a[u] != a[v] for u, v in graph.edges()):
                return k
    return limit + 1


def test_known_instances():
    assert exact_chromatic_number(mycielski_graph(3)).chromatic_number == 4
    assert exact_chromatic_number(mycielski_graph(4)).chromatic_number == 5
    assert exact_chromatic_number(queens_graph(5, 5)).chromatic_number == 5
    assert exact_chromatic_number(queens_graph(6, 6)).chromatic_number == 7


def test_trivial_graphs():
    assert exact_chromatic_number(Graph(0)).chromatic_number == 0
    assert exact_chromatic_number(Graph(3)).chromatic_number == 1
    k3 = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
    assert exact_chromatic_number(k3).chromatic_number == 3


def test_result_coloring_is_proper():
    g = queens_graph(5, 5)
    result = exact_chromatic_number(g)
    assert result.optimal
    assert g.is_proper_coloring(result.coloring)
    assert len(set(result.coloring.values())) == result.chromatic_number


def test_node_limit_gives_incumbent():
    g = queens_graph(6, 6)
    result = exact_chromatic_number(g, node_limit=1)
    assert result.chromatic_number >= 7  # DSATUR incumbent
    assert g.is_proper_coloring(result.coloring)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=7), st.data())
def test_matches_brute_force(n, data):
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if data.draw(st.booleans()):
                g.add_edge(u, v)
    result = exact_chromatic_number(g)
    assert result.optimal
    assert result.chromatic_number == brute_chromatic(g, limit=n)
    assert g.is_proper_coloring(result.coloring)
