"""Optimizer tests: linear vs binary search, bounds, and fuzz vs brute."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formula import Formula
from repro.pb.optimizer import minimize, minimize_binary, minimize_linear
from repro.pb.presets import PRESETS, get_preset, solve_optimize
from repro.sat.brute import brute_force_optimize


def _small_problem():
    # Cover >= constraints force at least 2 of 4 variables.
    f = Formula(num_vars=4)
    f.add_clause([1, 2])
    f.add_clause([3, 4])
    f.set_objective([(1, v) for v in range(1, 5)])
    return f


def test_linear_finds_optimum():
    result = minimize_linear(_small_problem())
    assert result.is_optimal and result.best_value == 2


def test_binary_finds_optimum():
    result = minimize_binary(_small_problem())
    assert result.is_optimal and result.best_value == 2


def test_upper_bound_hint_respected():
    result = minimize_linear(_small_problem(), upper_bound_hint=3)
    assert result.is_optimal and result.best_value == 2


def test_binary_retries_too_tight_hint():
    result = minimize_binary(_small_problem(), upper_bound_hint=1)
    assert result.is_optimal and result.best_value == 2


def test_lower_bound_short_circuits():
    result = minimize_linear(_small_problem(), lower_bound=2)
    assert result.is_optimal and result.best_value == 2


def test_unsat_problem():
    f = Formula(num_vars=1)
    f.add_clause([1])
    f.add_clause([-1])
    f.set_objective([(1, 1)])
    assert minimize(f, strategy="linear").is_unsat
    assert minimize(f, strategy="binary").is_unsat


def test_missing_objective_rejected():
    f = Formula(num_vars=1)
    f.add_clause([1])
    with pytest.raises(ValueError):
        minimize_linear(f)


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        minimize(_small_problem(), strategy="random")


def test_presets_exist_and_solve():
    assert set(PRESETS) == {"pbs2", "galena", "pueblo"}
    for name in PRESETS:
        result = solve_optimize(_small_problem(), preset=name)
        assert result.is_optimal and result.best_value == 2


def test_unknown_preset():
    # The API boundary reports bad names as ValueError, naming the
    # registered choices (not a deep KeyError from the preset table).
    with pytest.raises(ValueError, match="pbs2"):
        get_preset("cplex")


@st.composite
def objective_problem(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    f = Formula(num_vars=n)
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        width = draw(st.integers(min_value=1, max_value=n))
        vs = draw(
            st.lists(st.integers(min_value=1, max_value=n),
                     min_size=width, max_size=width, unique=True)
        )
        terms = [(draw(st.integers(min_value=-3, max_value=3)), v) for v in vs]
        f.add_pb(terms, draw(st.sampled_from([">=", "<="])),
                 draw(st.integers(min_value=-2, max_value=4)))
    f.set_objective(
        [(draw(st.integers(min_value=1, max_value=3)),
          v * draw(st.sampled_from([1, -1])))
         for v in range(1, n + 1)]
    )
    return f


@settings(max_examples=60, deadline=None)
@given(objective_problem(), st.sampled_from(["linear", "binary"]))
def test_optimizer_matches_brute_force(formula, strategy):
    expected = brute_force_optimize(formula)
    actual = minimize(formula, strategy=strategy)
    assert actual.status == expected.status
    if actual.is_optimal:
        assert actual.best_value == expected.best_value
        assert formula.evaluate(actual.best_model)
