"""Known-chromatic-number families pin down every exact pipeline."""

import pytest

from repro.coloring.coudert import coudert_chromatic_number
from repro.coloring.exact_dsatur import exact_chromatic_number
from repro.coloring.necsp import necsp_chromatic_number
from repro.coloring.solve import solve_coloring
from repro.graphs.coloring_heuristics import greedy_coloring
from repro.graphs.generators import (
    complete_multipartite,
    crown_graph,
    kneser_graph,
    wheel_graph,
)


def test_wheel_sizes():
    w5 = wheel_graph(5)
    assert w5.num_vertices == 6
    assert w5.num_edges == 10
    with pytest.raises(ValueError):
        wheel_graph(2)


@pytest.mark.parametrize("spokes,chi", [(3, 4), (4, 3), (5, 4), (6, 3), (7, 4)])
def test_wheel_chromatic(spokes, chi):
    g = wheel_graph(spokes)
    assert exact_chromatic_number(g).chromatic_number == chi
    result = solve_coloring(g, chi + 1, solver="pbs2", sbp_kind="nu", time_limit=60)
    assert result.num_colors == chi


def test_crown_is_bipartite_but_greedy_bad():
    g = crown_graph(4)
    assert exact_chromatic_number(g).chromatic_number == 2
    # Interleaved order (0, n, 1, n+1, ...) makes greedy use n colors.
    order = [v for i in range(4) for v in (i, 4 + i)]
    _, greedy_colors = greedy_coloring(g, order)
    assert greedy_colors == 4
    with pytest.raises(ValueError):
        crown_graph(1)


def test_kneser_petersen():
    petersen = kneser_graph(5, 2)
    assert petersen.num_vertices == 10
    assert petersen.num_edges == 15
    assert exact_chromatic_number(petersen).chromatic_number == 3  # 5-4+2


@pytest.mark.parametrize("n,k,chi", [(4, 2, 2), (5, 2, 3), (6, 2, 4)])
def test_kneser_lovasz_bound(n, k, chi):
    g = kneser_graph(n, k)
    assert exact_chromatic_number(g).chromatic_number == chi
    assert coudert_chromatic_number(g).chromatic_number == chi
    assert necsp_chromatic_number(g).chromatic_number == chi


def test_kneser_validation():
    with pytest.raises(ValueError):
        kneser_graph(3, 2)


@pytest.mark.parametrize("sizes,chi", [([2, 2], 2), ([1, 2, 3], 3), ([2, 2, 2, 2], 4)])
def test_multipartite_chromatic(sizes, chi):
    g = complete_multipartite(sizes)
    assert exact_chromatic_number(g).chromatic_number == chi
    result = solve_coloring(g, chi + 1, solver="pbs2", sbp_kind="nu+sc", time_limit=60)
    assert result.num_colors == chi


def test_multipartite_validation():
    with pytest.raises(ValueError):
        complete_multipartite([2, 0])


def test_kneser_62_through_ilp_pipeline():
    # chi(K(6,2)) = 4; a nontrivial instance for the full SBP pipeline.
    g = kneser_graph(6, 2)
    result = solve_coloring(g, 6, solver="pbs2", sbp_kind="nu+sc",
                            instance_dependent=True, time_limit=120)
    assert result.status == "OPTIMAL"
    assert result.num_colors == 4
