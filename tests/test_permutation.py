"""Permutation algebra tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.symmetry.permutation import Permutation

perms = st.integers(min_value=1, max_value=8).flatmap(
    lambda n: st.permutations(range(n)).map(Permutation)
)


def test_identity():
    e = Permutation.identity(4)
    assert e.is_identity
    assert e(2) == 2
    assert e.support() == []


def test_from_cycles():
    p = Permutation.from_cycles(4, [(0, 1, 2)])
    assert (p(0), p(1), p(2), p(3)) == (1, 2, 0, 3)
    with pytest.raises(ValueError):
        Permutation.from_cycles(4, [(0, 1), (1, 2)])  # overlapping cycles


def test_from_mapping():
    p = Permutation.from_mapping(3, {0: 1, 1: 0})
    assert p.image == (1, 0, 2)


def test_invalid_image_rejected():
    with pytest.raises(ValueError):
        Permutation([0, 0, 1])


def test_compose_convention():
    # (p * q)(x) == p(q(x))
    p = Permutation.from_cycles(3, [(0, 1)])
    q = Permutation.from_cycles(3, [(1, 2)])
    assert (p * q)(2) == p(q(2)) == p(1) == 0


def test_cycles_and_order():
    p = Permutation.from_cycles(6, [(0, 1, 2), (3, 4)])
    assert sorted(len(c) for c in p.cycles()) == [2, 3]
    assert p.order() == 6
    assert Permutation.identity(3).order() == 1


def test_power():
    p = Permutation.from_cycles(5, [(0, 1, 2, 3, 4)])
    assert p.power(5).is_identity
    assert p.power(-1) == p.inverse()
    assert p.power(0).is_identity


def test_degree_mismatch():
    with pytest.raises(ValueError):
        Permutation.identity(3) * Permutation.identity(4)


@given(perms)
def test_inverse_roundtrip(p):
    assert (p * p.inverse()).is_identity
    assert (p.inverse() * p).is_identity
    assert p.inverse().inverse() == p


@given(perms)
def test_order_annihilates(p):
    assert p.power(p.order()).is_identity


@given(perms)
def test_cycles_reconstruct(p):
    rebuilt = Permutation.from_cycles(p.degree, p.cycles())
    assert rebuilt == p


@given(perms, perms, perms)
def test_associativity(a, b, c):
    if a.degree == b.degree == c.degree:
        assert (a * b) * c == a * (b * c)


def test_repr_cycle_notation():
    p = Permutation.from_cycles(3, [(0, 1)])
    assert "(0 1)" in repr(p)
    assert "identity" in repr(Permutation.identity(2))


def test_hash_consistency():
    a = Permutation([1, 0, 2])
    b = Permutation.from_cycles(3, [(0, 1)])
    assert a == b and hash(a) == hash(b)
    assert len({a, b}) == 1
