"""High-level solve pipeline tests: all solvers, SBPs, agreement."""

import pytest

from repro.coloring.solve import (
    SOLVER_NAMES,
    find_chromatic_number,
    prepare_formula,
    solve_coloring,
)
from repro.graphs.generators import mycielski_graph, queens_graph
from repro.graphs.graph import Graph

TRIANGLE_PLUS = Graph.from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)], name="fig1")


@pytest.mark.parametrize("solver", SOLVER_NAMES)
def test_all_solvers_agree_on_figure1(solver):
    result = solve_coloring(TRIANGLE_PLUS, 4, solver=solver, time_limit=30)
    assert result.status == "OPTIMAL"
    assert result.num_colors == 3
    assert TRIANGLE_PLUS.is_proper_coloring(result.coloring)


@pytest.mark.parametrize("sbp", ["none", "nu", "ca", "li", "sc", "nu+sc"])
def test_all_sbps_agree_on_myciel3(sbp):
    g = mycielski_graph(3)
    result = solve_coloring(g, 5, solver="pbs2", sbp_kind=sbp, time_limit=60)
    assert result.status == "OPTIMAL" and result.num_colors == 4


def test_instance_dependent_sbps_sound():
    g = queens_graph(4, 4)
    base = solve_coloring(g, 6, solver="pbs2", time_limit=60)
    with_sbps = solve_coloring(
        g, 6, solver="pbs2", instance_dependent=True, time_limit=60
    )
    assert base.status == with_sbps.status == "OPTIMAL"
    assert base.num_colors == with_sbps.num_colors == 5
    assert with_sbps.detection is not None
    assert with_sbps.detection.num_generators > 0


def test_detection_cache_reused():
    g = queens_graph(4, 4)
    cache = {}
    solve_coloring(g, 5, instance_dependent=True, time_limit=60, detection_cache=cache)
    assert len(cache) == 1
    report = next(iter(cache.values()))
    solve_coloring(g, 5, instance_dependent=True, time_limit=60, detection_cache=cache)
    assert next(iter(cache.values())) is report


def test_unsat_when_budget_too_small():
    k4 = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
    result = solve_coloring(k4, 3, solver="pbs2", time_limit=30)
    assert result.status == "UNSAT"
    assert result.num_colors is None


def test_unknown_solver_rejected():
    with pytest.raises(ValueError):
        solve_coloring(TRIANGLE_PLUS, 3, solver="cplex")


def test_prepare_formula_shapes():
    encoding, report = prepare_formula(TRIANGLE_PLUS, 3, sbp_kind="nu")
    assert report is None
    assert len(encoding.formula.clauses) > 0
    encoding, report = prepare_formula(
        TRIANGLE_PLUS, 3, instance_dependent=True
    )
    assert report is not None


def test_find_chromatic_number_defaults():
    result = find_chromatic_number(mycielski_graph(3), time_limit=60)
    assert result.status == "OPTIMAL"
    assert result.num_colors == 4


def test_find_chromatic_number_empty_graph():
    result = find_chromatic_number(Graph(0))
    assert result.num_colors == 0


def test_timeout_reports_unknown_or_sat():
    g = queens_graph(6, 6)
    result = solve_coloring(g, 9, solver="pbs2", time_limit=0.05)
    assert result.status in ("UNKNOWN", "SAT", "OPTIMAL")
