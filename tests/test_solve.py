"""High-level solve pipeline tests: all solvers, SBPs, agreement."""

import pytest

from repro.coloring.solve import (
    SOLVER_NAMES,
    find_chromatic_number,
    prepare_formula,
    solve_coloring,
)
from repro.graphs.generators import mycielski_graph, queens_graph
from repro.graphs.graph import Graph

TRIANGLE_PLUS = Graph.from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)], name="fig1")


@pytest.mark.parametrize("solver", SOLVER_NAMES)
def test_all_solvers_agree_on_figure1(solver):
    result = solve_coloring(TRIANGLE_PLUS, 4, solver=solver, time_limit=30)
    assert result.status == "OPTIMAL"
    assert result.num_colors == 3
    assert TRIANGLE_PLUS.is_proper_coloring(result.coloring)


@pytest.mark.parametrize("sbp", ["none", "nu", "ca", "li", "sc", "nu+sc"])
def test_all_sbps_agree_on_myciel3(sbp):
    g = mycielski_graph(3)
    result = solve_coloring(g, 5, solver="pbs2", sbp_kind=sbp, time_limit=60)
    assert result.status == "OPTIMAL" and result.num_colors == 4


def test_instance_dependent_sbps_sound():
    g = queens_graph(4, 4)
    base = solve_coloring(g, 6, solver="pbs2", time_limit=60)
    with_sbps = solve_coloring(
        g, 6, solver="pbs2", instance_dependent=True, time_limit=60
    )
    assert base.status == with_sbps.status == "OPTIMAL"
    assert base.num_colors == with_sbps.num_colors == 5
    assert with_sbps.detection is not None
    assert with_sbps.detection.num_generators > 0


def test_detection_cache_reused():
    g = queens_graph(4, 4)
    cache = {}
    solve_coloring(g, 5, instance_dependent=True, time_limit=60, detection_cache=cache)
    assert len(cache) == 1
    report = next(iter(cache.values()))
    solve_coloring(g, 5, instance_dependent=True, time_limit=60, detection_cache=cache)
    assert next(iter(cache.values())) is report


def test_unsat_when_budget_too_small():
    k4 = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
    result = solve_coloring(k4, 3, solver="pbs2", time_limit=30)
    assert result.status == "UNSAT"
    assert result.num_colors is None


def test_unknown_solver_rejected():
    with pytest.raises(ValueError):
        solve_coloring(TRIANGLE_PLUS, 3, solver="cplex")


def test_prepare_formula_shapes():
    encoding, report = prepare_formula(TRIANGLE_PLUS, 3, sbp_kind="nu")
    assert report is None
    assert len(encoding.formula.clauses) > 0
    encoding, report = prepare_formula(
        TRIANGLE_PLUS, 3, instance_dependent=True
    )
    assert report is not None


def test_find_chromatic_number_defaults():
    result = find_chromatic_number(mycielski_graph(3), time_limit=60)
    assert result.status == "OPTIMAL"
    assert result.num_colors == 4


def test_find_chromatic_number_empty_graph():
    result = find_chromatic_number(Graph(0))
    assert result.num_colors == 0


def test_timeout_reports_unknown_or_sat():
    g = queens_graph(6, 6)
    result = solve_coloring(g, 9, solver="pbs2", time_limit=0.05)
    assert result.status in ("UNKNOWN", "SAT", "OPTIMAL")


def test_symmetry_detection_after_simplification_same_answers():
    # Regression for the pipeline reorder: symmetry detection now runs
    # on the *simplified* formula.  Chromatic numbers must be identical
    # with and without preprocessing, and with and without
    # instance-dependent SBPs, across representative instances.
    cases = [(mycielski_graph(3), 4), (queens_graph(4, 4), 5)]
    for graph, chi in cases:
        for preprocess in (True, False):
            result = solve_coloring(
                graph, chi + 1, solver="pbs2", instance_dependent=True,
                preprocess=preprocess, time_limit=60,
            )
            assert result.status == "OPTIMAL", (graph.name, preprocess)
            assert result.num_colors == chi, (graph.name, preprocess)
            assert result.detection is not None


def test_detection_on_simplified_formula_still_finds_symmetries():
    # The simplified queens encoding keeps its color symmetry; the
    # detector must still report generators after the reorder.
    g = queens_graph(4, 4)
    result = solve_coloring(
        g, 6, solver="pbs2", instance_dependent=True, preprocess=True,
        time_limit=60,
    )
    assert result.detection is not None
    assert result.detection.num_generators > 0


def test_binary_solver_profiles_incremental_matches_fresh():
    # The pueblo preset uses the binary optimization strategy; the
    # persistent-solver bisection must agree with fresh-solver probes.
    g = queens_graph(4, 4)
    inc = solve_coloring(g, 6, solver="pueblo", incremental=True, time_limit=60)
    fresh = solve_coloring(g, 6, solver="pueblo", incremental=False, time_limit=60)
    assert inc.status == fresh.status == "OPTIMAL"
    assert inc.num_colors == fresh.num_colors == 5
