"""DIMACS .col format tests."""

import io

import pytest

from repro.graphs.dimacs import read_dimacs_graph, write_dimacs_graph
from repro.graphs.generators import queens_graph
from repro.graphs.graph import Graph


def test_roundtrip():
    g = queens_graph(4, 4)
    buffer = io.StringIO()
    write_dimacs_graph(g, buffer)
    buffer.seek(0)
    h = read_dimacs_graph(buffer, name="queen4_4")
    assert h.num_vertices == g.num_vertices
    assert sorted(h.edges()) == sorted(g.edges())


def test_reader_tolerates_duplicates_and_comments():
    text = "c a comment\np edge 3 4\ne 1 2\ne 2 1\ne 2 3\ne 2 2\n"
    g = read_dimacs_graph(io.StringIO(text))
    assert g.num_vertices == 3
    assert g.num_edges == 2  # duplicate and loop dropped


def test_reader_requires_problem_line():
    with pytest.raises(ValueError):
        read_dimacs_graph(io.StringIO("e 1 2\n"))
    with pytest.raises(ValueError):
        read_dimacs_graph(io.StringIO("c only comments\n"))


def test_reader_rejects_bad_problem_line():
    with pytest.raises(ValueError):
        read_dimacs_graph(io.StringIO("p graph\n"))


def test_writer_emits_header_and_name(tmp_path):
    g = Graph.from_edges(2, [(0, 1)], name="tiny")
    path = str(tmp_path / "tiny.col")
    write_dimacs_graph(g, path)
    text = open(path).read()
    assert "c tiny" in text
    assert "p edge 2 1" in text
    assert "e 1 2" in text
    assert read_dimacs_graph(path).num_edges == 1
