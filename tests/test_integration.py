"""Cross-module integration tests.

These exercise the full pipeline end to end and cross-check independent
implementations against each other: the 0-1 ILP pipeline vs the DSATUR
branch-and-bound baseline vs known chromatic numbers, on real (small)
benchmark instances, with every SBP configuration.
"""

import pytest

from repro.coloring import exact_chromatic_number, solve_coloring
from repro.coloring.encoding import encode_coloring
from repro.experiments.instances import get_instance
from repro.graphs.coloring_heuristics import dsatur
from repro.graphs.generators import mycielski_graph, queens_graph
from repro.pb.presets import solve_optimize
from repro.sbp.instance_independent import SBP_KINDS, apply_sbp
from repro.symmetry.detect import detect_symmetries

KNOWN_CHI = {"myciel3": 4, "myciel4": 5, "queen5_5": 5, "queen6_6": 7}


@pytest.mark.parametrize("name,chi", sorted(KNOWN_CHI.items()))
def test_pipelines_agree_on_known_instances(name, chi):
    graph = get_instance(name).graph()
    ilp = solve_coloring(graph, chi + 2, solver="pbs2", sbp_kind="nu+sc",
                         time_limit=120)
    assert ilp.status == "OPTIMAL" and ilp.num_colors == chi
    bb = exact_chromatic_number(graph, time_limit=120)
    assert bb.optimal and bb.chromatic_number == chi
    _, heuristic = dsatur(graph)
    assert heuristic >= chi


def test_solvers_cross_agree_on_queen4_4():
    graph = queens_graph(4, 4)
    results = {
        solver: solve_coloring(graph, 6, solver=solver, time_limit=60)
        for solver in ("pbs2", "galena", "pueblo", "cplex-bb")
    }
    values = {r.num_colors for r in results.values()}
    assert values == {5}
    assert all(r.status == "OPTIMAL" for r in results.values())


@pytest.mark.parametrize("sbp", SBP_KINDS)
@pytest.mark.parametrize("inst_dep", [False, True])
def test_sbp_grid_consistent_on_myciel3(sbp, inst_dep):
    graph = mycielski_graph(3)
    result = solve_coloring(
        graph, 5, solver="pbs2", sbp_kind=sbp,
        instance_dependent=inst_dep, time_limit=120,
    )
    assert result.status == "OPTIMAL"
    assert result.num_colors == 4
    assert graph.is_proper_coloring(result.coloring)


def test_symmetry_counts_shrink_with_sbps():
    """Paper Table 2 trend: NU < none, LI = 1, SC ~ none."""
    graph = queens_graph(4, 4)
    orders = {}
    for kind in ("none", "nu", "li", "sc"):
        enc = apply_sbp(encode_coloring(graph, 5), kind)
        orders[kind] = detect_symmetries(enc.formula).order
    assert orders["li"] == 1
    assert orders["nu"] < orders["none"]
    assert orders["none"] / orders["sc"] <= orders["none"] / 2 or orders["sc"] <= orders["none"]
    # Color symmetry alone contributes K! = 120; vertex syms multiply it.
    assert orders["none"] % 120 == 0


def test_unsat_instances_unsat_for_every_solver():
    graph = mycielski_graph(4)  # chi = 5
    for solver in ("pbs2", "pueblo", "cplex-bb"):
        result = solve_coloring(graph, 4, solver=solver, time_limit=60)
        assert result.status == "UNSAT", solver


def test_optimum_invariant_under_generator_sbps():
    """Adding lex-leader SBPs from detected generators never changes the
    optimum, for every instance-independent base construction."""
    graph = queens_graph(4, 4)
    for kind in ("none", "nu", "nu+sc"):
        plain = solve_coloring(graph, 5, sbp_kind=kind, time_limit=120)
        broken = solve_coloring(graph, 5, sbp_kind=kind,
                                instance_dependent=True, time_limit=120)
        assert plain.status == broken.status == "OPTIMAL"
        assert plain.num_colors == broken.num_colors


def test_pb_vs_ilp_on_encoded_formula():
    graph = mycielski_graph(3)
    formula = encode_coloring(graph, 4).formula
    pb = solve_optimize(formula.copy(), preset="pbs2")
    from repro.ilp import solve_ilp

    ilp = solve_ilp(formula.copy())
    assert pb.best_value == ilp.best_value == 4
