"""Round-trip tests for DIMACS CNF and OPB serialization."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.formula import Formula
from repro.core.io_opb import (
    formula_to_string,
    read_dimacs_cnf,
    read_opb,
    write_dimacs_cnf,
    write_opb,
)

lits = st.integers(min_value=-6, max_value=6).filter(lambda x: x != 0)


def _roundtrip_cnf(formula):
    buffer = io.StringIO()
    write_dimacs_cnf(formula, buffer)
    buffer.seek(0)
    return read_dimacs_cnf(buffer)


def _roundtrip_opb(formula):
    buffer = io.StringIO()
    write_opb(formula, buffer)
    buffer.seek(0)
    return read_opb(buffer)


def test_cnf_roundtrip_simple():
    f = Formula(num_vars=3)
    f.add_clause([1, -2])
    f.add_clause([3])
    g = _roundtrip_cnf(f)
    assert g.num_vars == 3
    assert set(g.clauses) == set(f.clauses)


def test_cnf_refuses_pb():
    f = Formula(num_vars=2)
    f.add_pb([(1, 1), (1, 2)], ">=", 1)
    with pytest.raises(ValueError):
        write_dimacs_cnf(f, io.StringIO())


def test_cnf_parser_tolerates_comments_and_split_lines():
    text = "c hello\np cnf 3 2\n1 -2 0 3\n0\n"
    g = read_dimacs_cnf(io.StringIO(text))
    assert len(g.clauses) == 2
    assert g.num_vars == 3


def test_opb_roundtrip_mixed():
    f = Formula(num_vars=4)
    f.add_clause([1, -2])
    f.add_pb([(3, 1), (-2, -3)], "<=", 2)
    f.add_exactly_one([2, 3, 4])
    f.set_objective([(1, 2), (5, -4)])
    g = _roundtrip_opb(f)
    assert g.num_vars == f.num_vars
    assert set(g.clauses) == set(f.clauses)
    assert set(g.pb_constraints) == set(f.pb_constraints)
    assert g.objective == f.objective
    assert g.objective_sense == "min"


@given(st.lists(st.lists(lits, min_size=1, max_size=4), min_size=1, max_size=6))
def test_cnf_roundtrip_preserves_clauses(clause_lists):
    f = Formula()
    kept = []
    for c in clause_lists:
        kept.append(f.add_clause(c))
    g = _roundtrip_cnf(f)
    assert list(g.clauses) == kept


def test_formula_to_string_formats():
    f = Formula(num_vars=1)
    f.add_clause([1])
    assert "p cnf" in formula_to_string(f, "cnf")
    assert ">= 1" in formula_to_string(f, "opb")
    with pytest.raises(ValueError):
        formula_to_string(f, "xml")


def test_opb_malformed_token():
    with pytest.raises(ValueError):
        read_opb(io.StringIO("+1 z3 >= 1 ;\n"))
