"""Coloring encoding tests: sizes per the paper, decode, normalization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.encoding import (
    decode_coloring,
    encode_coloring,
    normalize_coloring,
    used_colors,
)
from repro.graphs.generators import queens_graph
from repro.graphs.graph import Graph
from repro.pb.engine import PBSolver


def test_formula_sizes_match_paper():
    # Paper Section 2.5: n*K + K vars, K*(m + n + 1) clauses, n PB.
    g = queens_graph(4, 4)
    n, m, k = g.num_vertices, g.num_edges, 5
    enc = encode_coloring(g, k)
    stats = enc.formula.stats()
    assert stats.num_vars == n * k + k
    assert stats.num_clauses == k * (m + n + 1)
    assert stats.num_pb == n
    assert enc.formula.objective is not None
    assert len(enc.formula.objective) == k


def test_variable_maps():
    g = Graph.from_edges(2, [(0, 1)])
    enc = encode_coloring(g, 3)
    xs = {enc.x(v, k) for v in range(2) for k in range(1, 4)}
    ys = {enc.y(k) for k in range(1, 4)}
    assert len(xs) == 6 and len(ys) == 3
    assert not xs & ys


def test_decision_encoding_has_no_objective():
    g = Graph.from_edges(2, [(0, 1)])
    enc = encode_coloring(g, 2, with_objective=False)
    assert enc.formula.objective is None


def test_invalid_color_count():
    with pytest.raises(ValueError):
        encode_coloring(Graph(1), 0)


def test_decode_roundtrip():
    g = queens_graph(3, 3)
    enc = encode_coloring(g, 5)
    solver = PBSolver()
    assert solver.add_formula(enc.formula)
    result = solver.solve()
    assert result.is_sat
    coloring = decode_coloring(enc, result.model)
    assert g.is_proper_coloring(coloring)
    assert used_colors(coloring) <= 5


def test_decode_rejects_bad_model():
    g = Graph.from_edges(2, [(0, 1)])
    enc = encode_coloring(g, 2)
    empty_model = {v: False for v in range(1, enc.formula.num_vars + 1)}
    with pytest.raises(ValueError):
        decode_coloring(enc, empty_model)
    double = dict(empty_model)
    double[enc.x(0, 1)] = True
    double[enc.x(0, 2)] = True
    with pytest.raises(ValueError):
        decode_coloring(enc, double)


def test_normalize_coloring():
    coloring = {0: 7, 1: 3, 2: 7}
    norm = normalize_coloring(coloring)
    assert norm == {0: 1, 1: 2, 2: 1}
    assert used_colors(norm) == used_colors(coloring)


def test_copy_independence():
    g = Graph.from_edges(2, [(0, 1)])
    enc = encode_coloring(g, 2)
    dup = enc.copy()
    dup.formula.add_clause([enc.y(1)])
    assert len(enc.formula.clauses) + 1 == len(dup.formula.clauses)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=4), st.data())
def test_encoding_solutions_are_proper_colorings(n, k, data):
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if data.draw(st.booleans()):
                g.add_edge(u, v)
    enc = encode_coloring(g, k)
    solver = PBSolver()
    ok = solver.add_formula(enc.formula)
    result = solver.solve() if ok else None
    if result is not None and result.is_sat:
        coloring = decode_coloring(enc, result.model)
        assert g.is_proper_coloring(coloring)
    else:
        # UNSAT must mean the graph genuinely needs more than k colors.
        import itertools

        colorable = any(
            all(a[u] != a[v] for u, v in g.edges())
            for a in itertools.product(range(k), repeat=n)
        )
        assert not colorable
