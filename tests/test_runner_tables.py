"""Experiment runner and table driver tests (bench scale, fast rows)."""

from repro.experiments.instances import ScalePreset, get_scale
from repro.experiments.runner import CellResult, RunRecord, format_seconds, run_one
from repro.experiments.tables import (
    render_solver_table,
    render_table1,
    render_table2,
    solver_table,
    table1,
    table2,
)

FAST = ScalePreset(
    name="test", instance_names=("myciel3", "queen5_5"),
    k_primary=6, k_secondary=7, time_limit=10.0,
    detection_node_limit=20000, solvers=("pbs2",),
)


def test_run_one_solves_myciel3():
    record = run_one(
        FAST.instances()[0], 6, "pbs2", "nu", False, 10.0, 20000
    )
    assert record.solved
    assert record.num_colors == 4
    assert record.status == "OPTIMAL"


def test_cell_aggregation():
    cell = CellResult(solver="pbs2", sbp_kind="nu", instance_dependent=False)
    good = RunRecord("a", "pbs2", "nu", False, 6, "OPTIMAL", 4, 1.0, True)
    bad = RunRecord("b", "pbs2", "nu", False, 6, "UNKNOWN", None, 99.0, False)
    cell.add(good, time_limit=10.0)
    cell.add(bad, time_limit=10.0)
    assert cell.num_solved == 1
    assert cell.total_seconds == 1.0 + 10.0  # timeout charged at the limit


def test_format_seconds():
    assert format_seconds(0.52) == "0.5"
    assert format_seconds(123.4) == "123"
    assert format_seconds(2500) == "2.5K"


def test_table1_rows():
    rows = table1(FAST, per_instance_budget=10.0)
    by_name = {r.name: r for r in rows}
    assert by_name["myciel3"].measured_chi == 4
    assert by_name["queen5_5"].measured_chi == 5
    text = render_table1(rows, FAST.k_primary)
    assert "myciel3" in text and "queen5_5" in text


def test_table2_rows_and_trends():
    rows = table2(FAST)
    by_kind = {r.sbp_kind: r for r in rows}
    assert by_kind["li"].order == len(FAST.instance_names)  # identity only
    assert by_kind["none"].order > by_kind["nu"].order
    assert by_kind["sc"].order <= by_kind["none"].order
    assert by_kind["li"].num_vars > by_kind["none"].num_vars  # LI aux vars
    assert by_kind["ca"].num_pb == by_kind["none"].num_pb + 2 * (FAST.k_primary - 1)
    text = render_table2(rows)
    assert "NU+SC" in text


def test_solver_table_smoke():
    table = solver_table(FAST, FAST.k_primary, sbp_rows=("nu",))
    cell = table.cells[("nu", "pbs2", False)]
    assert cell.num_solved == 2
    text = render_solver_table(table, FAST.solvers)
    assert "NU" in text and "pbs2" in text


def test_bench_scale_exists():
    scale = get_scale("bench")
    assert scale.time_limit <= 10.0
