"""The solver-invariant static checker (``repro.analysis``).

Fixture-driven: ``tests/analysis_fixtures/`` holds a miniature package
tree (it contains a ``repro`` path segment, so path-scoped rules engage
exactly as they do on ``src/``) with at least one positive and one
negative fixture per rule, plus the three suppression shapes the
framework promises — reasoned allow silences, reasonless allow is
itself an error, unknown rule id is an error.

The final test runs the full rule set over ``src/`` and asserts zero
findings: reverting any of this PR's violation fixes (or deleting a
suppression, had the tree needed one) turns that test red.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    META_RULE_ID,
    SourceFile,
    all_project_rules,
    all_rules,
    check_file,
    get_rules,
    known_rule_ids,
    package_rel,
    parse_suppressions,
    run,
    select_rules,
)

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC = Path(__file__).parent.parent / "src"


def rule_ids_found(rel_path: str) -> list:
    """Run the full rule set over one fixture; return finding rule ids."""
    path = FIXTURES / rel_path
    source = SourceFile.load(path, package_rel(path))
    report = check_file(source, all_rules())
    return [f.rule_id for f in report.findings]


# --------------------------------------------------------------------------
# Per-rule positive + negative fixtures
# --------------------------------------------------------------------------

POSITIVE_FIXTURES = [
    ("repro/coloring/rpr001_bad.py", "RPR001", 3),
    ("repro/pb/rpr002_bad.py", "RPR002", 1),
    ("repro/pb/rpr002_mention_bad.py", "RPR002", 2),
    ("repro/symmetry/rpr003_bad.py", "RPR003", 7),
    ("repro/api/rpr004_bad.py", "RPR004", 2),
    ("repro/coloring/rpr005_bad.py", "RPR005", 1),
    ("repro/batch/rpr006_bad.py", "RPR006", 6),
    ("repro/pb/rpr007_bad.py", "RPR007", 4),
]

NEGATIVE_FIXTURES = [
    "repro/coloring/rpr001_good.py",
    "repro/sat/rpr001_exempt.py",
    "repro/pb/rpr002_good.py",
    "repro/pb/rpr002_guard_good.py",
    "repro/symmetry/rpr003_good.py",
    "repro/graphs/rpr003_out_of_scope.py",
    "repro/api/rpr004_good.py",
    "repro/coloring/rpr005_good.py",
    "repro/sat/rpr005_exempt.py",
    "repro/batch/rpr006_good.py",
    "repro/pb/rpr007_good.py",
]


@pytest.mark.parametrize("rel,rule_id,count", POSITIVE_FIXTURES)
def test_positive_fixture_is_flagged(rel, rule_id, count):
    found = rule_ids_found(rel)
    assert found.count(rule_id) == count, (rel, found)
    # Nothing else fires on the fixture: the rules stay orthogonal.
    assert set(found) == {rule_id}, (rel, found)


@pytest.mark.parametrize("rel", NEGATIVE_FIXTURES)
def test_negative_fixture_is_clean(rel):
    assert rule_ids_found(rel) == []


# --------------------------------------------------------------------------
# Suppression semantics
# --------------------------------------------------------------------------


def test_reasoned_suppression_silences_finding():
    path = FIXTURES / "repro/coloring/suppressed_ok.py"
    source = SourceFile.load(path, package_rel(path))
    report = check_file(source, all_rules())
    assert report.findings == []
    # Both the trailing-comment and the standalone-comment form were
    # recognized (the finding moved to `suppressed`, not dropped).
    assert [f.rule_id for f in report.suppressed] == ["RPR001", "RPR001"]


def test_reasonless_suppression_is_an_error_and_does_not_silence():
    found = rule_ids_found("repro/coloring/suppressed_no_reason.py")
    assert META_RULE_ID in found  # the suppression itself is reported
    assert "RPR001" in found  # and the violation is NOT silenced


def test_unknown_rule_in_suppression_is_an_error():
    assert rule_ids_found("repro/coloring/suppressed_unknown_rule.py") == [
        META_RULE_ID
    ]


def test_deleting_the_suppression_resurfaces_the_finding():
    path = FIXTURES / "repro/coloring/suppressed_ok.py"
    stripped = "\n".join(
        line.split("# repro: allow")[0].rstrip()
        for line in path.read_text().splitlines()
        if not line.strip().startswith("# repro: allow")
    )
    import ast

    source = SourceFile(path, package_rel(path), stripped, ast.parse(stripped))
    report = check_file(source, all_rules())
    assert [f.rule_id for f in report.findings] == ["RPR001", "RPR001"]


def test_parse_suppressions_trailing_and_standalone():
    src = (
        "x = 1  # repro: allow[RPR003] trailing form\n"
        "# repro: allow[RPR001, RPR002] standalone form\n"
        "y = 2\n"
    )
    supps = parse_suppressions(src)
    assert [(s.line, s.rule_ids) for s in supps] == [
        (1, ("RPR003",)),
        (3, ("RPR001", "RPR002")),
    ]
    assert all(s.reason for s in supps)


# --------------------------------------------------------------------------
# Framework plumbing
# --------------------------------------------------------------------------


def test_package_rel_resolves_src_and_fixture_trees():
    assert package_rel(Path("src/repro/sat/cdcl.py")) == "sat/cdcl.py"
    assert package_rel(Path("/root/repo/src/repro/api/pool.py")) == "api/pool.py"
    assert (
        package_rel(Path("tests/analysis_fixtures/repro/pb/rpr002_bad.py"))
        == "pb/rpr002_bad.py"
    )


def test_get_rules_selection_and_unknown_rule():
    assert [r.rule_id for r in get_rules(["rpr003"])] == ["RPR003"]
    with pytest.raises(KeyError):
        get_rules(["RPR999"])


def test_rule_registry_is_complete():
    ids = [rule.rule_id for rule in all_rules()]
    assert ids == [
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006", "RPR007",
    ]
    assert all(rule.title and rule.rationale for rule in all_rules())
    project_ids = [rule.rule_id for rule in all_project_rules()]
    assert project_ids == ["RPR008", "RPR009", "RPR010"]
    assert all(rule.title and rule.rationale for rule in all_project_rules())
    assert known_rule_ids() == {
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006", "RPR007",
        "RPR008", "RPR009", "RPR010",
    }


def test_select_rules_splits_file_and_project_rules():
    file_rules, project_rules = select_rules(["RPR002", "RPR010"])
    assert [r.rule_id for r in file_rules] == ["RPR002"]
    assert [r.rule_id for r in project_rules] == ["RPR010"]
    with pytest.raises(KeyError):
        select_rules(["RPR999"])


# --------------------------------------------------------------------------
# CLI contract
# --------------------------------------------------------------------------


def _cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=SRC.parent,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        timeout=300,
    )


def test_cli_exits_nonzero_on_fixture_violations():
    proc = _cli(str(FIXTURES / "repro/pb/rpr002_bad.py"))
    assert proc.returncode == 1
    assert "RPR002" in proc.stdout


def test_cli_exits_zero_on_clean_file_and_emits_json():
    proc = _cli("--json", str(FIXTURES / "repro/pb/rpr002_good.py"))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["findings"] == []
    assert doc["files_checked"] == 1
    assert [r["id"] for r in doc["rules"]][0] == "RPR001"


def test_cli_rule_selection_and_list_rules():
    proc = _cli("--rules", "RPR001", str(FIXTURES / "repro/pb/rpr002_bad.py"))
    assert proc.returncode == 0  # RPR002 finding exists, but wasn't run
    listing = _cli("--list-rules")
    assert listing.returncode == 0
    assert "RPR006" in listing.stdout


def test_cli_unknown_path_and_unknown_rule_are_usage_errors():
    assert _cli("no/such/path.py").returncode == 2
    proc = _cli("--rules", "RPR999", str(FIXTURES))
    assert proc.returncode == 2


# --------------------------------------------------------------------------
# The tree itself
# --------------------------------------------------------------------------


def test_source_tree_is_clean():
    """`make analyze` exits 0: every violation this PR found was fixed
    (or suppressed with a reason).  Reverting any one fix turns this
    red — that is the point of the gate."""
    reports = run([SRC])
    findings = [f for report in reports for f in report.findings]
    assert findings == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule_id} {f.message}" for f in findings
    )
    assert len(reports) > 60  # the walker really saw the tree
