"""Kernelization tests: peeling, extension, reduced solving."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.reduce import (
    extend_coloring,
    peel_low_degree,
    solve_with_reduction,
)
from repro.coloring.sat_pipeline import sat_k_colorable
from repro.graphs.generators import book_graph, queens_graph
from repro.graphs.graph import Graph


def test_peel_tree_vanishes():
    # Every vertex of a tree has degree < 2 at some peeling stage.
    tree = Graph.from_edges(6, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)])
    kernel = peel_low_degree(tree, 2)
    assert kernel.fully_reduced
    coloring = extend_coloring(kernel, {})
    assert tree.is_proper_coloring(coloring)
    assert len(set(coloring.values())) <= 2


def test_peel_keeps_core():
    # Triangle + pendant: peeling at k=2 drops only the pendant
    # (triangle vertices keep degree >= 2).
    g = Graph.from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
    kernel = peel_low_degree(g, 2)
    assert kernel.graph.num_vertices == 3
    assert kernel.kernel_to_original == [0, 1, 2]


def test_peel_nothing_when_k_small():
    k4 = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
    kernel = peel_low_degree(k4, 3)
    assert kernel.graph.num_vertices == 4  # all degrees are 3 >= 3


def test_extension_is_proper():
    g = queens_graph(4, 4)
    kernel = peel_low_degree(g, 6)
    status, sub_coloring = sat_k_colorable(kernel.graph, 6)
    assert status == "SAT"
    coloring = extend_coloring(kernel, sub_coloring)
    assert g.is_proper_coloring(coloring)
    assert max(coloring.values()) <= 6


def test_solve_with_reduction_sat():
    g = book_graph(40, 90, seed=3)  # sparse: heavy peeling expected
    result = solve_with_reduction(g, 8, sat_k_colorable)
    assert result.status == "SAT"
    assert g.is_proper_coloring(result.coloring)
    assert result.kernel_vertices < g.num_vertices


def test_solve_with_reduction_unsat():
    k4 = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
    result = solve_with_reduction(k4, 3, sat_k_colorable)
    assert result.status == "UNSAT"
    assert result.coloring is None


def test_components_solved_independently():
    # Two disjoint K_{3,3}: degeneracy 3 >= k=3 so nothing peels, and
    # the kernel splits into two components (chi = 2 <= 3: SAT).
    edges = []
    for base in (0, 6):
        for u in range(3):
            for v in range(3, 6):
                edges.append((base + u, base + v))
    g = Graph.from_edges(12, edges)
    result = solve_with_reduction(g, 3, sat_k_colorable)
    assert result.status == "SAT"
    assert result.components_solved == 2
    assert result.kernel_vertices == 12
    assert g.is_proper_coloring(result.coloring)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=4), st.data())
def test_reduction_equivalent_to_direct(n, k, data):
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if data.draw(st.booleans()):
                g.add_edge(u, v)
    direct_status, _ = sat_k_colorable(g, k)
    reduced = solve_with_reduction(g, k, sat_k_colorable)
    assert reduced.status == direct_status
    if reduced.status == "SAT":
        assert g.is_proper_coloring(reduced.coloring)
        assert max(reduced.coloring.values(), default=1) <= k
