"""Clique computation tests."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.cliques import clique_lower_bound, greedy_clique, is_clique, max_clique
from repro.graphs.generators import queens_graph
from repro.graphs.graph import Graph


def _brute_max_clique(graph):
    best = 0
    for size in range(graph.num_vertices, 0, -1):
        for subset in itertools.combinations(range(graph.num_vertices), size):
            if is_clique(graph, subset):
                return size
    return best


def test_greedy_clique_is_clique():
    g = queens_graph(4, 4)
    clique = greedy_clique(g)
    assert is_clique(g, clique)
    assert len(clique) >= 4  # each row is a 4-clique


def test_greedy_clique_empty_graph():
    assert greedy_clique(Graph(0)) == []
    assert clique_lower_bound(Graph(0)) == 0


def test_max_clique_known_values():
    triangle = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
    assert len(max_clique(triangle)) == 3
    path = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    assert len(max_clique(path)) == 2
    empty = Graph(4)
    assert len(max_clique(empty)) == 1


def test_max_clique_queens():
    g = queens_graph(5, 5)
    assert len(max_clique(g)) == 5


def test_node_limit_returns_incumbent():
    g = queens_graph(5, 5)
    clique = max_clique(g, node_limit=1)
    assert is_clique(g, clique)


def test_is_clique():
    g = Graph.from_edges(3, [(0, 1), (1, 2)])
    assert is_clique(g, [0, 1])
    assert not is_clique(g, [0, 1, 2])
    assert is_clique(g, [])


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=7), st.data())
def test_max_clique_matches_brute_force(n, data):
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if data.draw(st.booleans()):
                g.add_edge(u, v)
    exact = len(max_clique(g))
    assert exact == _brute_max_clique(g)
    assert clique_lower_bound(g) <= exact
    assert is_clique(g, max_clique(g))
