"""CDCL solver tests: units, assumptions, and fuzz vs brute force."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formula import Formula
from repro.sat.brute import brute_force_solve
from repro.sat.cdcl import CDCLSolver, solve_formula
from repro.sat.luby import luby


def test_trivial_sat():
    f = Formula(num_vars=1)
    f.add_clause([1])
    result = solve_formula(f)
    assert result.is_sat and result.model[1] is True


def test_trivial_unsat():
    solver = CDCLSolver()
    solver.add_clause([1])
    assert solver.add_clause([-1]) is False
    assert solver.solve().is_unsat


def test_implication_chain():
    f = Formula(num_vars=5)
    for i in range(1, 5):
        f.add_clause([-i, i + 1])
    f.add_clause([1])
    result = solve_formula(f)
    assert result.is_sat
    assert all(result.model[v] for v in range(1, 6))


def test_all_binary_combinations_unsat():
    f = Formula(num_vars=2)
    for c in ([1, 2], [-1, 2], [1, -2], [-1, -2]):
        f.add_clause(c)
    assert solve_formula(f).is_unsat


def test_tautology_ignored():
    solver = CDCLSolver()
    assert solver.add_clause([1, -1])
    assert solver.solve().is_sat


def test_assumptions():
    f = Formula(num_vars=2)
    f.add_clause([1, 2])
    assert solve_formula(f, assumptions=[-1]).model[2] is True
    assert solve_formula(f, assumptions=[-1, -2]).is_unsat
    # Assumptions don't persist: still SAT without them.
    assert solve_formula(f).is_sat


def test_incremental_reuse():
    solver = CDCLSolver()
    solver.add_clause([1, 2])
    assert solver.solve(assumptions=[-1]).is_sat
    solver.add_clause([-2])
    result = solver.solve()
    assert result.is_sat and result.model[1] is True
    solver.add_clause([-1])
    assert solver.solve().is_unsat


def test_conflict_limit_returns_unknown():
    # Pigeonhole 6->5 cannot be refuted in 2 conflicts.
    f = _php(6, 5)
    result = solve_formula(f, conflict_limit=2)
    assert result.is_unknown


def _php(pigeons, holes):
    f = Formula()
    x = {(p, h): f.new_var() for p in range(pigeons) for h in range(holes)}
    for p in range(pigeons):
        f.add_clause([x[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                f.add_clause([-x[p1, h], -x[p2, h]])
    return f


def test_pigeonhole_unsat():
    result = solve_formula(_php(6, 5))
    assert result.is_unsat
    assert result.stats.conflicts > 0


def test_pigeonhole_sat():
    result = solve_formula(_php(5, 5))
    assert result.is_sat


def test_add_clause_mid_search_rejected():
    solver = CDCLSolver()
    solver.add_clause([1, 2])
    solver.trail_lim.append(0)  # simulate being mid-search
    with pytest.raises(RuntimeError):
        solver.add_clause([2, 3])
    solver.trail_lim.pop()


def test_luby_prefix():
    assert [luby(i) for i in range(1, 16)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


@st.composite
def random_cnf(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    m = draw(st.integers(min_value=1, max_value=24))
    f = Formula(num_vars=n)
    for _ in range(m):
        width = draw(st.integers(min_value=1, max_value=3))
        lits = [
            draw(st.integers(min_value=1, max_value=n))
            * draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        f.add_clause(lits)
    return f


@settings(max_examples=120, deadline=None)
@given(random_cnf())
def test_cdcl_matches_brute_force(formula):
    expected = brute_force_solve(formula)
    actual = solve_formula(formula)
    assert actual.status == expected.status
    if actual.is_sat:
        assert formula.evaluate(actual.model)


def test_model_covers_all_variables():
    f = Formula(num_vars=4)
    f.add_clause([1])
    model = solve_formula(f).model
    assert set(model) == {1, 2, 3, 4}
