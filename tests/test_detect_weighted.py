"""Symmetry detection on weighted PB formulas and objectives.

The coefficient-node construction must keep differently-weighted
literals apart while allowing equal-weight ones to swap.
"""

from repro.core.formula import Formula
from repro.core.literals import index_lit, lit_index
from repro.symmetry.detect import detect_symmetries


def _permuted_ok(formula, gen):
    """Check a generator maps some model to a model (sanity)."""
    from repro.sat.brute import brute_force_solve

    base = brute_force_solve(formula)
    if not base.is_sat:
        return True
    image = {}
    for v in range(1, formula.num_vars + 1):
        lit = v if base.model[v] else -v
        img = index_lit(gen(lit_index(lit)))
        image[abs(img)] = img > 0
    return formula.evaluate(image)


def test_equal_weights_swap():
    f = Formula(num_vars=2)
    f.add_pb([(2, 1), (2, 2)], ">=", 2)
    report = detect_symmetries(f)
    assert report.order == 2  # x1 <-> x2


def test_unequal_weights_do_not_swap():
    f = Formula(num_vars=2)
    f.add_pb([(3, 1), (2, 2)], ">=", 2)
    report = detect_symmetries(f)
    assert report.order == 1


def test_mixed_weight_groups():
    # 2x1 + 2x2 + 5x3 + 5x4 >= 7: {1,2} and {3,4} swap internally.
    f = Formula(num_vars=4)
    f.add_pb([(2, 1), (2, 2), (5, 3), (5, 4)], ">=", 7)
    report = detect_symmetries(f)
    assert report.order == 4
    for gen in report.generators:
        assert _permuted_ok(f, gen)


def test_different_bounds_not_confused():
    f = Formula(num_vars=4)
    f.add_pb([(1, 1), (1, 2)], ">=", 1)
    f.add_pb([(1, 3), (1, 4)], ">=", 2)
    report = detect_symmetries(f)
    # {1,2} swap; {3,4} swap (within their own constraints); but the two
    # constraints must not map onto each other (different bounds).
    assert report.order == 4
    for gen in report.generators:
        assert _permuted_ok(f, gen)


def test_objective_blocks_swap():
    # Without the objective x1,x2 are symmetric; weighting one more in
    # the objective breaks the symmetry.
    f = Formula(num_vars=2)
    f.add_clause([1, 2])
    f.set_objective([(1, 1), (2, 2)])
    report = detect_symmetries(f)
    assert report.order == 1
    g = Formula(num_vars=2)
    g.add_clause([1, 2])
    g.set_objective([(1, 1), (1, 2)])
    assert detect_symmetries(g).order == 2


def test_equality_relation_in_signature():
    f = Formula(num_vars=4)
    f.add_pb([(1, 1), (1, 2)], "=", 1)
    f.add_pb([(1, 3), (1, 4)], ">=", 1)
    report = detect_symmetries(f)
    # Swaps inside each pair, no cross-constraint mapping.
    assert report.order == 4
