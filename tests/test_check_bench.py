"""The bench-regression gate's comparison logic (scripts/check_bench.py)."""

import importlib.util
import json
import os

import pytest

SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "scripts", "check_bench.py",
)


@pytest.fixture()
def check_bench(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location("check_bench", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "BENCH_DIR", str(tmp_path))
    return module


def _write(tmp_path, stem, results):
    path = tmp_path / f"BENCH_{stem}.json"
    path.write_text(json.dumps({"bench": stem, "results": results}))


BASE_SOLVER = [
    {"instance": "descent-aggregate", "conflict_ratio": 1.5},
    {"instance": "descent-myciel4", "incremental": True,
     "conflicts": 1000, "solvers_created": 1},
    {"instance": "descent-myciel4", "incremental": False,
     "conflicts": 2000, "solvers_created": 2},
    {"instance": "descent-queens7_7", "incremental": True,
     "conflicts": 200, "solvers_created": 1},
    {"instance": "smoke-incremental-guard", "solvers_created": 1},
    {"instance": "pigeonhole-7-6", "conflicts": 1100},
]
BASE_PRE = [
    {"instance": "preprocess-book-encoding", "units": 229},
    {"instance": "subsumption-indexed-10k", "subsumed": 13},
]
BASE_PARALLEL = [
    {"instance": "pool-tier-sequential", "chromatic_number": 7},
    {"instance": "pool-tier-threads", "chromatic_number": 7},
    {"instance": "pool-tier-processes", "chromatic_number": 7,
     "components": 3, "solvers_created": 3},
    {"instance": "pool-tier-aggregate", "cpus": 1,
     "process_vs_threads_speedup": 0.9},
    {"instance": "portfolio-race-gnp42", "chromatic_number": 7,
     "cancelled": 2, "ub": 7, "lb": 7},
]


def _baselines(module):
    return {"solver_micro": BASE_SOLVER, "preprocessing": BASE_PRE,
            "parallel": BASE_PARALLEL}


def _write_rest(tmp_path, *skip):
    for stem, results in (("solver_micro", BASE_SOLVER),
                          ("preprocessing", BASE_PRE),
                          ("parallel", BASE_PARALLEL)):
        if stem not in skip:
            _write(tmp_path, stem, results)


def test_identical_counters_pass(check_bench, tmp_path):
    _write_rest(tmp_path)
    assert check_bench.check(_baselines(check_bench), slack=1.0) == 0


def test_conflict_growth_beyond_tolerance_fails(check_bench, tmp_path):
    fresh = json.loads(json.dumps(BASE_SOLVER))
    fresh[1]["conflicts"] = 2000  # incremental myciel4 doubled
    _write(tmp_path, "solver_micro", fresh)
    _write_rest(tmp_path, "solver_micro")
    assert check_bench.check(_baselines(check_bench), slack=1.0) == 1
    # ...but a big enough slack factor waives it.
    assert check_bench.check(_baselines(check_bench), slack=10.0) == 0


def test_incremental_ratio_shrink_fails(check_bench, tmp_path):
    fresh = json.loads(json.dumps(BASE_SOLVER))
    fresh[0]["conflict_ratio"] = 1.0  # descent barely beats scratch now
    _write(tmp_path, "solver_micro", fresh)
    _write_rest(tmp_path, "solver_micro")
    assert check_bench.check(_baselines(check_bench), slack=1.0) == 1


def test_extra_solver_creation_fails_exactly(check_bench, tmp_path):
    fresh = json.loads(json.dumps(BASE_SOLVER))
    fresh[4]["solvers_created"] = 2  # descent silently fell back to scratch
    _write(tmp_path, "solver_micro", fresh)
    _write_rest(tmp_path, "solver_micro")
    assert check_bench.check(_baselines(check_bench), slack=1.0) == 1


def test_missing_entry_fails_but_missing_baseline_does_not(check_bench, tmp_path):
    fresh = [e for e in BASE_SOLVER if e["instance"] != "pigeonhole-7-6"]
    _write(tmp_path, "solver_micro", fresh)
    _write_rest(tmp_path, "solver_micro")
    assert check_bench.check(_baselines(check_bench), slack=1.0) == 1

    # A gate with no committed baseline yet reports NEW and passes.
    _write(tmp_path, "solver_micro", BASE_SOLVER)
    baselines = {"solver_micro": [], "preprocessing": BASE_PRE,
                 "parallel": BASE_PARALLEL}
    assert check_bench.check(baselines, slack=1.0) == 0


def test_improvements_always_pass(check_bench, tmp_path):
    fresh = json.loads(json.dumps(BASE_SOLVER))
    fresh[0]["conflict_ratio"] = 3.0   # ratio up: better
    fresh[1]["conflicts"] = 100        # conflicts down: better
    _write(tmp_path, "solver_micro", fresh)
    _write_rest(tmp_path, "solver_micro")
    assert check_bench.check(_baselines(check_bench), slack=1.0) == 0


def test_parallel_speedup_shrink_fails(check_bench, tmp_path):
    fresh = json.loads(json.dumps(BASE_PARALLEL))
    fresh[3]["process_vs_threads_speedup"] = 0.3  # process tier rotted
    _write(tmp_path, "parallel", fresh)
    _write_rest(tmp_path, "parallel")
    assert check_bench.check(_baselines(check_bench), slack=1.0) == 1


def test_parallel_answer_drift_fails_exactly(check_bench, tmp_path):
    fresh = json.loads(json.dumps(BASE_PARALLEL))
    fresh[2]["chromatic_number"] = 8  # process tier changed an answer
    _write(tmp_path, "parallel", fresh)
    _write_rest(tmp_path, "parallel")
    assert check_bench.check(_baselines(check_bench), slack=1.0) == 1
