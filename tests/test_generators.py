"""Benchmark generator tests: exact families exactly, synthetic by contract."""

import pytest

from repro.graphs.cliques import clique_lower_bound
from repro.graphs.coloring_heuristics import dsatur
from repro.graphs.generators import (
    book_graph,
    games_graph,
    geometric_graph,
    gnm_graph,
    gnp_graph,
    interference_graph,
    mycielski_graph,
    mycielski_step,
    queens_graph,
)
from repro.graphs.graph import Graph


# ------------------------------------------------------------------ queens
@pytest.mark.parametrize(
    "rows,cols,vertices,edges",
    [(5, 5, 25, 160), (6, 6, 36, 290), (7, 7, 49, 476), (8, 12, 96, 1368)],
)
def test_queens_sizes_match_dimacs(rows, cols, vertices, edges):
    g = queens_graph(rows, cols)
    assert g.num_vertices == vertices
    assert g.num_edges == edges


def test_queens_rows_are_cliques():
    g = queens_graph(4, 4)
    for r in range(4):
        row = [r * 4 + c for c in range(4)]
        for i, u in enumerate(row):
            for v in row[i + 1 :]:
                assert g.has_edge(u, v)


def test_queens_rejects_bad_board():
    with pytest.raises(ValueError):
        queens_graph(0, 3)


# --------------------------------------------------------------- mycielski
@pytest.mark.parametrize("k,vertices,edges", [(2, 5, 5), (3, 11, 20), (4, 23, 71), (5, 47, 236)])
def test_mycielski_sizes(k, vertices, edges):
    g = mycielski_graph(k)
    assert (g.num_vertices, g.num_edges) == (vertices, edges)


def test_mycielski_triangle_free():
    g = mycielski_graph(4)
    for u, v in g.edges():
        assert not (g.neighbors(u) & g.neighbors(v)), "triangle found"


def test_mycielski_step_formula():
    g = Graph.from_edges(3, [(0, 1), (1, 2)])
    h = mycielski_step(g)
    assert h.num_vertices == 2 * 3 + 1
    assert h.num_edges == 3 * 2 + 3


def test_mycielski_chromatic_number_grows():
    # chi(myciel k) = k + 1; DSATUR is exact on these small instances.
    for k in (2, 3, 4):
        _, colors = dsatur(mycielski_graph(k))
        assert colors == k + 1


def test_mycielski_rejects_zero():
    with pytest.raises(ValueError):
        mycielski_graph(0)


# ------------------------------------------------------------------ random
def test_gnm_exact_edges_and_determinism():
    g1 = gnm_graph(30, 100, seed=5)
    g2 = gnm_graph(30, 100, seed=5)
    assert g1.num_edges == 100
    assert g1 == g2
    assert gnm_graph(30, 100, seed=6) != g1


def test_gnm_dense_path():
    g = gnm_graph(10, 40, seed=1)  # > half of C(10,2)=45
    assert g.num_edges == 40


def test_gnm_rejects_too_many():
    with pytest.raises(ValueError):
        gnm_graph(4, 7)


def test_gnp_bounds():
    g = gnp_graph(20, 0.5, seed=2)
    assert 0 < g.num_edges < 190
    with pytest.raises(ValueError):
        gnp_graph(5, 1.5)


# -------------------------------------------------------------- synthetics
def test_book_graph_contract():
    g = book_graph(74, 301, seed=1, name="huck")
    assert (g.num_vertices, g.num_edges) == (74, 301)
    # Protagonists (low indices) should be hubs.
    assert g.degree(0) > g.degree(60)


def test_book_graph_deterministic():
    assert book_graph(50, 120, seed=9) == book_graph(50, 120, seed=9)


def test_geometric_graph_contract():
    g = geometric_graph(60, 150, seed=3)
    assert (g.num_vertices, g.num_edges) == (60, 150)


def test_games_graph_near_regular():
    g = games_graph(40, 200, seed=4)
    assert (g.num_vertices, g.num_edges) == (40, 200)
    degrees = [g.degree(v) for v in g.vertices()]
    # Matching overlays keep the schedule near-regular (duplicate-edge
    # collisions introduce a small spread around 2m/n = 10).
    assert max(degrees) - min(degrees) <= 6


def test_games_graph_requires_even_teams():
    with pytest.raises(ValueError):
        games_graph(5, 4)


def test_interference_graph_contract():
    g = interference_graph(80, 600, depth=12, seed=5)
    assert (g.num_vertices, g.num_edges) == (80, 600)
    # The long-lived core forms a clique: chromatic number >= depth.
    assert clique_lower_bound(g) >= 12


def test_interference_depth_bounds_chromatic():
    g = interference_graph(60, 400, depth=15, seed=6)
    _, ub = dsatur(g)
    assert ub >= 15


def test_edge_targets_validated():
    with pytest.raises(ValueError):
        book_graph(4, 10)
    with pytest.raises(ValueError):
        geometric_graph(4, 10)
    with pytest.raises(ValueError):
        interference_graph(4, 10, depth=2)
