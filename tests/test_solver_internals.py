"""Stress tests for solver internals: restarts, clause-DB reduction,
phase saving, VSIDS, clause-group garbage collection, assumption-aware
preprocessing, and the preprocessing + search integration."""

import random

import pytest

from repro.coloring.sat_pipeline import IncrementalKSearch
from repro.core.formula import Formula
from repro.graphs.generators import mycielski_graph, queens_graph
from repro.sat.brute import brute_force_solve
from repro.sat.cdcl import CDCLSolver, solve_formula
from repro.sat.preprocessing import preprocess
from repro.sat.result import SAT, UNSAT
from repro.sat.vsids import VSIDS


def _random_cnf(seed, n, m, width=3):
    rng = random.Random(seed)
    f = Formula(num_vars=n)
    for _ in range(m):
        f.add_clause([
            rng.randint(1, n) * rng.choice([1, -1])
            for _ in range(rng.randint(1, width))
        ])
    return f


def test_db_reduction_triggers_and_stays_correct():
    # Small DB cap forces many reductions; answers must stay correct.
    for seed in range(8):
        f = _random_cnf(seed, 12, 60)
        solver = CDCLSolver(max_learned_start=5, max_learned_growth=1.0)
        ok = solver.add_formula(f)
        result = solver.solve() if ok else None
        status = result.status if ok else "UNSAT"
        assert status == brute_force_solve(f).status, seed
        if ok and solver.stats.learned > 10:
            assert solver.stats.deleted >= 0


def test_aggressive_restarts_stay_correct():
    for seed in range(8):
        f = _random_cnf(seed + 100, 10, 45)
        solver = CDCLSolver(restart_base=1)  # restart after every conflict
        ok = solver.add_formula(f)
        status = solver.solve().status if ok else "UNSAT"
        assert status == brute_force_solve(f).status, seed


def test_phase_default_true_still_correct():
    for seed in range(6):
        f = _random_cnf(seed + 200, 10, 40)
        solver = CDCLSolver(phase_default=True)
        ok = solver.add_formula(f)
        status = solver.solve().status if ok else "UNSAT"
        assert status == brute_force_solve(f).status, seed


def test_vsids_pop_order():
    v = VSIDS(3)
    v.bump(2)
    v.bump(2)
    v.bump(3)
    assigned = set()
    assert v.pop_unassigned(lambda x: x in assigned) == 2
    assigned.add(2)
    v.push(2)  # pushed back (e.g. on backtrack) but still assigned
    assert v.pop_unassigned(lambda x: x in assigned) == 3
    assigned.update((3, 1))
    v.push(3)
    assert v.pop_unassigned(lambda x: x in assigned) == 0


def test_vsids_rescale():
    v = VSIDS(2)
    for _ in range(2000):
        v.bump(1)
        v.decay()
    # Activities stay finite and ordering is preserved.
    assert v.activity[1] > v.activity[2]
    assert v.pop_unassigned(lambda x: False) == 1


def test_preprocess_then_solve_agrees():
    for seed in range(15):
        f = _random_cnf(seed + 300, 9, 35)
        expected = brute_force_solve(f).status
        pre = preprocess(f)
        if pre.is_unsat:
            assert expected == "UNSAT", seed
            continue
        result = solve_formula(pre.formula)
        assert result.status == expected, seed


def test_stats_populated():
    f = _random_cnf(7, 10, 50)
    solver = CDCLSolver()
    if solver.add_formula(f):
        result = solver.solve()
        assert result.stats.propagations > 0
        assert result.stats.time_seconds >= 0.0


def test_solver_reuse_after_unsat_result():
    solver = CDCLSolver()
    solver.add_clause([1, 2])
    assert solver.solve(assumptions=[-1, -2]).is_unsat
    assert solver.solve().is_sat  # UNSAT was only under assumptions


# ---------------------------------------------------------------- clause GC
def test_collect_level0_satisfied_drops_clauses_and_watchers():
    solver = CDCLSolver(num_vars=6)
    solver.add_clause([1, 2])
    solver.add_clause([1, 3, 4])
    solver.add_clause([-2, 5])
    solver.add_clause([3, -5, 6])
    watchers_before = solver.watcher_count()
    assert len(solver.clauses) == 4
    solver.add_clause([1])  # satisfies the first two clauses at level 0
    removed = solver.collect_level0_satisfied()
    assert removed["clauses"] == 2
    assert removed["watchers"] == 4
    assert len(solver.clauses) == 2
    assert solver.watcher_count() == watchers_before - 4
    # The swept solver still answers correctly.
    result = solver.solve(assumptions=[2])
    assert result.is_sat and result.model[5]


def test_collect_level0_requires_root_level():
    solver = CDCLSolver(num_vars=2)
    solver.add_clause([1, 2])
    solver.trail_lim.append(len(solver.trail))
    solver._enqueue(1, None)
    with pytest.raises(RuntimeError, match="level 0"):
        solver.collect_level0_satisfied()
    solver._backtrack(0)


def test_permanent_shrink_garbage_collects_color_groups():
    """Disabling colors permanently must reclaim their clause groups:
    clause count and watcher count actually drop, and later queries on
    the shrunk solver stay correct."""
    graph = queens_graph(5, 5)  # chi = 5
    search = IncrementalKSearch(graph, 8)
    status, coloring, _ = search.solve_k(7, permanent=True)
    assert status == SAT
    clauses_before = len(search.solver.clauses) + len(search.solver.learned)
    watchers_before = search.solver.watcher_count()
    gc_before = dict(search.gc_stats)
    status, coloring, _ = search.solve_k(5, permanent=True)
    assert status == SAT
    assert search.gc_stats["clauses"] > gc_before["clauses"]
    assert search.gc_stats["watchers"] > gc_before["watchers"]
    assert len(search.solver.clauses) + len(search.solver.learned) < clauses_before
    assert search.solver.watcher_count() < watchers_before
    # Correctness on the shrunk database: K=4 is UNSAT for queens 5x5.
    status, _, _ = search.solve_k(4, permanent=True)
    assert status == UNSAT


def test_grow_to_garbage_collects_retired_generation():
    graph = mycielski_graph(3)
    search = IncrementalKSearch(graph, 3, growable=True)
    assert search.solve_k(3)[0] == UNSAT  # chi(myciel3) = 4
    assert search.gc_stats["clauses"] == 0
    search.grow_to(5)
    # The retired at-least-one generation (one clause per vertex, all
    # satisfied by the level-0 ext unit) must have been reclaimed.
    assert search.gc_stats["clauses"] >= graph.num_vertices
    assert search.gc_stats["watchers"] >= 2 * graph.num_vertices
    status, coloring, _ = search.solve_k(4)
    assert status == SAT
    assert graph.is_proper_coloring(coloring)
    assert search.solve_k(3)[0] == UNSAT  # refutation survived the sweep


# ------------------------------------------------- assumption-aware preprocess
def test_bve_respects_frozen_variables():
    # Every variable occurs in both phases (no pure literals), and var 1
    # is NiVER-eliminable (one positive, one negative occurrence);
    # freezing it must block exactly that elimination.
    def formula():
        f = Formula(num_vars=4)
        f.add_clause([1, 2])
        f.add_clause([-1, 3])
        f.add_clause([-2, -3])
        f.add_clause([2, -4])
        f.add_clause([-3, 4])
        return f

    free = preprocess(formula())
    assert 1 in {var for var, _ in free.eliminated}
    frozen = preprocess(formula(), frozen=[1])
    assert 1 not in {var for var, _ in frozen.eliminated}
    assert frozen.variables_eliminated >= 1  # others still eliminate
    # Both reductions stay equisatisfiable with the input.
    assert brute_force_solve(formula()).is_sat
    for pre in (free, frozen):
        assert not pre.is_unsat
        if pre.formula.clauses:
            assert solve_formula(pre.formula).is_sat


def test_pure_literal_elimination_respects_frozen_variables():
    # Var 2 is pure (positive only); frozen, it must survive with its
    # clauses so an assumption of -2 can still constrain the formula.
    from repro.sat.preprocessing import _eliminate_pure

    clauses = [(2, 1), (2, -1)]
    forced = {}
    kept, pure = _eliminate_pure(list(clauses), forced)
    assert forced.get(2) is True and pure == 1 and kept == []
    forced = {}
    kept, pure = _eliminate_pure(list(clauses), forced, frozenset([2]))
    assert 2 not in forced and pure == 0
    assert all(2 in clause for clause in kept)


def test_preprocess_reemits_frozen_units():
    """A top-level unit derived on a frozen variable must stay in the
    formula as a unit clause, so a contradicting assumption still fails
    in the solver instead of silently succeeding."""
    f = Formula(num_vars=3)
    f.add_clause([1])
    f.add_clause([-1, 2])  # forces the frozen var 2
    f.add_clause([2, 3])
    pre = preprocess(f, frozen=[2])
    assert pre.forced[2] is True
    assert (2,) in {c.literals for c in pre.formula.clauses}
    solver = CDCLSolver(num_vars=pre.formula.num_vars)
    assert solver.add_formula(pre.formula)
    refuted = solver.solve(assumptions=[-2])
    assert refuted.is_unsat
    assert refuted.failed_assumptions == [-2]


def test_incremental_eliminate_never_touches_activators():
    graph = mycielski_graph(3)
    search = IncrementalKSearch(graph, 5, eliminate=True, sbp_kind="sc")
    assert search._pre is not None
    eliminated = {var for var, _ in search._pre.eliminated}
    frozen = set(search.activators.values())
    assert not eliminated & frozen
    # Activators survive in the clause database, so assumption queries
    # still answer with cores: chi(myciel3) = 4.
    assert search.solve_k(4)[0] == SAT
    status, _, failed = search.solve_k(3)
    assert status == UNSAT
    status, coloring, _ = search.solve_k(5)
    assert status == SAT and graph.is_proper_coloring(coloring)


def test_incremental_eliminate_agrees_with_plain_simplify():
    for graph in (mycielski_graph(3), queens_graph(4, 4)):
        plain = IncrementalKSearch(graph, 6, eliminate=False)
        bve = IncrementalKSearch(graph, 6, eliminate=True)
        for k in (6, 5, 4, 3, 2):
            s_plain, c_plain, _ = plain.solve_k(k)
            s_bve, c_bve, _ = bve.solve_k(k)
            assert s_plain == s_bve, (graph.name, k)
            if s_bve == SAT:
                assert graph.is_proper_coloring(c_bve), (graph.name, k)


def test_large_implication_chain_fast():
    n = 5000
    solver = CDCLSolver(num_vars=n)
    for i in range(1, n):
        solver.add_clause([-i, i + 1])
    solver.add_clause([1])
    result = solver.solve()
    assert result.is_sat
    assert all(result.model[v] for v in (1, n // 2, n))
