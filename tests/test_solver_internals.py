"""Stress tests for solver internals: restarts, clause-DB reduction,
phase saving, VSIDS, and the preprocessing + search integration."""

import random

from repro.core.formula import Formula
from repro.sat.cdcl import CDCLSolver, solve_formula
from repro.sat.preprocessing import preprocess
from repro.sat.vsids import VSIDS
from repro.sat.brute import brute_force_solve


def _random_cnf(seed, n, m, width=3):
    rng = random.Random(seed)
    f = Formula(num_vars=n)
    for _ in range(m):
        f.add_clause([
            rng.randint(1, n) * rng.choice([1, -1])
            for _ in range(rng.randint(1, width))
        ])
    return f


def test_db_reduction_triggers_and_stays_correct():
    # Small DB cap forces many reductions; answers must stay correct.
    for seed in range(8):
        f = _random_cnf(seed, 12, 60)
        solver = CDCLSolver(max_learned_start=5, max_learned_growth=1.0)
        ok = solver.add_formula(f)
        result = solver.solve() if ok else None
        status = result.status if ok else "UNSAT"
        assert status == brute_force_solve(f).status, seed
        if ok and solver.stats.learned > 10:
            assert solver.stats.deleted >= 0


def test_aggressive_restarts_stay_correct():
    for seed in range(8):
        f = _random_cnf(seed + 100, 10, 45)
        solver = CDCLSolver(restart_base=1)  # restart after every conflict
        ok = solver.add_formula(f)
        status = solver.solve().status if ok else "UNSAT"
        assert status == brute_force_solve(f).status, seed


def test_phase_default_true_still_correct():
    for seed in range(6):
        f = _random_cnf(seed + 200, 10, 40)
        solver = CDCLSolver(phase_default=True)
        ok = solver.add_formula(f)
        status = solver.solve().status if ok else "UNSAT"
        assert status == brute_force_solve(f).status, seed


def test_vsids_pop_order():
    v = VSIDS(3)
    v.bump(2)
    v.bump(2)
    v.bump(3)
    assigned = set()
    assert v.pop_unassigned(lambda x: x in assigned) == 2
    assigned.add(2)
    v.push(2)  # pushed back (e.g. on backtrack) but still assigned
    assert v.pop_unassigned(lambda x: x in assigned) == 3
    assigned.update((3, 1))
    v.push(3)
    assert v.pop_unassigned(lambda x: x in assigned) == 0


def test_vsids_rescale():
    v = VSIDS(2)
    for _ in range(2000):
        v.bump(1)
        v.decay()
    # Activities stay finite and ordering is preserved.
    assert v.activity[1] > v.activity[2]
    assert v.pop_unassigned(lambda x: False) == 1


def test_preprocess_then_solve_agrees():
    for seed in range(15):
        f = _random_cnf(seed + 300, 9, 35)
        expected = brute_force_solve(f).status
        pre = preprocess(f)
        if pre.is_unsat:
            assert expected == "UNSAT", seed
            continue
        result = solve_formula(pre.formula)
        assert result.status == expected, seed


def test_stats_populated():
    f = _random_cnf(7, 10, 50)
    solver = CDCLSolver()
    if solver.add_formula(f):
        result = solver.solve()
        assert result.stats.propagations > 0
        assert result.stats.time_seconds >= 0.0


def test_solver_reuse_after_unsat_result():
    solver = CDCLSolver()
    solver.add_clause([1, 2])
    assert solver.solve(assumptions=[-1, -2]).is_unsat
    assert solver.solve().is_sat  # UNSAT was only under assumptions


def test_large_implication_chain_fast():
    n = 5000
    solver = CDCLSolver(num_vars=n)
    for i in range(1, n):
        solver.add_clause([-i, i + 1])
    solver.add_clause([1])
    result = solver.solve()
    assert result.is_sat
    assert all(result.model[v] for v in (1, n // 2, n))
