#!/usr/bin/env python
"""Bench-regression gate: fail CI when the perf trajectory rots.

Regenerates the counter-bearing benchmark records (the ``bench-smoke``
module set, with ``--benchmark-disable`` so no timing rounds) and
compares the *deterministic* tracked counters against the committed
``benchmarks/BENCH_*.json`` baselines:

* solver conflicts on the descent/pigeonhole fixtures must not grow
  beyond tolerance (search quality),
* ``solvers_created`` on incremental descents must stay exact (the
  descent must never silently fall back to per-K scratch solving),
* the incremental-vs-scratch ``conflict_ratio`` must not shrink beyond
  tolerance (the reason the incremental subsystem exists),
* the preprocessing counters (units, subsumed) must stay exact at
  fixed inputs.

Wall-clock fields are deliberately *not* gated — CI runners are noisy;
counters are the stable signal.  On failure the regenerated files are
left in place so the diff against the committed baselines is
inspectable (and uploadable as a CI artifact); an intentional perf
change ships by committing the regenerated BENCH files with the PR.

Usage::

    python scripts/check_bench.py [--skip-run] [--slack FACTOR]

``--skip-run`` compares the BENCH files as they are on disk (useful
right after a manual ``make bench-json``); ``--slack`` scales every
tolerance (e.g. 2.0 doubles them) for exceptionally noisy machines.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO, "benchmarks")

# The modules that produce every gated counter (the bench-smoke set).
MODULES = ("bench_solver_micro.py", "bench_preprocessing.py",
           "bench_parallel.py")

# One gate: (file stem, entry match, field, direction, tolerance).
#   direction "max": fresh <= base * (1 + tol)   (counter must not grow)
#   direction "min": fresh >= base * (1 - tol)   (ratio must not shrink)
#   direction "eq":  |fresh - base| <= base * tol (deterministic counter)
GATES = [
    # The incremental K-search must keep beating scratch on conflicts.
    ("solver_micro", {"instance": "descent-aggregate"},
     "conflict_ratio", "min", 0.15),
    # Incremental descents: conflicts bounded, exactly one solver ever.
    ("solver_micro", {"instance": "descent-myciel4", "incremental": True},
     "conflicts", "max", 0.25),
    ("solver_micro", {"instance": "descent-myciel4", "incremental": True},
     "solvers_created", "eq", 0.0),
    ("solver_micro", {"instance": "descent-queens7_7", "incremental": True},
     "conflicts", "max", 0.50),
    ("solver_micro", {"instance": "descent-queens7_7", "incremental": True},
     "solvers_created", "eq", 0.0),
    ("solver_micro", {"instance": "smoke-incremental-guard"},
     "solvers_created", "eq", 0.0),
    # The component pool: exactly one persistent solver per kernel
    # component (a fallback to the whole-kernel path would report 1),
    # and its conflict total stays bounded.
    ("solver_micro", {"instance": "descent-pool-union-aggregate"},
     "pool_solvers_created", "eq", 0.0),
    ("solver_micro", {"instance": "descent-pool-union-aggregate"},
     "pool_components", "eq", 0.0),
    ("solver_micro", {"instance": "descent-pool-union-pool"},
     "conflicts", "max", 0.30),
    # CDCL search quality on the classic refutation fixture.
    ("solver_micro", {"instance": "pigeonhole-7-6"},
     "conflicts", "max", 0.25),
    # Anytime degradation: an instantly-expired budget still yields the
    # verified greedy bound (deterministic at a fixed input).
    ("solver_micro", {"instance": "descent-budgeted-myciel4"},
     "num_colors", "eq", 0.0),
    ("solver_micro", {"instance": "descent-budgeted-myciel4"},
     "degraded", "eq", 0.0),
    # Observability (docs/observability.md): the tracer hook the hot
    # loop always pays must stay free when no tracer is installed
    # (committed baseline is normalized to 1.0, so the gate reads
    # "disabled overhead <= 5%"); an installed tracer stays bounded;
    # and the event-stream size tracks the (bounded) conflict count —
    # a hook that silently stops emitting or double-emits fails here
    # even though every ratio would still look fine.
    ("solver_micro", {"instance": "tracing-overhead"},
     "disabled_overhead_ratio", "max", 0.05),
    ("solver_micro", {"instance": "tracing-overhead"},
     "enabled_overhead_ratio", "max", 0.50),
    ("solver_micro", {"instance": "tracing-overhead"},
     "trace_records", "eq", 0.25),
    # Preprocessing counters are exact at fixed inputs.
    ("preprocessing", {"instance": "preprocess-book-encoding"},
     "units", "eq", 0.0),
    ("preprocessing", {"instance": "subsumption-indexed-10k"},
     "subsumed", "eq", 0.0),
    # Execution tiers (bench_parallel): every pool tier reproduces the
    # same answer on the 3-component union, the process tier keeps its
    # wall-clock standing against the threaded tier (loose — the ratio
    # is hardware-dependent; cpus is recorded in the baseline), and the
    # portfolio race stays a first-conclusive-cancels-the-rest affair
    # with the exchanged bounds meeting at the optimum.
    ("parallel", {"instance": "pool-tier-processes"},
     "chromatic_number", "eq", 0.0),
    ("parallel", {"instance": "pool-tier-processes"},
     "components", "eq", 0.0),
    ("parallel", {"instance": "pool-tier-processes"},
     "solvers_created", "eq", 0.0),
    ("parallel", {"instance": "pool-tier-threads"},
     "chromatic_number", "eq", 0.0),
    ("parallel", {"instance": "pool-tier-sequential"},
     "chromatic_number", "eq", 0.0),
    ("parallel", {"instance": "pool-tier-aggregate"},
     "process_vs_threads_speedup", "min", 0.50),
    ("parallel", {"instance": "portfolio-race-gnp42"},
     "chromatic_number", "eq", 0.0),
    ("parallel", {"instance": "portfolio-race-gnp42"},
     "cancelled", "eq", 0.0),
    ("parallel", {"instance": "portfolio-race-gnp42"},
     "ub", "eq", 0.0),
    ("parallel", {"instance": "portfolio-race-gnp42"},
     "lb", "eq", 0.0),
]


def bench_path(stem: str) -> str:
    return os.path.join(BENCH_DIR, f"BENCH_{stem}.json")


def load_results(path: str):
    with open(path) as fh:
        return json.load(fh).get("results", [])


def find_entry(results, match):
    for entry in results:
        if all(entry.get(k) == v for k, v in match.items()):
            return entry
    return None


def regenerate() -> int:
    """Re-run the gated bench modules (rewrites BENCH files in place)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable, "-m", "pytest", "-q", "--benchmark-disable",
    ] + [os.path.join(BENCH_DIR, m) for m in MODULES]
    print(f"$ {' '.join(cmd)}", flush=True)
    return subprocess.call(cmd, cwd=REPO, env=env)


def check(baselines, slack: float) -> int:
    failures = 0
    print(f"{'file':14s} {'entry':28s} {'field':16s} "
          f"{'baseline':>10s} {'fresh':>10s}  verdict")
    for stem, match, field, direction, tol in GATES:
        tol *= slack
        base_entry = find_entry(baselines.get(stem, []), match)
        fresh_entry = find_entry(load_results(bench_path(stem)), match)
        label = ",".join(f"{v}" for v in match.values())
        if base_entry is None or field not in base_entry:
            # Nothing committed to gate against yet: record, don't fail.
            print(f"{stem:14s} {label:28s} {field:16s} "
                  f"{'-':>10s} {'-':>10s}  NEW (no baseline)")
            continue
        if fresh_entry is None or field not in fresh_entry:
            print(f"{stem:14s} {label:28s} {field:16s} "
                  f"{base_entry.get(field, '-')!s:>10s} {'-':>10s}  MISSING")
            failures += 1
            continue
        base = float(base_entry[field])
        fresh = float(fresh_entry[field])
        if direction == "max":
            ok = fresh <= base * (1.0 + tol)
        elif direction == "min":
            ok = fresh >= base * (1.0 - tol)
        else:
            ok = abs(fresh - base) <= abs(base) * tol
        verdict = "ok" if ok else f"REGRESSION ({direction}, tol {tol:.0%})"
        print(f"{stem:14s} {label:28s} {field:16s} "
              f"{base:>10.4g} {fresh:>10.4g}  {verdict}")
        failures += 0 if ok else 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--skip-run", action="store_true",
                        help="compare the BENCH files already on disk "
                             "instead of regenerating them first")
    parser.add_argument("--slack", type=float, default=1.0,
                        help="scale every tolerance by this factor")
    args = parser.parse_args(argv)

    stems = sorted({stem for stem, *_ in GATES})
    baselines = {stem: load_results(bench_path(stem)) for stem in stems}
    if not args.skip_run:
        code = regenerate()
        if code != 0:
            print(f"bench regeneration failed (pytest exit {code})")
            return code
    failures = check(baselines, args.slack)
    if failures:
        print(f"\n{failures} bench gate(s) failed. If the change is "
              "intentional, commit the regenerated benchmarks/BENCH_*.json "
              "baselines with the PR.")
        return 1
    print("\nall bench gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
