#!/usr/bin/env python
"""Docs gate: intra-repo link integrity + public-API docstring floor.

Stdlib only (it always runs, everywhere — same policy as
``repro.analysis``).  Two checks, both hard failures in CI:

1. **Links.** Every relative link and image in the Markdown surface
   (``README.md`` + ``docs/*.md``) must resolve to a file in the
   repo, and every ``#fragment`` must match a heading anchor of the
   target document (GitHub's slug rules: lowercase, punctuation
   stripped, spaces to hyphens, ``-1``/``-2`` suffixes on
   duplicates).  External ``http(s)://`` links are not fetched.

2. **Docstrings.** The public API under ``src/repro`` — public
   modules, and the public classes/functions/methods they define —
   must stay above ``DOC_FLOOR`` percent documented.  Like the
   coverage floor in the Makefile, the floor only ratchets up.

Usage::

    python scripts/check_docs.py [--list] [--floor PCT]

``--list`` prints every undocumented public object (the worklist for
raising the floor); ``--floor`` overrides the threshold.
"""

from __future__ import annotations

import argparse
import ast
import glob
import os
import re
import sys
from typing import Dict, Iterator, List, Set, Tuple

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

# Public-API docstring floor, in percent.  Raise it as docs improve;
# never lower it.  (Measured 85.1% when the gate landed; the floor
# sits just under, ratchet-style, like COV_FLOOR in the Makefile.)
DOC_FLOOR = 84.0

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files() -> List[str]:
    files = [os.path.join(REPO, "README.md")]
    files += sorted(glob.glob(os.path.join(REPO, "docs", "*.md")))
    return [f for f in files if os.path.isfile(f)]


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """GitHub's heading -> anchor id transformation (with dedup)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep text
    slug = "".join(
        ch for ch in text.lower() if ch.isalnum() or ch in " -_"
    ).replace(" ", "-")
    n = seen.get(slug, 0)
    seen[slug] = n + 1
    return slug if n == 0 else f"{slug}-{n}"


def heading_anchors(path: str) -> Set[str]:
    anchors: Set[str] = set()
    seen: Dict[str, int] = {}
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_slug(m.group(2), seen))
    return anchors


def iter_links(path: str) -> Iterator[Tuple[int, str]]:
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def check_links(files: List[str]) -> List[str]:
    errors = []
    anchor_cache: Dict[str, Set[str]] = {}
    for path in files:
        rel = os.path.relpath(path, REPO)
        for lineno, target in iter_links(path):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, fragment = target.partition("#")
            if target:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target))
            else:
                resolved = path  # same-document fragment
            if not os.path.exists(resolved):
                errors.append(f"{rel}:{lineno}: broken link -> {target}")
                continue
            if fragment:
                if not resolved.endswith(".md"):
                    continue  # anchors only checked in markdown targets
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = heading_anchors(resolved)
                if fragment not in anchor_cache[resolved]:
                    errors.append(
                        f"{rel}:{lineno}: broken anchor -> "
                        f"{target or os.path.basename(resolved)}#{fragment}")
    return errors


def public_objects(tree: ast.Module, module: str) -> Iterator[Tuple[str, bool]]:
    """Yield (qualified name, has_docstring) for the module's public API."""
    yield module, ast.get_docstring(tree) is not None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield (f"{module}.{node.name}",
                       ast.get_docstring(node) is not None)
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            yield (f"{module}.{node.name}",
                   ast.get_docstring(node) is not None)
            for item in node.body:
                if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and not item.name.startswith("_")):
                    yield (f"{module}.{node.name}.{item.name}",
                           ast.get_docstring(item) is not None)


def docstring_coverage() -> Tuple[int, int, List[str]]:
    total = documented = 0
    missing: List[str] = []
    for path in sorted(glob.glob(os.path.join(SRC, "repro", "**", "*.py"),
                                 recursive=True)):
        rel = os.path.relpath(path, SRC)
        parts = rel[:-3].split(os.sep)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        if any(p.startswith("_") and p != "__main__" for p in parts[1:]):
            continue  # private modules are not public API
        module = ".".join(parts)
        with open(path, encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=path)
        for name, has_doc in public_objects(tree, module):
            total += 1
            documented += has_doc
            if not has_doc:
                missing.append(name)
    return documented, total, missing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--list", action="store_true",
                        help="print every undocumented public object")
    parser.add_argument("--floor", type=float, default=DOC_FLOOR,
                        help=f"docstring-coverage floor in percent "
                             f"(default {DOC_FLOOR})")
    args = parser.parse_args(argv)

    files = markdown_files()
    errors = check_links(files)
    for err in errors:
        print(err)
    print(f"links: {len(files)} file(s) checked, {len(errors)} broken")

    documented, total, missing = docstring_coverage()
    pct = 100.0 * documented / max(1, total)
    print(f"docstrings: {documented}/{total} public objects "
          f"({pct:.1f}%, floor {args.floor:.1f}%)")
    if args.list:
        for name in missing:
            print(f"  undocumented: {name}")
    failed = bool(errors)
    if pct < args.floor:
        print(f"docstring coverage {pct:.1f}% is below the "
              f"{args.floor:.1f}% floor (run with --list for the worklist)")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
