"""Pseudo-Boolean (0-1 ILP) constraints and their normal form.

A pseudo-Boolean constraint is a linear inequality over literals with
integer coefficients.  Following the paper (Section 2.3), any PB
constraint can be rewritten in *normalized form* — all coefficients
positive, relation ``>=`` — using ``-a*l == -a + a*(~l)``.  Solvers in
:mod:`repro.pb` operate exclusively on the normalized form
(:class:`LinearGE`); the user-facing :class:`PBConstraint` preserves the
constraint as written (including ``=`` and ``<=``) for readable
formulas, I/O and statistics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .literals import check_literal, var_of

RELATIONS = (">=", "<=", "=")


class LinearGE:
    """A normalized PB constraint ``sum(coef_i * lit_i) >= degree``.

    Invariants: every coefficient is positive, every literal appears at
    most once and never together with its complement, coefficients are
    saturated at the degree (a coefficient larger than the degree is
    equivalent to the degree).  ``degree <= 0`` means a tautology.
    """

    __slots__ = ("terms", "degree")

    def __init__(self, terms: Iterable[Tuple[int, int]], degree: int):
        self.terms: Tuple[Tuple[int, int], ...] = tuple(terms)
        self.degree: int = degree
        for coef, lit in self.terms:
            if coef <= 0:
                raise ValueError(f"normalized constraint has coef {coef} <= 0")
            check_literal(lit)

    def __repr__(self) -> str:
        lhs = " + ".join(f"{c}*{l}" for c, l in self.terms)
        return f"LinearGE({lhs or '0'} >= {self.degree})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, LinearGE)
            and self.degree == other.degree
            and sorted(self.terms) == sorted(other.terms)
        )

    def __hash__(self) -> int:
        return hash((tuple(sorted(self.terms)), self.degree))

    @property
    def is_tautology(self) -> bool:
        """True when satisfied by every assignment."""
        return self.degree <= 0

    @property
    def is_unsatisfiable(self) -> bool:
        """True when no assignment can reach the degree."""
        return sum(c for c, _ in self.terms) < self.degree

    @property
    def is_cardinality(self) -> bool:
        """True when all coefficients are 1 (an at-least-k constraint)."""
        return all(c == 1 for c, _ in self.terms)

    @property
    def is_clause(self) -> bool:
        """True when equivalent to a single CNF clause."""
        return self.degree == 1 and self.is_cardinality

    def literals(self) -> List[int]:
        """The literals of the constraint, in term order."""
        return [l for _, l in self.terms]

    def slack(self, value_of) -> int:
        """Slack under a partial assignment.

        ``value_of(lit)`` must return True/False/None.  The slack is the
        maximum achievable left-hand side minus the degree; negative
        slack means the constraint is already falsified.
        """
        achievable = 0
        for coef, lit in self.terms:
            if value_of(lit) is not False:
                achievable += coef
        return achievable - self.degree

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a total assignment mapping var -> bool."""
        total = 0
        for coef, lit in self.terms:
            value = assignment[var_of(lit)]
            if (lit > 0) == value:
                total += coef
        return total >= self.degree


def normalize_terms(
    terms: Iterable[Tuple[int, int]], bound: int
) -> Tuple[List[Tuple[int, int]], int]:
    """Normalize ``sum(coef*lit) >= bound`` to positive, merged coefficients.

    Returns ``(terms, degree)``.  Handles negative coefficients, repeated
    literals and complementary literal pairs; drops zero coefficients.
    """
    by_var: Dict[int, int] = {}
    degree = bound
    for coef, lit in terms:
        check_literal(lit)
        if coef == 0:
            continue
        var = var_of(lit)
        # Express everything on the positive literal: a*(~v) == a - a*v.
        if lit < 0:
            degree -= coef
            coef = -coef
        by_var[var] = by_var.get(var, 0) + coef
    out: List[Tuple[int, int]] = []
    for var, coef in sorted(by_var.items()):
        if coef == 0:
            continue
        if coef > 0:
            out.append((coef, var))
        else:
            # Back onto the negative literal to restore positivity.
            degree -= coef
            out.append((-coef, -var))
    if degree > 0:
        # Saturation: any coefficient above the degree acts like the degree.
        out = [(min(c, degree), l) for c, l in out]
    return out, degree


class PBConstraint:
    """A user-facing PB constraint ``sum(coef_i * lit_i) <relation> bound``."""

    __slots__ = ("terms", "relation", "bound")

    def __init__(self, terms: Iterable[Tuple[int, int]], relation: str, bound: int):
        if relation not in RELATIONS:
            raise ValueError(f"relation must be one of {RELATIONS}, got {relation!r}")
        self.terms: Tuple[Tuple[int, int], ...] = tuple((int(c), check_literal(l)) for c, l in terms)
        self.relation = relation
        self.bound = int(bound)

    def __repr__(self) -> str:
        lhs = " + ".join(f"{c}*{l}" for c, l in self.terms)
        return f"PBConstraint({lhs or '0'} {self.relation} {self.bound})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PBConstraint)
            and self.relation == other.relation
            and self.bound == other.bound
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return hash((self.terms, self.relation, self.bound))

    def variables(self) -> Tuple[int, ...]:
        """Variables mentioned by the constraint, ascending."""
        return tuple(sorted({var_of(l) for _, l in self.terms}))

    def to_geq(self) -> List[LinearGE]:
        """Normalized ``>=`` constraints equivalent to this constraint.

        ``>=`` and ``<=`` produce one constraint, ``=`` produces two.
        """
        out: List[LinearGE] = []
        if self.relation in (">=", "="):
            t, d = normalize_terms(self.terms, self.bound)
            out.append(LinearGE(t, d))
        if self.relation in ("<=", "="):
            flipped = [(-c, l) for c, l in self.terms]
            t, d = normalize_terms(flipped, -self.bound)
            out.append(LinearGE(t, d))
        return out

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a total assignment mapping var -> bool."""
        total = 0
        for coef, lit in self.terms:
            value = assignment[var_of(lit)]
            if (lit > 0) == value:
                total += coef
        if self.relation == ">=":
            return total >= self.bound
        if self.relation == "<=":
            return total <= self.bound
        return total == self.bound


def exactly_one(lits: Sequence[int]) -> PBConstraint:
    """The ``sum(lits) = 1`` constraint used per vertex by the encoding."""
    return PBConstraint([(1, l) for l in lits], "=", 1)


def at_most_k(lits: Sequence[int], k: int) -> PBConstraint:
    """``sum(lits) <= k``."""
    return PBConstraint([(1, l) for l in lits], "<=", k)


def at_least_k(lits: Sequence[int], k: int) -> PBConstraint:
    """``sum(lits) >= k``."""
    return PBConstraint([(1, l) for l in lits], ">=", k)
