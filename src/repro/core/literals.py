"""Literal conventions shared by every solver and encoder in the library.

A *variable* is a positive integer ``1, 2, 3, ...`` (DIMACS convention).
A *literal* is a non-zero integer: ``v`` is the positive literal of
variable ``v`` and ``-v`` its negation.  Using plain ints keeps formulas
cheap to build, hash and serialize; solvers convert to a dense 0-based
index internally via :func:`lit_index`.
"""

from __future__ import annotations

from typing import Iterable


def var_of(lit: int) -> int:
    """Return the variable underlying ``lit``."""
    return lit if lit > 0 else -lit


def neg(lit: int) -> int:
    """Return the complement of ``lit``."""
    return -lit


def is_positive(lit: int) -> bool:
    """True when ``lit`` is a positive (non-negated) literal."""
    return lit > 0


def lit_index(lit: int) -> int:
    """Map a literal to a dense 0-based index.

    Variable ``v`` maps its positive literal to ``2*(v-1)`` and its
    negative literal to ``2*(v-1) + 1``, so a solver over ``n`` variables
    can size literal-indexed arrays as ``2*n``.
    """
    return 2 * (lit - 1) if lit > 0 else 2 * (-lit - 1) + 1


def index_lit(index: int) -> int:
    """Inverse of :func:`lit_index`."""
    var = index // 2 + 1
    return var if index % 2 == 0 else -var


def max_var(lits: Iterable[int]) -> int:
    """Largest variable mentioned in ``lits`` (0 for an empty iterable)."""
    best = 0
    for lit in lits:
        v = var_of(lit)
        if v > best:
            best = v
    return best


def check_literal(lit: int) -> int:
    """Validate that ``lit`` is a legal literal and return it.

    Raises ``ValueError`` for 0 or non-int input; encoders call this at
    API boundaries so malformed constraints fail fast with a clear
    message instead of corrupting a solver's internal arrays.
    """
    if not isinstance(lit, int) or isinstance(lit, bool) or lit == 0:
        raise ValueError(f"not a literal: {lit!r} (need a non-zero int)")
    return lit
