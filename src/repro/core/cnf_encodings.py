"""CNF encodings of cardinality constraints.

Section 2.3 of the paper discusses the CNF-vs-PB trade-off: a PB
"counting constraint" needs polynomially many clauses (exponentially
many for naive conversions), citing Warners' linear-overhead
transformation.  These encoders make that trade-off concrete and let
the *pure CNF* pipeline (decision K-coloring + repeated SAT calls) run
on the clause-only CDCL solver:

* ``pairwise``            — at-most-one via O(n^2) binary clauses;
* ``sequential_counter``  — Sinz-style at-most-k, O(n*k) clauses and
  auxiliary variables (the modern form of Warners' linear conversion);
* ``totalizer``           — Bailleux–Boufkhad unary totalizer, O(n log n)
  variables, supports both at-most-k and at-least-k on the same tree.

All encoders take/return literals and allocate auxiliaries from the
formula they extend.
"""

from __future__ import annotations

from typing import List, Sequence

from .formula import Formula


def encode_at_most_one_pairwise(formula: Formula, lits: Sequence[int]) -> int:
    """At-most-one via pairwise conflicts; returns #clauses added."""
    added = 0
    for i, a in enumerate(lits):
        for b in lits[i + 1 :]:
            formula.add_clause([-a, -b])
            added += 1
    return added


def encode_exactly_one_pairwise(formula: Formula, lits: Sequence[int]) -> int:
    """Exactly-one = at-least-one clause + pairwise at-most-one."""
    if not lits:
        raise ValueError("exactly-one over an empty set is unsatisfiable")
    formula.add_clause(list(lits))
    return 1 + encode_at_most_one_pairwise(formula, lits)


def encode_at_most_k_sequential(
    formula: Formula, lits: Sequence[int], k: int
) -> int:
    """Sinz sequential-counter at-most-k; returns #clauses added.

    Auxiliary ``s[i][j]`` means "at least j of the first i+1 literals
    are true"; the encoding forbids the (k+1)-th count.
    """
    n = len(lits)
    if k < 0:
        raise ValueError("k cannot be negative")
    if k >= n:
        return 0  # vacuous
    if k == 0:
        for lit in lits:
            formula.add_clause([-lit])
        return n
    added = 0
    # s[i][j] for i in 0..n-1, j in 1..k
    s = [[formula.new_var() for _ in range(k)] for _ in range(n)]
    formula.add_clause([-lits[0], s[0][0]])
    added += 1
    for j in range(1, k):
        formula.add_clause([-s[0][j]])
        added += 1
    for i in range(1, n):
        formula.add_clause([-lits[i], s[i][0]])
        formula.add_clause([-s[i - 1][0], s[i][0]])
        added += 2
        for j in range(1, k):
            formula.add_clause([-lits[i], -s[i - 1][j - 1], s[i][j]])
            formula.add_clause([-s[i - 1][j], s[i][j]])
            added += 2
        formula.add_clause([-lits[i], -s[i - 1][k - 1]])
        added += 1
    return added


class _TotalizerNode:
    """A node of the totalizer tree: unary counter outputs for a subset."""

    __slots__ = ("outputs",)

    def __init__(self, outputs: List[int]):
        self.outputs = outputs  # outputs[j] <=> "at least j+1 true below"


def _merge(formula: Formula, left: _TotalizerNode, right: _TotalizerNode) -> _TotalizerNode:
    total = len(left.outputs) + len(right.outputs)
    outputs = [formula.new_var() for _ in range(total)]
    node = _TotalizerNode(outputs)
    a, b = left.outputs, right.outputs
    # r_{i+j} <- a_i & b_j (with sentinel cases i=0 / j=0).
    for i in range(len(a) + 1):
        for j in range(len(b) + 1):
            if i + j == 0 or i + j > total:
                continue
            clause = [outputs[i + j - 1]]
            if i > 0:
                clause.append(-a[i - 1])
            if j > 0:
                clause.append(-b[j - 1])
            if len(clause) > 1:
                formula.add_clause(clause)
    # And the converse direction, needed for at-least constraints:
    # ~r_{i+j+1} <- ~a_{i+1} & ~b_{j+1}
    for i in range(len(a) + 1):
        for j in range(len(b) + 1):
            if i + j >= total:
                continue
            clause = [-outputs[i + j]]
            if i < len(a):
                clause.append(a[i])
            if j < len(b):
                clause.append(b[j])
            if len(clause) > 1:
                formula.add_clause(clause)
    return node


def build_totalizer(formula: Formula, lits: Sequence[int]) -> List[int]:
    """Build a totalizer over ``lits``; returns the unary output literals.

    ``outputs[j]`` is true iff at least ``j+1`` of the inputs are true
    (both implication directions are encoded).
    """
    if not lits:
        return []
    nodes = [_TotalizerNode([lit]) for lit in lits]
    while len(nodes) > 1:
        merged = []
        for i in range(0, len(nodes) - 1, 2):
            merged.append(_merge(formula, nodes[i], nodes[i + 1]))
        if len(nodes) % 2:
            merged.append(nodes[-1])
        nodes = merged
    return nodes[0].outputs


def encode_at_most_k_totalizer(formula: Formula, lits: Sequence[int], k: int) -> List[int]:
    """At-most-k via a totalizer; returns the totalizer outputs."""
    outputs = build_totalizer(formula, lits)
    for j in range(k, len(outputs)):
        formula.add_clause([-outputs[j]])
    return outputs


def encode_at_least_k_totalizer(formula: Formula, lits: Sequence[int], k: int) -> List[int]:
    """At-least-k via a totalizer; returns the totalizer outputs."""
    outputs = build_totalizer(formula, lits)
    if k > len(outputs):
        raise ValueError(f"at-least-{k} over {len(outputs)} literals is unsatisfiable")
    for j in range(k):
        formula.add_clause([outputs[j]])
    return outputs


def pb_to_cnf(formula: Formula, strategy: str = "sequential") -> Formula:
    """Compile every PB constraint of ``formula`` into CNF clauses.

    Returns a new clause-only formula (objective dropped — CNF has no
    objectives; use the repeated-SAT pipeline for optimization).  Only
    cardinality-form PB constraints are supported, which covers every
    constraint the coloring encoding produces.
    """
    if strategy not in ("sequential", "totalizer", "pairwise"):
        raise ValueError(f"unknown strategy {strategy!r}")
    out = Formula(num_vars=formula.num_vars)
    for clause in formula.clauses:
        out.add_clause(clause.literals)
    for pb in formula.pb_constraints:
        if any(abs(c) != 1 for c, _ in pb.terms):
            raise ValueError(
                "pb_to_cnf handles cardinality constraints only; "
                f"got weighted constraint {pb!r}"
            )
        lits = [l if c > 0 else -l for c, l in pb.terms]
        negatives = sum(1 for c, _ in pb.terms if c < 0)
        bound = pb.bound + negatives  # shift negated coefficients
        if pb.relation in (">=", "="):
            _encode_at_least(out, lits, bound, strategy)
        if pb.relation in ("<=", "="):
            _encode_at_most(out, lits, bound, strategy)
    return out


def _encode_at_most(formula: Formula, lits: List[int], k: int, strategy: str) -> None:
    if k >= len(lits):
        return
    if k < 0:
        raise ValueError("at-most with negative bound is unsatisfiable")
    if strategy == "pairwise":
        if k == 1:
            encode_at_most_one_pairwise(formula, lits)
            return
        strategy = "sequential"  # pairwise only covers k=1
    if strategy == "sequential":
        encode_at_most_k_sequential(formula, lits, k)
    else:
        encode_at_most_k_totalizer(formula, lits, k)


def _encode_at_least(formula: Formula, lits: List[int], k: int, strategy: str) -> None:
    if k <= 0:
        return
    if k == 1:
        formula.add_clause(lits)
        return
    if strategy == "totalizer":
        encode_at_least_k_totalizer(formula, lits, k)
    else:
        # at-least-k over lits == at-most-(n-k) over negations.
        encode_at_most_k_sequential(formula, [-l for l in lits], len(lits) - k)
