"""CNF clauses.

A clause is a disjunction of literals.  The class canonicalizes on
construction (sorted, duplicate literals removed) so that structurally
equal clauses compare and hash equal — useful both for formula-level
deduplication and for tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from .literals import check_literal, var_of


class Clause:
    """An immutable CNF clause (disjunction of literals)."""

    __slots__ = ("literals",)

    def __init__(self, literals: Iterable[int]):
        lits = sorted({check_literal(l) for l in literals}, key=lambda l: (var_of(l), l < 0))
        self.literals: Tuple[int, ...] = tuple(lits)

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self):
        return iter(self.literals)

    def __eq__(self, other) -> bool:
        return isinstance(other, Clause) and self.literals == other.literals

    def __hash__(self) -> int:
        return hash(self.literals)

    def __repr__(self) -> str:
        return f"Clause({list(self.literals)})"

    @property
    def is_empty(self) -> bool:
        """An empty clause is unsatisfiable."""
        return not self.literals

    @property
    def is_unit(self) -> bool:
        """True when the clause contains exactly one literal."""
        return len(self.literals) == 1

    @property
    def is_tautology(self) -> bool:
        """True when the clause contains a literal and its complement."""
        seen = set(self.literals)
        return any(-lit in seen for lit in self.literals)

    def variables(self) -> Tuple[int, ...]:
        """Variables appearing in the clause, ascending."""
        return tuple(sorted({var_of(l) for l in self.literals}))

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a *total* assignment mapping var -> bool."""
        for lit in self.literals:
            value = assignment[var_of(lit)]
            if (lit > 0) == value:
                return True
        return False

    def apply_renaming(self, mapping: Dict[int, int]) -> "Clause":
        """Rename literals via ``mapping`` (literal -> literal).

        Literals absent from the mapping are kept as-is.  Used when
        composing formulas and when applying permutations in tests.
        """
        return Clause(mapping.get(l, l) for l in self.literals)
