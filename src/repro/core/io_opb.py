"""Serialization: DIMACS CNF and OPB (pseudo-Boolean) formats.

DIMACS CNF is the interchange format of SAT solvers; OPB is the format
used by pseudo-Boolean evaluation and by the solvers the paper builds on
(PBS/Galena/Pueblo all read OPB-like input).  Round-tripping through
these writers is exercised by the test suite and lets formulas produced
by this library be fed to external solvers, and vice versa.
"""

from __future__ import annotations

import io
from typing import List, TextIO, Tuple, Union

from .formula import Formula

PathOrFile = Union[str, TextIO]


def _open_for(target: PathOrFile, mode: str):
    if isinstance(target, (str, bytes)):
        return open(target, mode), True
    return target, False


# --------------------------------------------------------------- DIMACS CNF
def write_dimacs_cnf(formula: Formula, target: PathOrFile) -> None:
    """Write a CNF-only formula in DIMACS format.

    Raises ``ValueError`` if the formula has PB constraints or an
    objective — those cannot be represented in DIMACS CNF.
    """
    if formula.pb_constraints:
        raise ValueError("formula has PB constraints; use write_opb instead")
    if formula.objective is not None:
        raise ValueError("formula has an objective; use write_opb instead")
    handle, owned = _open_for(target, "w")
    try:
        handle.write(f"p cnf {formula.num_vars} {len(formula.clauses)}\n")
        for clause in formula.clauses:
            handle.write(" ".join(str(l) for l in clause.literals) + " 0\n")
    finally:
        if owned:
            handle.close()


def read_dimacs_cnf(source: PathOrFile) -> Formula:
    """Parse a DIMACS CNF file into a :class:`Formula`."""
    handle, owned = _open_for(source, "r")
    try:
        formula: Formula = Formula()
        declared_vars = 0
        pending: List[int] = []
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith(("c", "%")):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) < 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed DIMACS problem line: {line!r}")
                declared_vars = int(parts[2])
                continue
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    formula.add_clause(pending)
                    pending = []
                else:
                    pending.append(lit)
        if pending:
            formula.add_clause(pending)
        formula.ensure_var(declared_vars)
        return formula
    finally:
        if owned:
            handle.close()


# --------------------------------------------------------------------- OPB
def _opb_term(coef: int, lit: int) -> str:
    if lit > 0:
        return f"{'+' if coef >= 0 else ''}{coef} x{lit}"
    return f"{'+' if coef >= 0 else ''}{coef} ~x{-lit}"


def write_opb(formula: Formula, target: PathOrFile) -> None:
    """Write a mixed CNF+PB formula (and objective) in OPB syntax.

    CNF clauses are written as cardinality constraints (``>= 1``), which
    is the standard lossless embedding of clauses in OPB.
    """
    handle, owned = _open_for(target, "w")
    try:
        total = len(formula.clauses) + len(formula.pb_constraints)
        handle.write(f"* #variable= {formula.num_vars} #constraint= {total}\n")
        if formula.objective is not None:
            sense = formula.objective_sense
            terms = " ".join(_opb_term(c, l) for c, l in formula.objective)
            handle.write(f"{sense}: {terms} ;\n")
        for pb in formula.pb_constraints:
            terms = " ".join(_opb_term(c, l) for c, l in pb.terms)
            handle.write(f"{terms} {pb.relation} {pb.bound} ;\n")
        for clause in formula.clauses:
            terms = " ".join(_opb_term(1, l) for l in clause.literals)
            handle.write(f"{terms} >= 1 ;\n")
    finally:
        if owned:
            handle.close()


def _parse_opb_terms(tokens: List[str]) -> List[Tuple[int, int]]:
    terms: List[Tuple[int, int]] = []
    i = 0
    while i < len(tokens):
        coef = int(tokens[i])
        name = tokens[i + 1]
        if name.startswith("~x"):
            lit = -int(name[2:])
        elif name.startswith("x"):
            lit = int(name[1:])
        else:
            raise ValueError(f"malformed OPB variable token: {name!r}")
        terms.append((coef, lit))
        i += 2
    return terms


def read_opb(source: PathOrFile) -> Formula:
    """Parse an OPB file into a :class:`Formula`.

    Cardinality ``>= 1`` constraints with unit coefficients are restored
    as CNF clauses (the inverse of :func:`write_opb`).
    """
    handle, owned = _open_for(source, "r")
    try:
        formula = Formula()
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("*"):
                continue
            line = line.rstrip(";").strip()
            if line.startswith(("min:", "max:")):
                sense = line[:3]
                terms = _parse_opb_terms(line[4:].split())
                formula.set_objective(terms, sense=sense)
                continue
            tokens = line.split()
            relation_at = next(i for i, t in enumerate(tokens) if t in (">=", "<=", "="))
            terms = _parse_opb_terms(tokens[:relation_at])
            relation = tokens[relation_at]
            bound = int(tokens[relation_at + 1])
            if relation == ">=" and bound == 1 and all(c == 1 for c, _ in terms):
                formula.add_clause([l for _, l in terms])
            else:
                formula.add_pb(terms, relation, bound)
        return formula
    finally:
        if owned:
            handle.close()


def formula_to_string(formula: Formula, fmt: str = "opb") -> str:
    """Render a formula to a string in ``"opb"`` or ``"cnf"`` format."""
    buffer = io.StringIO()
    if fmt == "opb":
        write_opb(formula, buffer)
    elif fmt == "cnf":
        write_dimacs_cnf(formula, buffer)
    else:
        raise ValueError(f"unknown format {fmt!r}")
    return buffer.getvalue()
