"""Formula core: literals, clauses, PB constraints, formulas and I/O."""

from .clause import Clause
from .cnf_encodings import (
    build_totalizer,
    encode_at_least_k_totalizer,
    encode_at_most_k_sequential,
    encode_at_most_k_totalizer,
    encode_at_most_one_pairwise,
    encode_exactly_one_pairwise,
    pb_to_cnf,
)
from .formula import Formula, FormulaStats
from .io_opb import (
    formula_to_string,
    read_dimacs_cnf,
    read_opb,
    write_dimacs_cnf,
    write_opb,
)
from .literals import (
    check_literal,
    index_lit,
    is_positive,
    lit_index,
    max_var,
    neg,
    var_of,
)
from .pbconstraint import (
    LinearGE,
    PBConstraint,
    at_least_k,
    at_most_k,
    exactly_one,
    normalize_terms,
)
from .variables import VariablePool

__all__ = [
    "Clause",
    "Formula",
    "FormulaStats",
    "LinearGE",
    "PBConstraint",
    "VariablePool",
    "at_least_k",
    "at_most_k",
    "build_totalizer",
    "check_literal",
    "encode_at_least_k_totalizer",
    "encode_at_most_k_sequential",
    "encode_at_most_k_totalizer",
    "encode_at_most_one_pairwise",
    "encode_exactly_one_pairwise",
    "pb_to_cnf",
    "exactly_one",
    "formula_to_string",
    "index_lit",
    "is_positive",
    "lit_index",
    "max_var",
    "neg",
    "normalize_terms",
    "read_dimacs_cnf",
    "read_opb",
    "var_of",
    "write_dimacs_cnf",
    "write_opb",
]
