"""Named variable allocation.

Encoders (the coloring reduction, SBP constructions, auxiliary Tseitin
variables) need fresh variables with meaningful names so that models can
be decoded and debugged.  :class:`VariablePool` hands out consecutive
variable ids and remembers an optional name for each.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional


class VariablePool:
    """Allocates consecutive variable ids, optionally keyed by a name.

    >>> pool = VariablePool()
    >>> x = pool.new("x", 1, 2)      # variable for key ("x", 1, 2)
    >>> pool.lookup("x", 1, 2) == x
    True
    >>> pool.num_vars >= 1
    True
    """

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError("variable pool cannot start below 0")
        self._next = start + 1
        self._by_key: Dict[Hashable, int] = {}
        self._names: Dict[int, Hashable] = {}

    @property
    def num_vars(self) -> int:
        """Number of variables allocated so far (largest id)."""
        return self._next - 1

    def fresh(self) -> int:
        """Allocate an anonymous variable and return its id."""
        var = self._next
        self._next += 1
        return var

    def new(self, *key: Hashable) -> int:
        """Allocate a variable for ``key``; the key must be unused."""
        k = key if len(key) != 1 else key[0]
        if k in self._by_key:
            raise KeyError(f"variable key already allocated: {k!r}")
        var = self.fresh()
        self._by_key[k] = var
        self._names[var] = k
        return var

    def get_or_new(self, *key: Hashable) -> int:
        """Return the variable for ``key``, allocating it on first use."""
        k = key if len(key) != 1 else key[0]
        existing = self._by_key.get(k)
        if existing is not None:
            return existing
        var = self.fresh()
        self._by_key[k] = var
        self._names[var] = k
        return var

    def lookup(self, *key: Hashable) -> int:
        """Return the variable for ``key``; raises ``KeyError`` if absent."""
        k = key if len(key) != 1 else key[0]
        return self._by_key[k]

    def name_of(self, var: int) -> Optional[Hashable]:
        """Name under which ``var`` was allocated, or ``None``."""
        return self._names.get(var)

    def items(self) -> Iterator:
        """Iterate over ``(key, var)`` pairs of all named variables."""
        return iter(self._by_key.items())

    def __contains__(self, key: Hashable) -> bool:
        return key in self._by_key

    def __len__(self) -> int:
        return self.num_vars
