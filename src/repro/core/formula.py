"""Mixed CNF + PB formulas with an optional linear objective.

This is the exchange format of the whole library: the coloring encoder
produces a :class:`Formula`, SBP constructions append constraints to it,
the symmetry detector reads it, and every solver consumes it.  The
container mirrors the input language of the paper's 0-1 ILP solvers
(PBS/Galena/Pueblo): a conjunction of CNF clauses and PB constraints
plus a linear objective to minimize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from .clause import Clause
from .literals import var_of
from .pbconstraint import PBConstraint, at_least_k, at_most_k, exactly_one
from .variables import VariablePool


@dataclass(frozen=True)
class FormulaStats:
    """Size statistics as reported in the paper's Table 2."""

    num_vars: int
    num_clauses: int
    num_pb: int

    def __add__(self, other: "FormulaStats") -> "FormulaStats":
        return FormulaStats(
            self.num_vars + other.num_vars,
            self.num_clauses + other.num_clauses,
            self.num_pb + other.num_pb,
        )


class Formula:
    """A 0-1 ILP instance: CNF clauses + PB constraints + linear objective."""

    def __init__(self, num_vars: int = 0):
        self.pool = VariablePool(start=num_vars)
        self.clauses: List[Clause] = []
        self.pb_constraints: List[PBConstraint] = []
        self.objective: Optional[Tuple[Tuple[int, int], ...]] = None
        self.objective_sense: str = "min"

    # ---------------------------------------------------------------- vars
    @property
    def num_vars(self) -> int:
        """Number of variables (ids run 1..num_vars)."""
        return self.pool.num_vars

    def new_var(self, *key: Hashable) -> int:
        """Allocate a fresh variable, optionally registered under a name."""
        if key:
            return self.pool.new(*key)
        return self.pool.fresh()

    def ensure_var(self, var: int) -> None:
        """Grow the variable range so that ``var`` is legal."""
        while self.pool.num_vars < var:
            self.pool.fresh()

    # ---------------------------------------------------------- constraints
    def add_clause(
        self, literals: Iterable[int], skip_tautology: bool = False
    ) -> Optional[Clause]:
        """Append a CNF clause; returns the canonicalized clause.

        :class:`Clause` canonicalizes at construction (literals sorted,
        duplicates removed), so every downstream consumer — CDCL
        watches, subsumption, signatures — sees canonical clauses.
        Tautologies (a literal next to its complement) are still legal
        input because they are satisfiable, but they carry no
        information; with ``skip_tautology=True`` they are dropped and
        ``None`` is returned so encoders can filter them at intake.
        """
        clause = literals if isinstance(literals, Clause) else Clause(literals)
        if clause.is_empty:
            raise ValueError("refusing to add the empty clause; formula would be trivially UNSAT")
        if skip_tautology and clause.is_tautology:
            return None
        self._grow_to(clause.variables())
        self.clauses.append(clause)
        return clause

    def add_pb(
        self, terms: Iterable[Tuple[int, int]], relation: str, bound: int
    ) -> PBConstraint:
        """Append a PB constraint ``sum(coef*lit) <relation> bound``."""
        constraint = PBConstraint(terms, relation, bound)
        self._grow_to(constraint.variables())
        self.pb_constraints.append(constraint)
        return constraint

    def add_exactly_one(self, lits: Sequence[int]) -> PBConstraint:
        """Append ``sum(lits) = 1`` (one PB constraint, as in the paper)."""
        constraint = exactly_one(lits)
        self._grow_to(constraint.variables())
        self.pb_constraints.append(constraint)
        return constraint

    def add_at_most(self, lits: Sequence[int], k: int) -> PBConstraint:
        """Append ``sum(lits) <= k``."""
        constraint = at_most_k(lits, k)
        self._grow_to(constraint.variables())
        self.pb_constraints.append(constraint)
        return constraint

    def add_at_least(self, lits: Sequence[int], k: int) -> PBConstraint:
        """Append ``sum(lits) >= k``."""
        constraint = at_least_k(lits, k)
        self._grow_to(constraint.variables())
        self.pb_constraints.append(constraint)
        return constraint

    def set_objective(self, terms: Iterable[Tuple[int, int]], sense: str = "min") -> None:
        """Set the linear objective ``sense sum(coef*lit)``."""
        if sense not in ("min", "max"):
            raise ValueError("objective sense must be 'min' or 'max'")
        self.objective = tuple((int(c), int(l)) for c, l in terms)
        self.objective_sense = sense
        self._grow_to([var_of(l) for _, l in self.objective])

    def _grow_to(self, variables: Iterable[int]) -> None:
        top = 0
        for v in variables:
            if v > top:
                top = v
        if top > self.pool.num_vars:
            self.ensure_var(top)

    # ------------------------------------------------------------ queries
    def stats(self) -> FormulaStats:
        """Size statistics (vars / CNF clauses / PB constraints)."""
        return FormulaStats(self.num_vars, len(self.clauses), len(self.pb_constraints))

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """True when the total assignment satisfies every constraint."""
        return all(c.evaluate(assignment) for c in self.clauses) and all(
            p.evaluate(assignment) for p in self.pb_constraints
        )

    def objective_value(self, assignment: Dict[int, bool]) -> int:
        """Objective value under a total assignment (0 if no objective)."""
        if self.objective is None:
            return 0
        total = 0
        for coef, lit in self.objective:
            value = assignment[var_of(lit)]
            if (lit > 0) == value:
                total += coef
        return total

    def copy(self) -> "Formula":
        """Deep-enough copy: constraints are immutable, lists are fresh."""
        dup = Formula(num_vars=self.num_vars)
        dup.clauses = list(self.clauses)
        dup.pb_constraints = list(self.pb_constraints)
        dup.objective = self.objective
        dup.objective_sense = self.objective_sense
        return dup

    def __repr__(self) -> str:
        s = self.stats()
        obj = "" if self.objective is None else f", objective[{len(self.objective)} terms]"
        return f"Formula(vars={s.num_vars}, clauses={s.num_clauses}, pb={s.num_pb}{obj})"
