"""Event catalogue for the binary solver trace (docs/TRACE_FORMAT.md).

Every record in a trace stream carries a numeric event id from this
module plus a tuple of unsigned integer fields whose meaning is fixed
per event.  Adding a new event is a catalogue addition, not a format
bump: readers skip unknown ids using the record's length prefix, so
old tools keep working on new traces (see docs/observability.md).

Strings never appear on the wire.  Statuses, pipeline stages and
resilience sites are mapped to small integer codes here; the reverse
tables let :mod:`repro.obs.report` render them back.
"""

from __future__ import annotations

from typing import Dict, Tuple

# --- event ids (wire values; append-only, never renumber) -------------

SOLVE_BEGIN = 1
SOLVE_END = 2
CONFLICT = 3
RESTART = 4
DB_REDUCE = 5
GC_SWEEP = 6
K_QUERY_BEGIN = 7
K_QUERY_END = 8
GROW = 9
STAGE = 10
COMPONENT_BEGIN = 11
COMPONENT_END = 12
POOL_BEGIN = 13
POOL_END = 14
DEADLINE_EXPIRED = 15
DEGRADED = 16
RACE_BEGIN = 17
RACE_BOUND = 18
RACE_END = 19

EVENT_NAMES: Dict[int, str] = {
    SOLVE_BEGIN: "solve_begin",
    SOLVE_END: "solve_end",
    CONFLICT: "conflict",
    RESTART: "restart",
    DB_REDUCE: "db_reduce",
    GC_SWEEP: "gc_sweep",
    K_QUERY_BEGIN: "k_query_begin",
    K_QUERY_END: "k_query_end",
    GROW: "grow",
    STAGE: "stage",
    COMPONENT_BEGIN: "component_begin",
    COMPONENT_END: "component_end",
    POOL_BEGIN: "pool_begin",
    POOL_END: "pool_end",
    DEADLINE_EXPIRED: "deadline_expired",
    DEGRADED: "degraded",
    RACE_BEGIN: "race_begin",
    RACE_BOUND: "race_bound",
    RACE_END: "race_end",
}

# Field names per event, in payload order.  ``solver`` is the tracer-
# assigned per-solver id (interleaved streams from a component pool
# stay attributable); counter fields on SOLVE_END / K_QUERY_END are the
# per-call run deltas, so summing them reproduces the cumulative
# ``SolverStats`` the solver itself reports.
EVENT_FIELDS: Dict[int, Tuple[str, ...]] = {
    SOLVE_BEGIN: ("solver", "assumptions"),
    SOLVE_END: ("solver", "status", "conflicts", "decisions",
                "propagations", "restarts", "learned", "deleted"),
    CONFLICT: ("solver", "level", "lbd", "propagations"),
    RESTART: ("solver", "conflicts"),
    DB_REDUCE: ("solver", "deleted", "kept"),
    GC_SWEEP: ("solver", "clauses", "learned", "watchers"),
    K_QUERY_BEGIN: ("k", "permanent"),
    K_QUERY_END: ("k", "status", "conflicts", "decisions",
                  "propagations", "restarts"),
    GROW: ("old_max", "new_max"),
    STAGE: ("stage",),
    COMPONENT_BEGIN: ("component", "vertices"),
    COMPONENT_END: ("component", "status", "colors"),
    POOL_BEGIN: ("components",),
    POOL_END: ("status", "colors"),
    DEADLINE_EXPIRED: ("where",),
    DEGRADED: ("where", "status"),
    # ``racer`` indexes the portfolio's racer list (emission order);
    # bound kind 0 = upper bound tightened, 1 = lower bound raised.
    RACE_BEGIN: ("racers",),
    RACE_BOUND: ("racer", "kind", "value"),
    RACE_END: ("winner", "status", "cancelled"),
}

# --- string <-> code tables ------------------------------------------

STATUS_CODES: Dict[str, int] = {
    "UNKNOWN": 0,
    "SAT": 1,
    "UNSAT": 2,
    "OPTIMAL": 3,
    "FEASIBLE": 4,
    "ERROR": 5,
}
STATUS_NAMES: Dict[int, str] = {v: k for k, v in STATUS_CODES.items()}

STAGE_CODES: Dict[str, int] = {
    "reduce": 1,
    "encode": 2,
    "sbp": 3,
    "simplify": 4,
    "detect": 5,
    "solve": 6,
    "pipeline": 7,
    "pool": 8,
    "query": 9,
    "grow": 10,
    "decide": 11,
    "batch": 12,
}
STAGE_NAMES: Dict[int, str] = {v: k for k, v in STAGE_CODES.items()}

WHERE_CODES: Dict[str, int] = {
    "descent": 1,
    "session": 2,
    "pool": 3,
    "pipeline": 4,
    "batch": 5,
}
WHERE_NAMES: Dict[int, str] = {v: k for k, v in WHERE_CODES.items()}


def status_code(status: str) -> int:
    """Wire code for a status string (unrecognized -> UNKNOWN)."""
    return STATUS_CODES.get(status, 0)


def stage_code(stage: str) -> int:
    """Wire code for a pipeline stage name (unrecognized -> 0)."""
    return STAGE_CODES.get(stage, 0)


def where_code(where: str) -> int:
    """Wire code for a resilience event site (unrecognized -> 0)."""
    return WHERE_CODES.get(where, 0)
