"""The tracing seam: ambient tracer install plus the typed emit facade.

Design (docs/observability.md): the solver never knows whether tracing
is on.  ``repro.sat.factory.new_solver`` — the one construction
chokepoint the static checker already enforces (RPR005) — asks
:func:`active_tracer` and, when one is installed, attaches it to the
fresh solver.  A detached solver carries ``tracer = None`` and the hot
loop pays exactly one attribute test per conflict; everything else
(locking, varint encoding, file IO) lives behind that branch.

Cold-path call sites (K-search, sessions, the pool, pipeline stages)
call :func:`active_tracer` directly at each event — a function call is
irrelevant there, and it keeps those layers free of tracer plumbing.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional, Union

from . import events as ev
from .trace import TraceWriter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from typing import BinaryIO


class Tracer:
    """Typed, thread-safe emit facade shared by every attached solver.

    One Tracer serializes all emissions into one record stream; each
    attached solver gets a small integer id so interleaved streams
    (the component pool runs sessions on worker threads) remain
    attributable.
    """

    def __init__(self, writer: TraceWriter) -> None:
        self._writer = writer
        self._lock = threading.Lock()
        self._next_solver_id = 0

    # -- attachment ----------------------------------------------------

    def attach(self, solver: object) -> int:
        """Assign the next solver id and point the solver at this tracer."""
        with self._lock:
            self._next_solver_id += 1
            sid = self._next_solver_id
        solver.tracer = self  # type: ignore[attr-defined]
        solver.tracer_id = sid  # type: ignore[attr-defined]
        return sid

    def emit(self, event: int, *fields: int) -> None:
        """Serialize one record (the single funnel every helper uses)."""
        with self._lock:
            self._writer.emit(event, fields)

    def close(self) -> None:
        """Flush and close the underlying trace writer."""
        with self._lock:
            self._writer.close()

    # -- solver-level events (hot path enters through these) -----------

    def solve_begin(self, sid: int, assumptions: int) -> None:
        """A ``solve()`` call started with this many assumptions."""
        self.emit(ev.SOLVE_BEGIN, sid, assumptions)

    def solve_end(self, sid: int, status: str, conflicts: int,
                  decisions: int, propagations: int, restarts: int,
                  learned: int, deleted: int) -> None:
        """A ``solve()`` call finished; counters are per-call run deltas."""
        self.emit(ev.SOLVE_END, sid, ev.status_code(status), conflicts,
                  decisions, propagations, restarts, learned, deleted)

    def conflict(self, sid: int, level: int, lbd: int,
                 propagations: int) -> None:
        """A conflict at ``level`` (learned LBD, props since the last)."""
        self.emit(ev.CONFLICT, sid, level, lbd, propagations)

    def restart(self, sid: int, conflicts: int) -> None:
        """A restart after ``conflicts`` conflicts in the current call."""
        self.emit(ev.RESTART, sid, conflicts)

    def db_reduce(self, sid: int, deleted: int, kept: int) -> None:
        """A learned-clause DB reduction: ``deleted`` dropped, ``kept`` left."""
        self.emit(ev.DB_REDUCE, sid, deleted, kept)

    def gc_sweep(self, sid: int, clauses: int, learned: int,
                 watchers: int) -> None:
        """A level-0 satisfied-clause GC sweep and what it reclaimed."""
        self.emit(ev.GC_SWEEP, sid, clauses, learned, watchers)

    # -- search / session / pool lifecycle -----------------------------

    def k_query_begin(self, k: int, permanent: bool) -> None:
        """A K-colorability probe started (permanent vs assumption-based)."""
        self.emit(ev.K_QUERY_BEGIN, k, int(permanent))

    def k_query_end(self, k: int, status: str, conflicts: int,
                    decisions: int, propagations: int,
                    restarts: int) -> None:
        """A K probe answered; counters are the query's run deltas."""
        self.emit(ev.K_QUERY_END, k, ev.status_code(status), conflicts,
                  decisions, propagations, restarts)

    def grow(self, old_max: int, new_max: int) -> None:
        """The color budget grew in place on the live solver."""
        self.emit(ev.GROW, old_max, new_max)

    def stage(self, stage: str) -> None:
        """A pipeline stage transition (coded via ``STAGE_CODES``)."""
        self.emit(ev.STAGE, ev.stage_code(stage))

    def component_begin(self, index: int, vertices: int) -> None:
        """The pool started descending one kernel component."""
        self.emit(ev.COMPONENT_BEGIN, index, vertices)

    def component_end(self, index: int, status: str,
                      colors: Optional[int]) -> None:
        """One kernel component finished (``colors`` may be None)."""
        # colors is shifted by one on the wire: 0 means "no coloring".
        self.emit(ev.COMPONENT_END, index, ev.status_code(status),
                  0 if colors is None else colors + 1)

    def pool_begin(self, components: int) -> None:
        """A component-pool chromatic run started."""
        self.emit(ev.POOL_BEGIN, components)

    def pool_end(self, status: str, colors: Optional[int]) -> None:
        """The component pool merged its final answer."""
        self.emit(ev.POOL_END, ev.status_code(status),
                  0 if colors is None else colors + 1)

    # -- portfolio racing ----------------------------------------------

    def race_begin(self, racers: int) -> None:
        """A portfolio race started with this many racer processes."""
        self.emit(ev.RACE_BEGIN, racers)

    def race_bound(self, racer: int, kind: str, value: int) -> None:
        """A racer published a bound (``kind`` is ``"ub"`` or ``"lb"``)."""
        self.emit(ev.RACE_BOUND, racer, 0 if kind == "ub" else 1, value)

    def race_end(self, winner: Optional[int], status: str,
                 cancelled: int) -> None:
        """The race settled; ``cancelled`` racers were stopped mid-run."""
        # winner is shifted by one on the wire: 0 means "no winner".
        self.emit(ev.RACE_END, 0 if winner is None else winner + 1,
                  ev.status_code(status), cancelled)

    # -- resilience events ---------------------------------------------

    def deadline_expired(self, where: str) -> None:
        """A budget ran out at ``where`` (coded via ``WHERE_CODES``)."""
        self.emit(ev.DEADLINE_EXPIRED, ev.where_code(where))

    def degraded(self, where: str, status: str) -> None:
        """A verified best-so-far answer replaced the unproven optimum."""
        self.emit(ev.DEGRADED, ev.where_code(where), ev.status_code(status))


_TRACER: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is off (the default)."""
    return _TRACER


def install_tracer(tracer: Tracer) -> Optional[Tracer]:
    """Install ``tracer`` as ambient; returns the one it displaced."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def uninstall_tracer(previous: Optional[Tracer] = None) -> None:
    """Clear the ambient tracer (or restore ``previous``)."""
    global _TRACER
    _TRACER = previous


@contextmanager
def tracing(target: Union[str, "BinaryIO"]) -> Iterator[Tracer]:
    """Trace everything in the block to ``target`` (path or binary file).

    Installs a fresh :class:`Tracer` over a :class:`TraceWriter`,
    restores whatever was installed before on exit, and closes the
    writer.  Solvers constructed inside the block are attached by the
    factory; solvers that already exist keep running untraced.
    """
    tracer = Tracer(TraceWriter(target))
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        uninstall_tracer(previous)
        tracer.close()
