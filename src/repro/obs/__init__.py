"""Observability: solver event tracing, metrics, profiling (stdlib only).

Three pieces (docs/observability.md):

* a compact binary event tracer (:mod:`repro.obs.trace`, catalogue in
  :mod:`repro.obs.events`, wire format in docs/TRACE_FORMAT.md) that
  costs the solver hot loop exactly one attribute test when disabled;
* an ambient metrics registry (:mod:`repro.obs.metrics`) of counters,
  gauges and fixed-bucket histograms with deterministic sorted-JSON
  snapshots, wired through the solver, K-search, sessions, the
  component pool, pipeline stages and the batch runner;
* a profile CLI (``python -m repro.obs``) rendering per-phase timing
  and conflict-rate reports from a trace.

Quickstart::

    from repro.obs import tracing, get_registry
    with tracing("descent.trace"):
        result = pipeline.run(ChromaticProblem(graph))
    print(get_registry().to_json())
    # then: python -m repro.obs report descent.trace
"""

from .hooks import Tracer, active_tracer, install_tracer, tracing, uninstall_tracer
from .metrics import (
    DEFAULT_BUCKETS,
    TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_registry,
    metric_key,
    quantile_from_buckets,
    scoped_registry,
)
from .report import build_profile, decode_record, render_report
from .trace import (
    MAGIC,
    VERSION,
    TraceError,
    TraceLog,
    TraceRecord,
    TraceWriter,
    decode_uvarint,
    encode_trace,
    encode_uvarint,
    read_trace,
    write_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MAGIC",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "TraceError",
    "TraceLog",
    "TraceRecord",
    "TraceWriter",
    "Tracer",
    "VERSION",
    "active_tracer",
    "build_profile",
    "decode_record",
    "decode_uvarint",
    "encode_trace",
    "encode_uvarint",
    "get_registry",
    "install_tracer",
    "metric_key",
    "quantile_from_buckets",
    "read_trace",
    "render_report",
    "scoped_registry",
    "tracing",
    "uninstall_tracer",
    "write_trace",
]
