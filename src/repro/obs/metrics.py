"""Metrics registry: counters, gauges, fixed-bucket histograms.

Prometheus-style naming (docs/observability.md): ``*_total`` for
monotonic counters, ``*_seconds`` for wall-clock measurements, labels
flattened into the key as ``name{a="x",b="y"}`` with label names
sorted.  Histograms use *fixed* bucket boundaries so two runs that
observe the same values produce byte-identical snapshots — the batch
runner relies on this to keep ``--jobs 1`` and ``--jobs 4`` records
comparable.

Determinism contract: any metric whose name ends in ``_seconds``
carries wall-clock time, and any ending in ``_cache_total`` counts
shared-cache hits/misses (which depend on pool scheduling); both are
excluded from ``snapshot(deterministic_only=True)``.  Everything else
must be a pure function of the work performed.  The registry is thread-safe (the
component pool records from worker threads) and ambient: callers reach
it through :func:`get_registry`, and :func:`scoped_registry` pushes a
fresh one for the duration of a batch attempt.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

# Default boundaries for count-valued histograms (conflicts per query,
# components per kernel, ...): roughly logarithmic, fixed forever so
# snapshots stay comparable across runs and releases.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000,
    2500, 5000, 10000, 25000, 50000, 100000,
)

# Boundaries for ``*_seconds`` histograms (p50/p99 solve latency for
# the future service endpoint).
TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0,
)


def metric_key(name: str, labels: Mapping[str, object]) -> str:
    """Flatten ``name`` + labels into the canonical snapshot key."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _base_name(key: str) -> str:
    """The metric name with any label block stripped."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


class Histogram:
    """A fixed-boundary histogram: cumulative-style export, exact count/sum."""

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        """Count ``value`` into its bucket and the running sum."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def as_json(self) -> Dict[str, Any]:
        """JSON-ready dict: per-bucket counts, total count, sum."""
        buckets: Dict[str, int] = {}
        for bound, n in zip(self.bounds, self.counts):
            buckets[f"{bound:g}"] = n
        buckets["+Inf"] = self.counts[-1]
        total = self.sum
        return {"buckets": buckets, "count": self.count,
                "sum": int(total) if total == int(total) else total}


def quantile_from_buckets(hist: Mapping[str, Any], q: float) -> Optional[float]:
    """Estimate the q-quantile (0..1) from an exported histogram dict.

    Returns the upper bound of the bucket containing the quantile rank
    (the usual Prometheus-style estimate), or None for an empty
    histogram.  The ``+Inf`` bucket reports the largest finite bound.
    """
    count = int(hist.get("count", 0))
    if count <= 0:
        return None
    rank = q * count
    seen = 0.0
    finite: List[Tuple[str, int]] = [
        (bound, n) for bound, n in hist["buckets"].items() if bound != "+Inf"
    ]
    for bound, n in finite:
        seen += n
        if seen >= rank:
            return float(bound)
    return float(finite[-1][0]) if finite else None


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms with sorted-JSON export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, amount: int = 1, **labels: object) -> None:
        """Add ``amount`` to a monotonic counter (create at 0)."""
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge to its current value."""
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float,
                buckets: Sequence[float] = DEFAULT_BUCKETS,
                **labels: object) -> None:
        """Record one observation into a fixed-boundary histogram."""
        key = metric_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(buckets)
            hist.observe(value)

    def observe_seconds(self, name: str, value: float,
                        **labels: object) -> None:
        """Shorthand: a wall-clock observation on the TIME_BUCKETS scale."""
        self.observe(name, value, buckets=TIME_BUCKETS, **labels)

    def snapshot(self, deterministic_only: bool = False) -> Dict[str, Any]:
        """Export the registry as a recursively sorted plain dict.

        With ``deterministic_only`` every metric whose base name ends
        in ``_seconds`` (wall clock) or ``_cache_total`` (shared-cache
        hit/miss, a function of pool scheduling) is dropped: what
        remains must be identical for identical work, regardless of
        machine or parallelism.
        """
        def keep(key: str) -> bool:
            if not deterministic_only:
                return True
            base = _base_name(key)
            return not base.endswith(("_seconds", "_cache_total"))

        with self._lock:
            counters = {k: self._counters[k]
                        for k in sorted(self._counters) if keep(k)}
            gauges = {k: self._gauges[k]
                      for k in sorted(self._gauges) if keep(k)}
            histograms = {k: self._histograms[k].as_json()
                          for k in sorted(self._histograms) if keep(k)}
        out: Dict[str, Any] = {}
        if counters:
            out["counters"] = counters
        if gauges:
            out["gauges"] = gauges
        if histograms:
            out["histograms"] = histograms
        return out

    def to_json(self, deterministic_only: bool = False) -> str:
        """The snapshot as canonical sorted JSON text."""
        return json.dumps(self.snapshot(deterministic_only=deterministic_only),
                          sort_keys=True, indent=2)

    def clear(self) -> None:
        """Drop every recorded series (test isolation helper)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# The ambient registry stack.  The base registry always exists, so
# instrumented code records unconditionally; a batch attempt pushes a
# fresh registry to keep its snapshot attempt-local (and byte-stable
# across --jobs levels).
_REGISTRIES: List[MetricsRegistry] = [MetricsRegistry()]


def get_registry() -> MetricsRegistry:
    """The innermost ambient registry (always present)."""
    return _REGISTRIES[-1]


@contextmanager
def scoped_registry(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Push a fresh (or given) registry as ambient for the block."""
    reg = registry if registry is not None else MetricsRegistry()
    _REGISTRIES.append(reg)
    try:
        yield reg
    finally:
        _REGISTRIES.pop()
