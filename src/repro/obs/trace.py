"""Compact binary solver-event trace: varint codec, writer, reader.

Wire format (normative spec in docs/TRACE_FORMAT.md):

* header: the 4-byte magic ``b"RPRT"`` followed by the format version
  as an unsigned varint (currently 1);
* record: ``event_id`` varint, ``dt_us`` varint (microseconds since
  the previous record; the first record is relative to the header),
  ``payload_len`` varint, then ``payload_len`` raw payload bytes.
  For every catalogued event the payload is a sequence of unsigned
  varints (:data:`repro.obs.events.EVENT_FIELDS` gives the order).

Varints are LEB128: seven payload bits per byte, low bits first, the
high bit marks continuation.  Writers must emit the canonical minimal
encoding — that is what makes a decode -> re-encode round trip
byte-identical, which the test suite pins.

The reader mirrors the WAL tolerance contract of
:func:`repro.resilience.read_wal`: a torn tail (a record cut mid-frame
by a crash) is dropped and *counted*, never raised, so a trace from a
killed process is still readable up to its last complete record.  A
corrupt header, by contrast, is an error — there is nothing to salvage.
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass, field
from typing import BinaryIO, List, Optional, Sequence, Tuple, Union

MAGIC = b"RPRT"
VERSION = 1

# An unsigned varint never needs more than 10 bytes for a 64-bit value;
# anything longer is corruption, not data.
_MAX_VARINT_BYTES = 10


class TraceError(ValueError):
    """Raised for unreadable trace headers or invalid varint payloads."""


def encode_uvarint(value: int) -> bytes:
    """Canonical minimal LEB128 encoding of a non-negative integer."""
    if value < 0:
        raise TraceError(f"varints are unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, pos: int = 0) -> Tuple[int, int]:
    """Decode one varint at ``pos``; returns ``(value, next_pos)``.

    Raises :class:`TraceError` when the buffer ends mid-varint or the
    varint overruns the 10-byte cap.
    """
    result = _try_uvarint(data, pos)
    if result is None:
        raise TraceError(f"truncated or over-long varint at byte {pos}")
    return result


def _try_uvarint(data: bytes, pos: int) -> Optional[Tuple[int, int]]:
    """Like :func:`decode_uvarint` but returns None instead of raising."""
    value = 0
    shift = 0
    start = pos
    end = len(data)
    while pos < end:
        if pos - start >= _MAX_VARINT_BYTES:
            return None
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
    return None


@dataclass(frozen=True)
class TraceRecord:
    """One decoded trace record (payload kept raw for exact re-encode)."""

    event: int
    dt_us: int
    payload: bytes = b""

    @property
    def fields(self) -> Tuple[int, ...]:
        """The payload decoded as a varint sequence (catalogued events)."""
        out: List[int] = []
        pos = 0
        while pos < len(self.payload):
            value, pos = decode_uvarint(self.payload, pos)
            out.append(value)
        return tuple(out)

    def encode(self) -> bytes:
        """The record's canonical wire bytes (framing + raw payload)."""
        return (encode_uvarint(self.event) + encode_uvarint(self.dt_us)
                + encode_uvarint(len(self.payload)) + self.payload)


def pack_fields(fields: Sequence[int]) -> bytes:
    """Encode a field tuple as a record payload (concatenated varints)."""
    return b"".join(encode_uvarint(value) for value in fields)


@dataclass
class TraceLog:
    """A fully read trace: records plus what the torn tail cost us."""

    version: int = VERSION
    records: List[TraceRecord] = field(default_factory=list)
    truncated_bytes: int = 0


class TraceWriter:
    """Streams trace records to a binary file.

    Timestamps come from ``time.perf_counter_ns`` (monotonic, never the
    wall clock) and are stored as per-record deltas so idle traces stay
    tiny.  The writer is intentionally lock-free: concurrency is the
    :class:`repro.obs.hooks.Tracer` facade's job.
    """

    def __init__(self, target: Union[str, "BinaryIO"]) -> None:
        if isinstance(target, str):
            self._fh: BinaryIO = open(target, "wb")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._fh.write(MAGIC + encode_uvarint(VERSION))
        self._last_us = time.perf_counter_ns() // 1000

    def emit(self, event: int, fields: Sequence[int]) -> None:
        """Append one record, stamping the monotonic delta since the last."""
        now_us = time.perf_counter_ns() // 1000
        dt = now_us - self._last_us
        self._last_us = now_us
        payload = pack_fields(fields)
        self._fh.write(encode_uvarint(event) + encode_uvarint(dt if dt > 0 else 0)
                       + encode_uvarint(len(payload)) + payload)

    def emit_record(self, record: TraceRecord) -> None:
        """Append a pre-built record verbatim (re-encode/repair tooling)."""
        self._fh.write(record.encode())

    def close(self) -> None:
        """Flush, and close the file only if this writer opened it."""
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def write_trace(target: Union[str, "BinaryIO"],
                records: Sequence[TraceRecord],
                version: int = VERSION) -> None:
    """Write a complete trace from decoded records (byte-exact re-encode)."""
    if isinstance(target, str):
        with open(target, "wb") as fh:
            write_trace(fh, records, version)
        return
    target.write(MAGIC + encode_uvarint(version))
    for record in records:
        target.write(record.encode())


def read_trace(source: Union[str, bytes, "BinaryIO"]) -> TraceLog:
    """Read a trace, tolerating a torn tail like ``read_wal`` does.

    Records are decoded until the buffer ends cleanly or a frame is cut
    short / corrupt; the unread remainder is counted in
    ``truncated_bytes`` rather than raised, so a trace from a crashed
    process yields every complete record.  A bad magic or an
    unsupported version raises :class:`TraceError`.
    """
    if isinstance(source, str):
        with open(source, "rb") as fh:
            data = fh.read()
    elif isinstance(source, bytes):
        data = source
    else:
        data = source.read()
    if len(data) < len(MAGIC) or data[: len(MAGIC)] != MAGIC:
        raise TraceError("not a trace file (bad magic)")
    version, pos = decode_uvarint(data, len(MAGIC))
    if version > VERSION:
        raise TraceError(f"trace format version {version} is newer than "
                         f"this reader (supports <= {VERSION})")
    log = TraceLog(version=version)
    end = len(data)
    while pos < end:
        start = pos
        head = _try_uvarint(data, pos)
        if head is None:
            break
        event, pos = head
        head = _try_uvarint(data, pos)
        if head is None:
            pos = start
            break
        dt_us, pos = head
        head = _try_uvarint(data, pos)
        if head is None:
            pos = start
            break
        length, pos = head
        if pos + length > end:
            pos = start
            break
        log.records.append(TraceRecord(event, dt_us, data[pos:pos + length]))
        pos += length
    log.truncated_bytes = end - pos
    return log


def encode_trace(records: Sequence[TraceRecord], version: int = VERSION) -> bytes:
    """The full wire bytes for a record sequence (round-trip testing)."""
    buf = io.BytesIO()
    write_trace(buf, records, version)
    return buf.getvalue()
