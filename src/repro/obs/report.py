"""Trace analysis: per-phase timing / conflict-rate profiles.

Turns a decoded :class:`~repro.obs.trace.TraceLog` into either a
JSON-able profile dict (the ``--json`` output, intended as input for
the future layout-tuning loop) or a human-readable text report.

A *phase* is one K query of the descent: the span between a
``k_query_begin`` and its matching ``k_query_end``.  The end record
carries the query's run-delta counters straight from the solver, so
phase conflict/propagation counts are exact (they sum to the solver's
own cumulative ``SolverStats``, which the test suite pins); phase wall
time is the sum of record timestamp deltas inside the span.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from . import events as ev
from .trace import TraceLog, TraceRecord


def _status_name(code: int) -> str:
    return ev.STATUS_NAMES.get(code, f"status#{code}")


def _named_fields(record: TraceRecord) -> Dict[str, int]:
    names = ev.EVENT_FIELDS.get(record.event, ())
    return dict(zip(names, record.fields))


def decode_record(record: TraceRecord) -> Dict[str, Any]:
    """One record as a JSON-able dict (the ``dump`` subcommand's unit)."""
    out: Dict[str, Any] = {
        "event": ev.EVENT_NAMES.get(record.event, f"event#{record.event}"),
        "dt_us": record.dt_us,
    }
    if record.event in ev.EVENT_FIELDS:
        fields = _named_fields(record)
        if "status" in fields:
            fields["status"] = _status_name(int(fields["status"]))  # type: ignore[assignment]
        if record.event == ev.STAGE:
            fields["stage"] = ev.STAGE_NAMES.get(  # type: ignore[assignment]
                int(fields.get("stage", 0)), "other")
        if record.event in (ev.DEADLINE_EXPIRED, ev.DEGRADED):
            fields["where"] = ev.WHERE_NAMES.get(  # type: ignore[assignment]
                int(fields.get("where", 0)), "other")
        out["fields"] = fields
    else:
        out["payload_bytes"] = len(record.payload)
    return out


def build_profile(log: TraceLog) -> Dict[str, Any]:
    """Aggregate a trace into the per-phase profile dict."""
    event_counts: Dict[str, int] = {}
    phases: List[Dict[str, Any]] = []
    open_phases: List[Tuple[Dict[str, Any], int]] = []  # (phase, wall_us)
    solve = {"calls": 0, "conflicts": 0, "decisions": 0,
             "propagations": 0, "restarts": 0, "learned": 0, "deleted": 0}
    gc = {"sweeps": 0, "clauses": 0, "learned": 0, "watchers": 0}
    reduce_db = {"sweeps": 0, "deleted": 0}
    pool = {"pools": 0, "components": 0}
    resilience = {"deadline_expired": 0, "degraded": 0}
    totals = {"conflicts": 0, "decisions": 0, "propagations": 0,
              "restarts": 0, "wall_us": 0}

    for record in log.records:
        name = ev.EVENT_NAMES.get(record.event, f"event#{record.event}")
        event_counts[name] = event_counts.get(name, 0) + 1
        totals["wall_us"] += record.dt_us
        # Accumulate in-span wall time for every open phase (phases can
        # nest only via interleaved solvers; attribute to all of them).
        open_phases = [(p, wall + record.dt_us) for p, wall in open_phases]

        if record.event == ev.K_QUERY_BEGIN:
            fields = _named_fields(record)
            phase: Dict[str, Any] = {
                "k": fields.get("k", 0),
                "mode": "permanent" if fields.get("permanent") else "assumption",
            }
            open_phases.append((phase, 0))
        elif record.event == ev.K_QUERY_END:
            fields = _named_fields(record)
            k = fields.get("k", 0)
            match: Optional[Tuple[Dict[str, Any], int]] = None
            for entry in reversed(open_phases):
                if entry[0]["k"] == k:
                    match = entry
                    break
            if match is None:
                match = ({"k": k, "mode": "assumption"}, record.dt_us)
            else:
                open_phases.remove(match)
            phase, wall_us = match
            wall_s = wall_us / 1e6
            conflicts = int(fields.get("conflicts", 0))
            phase.update({
                "status": _status_name(int(fields.get("status", 0))),
                "conflicts": conflicts,
                "decisions": int(fields.get("decisions", 0)),
                "propagations": int(fields.get("propagations", 0)),
                "restarts": int(fields.get("restarts", 0)),
                "wall_us": wall_us,
                "conflicts_per_sec":
                    round(conflicts / wall_s, 1) if wall_s > 0 else 0.0,
            })
            phases.append(phase)
            for key in ("conflicts", "decisions", "propagations", "restarts"):
                totals[key] += int(phase[key])
        elif record.event == ev.SOLVE_END:
            fields = _named_fields(record)
            solve["calls"] += 1
            for key in ("conflicts", "decisions", "propagations",
                        "restarts", "learned", "deleted"):
                solve[key] += int(fields.get(key, 0))
        elif record.event == ev.GC_SWEEP:
            fields = _named_fields(record)
            gc["sweeps"] += 1
            for key in ("clauses", "learned", "watchers"):
                gc[key] += int(fields.get(key, 0))
        elif record.event == ev.DB_REDUCE:
            fields = _named_fields(record)
            reduce_db["sweeps"] += 1
            reduce_db["deleted"] += int(fields.get("deleted", 0))
        elif record.event == ev.POOL_BEGIN:
            fields = _named_fields(record)
            pool["pools"] += 1
            pool["components"] += int(fields.get("components", 0))
        elif record.event == ev.DEADLINE_EXPIRED:
            resilience["deadline_expired"] += 1
        elif record.event == ev.DEGRADED:
            resilience["degraded"] += 1

    return {
        "version": log.version,
        "records": len(log.records),
        "truncated_bytes": log.truncated_bytes,
        "events": dict(sorted(event_counts.items())),
        "phases": phases,
        "totals": totals,
        "solve": solve,
        "gc": gc,
        "db_reduce": reduce_db,
        "pool": pool,
        "resilience": resilience,
    }


def render_report(profile: Dict[str, Any]) -> str:
    """The profile as an aligned, human-readable text report."""
    lines: List[str] = []
    torn = (f", {profile['truncated_bytes']} byte(s) torn tail dropped"
            if profile["truncated_bytes"] else "")
    lines.append(f"trace: {profile['records']} records, "
                 f"format v{profile['version']}{torn}")
    lines.append("")

    phases = profile["phases"]
    if phases:
        lines.append(f"{'phase':16s} {'status':8s} {'conflicts':>9s} "
                     f"{'decisions':>9s} {'propagations':>12s} "
                     f"{'restarts':>8s} {'wall':>9s} {'confl/s':>9s}")
        for phase in phases:
            label = f"K={phase['k']} ({phase['mode'][:4]})"
            lines.append(
                f"{label:16s} {phase['status']:8s} {phase['conflicts']:>9d} "
                f"{phase['decisions']:>9d} {phase['propagations']:>12d} "
                f"{phase['restarts']:>8d} {phase['wall_us'] / 1e6:>8.3f}s "
                f"{phase['conflicts_per_sec']:>9.1f}")
        totals = profile["totals"]
        lines.append(
            f"{'total':16s} {'':8s} {totals['conflicts']:>9d} "
            f"{totals['decisions']:>9d} {totals['propagations']:>12d} "
            f"{totals['restarts']:>8d} {totals['wall_us'] / 1e6:>8.3f}s")
        lines.append("")
    else:
        lines.append("(no K-query phases in this trace)")
        lines.append("")

    solve = profile["solve"]
    lines.append(f"solver: {solve['calls']} solve call(s), "
                 f"{solve['conflicts']} conflicts, "
                 f"{solve['propagations']} propagations, "
                 f"{solve['learned']} learned, {solve['deleted']} deleted")
    reduce_db = profile["db_reduce"]
    gc = profile["gc"]
    lines.append(f"clause GC: {reduce_db['sweeps']} db-reduce sweep(s) "
                 f"({reduce_db['deleted']} deleted), {gc['sweeps']} "
                 f"level-0 sweep(s) ({gc['clauses']} clauses, "
                 f"{gc['learned']} learned, {gc['watchers']} watchers)")
    pool = profile["pool"]
    if pool["pools"]:
        lines.append(f"pool: {pool['pools']} pool run(s) over "
                     f"{pool['components']} component(s)")
    resilience = profile["resilience"]
    lines.append(f"resilience: deadline_expired={resilience['deadline_expired']} "
                 f"degraded={resilience['degraded']}")
    return "\n".join(lines)
