"""Trace inspection CLI.

Usage::

    python -m repro.obs report trace.bin [--json]
    python -m repro.obs dump trace.bin [--limit N] [--json]

``report`` renders the per-phase timing / conflict-rate profile of a
solver trace (``--json`` emits the machine-readable profile dict);
``dump`` lists individual records with decoded field names.  Traces
are produced with ``--trace`` on the solve commands or the
:func:`repro.obs.tracing` context manager (docs/observability.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .report import build_profile, decode_record, render_report
from .trace import TraceError, read_trace


def cmd_report(args: argparse.Namespace) -> int:
    """Render the per-phase profile of a trace (text or --json)."""
    log = read_trace(args.trace)
    profile = build_profile(log)
    if args.json:
        print(json.dumps(profile, sort_keys=True, indent=2))
    else:
        print(render_report(profile))
    return 0


def cmd_dump(args: argparse.Namespace) -> int:
    """Pretty-print decoded records (all fields named, codes mapped)."""
    log = read_trace(args.trace)
    records = log.records[: args.limit] if args.limit else log.records
    if args.json:
        print(json.dumps([decode_record(r) for r in records], indent=2))
    else:
        t_us = 0
        for record in records:
            t_us += record.dt_us
            decoded = decode_record(record)
            fields = decoded.get("fields")
            detail = (" ".join(f"{k}={v}" for k, v in fields.items())
                      if fields is not None
                      else f"({decoded['payload_bytes']} payload bytes)")
            print(f"{t_us / 1e6:12.6f}s  {decoded['event']:16s} {detail}")
        if args.limit and len(log.records) > args.limit:
            print(f"... {len(log.records) - args.limit} more record(s)")
    if log.truncated_bytes:
        print(f"note: {log.truncated_bytes} byte(s) of torn tail dropped",
              file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect binary solver traces (docs/TRACE_FORMAT.md).")
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser(
        "report", help="per-phase timing / conflict-rate profile")
    p_report.add_argument("trace", help="trace file (see --trace / tracing())")
    p_report.add_argument("--json", action="store_true",
                          help="emit the machine-readable profile dict")
    p_report.set_defaults(func=cmd_report)

    p_dump = sub.add_parser("dump", help="list individual trace records")
    p_dump.add_argument("trace", help="trace file")
    p_dump.add_argument("--limit", type=int, default=0,
                        help="stop after N records (0 = all)")
    p_dump.add_argument("--json", action="store_true",
                        help="emit records as a JSON array")
    p_dump.set_defaults(func=cmd_dump)

    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
