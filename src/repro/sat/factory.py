"""The swappable solver factory — the construction chokepoint that the
static checker's RPR005 rule funnels every non-``sat/`` call site
through.

The ROADMAP's compiled ``native`` core is planned as a drop-in twin of
:class:`CDCLSolver`, differentially verified against the Python engine.
That swap only works if call sites outside the solver layer never name
the concrete class: they call :func:`new_solver` (or go through the
``Backend`` registry), and the deployment that wants the native core
installs it here with :func:`set_solver_factory`.
"""

from __future__ import annotations

from typing import Callable

from ..obs.hooks import active_tracer
from ..obs.metrics import get_registry
from .cdcl import CDCLSolver

SolverFactory = Callable[..., CDCLSolver]

_default_factory: SolverFactory = CDCLSolver
_factory: SolverFactory = CDCLSolver


def new_solver(num_vars: int = 0, **kwargs: object) -> CDCLSolver:
    """Construct a solver through the currently-installed factory.

    Accepts the :class:`CDCLSolver` constructor signature; any
    registered replacement must too.  Being the one construction
    chokepoint also makes this the observability seam: when a tracer
    is installed (:func:`repro.obs.tracing`), every solver built here
    is attached to it at birth.
    """
    solver = _factory(num_vars=num_vars, **kwargs)
    get_registry().inc("solver_created_total")
    tracer = active_tracer()
    if tracer is not None:
        tracer.attach(solver)
    return solver


def set_solver_factory(factory: SolverFactory) -> SolverFactory:
    """Install ``factory`` as the engine constructor; returns the old one.

    The replacement must build objects honouring the ``CDCLSolver``
    interface (``add_clause``/``solve``/``num_vars``/...).
    """
    global _factory
    previous = _factory
    _factory = factory
    return previous


def reset_solver_factory() -> None:
    """Restore the default (pure-Python CDCL) factory."""
    global _factory
    _factory = _default_factory
