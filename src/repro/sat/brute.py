"""Brute-force reference solvers.

Exhaustive enumeration over all 2^n assignments.  Only usable for tiny
formulas, but trivially correct — the property-based tests use these as
the oracle against which the CDCL and PB engines are checked.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterator, Optional, Tuple

from ..core.formula import Formula
from .result import OPTIMAL, OptimizeResult, SolveResult, SAT, UNSAT

MAX_BRUTE_VARS = 22


def _assignments(num_vars: int) -> Iterator[Dict[int, bool]]:
    for bits in product((False, True), repeat=num_vars):
        yield {v: bits[v - 1] for v in range(1, num_vars + 1)}


def brute_force_solve(formula: Formula) -> SolveResult:
    """Decide satisfiability by exhaustive enumeration."""
    if formula.num_vars > MAX_BRUTE_VARS:
        raise ValueError(f"too many variables for brute force: {formula.num_vars}")
    for assignment in _assignments(formula.num_vars):
        if formula.evaluate(assignment):
            return SolveResult(SAT, model=assignment)
    return SolveResult(UNSAT)


def brute_force_count(formula: Formula) -> int:
    """Count satisfying assignments (used to measure symmetry breaking)."""
    if formula.num_vars > MAX_BRUTE_VARS:
        raise ValueError(f"too many variables for brute force: {formula.num_vars}")
    return sum(1 for a in _assignments(formula.num_vars) if formula.evaluate(a))


def brute_force_optimize(formula: Formula) -> OptimizeResult:
    """Minimize/maximize the objective by exhaustive enumeration."""
    if formula.num_vars > MAX_BRUTE_VARS:
        raise ValueError(f"too many variables for brute force: {formula.num_vars}")
    sign = 1 if formula.objective_sense == "min" else -1
    best: Optional[Tuple[int, Dict[int, bool]]] = None
    for assignment in _assignments(formula.num_vars):
        if not formula.evaluate(assignment):
            continue
        value = formula.objective_value(assignment)
        if best is None or sign * value < sign * best[0]:
            best = (value, assignment)
    if best is None:
        return OptimizeResult(UNSAT)
    return OptimizeResult(OPTIMAL, best_value=best[0], best_model=best[1])
