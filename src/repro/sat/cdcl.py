"""A conflict-driven clause-learning (CDCL) SAT solver.

This is the library's stand-in for the Chaff/zChaff lineage the paper's
solvers descend from: two-watched-literal propagation, first-UIP
conflict analysis with clause minimization, VSIDS decisions, phase
saving, Luby restarts and activity/LBD-guided learned-clause deletion.
The PB engine in :mod:`repro.pb.engine` extends the same search loop
with pseudo-Boolean propagation.

The implementation favours clarity over micro-optimization but is
careful in the hot paths (watched-literal loop, conflict analysis), so
instances with tens of thousands of variables/clauses are practical.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.formula import Formula
from .luby import luby_sequence
from .result import SAT, UNKNOWN, UNSAT, SolveResult, SolverStats
from .vsids import VSIDS


class WClause(list):
    """A solver-internal clause: a literal list plus learning metadata.

    Subclassing ``list`` keeps the watched-literal loop on plain indexed
    access while allowing the clause-deletion policy to tag clauses with
    their LBD (literal block distance) and learnt status.
    """

    __slots__ = ("learnt", "lbd")

    def __init__(self, lits: Iterable[int], learnt: bool = False, lbd: int = 0):
        super().__init__(lits)
        self.learnt = learnt
        self.lbd = lbd


class CDCLSolver:
    """Incremental CDCL solver over CNF clauses.

    Typical use::

        solver = CDCLSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        result = solver.solve()
        assert result.is_sat and result.model[2] is True
    """

    def __init__(
        self,
        num_vars: int = 0,
        decay: float = 0.95,
        restart_base: int = 100,
        phase_default: bool = False,
        max_learned_start: int = 4000,
        max_learned_growth: float = 1.1,
    ):
        self.num_vars = 0
        self.values: List[int] = [0]  # 1 true, -1 false, 0 unassigned; index = var
        self.level: List[int] = [0]
        self.trail_pos: List[int] = [0]
        self.reason: List[Optional[WClause]] = [None]
        self.saved_phase: List[bool] = [phase_default]
        self._phase_default = phase_default
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.watches: Dict[int, List[WClause]] = {}
        self.clauses: List[WClause] = []
        self.learned: List[WClause] = []
        self.vsids = VSIDS(0, decay=decay)
        self.restart_base = restart_base
        self.max_learned = max_learned_start
        self.max_learned_growth = max_learned_growth
        self.stats = SolverStats()
        self._unsat = False  # formula proved UNSAT at level 0
        self._ensure_var(num_vars)

    # ------------------------------------------------------------ plumbing
    def _ensure_var(self, var: int) -> None:
        while self.num_vars < var:
            self.num_vars += 1
            self.values.append(0)
            self.level.append(0)
            self.trail_pos.append(0)
            self.reason.append(None)
            self.saved_phase.append(self._phase_default)
            self.watches[self.num_vars] = []
            self.watches[-self.num_vars] = []
        self.vsids.grow(self.num_vars)

    def value_of(self, lit: int):
        """Current value of a literal: True / False / None."""
        v = self.values[lit] if lit > 0 else -self.values[-lit]
        if v == 0:
            return None
        return v > 0

    @property
    def decision_level(self) -> int:
        return len(self.trail_lim)

    # ------------------------------------------------------------- loading
    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if it makes the formula UNSAT at level 0.

        Must be called at decision level 0 (fresh solver or between
        ``solve`` calls, which always return at level 0).
        """
        if self.trail_lim:
            raise RuntimeError("add_clause is only legal at decision level 0")
        lits: List[int] = []
        seen = set()
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a literal")
            self._ensure_var(abs(lit))
            if -lit in seen:
                return True  # tautology; vacuously added
            if lit in seen:
                continue
            seen.add(lit)
            value = self.value_of(lit)
            if value is True:
                return True  # already satisfied at level 0
            if value is False:
                continue  # falsified at level 0; drop the literal
            lits.append(lit)
        if not lits:
            self._unsat = True
            return False
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            return self._propagate() is None or self._mark_unsat()
        clause = WClause(lits)
        self.clauses.append(clause)
        self.watches[-clause[0]].append(clause)
        self.watches[-clause[1]].append(clause)
        return True

    def _mark_unsat(self) -> bool:
        self._unsat = True
        return False

    def add_formula(self, formula: Formula) -> bool:
        """Load all clauses of a CNF-only formula."""
        if formula.pb_constraints:
            raise ValueError("CDCLSolver is CNF-only; use repro.pb.PBSolver")
        self._ensure_var(formula.num_vars)
        ok = True
        for clause in formula.clauses:
            ok = self.add_clause(clause.literals) and ok
        return ok

    # --------------------------------------------------------- propagation
    def _enqueue(self, lit: int, reason) -> None:
        var = abs(lit)
        self.values[var] = 1 if lit > 0 else -1
        self.level[var] = self.decision_level
        self.trail_pos[var] = len(self.trail)
        self.reason[var] = reason
        self.trail.append(lit)

    def _propagate(self):
        """Propagate to fixpoint; returns a conflicting constraint or None.

        Alternates clause (watched-literal) propagation with the
        ``_propagate_extra`` hook until neither produces new assignments.
        """
        while True:
            conflict = self._propagate_clauses()
            if conflict is not None:
                return conflict
            conflict = self._propagate_extra()
            if conflict is not None:
                self.qhead = len(self.trail)
                return conflict
            if self.qhead >= len(self.trail):
                return None

    def _propagate_clauses(self) -> Optional[WClause]:
        """Unit propagation over clauses; returns a conflict or None."""
        values = self.values
        watches = self.watches
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.stats.propagations += 1
            false_lit = -lit
            # Clauses watching ``false_lit`` live under watches[-false_lit].
            watchlist = watches[lit]
            i = j = 0
            n = len(watchlist)
            while i < n:
                clause = watchlist[i]
                i += 1
                # Normalize: the false literal sits at position 1.
                if clause[0] == false_lit:
                    clause[0] = clause[1]
                    clause[1] = false_lit
                first = clause[0]
                fval = values[first] if first > 0 else -values[-first]
                if fval > 0:
                    watchlist[j] = clause
                    j += 1
                    continue
                # Look for a non-false replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    oval = values[other] if other > 0 else -values[-other]
                    if oval >= 0:
                        clause[1] = other
                        clause[k] = false_lit
                        watches[-other].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                watchlist[j] = clause
                j += 1
                if fval < 0:
                    # Conflict: keep the remaining watchers and report.
                    while i < n:
                        watchlist[j] = watchlist[i]
                        j += 1
                        i += 1
                    del watchlist[j:]
                    self.qhead = len(self.trail)
                    return clause
                self._enqueue(first, clause)
            del watchlist[j:]
        return None

    def _propagate_extra(self):
        """Hook for subclasses (PB propagation); None means no conflict."""
        return None

    # ----------------------------------------------------------- analysis
    def _analyze(self, conflict) -> (List[int], int, int):
        """First-UIP conflict analysis.

        Returns ``(learnt_clause, backtrack_level, lbd)`` with the
        asserting literal first.  ``conflict`` is a clause-like list of
        literals all currently false.
        """
        learnt: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        p = 0
        reason_lits: Sequence[int] = self._reason_literals(conflict, 0)
        index = len(self.trail) - 1
        current = self.decision_level
        while True:
            for q in reason_lits:
                if q == p:
                    continue
                v = abs(q)
                if not seen[v] and self.level[v] > 0:
                    seen[v] = True
                    self.vsids.bump(v)
                    if self.level[v] >= current:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self.trail[index])]:
                index -= 1
            p = self.trail[index]
            index -= 1
            counter -= 1
            if counter == 0:
                break
            seen[abs(p)] = False
            reason_lits = self._reason_literals(self.reason[abs(p)], p)
        learnt_head = -p
        learnt = self._minimize(learnt, seen)
        # Backtrack level: highest level among the tail literals.
        bt = 0
        for q in learnt:
            lvl = self.level[abs(q)]
            if lvl > bt:
                bt = lvl
        levels = {self.level[abs(q)] for q in learnt}
        levels.add(current)
        lbd = len(levels)
        return [learnt_head] + learnt, bt, lbd

    def _reason_literals(self, reason, lit: int) -> Sequence[int]:
        """Literals of the reason for ``lit`` (hookable for PB reasons)."""
        return reason

    def _minimize(self, learnt: List[int], seen: List[bool]) -> List[int]:
        """Local clause minimization: drop literals implied by the rest."""
        out = []
        for q in learnt:
            reason = self.reason[abs(q)]
            if reason is None:
                out.append(q)
                continue
            lits = self._reason_literals(reason, -q)
            redundant = all(
                r == -q or seen[abs(r)] or self.level[abs(r)] == 0 for r in lits
            )
            if not redundant:
                out.append(q)
        return out

    def _backtrack(self, target_level: int) -> None:
        if self.decision_level <= target_level:
            return
        bound = self.trail_lim[target_level]
        popped = self.trail[bound:]
        for k in range(len(self.trail) - 1, bound - 1, -1):
            lit = self.trail[k]
            var = abs(lit)
            self.saved_phase[var] = lit > 0
            self.values[var] = 0
            self.reason[var] = None
            self.vsids.push(var)
        del self.trail[bound:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)
        self._on_backtrack(bound, popped)

    def _on_backtrack(self, trail_bound: int, popped: List[int]) -> None:
        """Hook for subclasses to unwind auxiliary state."""

    def _record_learnt(self, lits: List[int], lbd: int) -> Optional[WClause]:
        """Install a learnt clause and enqueue its asserting literal."""
        self.stats.learned += 1
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            return None
        clause = WClause(lits, learnt=True, lbd=lbd)
        self.learned.append(clause)
        self.watches[-clause[0]].append(clause)
        self.watches[-clause[1]].append(clause)
        self._enqueue(clause[0], clause)
        return clause

    def _reduce_db(self) -> None:
        """Throw away the less useful half of the learnt clauses."""
        locked = set()
        for var in range(1, self.num_vars + 1):
            r = self.reason[var]
            if r is not None and isinstance(r, WClause) and r.learnt:
                locked.add(id(r))
        keep: List[WClause] = []
        candidates: List[WClause] = []
        for c in self.learned:
            if id(c) in locked or len(c) <= 2 or c.lbd <= 2:
                keep.append(c)
            else:
                candidates.append(c)
        candidates.sort(key=lambda c: (c.lbd, len(c)))
        cut = len(candidates) // 2
        for c in candidates[cut:]:
            self._detach(c)
            self.stats.deleted += 1
        self.learned = keep + candidates[:cut]
        self.max_learned = int(self.max_learned * self.max_learned_growth)

    def _detach(self, clause: WClause) -> None:
        for lit in (clause[0], clause[1]):
            try:
                self.watches[-lit].remove(clause)
            except ValueError:
                pass

    # --------------------------------------------------------------- solve
    def solve(
        self,
        assumptions: Sequence[int] = (),
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
    ) -> SolveResult:
        """Decide satisfiability under optional assumption literals.

        ``time_limit`` (seconds) and ``conflict_limit`` bound the search;
        on exhaustion the result status is :data:`UNKNOWN`.
        """
        start = time.monotonic()
        run = SolverStats()
        if self._unsat:
            return SolveResult(UNSAT, stats=run)
        for lit in assumptions:
            self._ensure_var(abs(lit))
        restarts = luby_sequence(self.restart_base)
        budget = next(restarts)
        conflicts_here = 0
        base_conflicts = self.stats.conflicts
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                if self.decision_level == 0:
                    self._unsat = True
                    return self._finish(UNSAT, start, base_conflicts, run)
                learnt, bt, lbd = self._analyze(conflict)
                self._backtrack(bt)
                self._record_learnt(learnt, lbd)
                self.vsids.decay()
                self._on_conflict()
                if conflict_limit is not None and conflicts_here >= conflict_limit:
                    return self._finish(UNKNOWN, start, base_conflicts, run)
                if time_limit is not None and (self.stats.conflicts & 127) == 0:
                    if time.monotonic() - start > time_limit:
                        return self._finish(UNKNOWN, start, base_conflicts, run)
                if conflicts_here >= budget:
                    budget = conflicts_here + next(restarts)
                    self.stats.restarts += 1
                    self._backtrack(0)
                if len(self.learned) > self.max_learned:
                    self._reduce_db()
                continue
            # No conflict: re-establish assumptions, then decide.
            if self.decision_level < len(assumptions):
                lit = assumptions[self.decision_level]
                value = self.value_of(lit)
                if value is False:
                    return self._finish(UNSAT, start, base_conflicts, run)
                self.trail_lim.append(len(self.trail))
                if value is None:
                    self._enqueue(lit, None)
                continue
            var = self.vsids.pop_unassigned(lambda v: self.values[v] != 0)
            if var == 0:
                model = {v: self.values[v] > 0 for v in range(1, self.num_vars + 1)}
                result = self._finish(SAT, start, base_conflicts, run)
                result.model = model
                return result
            self.stats.decisions += 1
            if time_limit is not None and (self.stats.decisions & 1023) == 0:
                if time.monotonic() - start > time_limit:
                    return self._finish(UNKNOWN, start, base_conflicts, run)
            self.trail_lim.append(len(self.trail))
            lit = var if self.saved_phase[var] else -var
            self._enqueue(lit, None)

    def _on_conflict(self) -> None:
        """Hook for subclasses (e.g. extra learning)."""

    def _finish(
        self, status: str, start: float, base_conflicts: int, run: SolverStats
    ) -> SolveResult:
        self._backtrack(0)
        run.conflicts = self.stats.conflicts - base_conflicts
        run.decisions = self.stats.decisions
        run.propagations = self.stats.propagations
        run.restarts = self.stats.restarts
        run.learned = self.stats.learned
        run.time_seconds = time.monotonic() - start
        return SolveResult(status, stats=run)


def solve_formula(
    formula: Formula,
    assumptions: Sequence[int] = (),
    time_limit: Optional[float] = None,
    conflict_limit: Optional[int] = None,
) -> SolveResult:
    """One-shot satisfiability check of a CNF-only formula."""
    solver = CDCLSolver(num_vars=formula.num_vars)
    if not solver.add_formula(formula):
        return SolveResult(UNSAT)
    return solver.solve(
        assumptions=assumptions, time_limit=time_limit, conflict_limit=conflict_limit
    )
