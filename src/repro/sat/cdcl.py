"""A conflict-driven clause-learning (CDCL) SAT solver.

This is the library's stand-in for the Chaff/zChaff lineage the paper's
solvers descend from: two-watched-literal propagation, first-UIP
conflict analysis with clause minimization, VSIDS decisions, phase
saving, Luby restarts and activity/LBD-guided learned-clause deletion.
The PB engine in :mod:`repro.pb.engine` extends the same search loop
with pseudo-Boolean propagation.

The solver is **incremental** in the assumption-based style pioneered
by the Chaff/MiniSat lineage: clauses may be added between ``solve``
calls, each call may pass a list of assumption literals that hold only
for that call, and learned clauses, saved phases and VSIDS activity all
carry over from one call to the next.  When a query is UNSAT under
assumptions, :attr:`SolveResult.failed_assumptions` holds the subset of
assumptions in the final conflict (the MiniSat ``analyzeFinal`` core),
which callers such as the chromatic-number descent use to skip dead
queries.

Hot-path design (measured on the multi-K coloring descents):

* watch lists live in a flat list indexed by literal
  (``2*var`` / ``2*var + 1``), not a dict — no hashing on the hottest
  loop in the solver;
* each watcher is a ``(clause, blocker)`` pair; a true blocker literal
  satisfies the clause without touching it (MiniSat's cached-literal
  optimization);
* clause deletion is lazy: deleted clauses are only marked, watchers
  drain them as they are visited, and the watch lists are compacted in
  one sweep when enough dead watchers accumulate;
* restarts are assumption-aware — they backtrack to the assumption
  prefix, never below it, so assumption-level propagation is not redone
  on every restart.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.formula import Formula
from ..obs.metrics import get_registry
from .luby import luby_sequence
from .result import SAT, UNKNOWN, UNSAT, SolveResult, SolverStats
from .vsids import VSIDS


def _widx(lit: int) -> int:
    """Index of a literal in the flat watch table (2v / 2v+1)."""
    return (lit << 1) if lit > 0 else ((-lit) << 1) | 1


class WClause(list):
    """A solver-internal clause: a literal list plus learning metadata.

    Subclassing ``list`` keeps the watched-literal loop on plain indexed
    access while allowing the clause-deletion policy to tag clauses with
    their LBD (literal block distance), learnt status, and the lazy
    ``deleted`` mark that watch lists drain on their own schedule.
    """

    __slots__ = ("learnt", "lbd", "deleted")

    def __init__(self, lits: Iterable[int], learnt: bool = False, lbd: int = 0):
        super().__init__(lits)
        self.learnt = learnt
        self.lbd = lbd
        self.deleted = False


class CDCLSolver:
    """Incremental CDCL solver over CNF clauses.

    Typical one-shot use::

        solver = CDCLSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        result = solver.solve()
        assert result.is_sat and result.model[2] is True

    Incremental use — one persistent solver, per-call assumptions::

        solver = CDCLSolver()
        solver.add_formula(formula)
        for selector in selectors:          # e.g. the K-search descent
            result = solver.solve(assumptions=[-selector])
            if result.is_unsat:
                core = result.failed_assumptions  # subset of assumptions
    """

    def __init__(
        self,
        num_vars: int = 0,
        decay: float = 0.95,
        restart_base: int = 100,
        phase_default: bool = False,
        max_learned_start: int = 4000,
        max_learned_growth: float = 1.1,
    ):
        self.num_vars = 0
        self.values: List[int] = [0]  # 1 true, -1 false, 0 unassigned; index = var
        self.level: List[int] = [0]
        self.trail_pos: List[int] = [0]
        self.reason: List[Optional[WClause]] = [None]
        self.saved_phase: List[bool] = [phase_default]
        self._phase_default = phase_default
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        # Flat watch table: watches[_widx(lit)] holds (clause, blocker)
        # pairs for clauses in which ``-lit`` is a watched literal.
        self.watches: List[list] = [[], []]
        self.clauses: List[WClause] = []
        self.learned: List[WClause] = []
        self.vsids = VSIDS(0, decay=decay)
        self.restart_base = restart_base
        self.max_learned = max_learned_start
        self.max_learned_growth = max_learned_growth
        self.stats = SolverStats()
        self._unsat = False  # formula proved UNSAT at level 0
        self._dead_watchers = 0  # lazy-deletion debt; compacted in one sweep
        # Event tracing (repro.obs): attached by the factory when a
        # tracer is installed; None costs the hot loop one branch.
        self.tracer = None
        self.tracer_id = 0
        self._ensure_var(num_vars)

    # ------------------------------------------------------------ plumbing
    def _ensure_var(self, var: int) -> None:
        while self.num_vars < var:
            self.num_vars += 1
            self.values.append(0)
            self.level.append(0)
            self.trail_pos.append(0)
            self.reason.append(None)
            self.saved_phase.append(self._phase_default)
            self.watches.append([])
            self.watches.append([])
        self.vsids.grow(self.num_vars)

    def value_of(self, lit: int):
        """Current value of a literal: True / False / None."""
        v = self.values[lit] if lit > 0 else -self.values[-lit]
        if v == 0:
            return None
        return v > 0

    @property
    def decision_level(self) -> int:
        return len(self.trail_lim)

    # ------------------------------------------------------------- loading
    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if it makes the formula UNSAT at level 0.

        Must be called at decision level 0 (fresh solver or between
        ``solve`` calls, which always return at level 0).
        """
        if self.trail_lim:
            raise RuntimeError("add_clause is only legal at decision level 0")
        lits: List[int] = []
        seen = set()
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a literal")
            self._ensure_var(abs(lit))
            if -lit in seen:
                return True  # tautology; vacuously added
            if lit in seen:
                continue
            seen.add(lit)
            value = self.value_of(lit)
            if value is True:
                return True  # already satisfied at level 0
            if value is False:
                continue  # falsified at level 0; drop the literal
            lits.append(lit)
        if not lits:
            self._unsat = True
            return False
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            return self._propagate() is None or self._mark_unsat()
        clause = WClause(lits)
        self.clauses.append(clause)
        self.watches[_widx(-clause[0])].append((clause, clause[1]))
        self.watches[_widx(-clause[1])].append((clause, clause[0]))
        return True

    def _mark_unsat(self) -> bool:
        self._unsat = True
        return False

    def add_formula(self, formula: Formula) -> bool:
        """Load all clauses of a CNF-only formula."""
        if formula.pb_constraints:
            raise ValueError("CDCLSolver is CNF-only; use repro.pb.PBSolver")
        self._ensure_var(formula.num_vars)
        ok = True
        for clause in formula.clauses:
            ok = self.add_clause(clause.literals) and ok
        return ok

    # --------------------------------------------------------- propagation
    def _enqueue(self, lit: int, reason) -> None:
        var = abs(lit)
        self.values[var] = 1 if lit > 0 else -1
        self.level[var] = self.decision_level
        self.trail_pos[var] = len(self.trail)
        self.reason[var] = reason
        self.trail.append(lit)

    def _propagate(self):
        """Propagate to fixpoint; returns a conflicting constraint or None.

        Alternates clause (watched-literal) propagation with the
        ``_propagate_extra`` hook until neither produces new assignments.
        """
        while True:
            conflict = self._propagate_clauses()
            if conflict is not None:
                return conflict
            conflict = self._propagate_extra()
            if conflict is not None:
                self.qhead = len(self.trail)
                return conflict
            if self.qhead >= len(self.trail):
                return None

    def _propagate_clauses(self) -> Optional[WClause]:
        """Unit propagation over clauses; returns a conflict or None."""
        values = self.values
        watches = self.watches
        trail = self.trail
        while self.qhead < len(trail):
            lit = trail[self.qhead]
            self.qhead += 1
            self.stats.propagations += 1
            false_lit = -lit
            watchlist = watches[(lit << 1) if lit > 0 else ((-lit) << 1) | 1]
            i = j = 0
            n = len(watchlist)
            while i < n:
                watcher = watchlist[i]
                i += 1
                blocker = watcher[1]
                bval = values[blocker] if blocker > 0 else -values[-blocker]
                if bval > 0:
                    # Blocker satisfies the clause: keep the watcher
                    # without touching the clause at all.
                    watchlist[j] = watcher
                    j += 1
                    continue
                clause = watcher[0]
                if clause.deleted:
                    continue  # lazily drain deleted clauses
                # Normalize: the false literal sits at position 1.
                if clause[0] == false_lit:
                    clause[0] = clause[1]
                    clause[1] = false_lit
                first = clause[0]
                if first != blocker:
                    fval = values[first] if first > 0 else -values[-first]
                    if fval > 0:
                        watchlist[j] = (clause, first)
                        j += 1
                        continue
                else:
                    fval = bval
                # Look for a non-false replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    oval = values[other] if other > 0 else -values[-other]
                    if oval >= 0:
                        clause[1] = other
                        clause[k] = false_lit
                        oidx = ((other << 1) | 1) if other > 0 else ((-other) << 1)
                        watches[oidx].append((clause, first))
                        moved = True
                        break
                if moved:
                    continue
                watchlist[j] = (clause, first)
                j += 1
                if fval < 0:
                    # Conflict: keep the remaining watchers and report.
                    while i < n:
                        watchlist[j] = watchlist[i]
                        j += 1
                        i += 1
                    del watchlist[j:]
                    self.qhead = len(trail)
                    return clause
                self._enqueue(first, clause)
            del watchlist[j:]
        return None

    def _propagate_extra(self):
        """Hook for subclasses (PB propagation); None means no conflict."""
        return None

    # ----------------------------------------------------------- analysis
    def _analyze(self, conflict) -> (List[int], int, int):
        """First-UIP conflict analysis.

        Returns ``(learnt_clause, backtrack_level, lbd)`` with the
        asserting literal first.  ``conflict`` is a clause-like list of
        literals all currently false.
        """
        learnt: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        p = 0
        reason_lits: Sequence[int] = self._reason_literals(conflict, 0)
        index = len(self.trail) - 1
        current = self.decision_level
        while True:
            for q in reason_lits:
                if q == p:
                    continue
                v = abs(q)
                if not seen[v] and self.level[v] > 0:
                    seen[v] = True
                    self.vsids.bump(v)
                    if self.level[v] >= current:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self.trail[index])]:
                index -= 1
            p = self.trail[index]
            index -= 1
            counter -= 1
            if counter == 0:
                break
            seen[abs(p)] = False
            reason_lits = self._reason_literals(self.reason[abs(p)], p)
        learnt_head = -p
        learnt = self._minimize(learnt, seen)
        # Backtrack level: highest level among the tail literals.
        bt = 0
        for q in learnt:
            lvl = self.level[abs(q)]
            if lvl > bt:
                bt = lvl
        levels = {self.level[abs(q)] for q in learnt}
        levels.add(current)
        lbd = len(levels)
        return [learnt_head] + learnt, bt, lbd

    def _analyze_final(self, failed: int, assumptions: Sequence[int]) -> List[int]:
        """Final-conflict analysis for a falsified assumption literal.

        ``failed`` is an assumption whose complement is implied by the
        formula plus the *earlier* assumptions.  Walks the implication
        graph backwards from ``-failed`` and collects every assumption
        decision it depends on — MiniSat's ``analyzeFinal``.  Returns the
        failed subset in assumption order (always containing ``failed``);
        the formula is UNSAT whenever all literals of the subset are
        assumed together.
        """
        core = {failed}
        var = abs(failed)
        if self.level[var] > 0 and self.trail_lim:
            seen = {var}
            bottom = self.trail_lim[0]
            for idx in range(len(self.trail) - 1, bottom - 1, -1):
                lit = self.trail[idx]
                v = abs(lit)
                if v not in seen:
                    continue
                seen.discard(v)
                reason = self.reason[v]
                if reason is None:
                    # A decision above level 0 during assumption
                    # establishment is itself an assumption literal.
                    core.add(lit)
                else:
                    for q in self._reason_literals(reason, lit):
                        if self.level[abs(q)] > 0:
                            seen.add(abs(q))
        return [a for a in assumptions if a in core]

    def _reason_literals(self, reason, lit: int) -> Sequence[int]:
        """Literals of the reason for ``lit`` (hookable for PB reasons)."""
        return reason

    def _minimize(self, learnt: List[int], seen: List[bool]) -> List[int]:
        """Local clause minimization: drop or substitute implied literals.

        A tail literal whose reason is covered by the clause (every
        other reason literal seen or level-0) is dropped, as in MiniSat.
        When exactly *one* reason literal blocks the drop, the tail
        literal is resolved away through its reason and replaced by that
        blocker.  Replacements deduplicate, which is what makes
        assumption-based queries cheap: the many ``x[v][c]`` literals a
        disabled color injects into a conflict all resolve through their
        guard clauses to the *same* activator literal, so learnt clauses
        stay short and are expressed over the selectors they depend on.
        """
        out = []
        extra = []
        for q in learnt:
            reason = self.reason[abs(q)]
            if reason is None:
                out.append(q)
                continue
            blocker = 0
            redundant = True
            for r in self._reason_literals(reason, -q):
                if r == -q or seen[abs(r)] or self.level[abs(r)] == 0:
                    continue
                if blocker == 0:
                    blocker = r
                else:
                    redundant = False
                    break
            if not redundant:
                out.append(q)
            elif blocker != 0:
                seen[abs(blocker)] = True
                extra.append(blocker)
        return out + extra

    def _backtrack(self, target_level: int) -> None:
        if self.decision_level <= target_level:
            return
        bound = self.trail_lim[target_level]
        popped = self.trail[bound:]
        for k in range(len(self.trail) - 1, bound - 1, -1):
            lit = self.trail[k]
            var = abs(lit)
            self.saved_phase[var] = lit > 0
            self.values[var] = 0
            self.reason[var] = None
            self.vsids.push(var)
        del self.trail[bound:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)
        self._on_backtrack(bound, popped)

    def _on_backtrack(self, trail_bound: int, popped: List[int]) -> None:
        """Hook for subclasses to unwind auxiliary state."""

    def _record_learnt(self, lits: List[int], lbd: int) -> Optional[WClause]:
        """Install a learnt clause and enqueue its asserting literal."""
        self.stats.learned += 1
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            return None
        clause = WClause(lits, learnt=True, lbd=lbd)
        self.learned.append(clause)
        self.watches[_widx(-clause[0])].append((clause, clause[1]))
        self.watches[_widx(-clause[1])].append((clause, clause[0]))
        self._enqueue(clause[0], clause)
        return clause

    def _reduce_db(self) -> None:
        """Throw away the less useful half of the learnt clauses.

        Deletion is lazy: clauses are only marked ``deleted`` here, the
        propagation loop drains marked watchers as it visits them, and
        ``_compact_watches`` rebuilds the lists in one sweep once the
        dead-watcher debt rivals the live watcher count.
        """
        locked = set()
        for var in range(1, self.num_vars + 1):
            r = self.reason[var]
            if r is not None and isinstance(r, WClause) and r.learnt:
                locked.add(id(r))
        keep: List[WClause] = []
        candidates: List[WClause] = []
        for c in self.learned:
            if id(c) in locked or len(c) <= 2 or c.lbd <= 2:
                keep.append(c)
            else:
                candidates.append(c)
        candidates.sort(key=lambda c: (c.lbd, len(c)))
        cut = len(candidates) // 2
        for c in candidates[cut:]:
            c.deleted = True
            self.stats.deleted += 1
        self._dead_watchers += 2 * (len(candidates) - cut)
        self.learned = keep + candidates[:cut]
        if self.tracer is not None:
            self.tracer.db_reduce(
                self.tracer_id, len(candidates) - cut, len(self.learned))
        self.max_learned = int(self.max_learned * self.max_learned_growth)
        live = 2 * (len(self.clauses) + len(self.learned)) + 2
        if self._dead_watchers * 2 >= live:
            self._compact_watches()

    def _compact_watches(self) -> None:
        """Drop watchers of deleted clauses from every watch list."""
        for watchlist in self.watches:
            if watchlist:
                watchlist[:] = [w for w in watchlist if not w[0].deleted]
        self._dead_watchers = 0

    def watcher_count(self) -> int:
        """Total watcher pairs in the watch table (incl. not-yet-drained)."""
        return sum(len(w) for w in self.watches)

    def collect_level0_satisfied(self) -> Dict[str, int]:
        """Garbage-collect every clause satisfied by the level-0 assignment.

        Incremental callers retire whole clause groups by adding level-0
        units (a chromatic descent disabling a color permanently, a
        growable encoding retiring an at-least-one generation): the
        group's clauses are all satisfied by the propagated facts, but
        they still occupy the clause lists and their watchers are still
        visited.  This sweep deletes them — problem clauses and learnt
        clauses alike — and compacts the watch lists in one pass.

        Level-0 facts never participate in conflict analysis again, so
        the reason pointers of root assignments are dropped too (a
        deleted reason clause must not stay pinned).  Must be called at
        decision level 0 (between ``solve`` calls).  Returns the removal
        counts: ``{"clauses", "learned", "watchers"}``.
        """
        if self.trail_lim:
            raise RuntimeError(
                "collect_level0_satisfied is only legal at decision level 0"
            )
        values = self.values

        def satisfied(clause: WClause) -> bool:
            for lit in clause:
                if (values[lit] if lit > 0 else -values[-lit]) > 0:
                    return True
            return False

        removed = {"clauses": 0, "learned": 0, "watchers": 0}
        for name, pool in (("clauses", self.clauses), ("learned", self.learned)):
            keep: List[WClause] = []
            for clause in pool:
                if satisfied(clause):
                    clause.deleted = True
                    removed[name] += 1
                else:
                    keep.append(clause)
            pool[:] = keep
        for lit in self.trail:
            self.reason[abs(lit)] = None
        before = self.watcher_count()
        self._compact_watches()
        removed["watchers"] = before - self.watcher_count()
        self.stats.deleted += removed["clauses"] + removed["learned"]
        if self.tracer is not None:
            self.tracer.gc_sweep(self.tracer_id, removed["clauses"],
                                 removed["learned"], removed["watchers"])
        return removed

    # --------------------------------------------------------------- solve
    def solve(
        self,
        assumptions: Sequence[int] = (),
        time_limit: Optional[float] = None,
        conflict_limit: Optional[int] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> SolveResult:
        """Decide satisfiability under optional assumption literals.

        Assumptions occupy the first decision levels; restarts backtrack
        to the assumption prefix (never below), so their propagation
        survives every restart of the call.  On UNSAT the result carries
        ``failed_assumptions`` — the subset of assumptions in the final
        conflict (empty when the formula is UNSAT on its own).

        ``time_limit`` (seconds) and ``conflict_limit`` bound the search;
        on exhaustion the result status is :data:`UNKNOWN`.
        ``should_stop`` is a zero-argument predicate polled every few
        dozen conflicts (and every ~1k decisions): when it turns true
        the call abandons the query and returns :data:`UNKNOWN`, which
        is what makes one monster UNSAT query interruptible without
        killing the solver — learned clauses survive for the next call.
        """
        start = time.monotonic()
        run = SolverStats()
        if self._unsat:
            return SolveResult(UNSAT, stats=run, failed_assumptions=[])
        for lit in assumptions:
            self._ensure_var(abs(lit))
        assume_level = len(assumptions)
        restarts = luby_sequence(self.restart_base)
        budget = next(restarts)
        conflicts_here = 0
        base = SolverStats()
        base.merge(self.stats)
        tracer = self.tracer
        if tracer is not None:
            tracer.solve_begin(self.tracer_id, len(assumptions))
            props_mark = self.stats.propagations
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                if self.decision_level == 0:
                    self._unsat = True
                    result = self._finish(UNSAT, start, base, run)
                    result.failed_assumptions = []
                    return result
                learnt, bt, lbd = self._analyze(conflict)
                self._backtrack(bt)
                self._record_learnt(learnt, lbd)
                self.vsids.decay()
                self._on_conflict()
                if tracer is not None:
                    tracer.conflict(self.tracer_id, bt, lbd,
                                    self.stats.propagations - props_mark)
                    props_mark = self.stats.propagations
                if conflict_limit is not None and conflicts_here >= conflict_limit:
                    return self._finish(UNKNOWN, start, base, run)
                if should_stop is not None and (conflicts_here & 63) == 0:
                    if should_stop():
                        return self._finish(UNKNOWN, start, base, run)
                if time_limit is not None and (self.stats.conflicts & 127) == 0:
                    # repro: allow[RPR007] engine hot loop: no per-conflict Deadline call
                    if time.monotonic() - start > time_limit:
                        return self._finish(UNKNOWN, start, base, run)
                if conflicts_here >= budget:
                    budget = conflicts_here + next(restarts)
                    self.stats.restarts += 1
                    if tracer is not None:
                        tracer.restart(self.tracer_id, conflicts_here)
                    # Assumption-aware restart: keep the assumption
                    # prefix (and everything it implied) assigned.
                    self._backtrack(min(assume_level, self.decision_level))
                if len(self.learned) > self.max_learned:
                    self._reduce_db()
                continue
            # No conflict: re-establish assumptions, then decide.
            if self.decision_level < assume_level:
                lit = assumptions[self.decision_level]
                value = self.value_of(lit)
                if value is False:
                    core = self._analyze_final(lit, assumptions)
                    result = self._finish(UNSAT, start, base, run)
                    result.failed_assumptions = core
                    return result
                self.trail_lim.append(len(self.trail))
                if value is None:
                    self._enqueue(lit, None)
                continue
            var = self.vsids.pop_unassigned(lambda v: self.values[v] != 0)
            if var == 0:
                model = {v: self.values[v] > 0 for v in range(1, self.num_vars + 1)}
                result = self._finish(SAT, start, base, run)
                result.model = model
                return result
            self.stats.decisions += 1
            if (self.stats.decisions & 1023) == 0 and (
                (time_limit is not None
                 # repro: allow[RPR007] engine hot loop: no per-decision Deadline call
                 and time.monotonic() - start > time_limit)
                or (should_stop is not None and should_stop())
            ):
                # The popped decision variable was never enqueued, so
                # _finish's backtrack will not re-push it — do it here
                # or it would be lost to every later solve() call.
                self.vsids.push(var)
                return self._finish(UNKNOWN, start, base, run)
            self.trail_lim.append(len(self.trail))
            lit = var if self.saved_phase[var] else -var
            self._enqueue(lit, None)

    def _on_conflict(self) -> None:
        """Hook for subclasses (e.g. extra learning)."""

    def _finish(
        self, status: str, start: float, base: SolverStats, run: SolverStats
    ) -> SolveResult:
        self._backtrack(0)
        run.conflicts = self.stats.conflicts - base.conflicts
        run.decisions = self.stats.decisions - base.decisions
        run.propagations = self.stats.propagations - base.propagations
        run.restarts = self.stats.restarts - base.restarts
        run.learned = self.stats.learned - base.learned
        run.deleted = self.stats.deleted - base.deleted
        run.time_seconds = time.monotonic() - start
        if self.tracer is not None:
            self.tracer.solve_end(
                self.tracer_id, status, run.conflicts, run.decisions,
                run.propagations, run.restarts, run.learned, run.deleted)
        registry = get_registry()
        registry.inc("solver_solve_total", status=status)
        registry.inc("solver_conflicts_total", run.conflicts)
        registry.inc("solver_decisions_total", run.decisions)
        registry.inc("solver_propagations_total", run.propagations)
        registry.inc("solver_restarts_total", run.restarts)
        registry.observe("solver_solve_conflicts", run.conflicts)
        registry.observe_seconds("solver_solve_seconds", run.time_seconds)
        return SolveResult(status, stats=run)


def solve_formula(
    formula: Formula,
    assumptions: Sequence[int] = (),
    time_limit: Optional[float] = None,
    conflict_limit: Optional[int] = None,
) -> SolveResult:
    """One-shot satisfiability check of a CNF-only formula."""
    solver = CDCLSolver(num_vars=formula.num_vars)
    if not solver.add_formula(formula):
        return SolveResult(UNSAT)
    return solver.solve(
        assumptions=assumptions, time_limit=time_limit, conflict_limit=conflict_limit
    )
