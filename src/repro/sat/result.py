"""Solver result types shared by the SAT, PB and ILP engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

SAT = "SAT"
UNSAT = "UNSAT"
UNKNOWN = "UNKNOWN"  # resource limit (time / conflicts) reached
# A verified coloring whose optimality was *not* proved: the answer an
# optimization run degrades to when its budget expires mid-descent.
# Engines report SAT for best-so-far; the api layer maps it to FEASIBLE.
FEASIBLE = "FEASIBLE"


@dataclass
class SolverStats:
    """Search statistics, reported by every solver."""

    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    restarts: int = 0
    learned: int = 0
    deleted: int = 0
    time_seconds: float = 0.0

    def merge(self, other: "SolverStats") -> None:
        """Accumulate another run's statistics into this one."""
        self.decisions += other.decisions
        self.conflicts += other.conflicts
        self.propagations += other.propagations
        self.restarts += other.restarts
        self.learned += other.learned
        self.deleted += other.deleted
        self.time_seconds += other.time_seconds


@dataclass
class SolveResult:
    """Outcome of a decision query.

    ``status`` is one of :data:`SAT`, :data:`UNSAT`, :data:`UNKNOWN`.
    ``model`` maps every variable to a bool when status is SAT.

    ``failed_assumptions`` is populated on UNSAT answers of
    assumption-based queries: it is a subset of the assumption literals
    that is already jointly unsatisfiable with the formula (the final
    conflict clause expressed over the assumptions, MiniSat-style).  An
    empty list means the formula is unsatisfiable regardless of the
    assumptions; ``None`` means the query did not produce a core
    (SAT / UNKNOWN results).
    """

    status: str
    model: Optional[Dict[int, bool]] = None
    stats: SolverStats = field(default_factory=SolverStats)
    failed_assumptions: Optional[List[int]] = None

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT

    @property
    def is_unknown(self) -> bool:
        return self.status == UNKNOWN


@dataclass
class OptimizeResult:
    """Outcome of an optimization query (0-1 ILP with objective).

    ``status`` semantics:

    * ``"OPTIMAL"`` — ``best_value``/``best_model`` hold a proved optimum.
    * :data:`SAT` — feasible solution found but optimality not proved
      (resource limit hit during tightening).
    * :data:`UNSAT` — constraints are infeasible.
    * :data:`UNKNOWN` — limit hit before any feasible solution was found.
    """

    status: str
    best_value: Optional[int] = None
    best_model: Optional[Dict[int, bool]] = None
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_optimal(self) -> bool:
        return self.status == "OPTIMAL"

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT

    @property
    def is_unknown(self) -> bool:
        return self.status == UNKNOWN

    @property
    def solved(self) -> bool:
        """True when the run finished with a definitive answer."""
        return self.status in ("OPTIMAL", UNSAT)

OPTIMAL = "OPTIMAL"
