"""The Luby restart sequence.

Modern CDCL solvers (Chaff descendants, which the paper's PB solvers
are) restart after a number of conflicts drawn from the Luby sequence
1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... scaled by a base interval.  The
sequence is optimal (up to constants) for speeding up Las Vegas
algorithms with unknown runtime distribution.
"""

from __future__ import annotations

from typing import Iterator


def luby(i: int) -> int:
    """Return the i-th element (1-based) of the Luby sequence."""
    if i <= 0:
        raise ValueError("Luby sequence is 1-based")
    # The sequence is self-similar: block k ends at index 2^k - 1 with
    # value 2^(k-1); indices inside a block repeat the earlier sequence.
    k = 1
    while (1 << k) - 1 < i:
        k += 1
    while (1 << k) - 1 != i:
        i -= (1 << (k - 1)) - 1
        k = 1
        while (1 << k) - 1 < i:
            k += 1
    return 1 << (k - 1)


def luby_sequence(base: int) -> Iterator[int]:
    """Yield restart budgets ``base * luby(i)`` for i = 1, 2, 3, ..."""
    if base <= 0:
        raise ValueError("restart base must be positive")
    i = 1
    while True:
        yield base * luby(i)
        i += 1
