"""VSIDS decision heuristic (variable state independent decaying sum).

The heuristic of Chaff (Moskewicz et al. 2001), used by every solver
compared in the paper: each variable carries an activity score bumped
when it participates in a conflict; scores decay geometrically; the
unassigned variable of highest activity is picked at each decision.

Implemented as the usual exponential-bump variant: instead of decaying
all scores, the bump amount grows by ``1/decay`` each conflict and all
scores are rescaled when they overflow a threshold.  Selection uses a
lazy max-heap: stale entries are skipped on pop.
"""

from __future__ import annotations

import heapq
from typing import List


class VSIDS:
    """Activity-ordered variable picker over variables ``1..num_vars``."""

    RESCALE_LIMIT = 1e100

    def __init__(self, num_vars: int, decay: float = 0.95):
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.activity: List[float] = [0.0] * (num_vars + 1)
        self._heap: List = [(-0.0, v) for v in range(1, num_vars + 1)]
        heapq.heapify(self._heap)
        self._inc = 1.0
        self._decay = decay

    def grow(self, num_vars: int) -> None:
        """Extend to cover variables up to ``num_vars``."""
        for v in range(len(self.activity), num_vars + 1):
            self.activity.append(0.0)
            heapq.heappush(self._heap, (-0.0, v))

    def bump(self, var: int) -> None:
        """Increase ``var``'s activity and requeue it."""
        act = self.activity[var] + self._inc
        if act > self.RESCALE_LIMIT:
            scale = 1.0 / self.RESCALE_LIMIT
            self.activity = [a * scale for a in self.activity]
            self._inc *= scale
            act = self.activity[var] + self._inc
        self.activity[var] = act
        heapq.heappush(self._heap, (-act, var))

    def decay(self) -> None:
        """Apply one conflict's worth of geometric decay."""
        self._inc /= self._decay

    def push(self, var: int) -> None:
        """Requeue a variable that became unassigned on backtrack."""
        heapq.heappush(self._heap, (-self.activity[var], var))

    def pop_unassigned(self, is_assigned) -> int:
        """Pop the highest-activity variable for which ``is_assigned(v)`` is False.

        Returns 0 when every variable is assigned.
        """
        heap = self._heap
        while heap:
            negact, var = heapq.heappop(heap)
            if is_assigned(var):
                continue
            if -negact != self.activity[var]:
                # Stale entry: the variable was bumped since this entry
                # was pushed; a fresher entry is elsewhere in the heap.
                heapq.heappush(heap, (-self.activity[var], var))
                if heap[0][1] == var:
                    heapq.heappop(heap)
                    return var
                continue
            return var
        return 0
