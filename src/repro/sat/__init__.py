"""CDCL SAT solving: the engine underneath every solver in the library."""

from .brute import brute_force_count, brute_force_optimize, brute_force_solve
from .cdcl import CDCLSolver, WClause, solve_formula
from .factory import new_solver, reset_solver_factory, set_solver_factory
from .luby import luby, luby_sequence
from .preprocessing import (
    PreprocessResult,
    SimplifyStats,
    preprocess,
    simplify_formula,
    subsume_clauses,
)
from .result import (
    OPTIMAL,
    SAT,
    UNKNOWN,
    UNSAT,
    OptimizeResult,
    SolveResult,
    SolverStats,
)
from .vsids import VSIDS

__all__ = [
    "CDCLSolver",
    "OPTIMAL",
    "OptimizeResult",
    "PreprocessResult",
    "SAT",
    "SimplifyStats",
    "SolveResult",
    "SolverStats",
    "UNKNOWN",
    "UNSAT",
    "VSIDS",
    "WClause",
    "brute_force_count",
    "brute_force_optimize",
    "brute_force_solve",
    "luby",
    "luby_sequence",
    "new_solver",
    "preprocess",
    "reset_solver_factory",
    "set_solver_factory",
    "simplify_formula",
    "solve_formula",
    "subsume_clauses",
]
