"""CNF preprocessing: the simplifications SAT solvers run before search.

The paper's solvers (Chaff lineage) resolve unit and pure literals
up-front; SBPs in particular create many unit clauses (the SC
construction is *only* unit clauses) that preprocessing folds into the
formula.  Implemented here:

* canonical intake: tautologies and duplicate clauses are dropped
  before any other rule runs (a tautology is never a valid subsumer —
  resolving on it returns the other clause unchanged);
* unit propagation to fixpoint (with the implied assignment returned);
* pure-literal elimination;
* clause subsumption and self-subsuming resolution (strengthening),
  driven by an occurrence-list index rather than a pairwise scan, with
  strengthened clauses re-queued so no opportunity is missed;
* bounded variable elimination (NiVER-style: a variable is resolved
  away when doing so does not grow the clause set), with the removed
  clauses saved so models can be reconstructed.

``preprocess`` runs them to a joint fixpoint and reports what it did.
The result is equisatisfiable, *not* equivalent: pure-literal
elimination and variable elimination discard models.  A model of the
reduced formula is lifted to a model of the original formula with
:meth:`PreprocessResult.extend_model`, which applies the forced
assignment and replays the variable-elimination stack in reverse.

``simplify_formula`` is the restricted, *model-preserving* subset
(tautology/duplicate removal, unit propagation with the units kept,
subsumption, strengthening) that is safe to run on mixed CNF+PB
formulas before handing them to the PB/ILP optimizers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.formula import Formula
from ..core.literals import var_of
from ..core.pbconstraint import PBConstraint


@dataclass
class PreprocessResult:
    """Outcome of CNF preprocessing."""

    formula: Optional[Formula]  # None when UNSAT was derived
    forced: Dict[int, bool] = field(default_factory=dict)
    num_vars: int = 0
    units_propagated: int = 0
    pure_eliminated: int = 0
    subsumed: int = 0
    strengthened: int = 0
    tautologies_removed: int = 0
    duplicates_removed: int = 0
    variables_eliminated: int = 0
    # (var, clauses containing it at elimination time), in elimination
    # order; extend_model replays the stack in reverse.
    eliminated: List[Tuple[int, List[Tuple[int, ...]]]] = field(default_factory=list)

    @property
    def is_unsat(self) -> bool:
        return self.formula is None

    def extend_model(self, model: Optional[Dict[int, bool]] = None) -> Dict[int, bool]:
        """Lift a model of the reduced formula to one of the original.

        Applies the forced assignment, then replays the variable
        elimination stack in reverse: an eliminated variable is set so
        that every clause it was resolved out of is satisfied (such a
        value always exists when the rest of the assignment satisfies
        the resolvents).  Variables constrained by nothing default to
        False.  The returned assignment is total over ``num_vars``.
        """
        full: Dict[int, bool] = dict(model) if model else {}
        full.update(self.forced)
        # Total assignment first: the replay below may only see assigned
        # variables, otherwise two clauses can appear to demand opposite
        # phases (vars absent from the reduced formula are free).
        for v in range(1, self.num_vars + 1):
            full.setdefault(v, False)
        for var, saved in reversed(self.eliminated):
            required: Optional[bool] = None
            for clause in saved:
                phase: Optional[bool] = None
                satisfied = False
                for lit in clause:
                    v = var_of(lit)
                    if v == var:
                        phase = lit > 0
                        continue
                    if (lit > 0) == full.get(v, False):
                        satisfied = True
                        break
                if not satisfied and phase is not None:
                    required = phase
            if required is not None:
                full[var] = required
        return full


def _canonical_intake(
    raw: List[Tuple[int, ...]],
) -> Tuple[List[Tuple[int, ...]], int, int]:
    """Drop tautologies and duplicate clauses; returns (clauses, #taut, #dup)."""
    clauses: List[Tuple[int, ...]] = []
    seen: Set[Tuple[int, ...]] = set()
    tautologies = 0
    duplicates = 0
    for literals in raw:
        unique = frozenset(literals)
        if any(-lit in unique for lit in unique):
            tautologies += 1
            continue
        canonical = tuple(sorted(unique, key=lambda l: (var_of(l), l < 0)))
        if canonical in seen:
            duplicates += 1
            continue
        seen.add(canonical)
        clauses.append(canonical)
    return clauses, tautologies, duplicates


def _propagate_units(
    clauses: List[Tuple[int, ...]], forced: Dict[int, bool]
) -> Tuple[Optional[List[Tuple[int, ...]]], int]:
    """Resolve unit clauses to fixpoint; returns (clauses, #units)."""
    count = 0
    while True:
        units = [c[0] for c in clauses if len(c) == 1]
        if not units:
            return clauses, count
        for lit in units:
            var = var_of(lit)
            want = lit > 0
            if var in forced and forced[var] != want:
                return None, count
            if var not in forced:
                forced[var] = want
                count += 1
        next_clauses: List[Tuple[int, ...]] = []
        for clause in clauses:
            out: List[int] = []
            satisfied = False
            for lit in clause:
                value = forced.get(var_of(lit))
                if value is None:
                    out.append(lit)
                elif (lit > 0) == value:
                    satisfied = True
                    break
            if satisfied:
                continue
            if not out:
                return None, count
            next_clauses.append(tuple(out))
        clauses = next_clauses


def _eliminate_pure(
    clauses: List[Tuple[int, ...]],
    forced: Dict[int, bool],
    frozen: frozenset = frozenset(),
) -> Tuple[List[Tuple[int, ...]], int]:
    """Fix pure literals (appearing in one phase only) to satisfy them.

    ``frozen`` variables are exempt: a later ``solve`` call may assume
    them in either phase, so fixing one to its pure phase (and deleting
    the clauses it satisfies) would silently change those queries'
    answers.  Activation selectors are the canonical example — they are
    pure (guards only mention them positively) yet every assumption
    negates them.
    """
    polarity: Dict[int, Set[bool]] = {}
    for clause in clauses:
        for lit in clause:
            polarity.setdefault(var_of(lit), set()).add(lit > 0)
    pure = {
        var: phases.pop()
        for var, phases in polarity.items()
        if len(phases) == 1 and var not in forced and var not in frozen
    }
    if not pure:
        return clauses, 0
    for var, phase in pure.items():
        forced[var] = phase
    kept = []
    for clause in clauses:
        if any(var_of(l) in pure and (l > 0) == pure[var_of(l)] for l in clause):
            continue
        kept.append(clause)
    return kept, len(pure)


def subsume_clauses(
    clauses: List[Tuple[int, ...]],
) -> Tuple[List[Tuple[int, ...]], int, int]:
    """Subsumption + self-subsuming resolution via an occurrence index.

    Each clause is indexed under every literal it contains; a clause
    looks for its subsumption victims only among the occurrences of its
    least-frequent literal, and for strengthening victims among the
    occurrences of each literal's complement.  Strengthened clauses are
    re-queued, so a clause shrunk mid-pass still subsumes everything it
    can (the sorted-once pairwise loop missed those).  Tautological
    input clauses are dropped: resolving on a tautology returns the
    other clause unchanged, so treating one as a subsumer or
    strengthener is unsound.

    Returns ``(kept, subsumed, strengthened)``.  Strengthening can
    produce unit or empty clauses; callers must handle both.
    """
    work: List[Tuple[int, ...]] = sorted(
        {c for c in clauses if not any(-l in c for l in c)},
        key=lambda c: (len(c), c),
    )
    sets: List[frozenset] = [frozenset(c) for c in work]
    alive = [True] * len(work)
    occ: Dict[int, Set[int]] = {}
    for idx, clause in enumerate(work):
        for lit in clause:
            occ.setdefault(lit, set()).add(idx)

    queue = deque(range(len(work)))
    queued = [True] * len(work)
    subsumed = 0
    strengthened = 0

    def kill(idx: int) -> None:
        alive[idx] = False
        for lit in work[idx]:
            occ.get(lit, set()).discard(idx)

    while queue:
        i = queue.popleft()
        queued[i] = False
        if not alive[i]:
            continue
        clause = work[i]
        this = sets[i]
        if not clause:
            continue  # empty clause: reported to the caller via `kept`
        # Forward subsumption: kill strict supersets of `clause`.
        pivot = min(clause, key=lambda l: len(occ.get(l, ())))
        for j in list(occ.get(pivot, ())):
            if j == i or not alive[j] or len(sets[j]) < len(this):
                continue
            if this <= sets[j]:
                kill(j)
                subsumed += 1
        # Self-subsuming resolution: C = A|x strengthens D = B|~x with
        # A <= B by dropping ~x from D.
        for lit in clause:
            rest = this - {lit}
            for j in list(occ.get(-lit, ())):
                if j == i or not alive[j] or len(sets[j]) < len(this):
                    continue
                if rest <= sets[j]:
                    occ[-lit].discard(j)
                    shrunk = tuple(l for l in work[j] if l != -lit)
                    work[j] = shrunk
                    sets[j] = frozenset(shrunk)
                    strengthened += 1
                    if not queued[j]:
                        queue.append(j)
                        queued[j] = True
    kept = [c for c, keep in zip(work, alive) if keep]
    return kept, subsumed, strengthened


_subsume = subsume_clauses  # internal alias kept for older call sites


def _eliminate_variables(
    clauses: List[Tuple[int, ...]],
    stack: List[Tuple[int, List[Tuple[int, ...]]]],
    occ_limit: int = 12,
    frozen: frozenset = frozenset(),
) -> Tuple[Optional[List[Tuple[int, ...]]], int]:
    """Bounded variable elimination (NiVER): resolve out a variable when
    the non-tautological resolvents do not outnumber the clauses removed.

    Only variables with at most ``occ_limit`` total occurrences are
    tried — the O(1) gate keeps the pass linear-ish on large formulas,
    and high-occurrence variables almost never eliminate without growth
    anyway.  ``frozen`` variables are never candidates: incremental
    callers assume them per query (or add clauses over them later), so
    resolving them out of the formula would break those calls.
    Eliminated variables and their clauses are pushed on ``stack`` for
    model reconstruction.  Returns ``(clauses, #eliminated)``, or
    ``(None, #eliminated)`` when an empty resolvent proves UNSAT.
    """
    store: Dict[int, Tuple[int, ...]] = dict(enumerate(clauses))
    occ: Dict[int, Set[int]] = {}
    for idx, clause in store.items():
        for lit in clause:
            occ.setdefault(lit, set()).add(idx)
    next_id = len(store)
    eliminated = 0

    def cost(var: int) -> int:
        return len(occ.get(var, ())) * len(occ.get(-var, ()))

    candidates = sorted(
        {var_of(l) for c in store.values() for l in c} - frozen,
        key=lambda v: (cost(v), v),
    )
    for var in candidates:
        if len(occ.get(var, ())) + len(occ.get(-var, ())) > occ_limit:
            continue
        pos = sorted(occ.get(var, ()))
        neg = sorted(occ.get(-var, ()))
        if not pos or not neg:
            continue  # pure or absent: pure-literal elimination's job
        budget = len(pos) + len(neg)
        # Input clauses are tautology-free, so a resolvent is
        # tautological iff a literal of the positive side clashes with
        # one of the negative side — a single C-level set intersection.
        pos_sets = [frozenset(store[p]) - {var} for p in pos]
        neg_sets = [frozenset(store[n]) - {-var} for n in neg]
        neg_complements = [frozenset(-l for l in s) for s in neg_sets]
        resolvents: Set[frozenset] = set()
        too_big = False
        for pset in pos_sets:
            for nset, ncomp in zip(neg_sets, neg_complements):
                if pset & ncomp:
                    continue  # tautological resolvent
                resolvents.add(pset | nset)
                if len(resolvents) > budget:
                    too_big = True
                    break
            if too_big:
                break
        if too_big:
            continue
        removed = [store[idx] for idx in pos + neg]
        if frozenset() in resolvents:
            stack.append((var, removed))
            return None, eliminated + 1
        for idx in pos + neg:
            for lit in store[idx]:
                occ.get(lit, set()).discard(idx)
            del store[idx]
        ordered = sorted(
            tuple(sorted(r, key=lambda l: (var_of(l), l < 0))) for r in resolvents
        )
        for resolvent in ordered:
            store[next_id] = resolvent
            for lit in resolvent:
                occ.setdefault(lit, set()).add(next_id)
            next_id += 1
        stack.append((var, removed))
        eliminated += 1
    return [store[idx] for idx in sorted(store)], eliminated


def preprocess(
    formula: Formula,
    max_rounds: int = 10,
    eliminate: bool = True,
    elimination_occ_limit: int = 12,
    frozen: Iterable[int] = (),
) -> PreprocessResult:
    """Simplify a CNF-only formula; PB constraints are rejected.

    Returns an equisatisfiable formula plus the forced assignment, or
    ``formula=None`` when the input is UNSAT.  Models of the reduced
    formula are lifted to models of the input with
    :meth:`PreprocessResult.extend_model`.  ``eliminate=False`` turns
    bounded variable elimination off (useful when callers want the
    reduced formula to use only implied clauses of the input).

    ``frozen`` names variables an incremental caller will later assume
    (or add clauses over): they are exempt from pure-literal elimination
    and variable elimination, and any top-level unit derived on one is
    *re-emitted as a unit clause* in the output — the solver must still
    learn the fact at level 0 so a contradicting assumption fails with a
    core, instead of silently "succeeding" on a formula the fact was
    substituted out of.
    """
    if formula.pb_constraints:
        raise ValueError("preprocess handles CNF-only formulas")
    frozen_set = frozenset(frozen)
    result = PreprocessResult(formula=None, num_vars=formula.num_vars)
    clauses, tautologies, duplicates = _canonical_intake(
        [c.literals for c in formula.clauses]
    )
    result.tautologies_removed = tautologies
    result.duplicates_removed = duplicates
    forced: Dict[int, bool] = {}
    for _ in range(max_rounds):
        clauses_or_none, units = _propagate_units(clauses, forced)
        result.units_propagated += units
        if clauses_or_none is None:
            return result  # UNSAT
        clauses = clauses_or_none
        clauses, pure = _eliminate_pure(clauses, forced, frozen_set)
        result.pure_eliminated += pure
        clauses, subsumed, strengthened = subsume_clauses(clauses)
        result.subsumed += subsumed
        result.strengthened += strengthened
        if any(not c for c in clauses):
            return result  # strengthening emptied a clause: UNSAT
        removed = 0
        if eliminate:
            clauses_or_none, removed = _eliminate_variables(
                clauses, result.eliminated,
                occ_limit=elimination_occ_limit, frozen=frozen_set,
            )
            result.variables_eliminated += removed
            if clauses_or_none is None:
                return result  # empty resolvent: UNSAT
            clauses = clauses_or_none
        if not (units or pure or subsumed or strengthened or removed):
            break
    out = Formula(num_vars=formula.num_vars)
    for var in sorted(frozen_set):
        if var in forced:
            out.add_clause([var if forced[var] else -var])
    for clause in clauses:
        out.add_clause(clause)
    result.formula = out
    result.forced = forced
    return result


@dataclass
class SimplifyStats:
    """What :func:`simplify_formula` did to the clause database."""

    clauses_before: int = 0
    clauses_after: int = 0
    tautologies_removed: int = 0
    duplicates_removed: int = 0
    units_propagated: int = 0
    subsumed: int = 0
    strengthened: int = 0
    pb_tightened: int = 0
    pb_satisfied: int = 0

    def merge(self, other: "SimplifyStats") -> None:
        """Accumulate another run's counters (clause totals included)."""
        self.clauses_before += other.clauses_before
        self.clauses_after += other.clauses_after
        self.tautologies_removed += other.tautologies_removed
        self.duplicates_removed += other.duplicates_removed
        self.units_propagated += other.units_propagated
        self.subsumed += other.subsumed
        self.strengthened += other.strengthened
        self.pb_tightened += other.pb_tightened
        self.pb_satisfied += other.pb_satisfied


def substitute_forced_into_pb(
    constraints, forced: Dict[int, bool], stats: Optional[SimplifyStats] = None
):
    """Substitute a forced assignment directly into PB constraints.

    A term whose literal is forced true moves its coefficient onto the
    bound; a term forced false contributes nothing and is dropped.  The
    result is the tighter, smaller constraint set the PB engines load
    directly, instead of every solver re-deriving the substitution from
    re-added unit constraints.  Constraints that become variable-free
    are checked outright: a satisfied one is dropped, a violated one
    proves UNSAT (``None`` is returned).
    """
    out = []
    for pb in constraints:
        new_terms = []
        bound = pb.bound
        changed = False
        for coef, lit in pb.terms:
            value = forced.get(var_of(lit))
            if value is None:
                new_terms.append((coef, lit))
                continue
            changed = True
            if (lit > 0) == value:
                bound -= coef
        if not changed:
            out.append(pb)
            continue
        if stats is not None:
            stats.pb_tightened += 1
        if not new_terms:
            lhs = 0
            ok = (
                lhs >= bound if pb.relation == ">="
                else lhs <= bound if pb.relation == "<="
                else lhs == bound
            )
            if not ok:
                return None
            if stats is not None:
                stats.pb_satisfied += 1
            continue
        out.append(PBConstraint(new_terms, pb.relation, bound))
    return out


def simplify_formula(
    formula: Formula, max_rounds: int = 10
) -> Tuple[Optional[Formula], SimplifyStats]:
    """Model-preserving clause simplification for mixed CNF+PB formulas.

    Runs the subset of the preprocessing rules that keeps the formula
    *logically equivalent* over the original variables — tautology and
    duplicate removal, unit propagation (the derived units stay in the
    output as unit clauses so every solver still sees them), clause
    subsumption and self-subsuming resolution.  Pure-literal and
    variable elimination are deliberately excluded: variables shared
    with PB constraints or the objective cannot be discarded.

    Forced literals (from unit propagation) are additionally
    *substituted into the PB constraints*, tightening their degrees and
    dropping dead terms, instead of leaving every solver to re-derive
    the substitution from the re-emitted unit clauses.  The units are
    still kept in the output, so the conjunction remains logically
    equivalent over the original variables and models decode unchanged.

    The objective and ``num_vars`` are carried over untouched.  Returns
    ``(formula, stats)``; the formula is ``None`` when the clause
    database (or a PB constraint under the forced assignment) is UNSAT.
    """
    stats = SimplifyStats(clauses_before=len(formula.clauses))
    clauses, tautologies, duplicates = _canonical_intake(
        [c.literals for c in formula.clauses]
    )
    stats.tautologies_removed = tautologies
    stats.duplicates_removed = duplicates
    forced: Dict[int, bool] = {}
    for _ in range(max_rounds):
        clauses_or_none, units = _propagate_units(clauses, forced)
        stats.units_propagated += units
        if clauses_or_none is None:
            return None, stats
        clauses = clauses_or_none
        clauses, subsumed, strengthened = subsume_clauses(clauses)
        stats.subsumed += subsumed
        stats.strengthened += strengthened
        if any(not c for c in clauses):
            return None, stats
        if not (units or subsumed or strengthened):
            break
    pb_constraints = substitute_forced_into_pb(
        formula.pb_constraints, forced, stats
    )
    if pb_constraints is None:
        return None, stats
    out = Formula(num_vars=formula.num_vars)
    for var in sorted(forced):
        out.add_clause([var if forced[var] else -var])
    for clause in clauses:
        out.add_clause(clause)
    out.pb_constraints = pb_constraints
    out.objective = formula.objective
    out.objective_sense = formula.objective_sense
    stats.clauses_after = len(out.clauses)
    return out, stats
