"""CNF preprocessing: the simplifications SAT solvers run before search.

The paper's solvers (Chaff lineage) resolve unit and pure literals
up-front; SBPs in particular create many unit clauses (the SC
construction is *only* unit clauses) that preprocessing folds into the
formula.  Implemented here:

* unit propagation to fixpoint (with the implied assignment returned);
* pure-literal elimination;
* clause subsumption (forward, signature-based);
* self-subsuming resolution (strengthening).

``preprocess`` runs them to a joint fixpoint and reports what it did.
The result is equisatisfiable — models extend the returned forced
assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.clause import Clause
from ..core.formula import Formula
from ..core.literals import var_of


@dataclass
class PreprocessResult:
    """Outcome of CNF preprocessing."""

    formula: Optional[Formula]  # None when UNSAT was derived
    forced: Dict[int, bool] = field(default_factory=dict)
    units_propagated: int = 0
    pure_eliminated: int = 0
    subsumed: int = 0
    strengthened: int = 0

    @property
    def is_unsat(self) -> bool:
        return self.formula is None


def _propagate_units(
    clauses: List[Tuple[int, ...]], forced: Dict[int, bool]
) -> Tuple[Optional[List[Tuple[int, ...]]], int]:
    """Resolve unit clauses to fixpoint; returns (clauses, #units)."""
    count = 0
    while True:
        units = [c[0] for c in clauses if len(c) == 1]
        if not units:
            return clauses, count
        for lit in units:
            var = var_of(lit)
            want = lit > 0
            if var in forced and forced[var] != want:
                return None, count
            if var not in forced:
                forced[var] = want
                count += 1
        next_clauses: List[Tuple[int, ...]] = []
        for clause in clauses:
            out: List[int] = []
            satisfied = False
            for lit in clause:
                value = forced.get(var_of(lit))
                if value is None:
                    out.append(lit)
                elif (lit > 0) == value:
                    satisfied = True
                    break
            if satisfied:
                continue
            if not out:
                return None, count
            next_clauses.append(tuple(out))
        clauses = next_clauses


def _eliminate_pure(
    clauses: List[Tuple[int, ...]], forced: Dict[int, bool]
) -> Tuple[List[Tuple[int, ...]], int]:
    """Fix pure literals (appearing in one phase only) to satisfy them."""
    polarity: Dict[int, Set[bool]] = {}
    for clause in clauses:
        for lit in clause:
            polarity.setdefault(var_of(lit), set()).add(lit > 0)
    pure = {
        var: phases.pop()
        for var, phases in polarity.items()
        if len(phases) == 1 and var not in forced
    }
    if not pure:
        return clauses, 0
    for var, phase in pure.items():
        forced[var] = phase
    kept = []
    for clause in clauses:
        if any(var_of(l) in pure and (l > 0) == pure[var_of(l)] for l in clause):
            continue
        kept.append(clause)
    return kept, len(pure)


def _signature(clause: Tuple[int, ...]) -> int:
    sig = 0
    for lit in clause:
        sig |= 1 << (var_of(lit) & 63)
    return sig


def _subsume(clauses: List[Tuple[int, ...]]) -> Tuple[List[Tuple[int, ...]], int, int]:
    """Remove subsumed clauses; strengthen via self-subsuming resolution."""
    ordered = sorted(set(clauses), key=len)
    sigs = [_signature(c) for c in ordered]
    sets = [frozenset(c) for c in ordered]
    removed = [False] * len(ordered)
    subsumed = 0
    strengthened = 0
    for i in range(len(ordered)):
        if removed[i]:
            continue
        for j in range(i + 1, len(ordered)):
            if removed[j] or len(ordered[j]) < len(ordered[i]):
                continue
            if sigs[i] & ~sigs[j]:
                continue
            if sets[i] <= sets[j]:
                removed[j] = True
                subsumed += 1
                continue
            # Self-subsuming resolution: C = A|x, D = B|~x with A <= B
            # lets D drop ~x.
            diff = sets[i] - sets[j]
            if len(diff) == 1:
                lit = next(iter(diff))
                if -lit in sets[j] and (sets[i] - {lit}) <= sets[j]:
                    new_clause = tuple(l for l in ordered[j] if l != -lit)
                    ordered[j] = new_clause
                    sets[j] = frozenset(new_clause)
                    sigs[j] = _signature(new_clause)
                    strengthened += 1
    kept = [c for c, gone in zip(ordered, removed) if not gone]
    return kept, subsumed, strengthened


def preprocess(formula: Formula, max_rounds: int = 10) -> PreprocessResult:
    """Simplify a CNF-only formula; PB constraints are rejected.

    Returns an equisatisfiable formula plus the forced assignment, or
    ``formula=None`` when the input is UNSAT.
    """
    if formula.pb_constraints:
        raise ValueError("preprocess handles CNF-only formulas")
    result = PreprocessResult(formula=None)
    clauses: List[Tuple[int, ...]] = [c.literals for c in formula.clauses]
    forced: Dict[int, bool] = {}
    for _ in range(max_rounds):
        before = (len(clauses), len(forced))
        clauses_or_none, units = _propagate_units(clauses, forced)
        result.units_propagated += units
        if clauses_or_none is None:
            return result  # UNSAT
        clauses = clauses_or_none
        clauses, pure = _eliminate_pure(clauses, forced)
        result.pure_eliminated += pure
        clauses, subsumed, strengthened = _subsume(clauses)
        result.subsumed += subsumed
        result.strengthened += strengthened
        if (len(clauses), len(forced)) == before and not (units or pure or subsumed or strengthened):
            break
    out = Formula(num_vars=formula.num_vars)
    for clause in clauses:
        if not clause:  # strengthening can in principle empty a clause
            return result
        out.add_clause(clause)
    result.formula = out
    result.forced = forced
    return result
