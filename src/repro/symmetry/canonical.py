"""Canonical labeling and isomorphism testing.

The individualization-refinement search in :mod:`.automorphism` visits
labeled leaves; picking the *minimum* certificate over all leaves gives
a canonical form — the other half of what Nauty computes.  Two graphs
are isomorphic iff their canonical certificates are equal, which gives
an isomorphism test used by the test suite to validate generators and
by the benchmark registry to check determinism.

This is exponential in the worst case (as is Nauty's); the graphs the
reproduction feeds it are small or highly refined.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..graphs.graph import Graph
from .permutation import Permutation
from .refinement import OrderedPartition, individualize, refine


def _certificate(graph: Graph, labeling: Sequence[int]) -> Tuple[Tuple[int, int], ...]:
    """Edge set under a labeling, as a sorted tuple (the leaf certificate)."""
    position = [0] * graph.num_vertices
    for pos, v in enumerate(labeling):
        position[v] = pos
    edges = []
    for u, v in graph.edges():
        a, b = position[u], position[v]
        edges.append((a, b) if a < b else (b, a))
    edges.sort()
    return tuple(edges)


def canonical_labeling(
    graph: Graph,
    colors: Optional[Sequence[int]] = None,
    node_limit: Optional[int] = None,
) -> List[int]:
    """A canonical labeling: vertex at canonical position i is result[i].

    Isomorphic graphs (with corresponding colors) produce labelings
    under which their edge sets coincide.  Raises ``RuntimeError`` if
    ``node_limit`` exhausts the search before any leaf is reached.
    """
    n = graph.num_vertices
    if n == 0:
        return []
    if colors is None:
        colors = [0] * n
    root = refine(graph, OrderedPartition.from_colors(colors))
    best: List[Optional[Tuple]] = [None]
    best_labeling: List[Optional[List[int]]] = [None]
    nodes = [0]

    def recurse(partition: OrderedPartition) -> None:
        if node_limit is not None and nodes[0] >= node_limit:
            return
        nodes[0] += 1
        target = partition.first_non_singleton()
        if target < 0:
            labeling = partition.labeling()
            certificate = _certificate(graph, labeling)
            if best[0] is None or certificate < best[0]:
                best[0] = certificate
                best_labeling[0] = labeling
            return
        for v in sorted(partition.cells[target]):
            child = refine(graph, individualize(partition, target, v), active=[target])
            recurse(child)

    recurse(root)
    if best_labeling[0] is None:
        raise RuntimeError("node limit exhausted before reaching a leaf")
    return best_labeling[0]


def canonical_form(
    graph: Graph,
    colors: Optional[Sequence[int]] = None,
    node_limit: Optional[int] = None,
) -> Tuple[Tuple[int, int], ...]:
    """The canonical edge-set certificate of a (colored) graph."""
    return _certificate(graph, canonical_labeling(graph, colors, node_limit))


def are_isomorphic(
    a: Graph,
    b: Graph,
    colors_a: Optional[Sequence[int]] = None,
    colors_b: Optional[Sequence[int]] = None,
) -> bool:
    """Isomorphism test via canonical forms (color-preserving)."""
    if a.num_vertices != b.num_vertices or a.num_edges != b.num_edges:
        return False
    ca = sorted(colors_a) if colors_a is not None else None
    cb = sorted(colors_b) if colors_b is not None else None
    if (ca is None) != (cb is None) or (ca is not None and ca != cb):
        return False
    return canonical_form(a, colors_a) == canonical_form(b, colors_b)


def isomorphism_mapping(a: Graph, b: Graph) -> Optional[Permutation]:
    """An explicit isomorphism a -> b, or None.

    ``mapping(v)`` gives the b-vertex corresponding to a-vertex v.
    """
    if a.num_vertices != b.num_vertices or a.num_edges != b.num_edges:
        return None
    lab_a = canonical_labeling(a)
    lab_b = canonical_labeling(b)
    if _certificate(a, lab_a) != _certificate(b, lab_b):
        return None
    image = [0] * a.num_vertices
    for pos in range(a.num_vertices):
        image[lab_a[pos]] = lab_b[pos]
    perm = Permutation(image)
    # Verify (refinement invariance should guarantee it; check anyway).
    for u, v in a.edges():
        if not b.has_edge(perm(u), perm(v)):
            return None
    return perm
