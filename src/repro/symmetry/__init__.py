"""Symmetry machinery: permutations, groups, refinement, automorphisms,
formula graphs and the detection pipeline (Saucy + GAP stand-ins)."""

from .automorphism import AutomorphismFinder, AutomorphismResult, find_automorphisms
from .canonical import (
    are_isomorphic,
    canonical_form,
    canonical_labeling,
    isomorphism_mapping,
)
from .detect import SymmetryReport, detect_symmetries
from .formula_graph import (
    FormulaGraph,
    build_formula_graph,
    formula_perm_is_consistent,
    graph_perm_to_formula_perm,
)
from .group import PermutationGroup, orbit_of, orbit_partition, orbits
from .permutation import Permutation
from .refinement import OrderedPartition, individualize, is_equitable, refine

__all__ = [
    "AutomorphismFinder",
    "AutomorphismResult",
    "FormulaGraph",
    "OrderedPartition",
    "Permutation",
    "PermutationGroup",
    "SymmetryReport",
    "are_isomorphic",
    "build_formula_graph",
    "canonical_form",
    "canonical_labeling",
    "isomorphism_mapping",
    "detect_symmetries",
    "find_automorphisms",
    "formula_perm_is_consistent",
    "graph_perm_to_formula_perm",
    "individualize",
    "is_equitable",
    "orbit_of",
    "orbit_partition",
    "orbits",
    "refine",
]
