"""CNF/PB formula -> colored graph, for symmetry detection.

Follows the construction of Aloul, Ramani, Markov & Sakallah (TCAD
2003, ASP-DAC 2004) with one safety refinement.  Vertices:

* one vertex per **literal** (positive and negative share a color, so
  phase-shift symmetries remain detectable);
* one vertex per **variable**, linked to its two literals.  The paper
  instead links the two literals directly and represents binary clauses
  the same way, accepting rare spurious symmetries from "circular
  implication chains"; the explicit variable vertex keeps Boolean
  consistency edges distinguishable from binary-clause edges, so *no*
  spurious symmetries arise (a sound strengthening — detected
  symmetries are exactly formula symmetries);
* one vertex per CNF clause of length >= 3, linked to its literals
  (binary clauses stay plain literal-literal edges, as in the paper);
* one vertex per PB constraint, colored by the constraint's *signature*
  (coefficient multiset, relation, bound), with per-coefficient-value
  "weight" vertices linking the constraint to its literals — literals
  with different coefficients must not be interchanged;
* one vertex for the objective (if any), treated like a PB constraint.

Any automorphism of this colored graph restricted to literal vertices
is a symmetry of the formula; variable vertices map consistently
because they are the unique common neighbors of literal pairs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.formula import Formula
from ..core.literals import lit_index
from ..graphs.graph import Graph
from .permutation import Permutation

# Color classes (small ints; PB signature classes are appended after).
COLOR_LITERAL = 0
COLOR_VARIABLE = 1
COLOR_CLAUSE = 2
_FIRST_DYNAMIC_COLOR = 3


@dataclass
class FormulaGraph:
    """The colored graph of a formula plus the vertex bookkeeping."""

    graph: Graph
    colors: List[int]
    num_literal_vertices: int  # literal vertices are 0 .. this-1

    def literal_vertex(self, lit: int) -> int:
        """Graph vertex of a literal (uses the dense literal index)."""
        return lit_index(lit)


def build_formula_graph(formula: Formula) -> FormulaGraph:
    """Construct the colored symmetry graph of a formula."""
    n = formula.num_vars
    graph = Graph(2 * n + n)  # literals then variable vertices
    colors: List[int] = [COLOR_LITERAL] * (2 * n) + [COLOR_VARIABLE] * n

    def var_vertex(var: int) -> int:
        return 2 * n + (var - 1)

    for var in range(1, n + 1):
        graph.add_edge(lit_index(var), var_vertex(var))
        graph.add_edge(lit_index(-var), var_vertex(var))

    for clause in formula.clauses:
        lits = clause.literals
        if len(lits) == 1:
            # Unit clauses pin their literal: give it a unique-ish color
            # by hanging a clause vertex off it (keeps construction
            # uniform and prevents the literal from being mapped away).
            cv = graph.add_vertex()
            colors.append(COLOR_CLAUSE)
            graph.add_edge(cv, lit_index(lits[0]))
        elif len(lits) == 2:
            graph.add_edge(lit_index(lits[0]), lit_index(lits[1]))
        else:
            cv = graph.add_vertex()
            colors.append(COLOR_CLAUSE)
            for lit in lits:
                graph.add_edge(cv, lit_index(lit))

    # PB constraints: one color class per signature.
    signature_color: Dict[Tuple, int] = {}
    weight_color: Dict[Tuple, int] = {}
    next_color = _FIRST_DYNAMIC_COLOR

    def color_for(table: Dict[Tuple, int], key: Tuple) -> int:
        nonlocal next_color
        if key not in table:
            table[key] = next_color
            next_color += 1
        return table[key]

    def add_weighted_node(terms, signature_key: Tuple) -> None:
        cv = graph.add_vertex()
        colors.append(color_for(signature_color, signature_key))
        by_coef: Dict[int, List[int]] = defaultdict(list)
        for coef, lit in terms:
            by_coef[coef].append(lit)
        for coef, lits in sorted(by_coef.items()):
            if len(by_coef) == 1:
                # Uniform coefficients: link literals directly.
                for lit in lits:
                    graph.add_edge(cv, lit_index(lit))
            else:
                wv = graph.add_vertex()
                colors.append(color_for(weight_color, ("w", coef)))
                graph.add_edge(cv, wv)
                for lit in lits:
                    graph.add_edge(wv, lit_index(lit))

    for pb in formula.pb_constraints:
        signature = (
            "pb",
            pb.relation,
            pb.bound,
            tuple(sorted(c for c, _ in pb.terms)),
        )
        add_weighted_node(pb.terms, signature)

    if formula.objective is not None and formula.objective:
        signature = (
            "obj",
            formula.objective_sense,
            tuple(sorted(c for c, _ in formula.objective)),
        )
        add_weighted_node(formula.objective, signature)

    return FormulaGraph(graph=graph, colors=colors, num_literal_vertices=2 * n)


def graph_perm_to_formula_perm(
    fgraph: FormulaGraph, perm: Permutation
) -> Permutation:
    """Restrict a formula-graph automorphism to the literal vertices.

    Returns a permutation over literal indices (degree ``2 * num_vars``).
    Raises ``ValueError`` if the automorphism maps a literal vertex
    outside the literal block (cannot happen for color-preserving
    automorphisms; kept as a guard).
    """
    m = fgraph.num_literal_vertices
    image = list(perm.image[:m])
    if any(v >= m for v in image):
        raise ValueError("automorphism does not preserve the literal block")
    return Permutation(image)


def formula_perm_is_consistent(perm: Permutation) -> bool:
    """Check Boolean consistency: complements map to complements."""
    m = perm.degree
    for idx in range(0, m, 2):
        pos_img = perm(idx)
        neg_img = perm(idx + 1)
        if pos_img ^ 1 != neg_img:
            return False
    return True
