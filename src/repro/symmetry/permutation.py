"""Permutations of ``0..n-1``.

The symmetry machinery (automorphism search, Schreier–Sims, SBP
construction) all speaks in these: a permutation is an immutable
mapping stored as a tuple ``image[i] = pi(i)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


class Permutation:
    """An immutable permutation of ``0..n-1``."""

    __slots__ = ("image",)

    def __init__(self, image: Sequence[int]):
        img = tuple(image)
        if sorted(img) != list(range(len(img))):
            raise ValueError("not a permutation of 0..n-1")
        self.image: Tuple[int, ...] = img

    # ------------------------------------------------------------- basics
    @classmethod
    def identity(cls, n: int) -> "Permutation":
        return cls(range(n))

    @classmethod
    def from_cycles(cls, n: int, cycles: Iterable[Sequence[int]]) -> "Permutation":
        """Build from disjoint cycles, e.g. ``from_cycles(4, [(0, 1, 2)])``."""
        image = list(range(n))
        seen = set()
        for cycle in cycles:
            for i, point in enumerate(cycle):
                if point in seen:
                    raise ValueError(f"point {point} in two cycles")
                seen.add(point)
                image[point] = cycle[(i + 1) % len(cycle)]
        return cls(image)

    @classmethod
    def from_mapping(cls, n: int, mapping: Dict[int, int]) -> "Permutation":
        """Build from a sparse mapping; unmapped points are fixed."""
        image = list(range(n))
        for src, dst in mapping.items():
            image[src] = dst
        return cls(image)

    @property
    def degree(self) -> int:
        return len(self.image)

    def __call__(self, point: int) -> int:
        return self.image[point]

    def __len__(self) -> int:
        return len(self.image)

    def __eq__(self, other) -> bool:
        return isinstance(other, Permutation) and self.image == other.image

    def __hash__(self) -> int:
        return hash(self.image)

    # ------------------------------------------------------------ algebra
    def compose(self, other: "Permutation") -> "Permutation":
        """``(self * other)(x) == self(other(x))`` (right-to-left)."""
        if self.degree != other.degree:
            raise ValueError("degree mismatch")
        other_img = other.image
        self_img = self.image
        return Permutation([self_img[other_img[x]] for x in range(len(self_img))])

    def __mul__(self, other: "Permutation") -> "Permutation":
        return self.compose(other)

    def inverse(self) -> "Permutation":
        inv = [0] * len(self.image)
        for i, j in enumerate(self.image):
            inv[j] = i
        return Permutation(inv)

    def power(self, k: int) -> "Permutation":
        """k-th power (negative k uses the inverse)."""
        if k < 0:
            return self.inverse().power(-k)
        result = Permutation.identity(self.degree)
        base = self
        while k:
            if k & 1:
                result = result * base
            base = base * base
            k >>= 1
        return result

    # ----------------------------------------------------------- structure
    @property
    def is_identity(self) -> bool:
        return all(i == j for i, j in enumerate(self.image))

    def support(self) -> List[int]:
        """Points moved by the permutation, ascending."""
        return [i for i, j in enumerate(self.image) if i != j]

    def cycles(self, include_fixed: bool = False) -> List[Tuple[int, ...]]:
        """Disjoint cycle decomposition (nontrivial cycles by default)."""
        seen = [False] * len(self.image)
        out: List[Tuple[int, ...]] = []
        for start in range(len(self.image)):
            if seen[start]:
                continue
            cycle = [start]
            seen[start] = True
            point = self.image[start]
            while point != start:
                seen[point] = True
                cycle.append(point)
                point = self.image[point]
            if len(cycle) > 1 or include_fixed:
                out.append(tuple(cycle))
        return out

    def order(self) -> int:
        """Multiplicative order (lcm of cycle lengths)."""
        from math import gcd

        result = 1
        for cycle in self.cycles():
            length = len(cycle)
            result = result * length // gcd(result, length)
        return result

    def __repr__(self) -> str:
        cycles = self.cycles()
        if not cycles:
            return f"Permutation(identity, n={self.degree})"
        text = "".join("(" + " ".join(map(str, c)) + ")" for c in cycles)
        return f"Permutation({text}, n={self.degree})"
