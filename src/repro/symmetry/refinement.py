"""Equitable partition refinement (1-dimensional Weisfeiler–Leman).

This is the workhorse inside every Nauty/Saucy-style automorphism tool:
given an initial coloring of the vertices, repeatedly split cells by
the number of neighbors their vertices have in other cells until the
partition is *equitable* (every vertex in a cell has the same number of
neighbors in every cell).  The refinement is isomorphism-invariant:
running it on a relabeled graph yields the correspondingly relabeled
partition, which is what lets the search prune.

The implementation follows Hopcroft's strategy: a worklist of splitter
cells, counting-based cell splits, and "all but the largest fragment"
requeueing.  Cells are kept in a stable order so the refined partition
is deterministic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from ..graphs.graph import Graph


class OrderedPartition:
    """An ordered partition of ``0..n-1`` into non-empty cells."""

    def __init__(self, cells: Sequence[Sequence[int]], num_points: int):
        self.cells: List[List[int]] = [list(c) for c in cells]
        self.num_points = num_points
        flat = sorted(p for cell in self.cells for p in cell)
        if flat != list(range(num_points)):
            raise ValueError("cells must partition 0..n-1")
        self.cell_of: List[int] = [0] * num_points
        for index, cell in enumerate(self.cells):
            if not cell:
                raise ValueError("empty cell")
            for p in cell:
                self.cell_of[p] = index

    @classmethod
    def unit(cls, num_points: int) -> "OrderedPartition":
        """The partition with a single cell containing every point."""
        return cls([list(range(num_points))], num_points)

    @classmethod
    def from_colors(cls, colors: Sequence[int]) -> "OrderedPartition":
        """Cells grouped by color value, ordered by color."""
        groups: Dict[int, List[int]] = defaultdict(list)
        for point, color in enumerate(colors):
            groups[color].append(point)
        cells = [groups[c] for c in sorted(groups)]
        return cls(cells, len(colors))

    @property
    def is_discrete(self) -> bool:
        """True when every cell is a singleton."""
        return all(len(c) == 1 for c in self.cells)

    def labeling(self) -> List[int]:
        """For a discrete partition: the vertex at each cell position."""
        if not self.is_discrete:
            raise ValueError("partition is not discrete")
        return [cell[0] for cell in self.cells]

    def shape(self) -> List[int]:
        """Cell sizes in order (an isomorphism-invariant signature)."""
        return [len(c) for c in self.cells]

    def copy(self) -> "OrderedPartition":
        dup = OrderedPartition.__new__(OrderedPartition)
        dup.cells = [list(c) for c in self.cells]
        dup.cell_of = list(self.cell_of)
        dup.num_points = self.num_points
        return dup

    def first_non_singleton(self) -> int:
        """Index of the first cell with more than one point (-1 if none)."""
        for index, cell in enumerate(self.cells):
            if len(cell) > 1:
                return index
        return -1

    def __repr__(self) -> str:
        inner = " | ".join(" ".join(map(str, sorted(c))) for c in self.cells)
        return f"OrderedPartition({inner})"


def refine(
    graph: Graph,
    partition: OrderedPartition,
    active: Optional[Sequence[int]] = None,
) -> OrderedPartition:
    """Refine ``partition`` to the coarsest equitable refinement.

    ``active`` optionally lists the cell indices to seed the worklist
    with (after an individualization only the touched cells need to be
    replayed); by default every cell is active.  Returns a new
    partition; the input is not modified.
    """
    part = partition.copy()
    cells = part.cells
    cell_of = part.cell_of
    # Sorted adjacency: count accumulation below iterates these, and the
    # resulting insertion order of ``counts``/``touched`` feeds fragment
    # member order, hence the canonical form.  Raw adjacency sets would
    # make that hash-seed dependent.
    adj = [sorted(graph.neighbors(v)) for v in range(graph.num_vertices)]

    worklist: List[int] = list(active) if active is not None else list(range(len(cells)))
    queued = set(worklist)

    while worklist:
        splitter_index = worklist.pop()
        queued.discard(splitter_index)
        splitter = list(cells[splitter_index])
        # Count neighbors in the splitter for all touched vertices.
        counts: Dict[int, int] = defaultdict(int)
        for s in splitter:
            for w in adj[s]:
                counts[w] += 1
        # Group touched vertices by their cell; process cells in index
        # order so the refinement is deterministic.
        touched: Dict[int, List[int]] = defaultdict(list)
        for v in sorted(counts):  # pin member order by value, not history
            touched[cell_of[v]].append(v)
        for cell_index in sorted(touched):
            members = touched[cell_index]
            cell = cells[cell_index]
            if len(cell) == 1:
                continue
            if len(members) < len(cell):
                # Some vertices have zero count; they form the 0-fragment.
                by_count: Dict[int, List[int]] = defaultdict(list)
                by_count[0] = [v for v in cell if counts.get(v, 0) == 0]
                for v in members:
                    by_count[counts[v]].append(v)
            else:
                by_count = defaultdict(list)
                for v in cell:
                    by_count[counts[v]].append(v)
            if len(by_count) == 1:
                continue
            # Deterministic fragment order: ascending neighbor count.
            fragments = [by_count[c] for c in sorted(by_count)]
            cells[cell_index] = fragments[0]
            new_indices = [cell_index]
            for fragment in fragments[1:]:
                cells.append(fragment)
                new_indices.append(len(cells) - 1)
                for v in fragment:
                    cell_of[v] = len(cells) - 1
            # Requeue fragments: if the split cell was queued, everything
            # must be replayed; otherwise all but the largest fragment.
            if cell_index in queued:
                for idx in new_indices:
                    if idx not in queued:
                        worklist.append(idx)
                        queued.add(idx)
            else:
                largest = max(new_indices, key=lambda idx: len(cells[idx]))
                for idx in new_indices:
                    if idx != largest and idx not in queued:
                        worklist.append(idx)
                        queued.add(idx)
    # Normalize: rebuild in stable cell order with a fresh object.
    return OrderedPartition([c for c in cells if c], part.num_points)


def individualize(
    partition: OrderedPartition, cell_index: int, vertex: int
) -> OrderedPartition:
    """Split ``vertex`` out of its cell, placing the singleton first.

    This is the "individualization" half of individualization-refinement:
    the returned partition has ``[vertex]`` at ``cell_index`` and the
    remaining cell members immediately after it.
    """
    cell = partition.cells[cell_index]
    if vertex not in cell:
        raise ValueError(f"vertex {vertex} not in cell {cell_index}")
    if len(cell) == 1:
        return partition.copy()
    rest = [v for v in cell if v != vertex]
    new_cells = (
        partition.cells[:cell_index]
        + [[vertex], rest]
        + partition.cells[cell_index + 1 :]
    )
    return OrderedPartition(new_cells, partition.num_points)


def is_equitable(graph: Graph, partition: OrderedPartition) -> bool:
    """Check the equitability invariant directly (test helper)."""
    for cell in partition.cells:
        for other in partition.cells:
            other_set = set(other)
            degrees = {sum(1 for w in graph.neighbors(v) if w in other_set) for v in cell}
            if len(degrees) > 1:
                return False
    return True
