"""Colored-graph automorphism search — the Saucy/Nauty stand-in.

Individualization-refinement backtracking: refine the coloring to an
equitable partition, pick the first non-singleton cell, branch on each
of its vertices, recurse.  The first leaf reached fixes a reference
labeling; every later leaf is compared against it, and matching leaves
yield automorphism generators.  Siblings are pruned when a known
automorphism that fixes the current branch prefix pointwise maps them
to an already-explored sibling (sound: the pruned subtree's
automorphisms are conjugates of found ones).

This returns a *generator set* for the automorphism group, which is
exactly what the symmetry-breaking flow consumes (the paper's flow
feeds Saucy generators to the SBP construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..graphs.graph import Graph
from .group import orbit_of
from .permutation import Permutation
from .refinement import OrderedPartition, individualize, refine


@dataclass
class AutomorphismResult:
    """Outcome of an automorphism search."""

    generators: List[Permutation] = field(default_factory=list)
    complete: bool = True  # False when the node budget was exhausted
    nodes_explored: int = 0

    def num_generators(self) -> int:
        return len(self.generators)


class AutomorphismFinder:
    """Reusable automorphism search over a fixed graph + vertex coloring."""

    def __init__(
        self,
        graph: Graph,
        colors: Optional[Sequence[int]] = None,
        node_limit: Optional[int] = None,
    ):
        self.graph = graph
        n = graph.num_vertices
        if colors is None:
            colors = [0] * n
        if len(colors) != n:
            raise ValueError("one color per vertex required")
        self.colors = list(colors)
        self.node_limit = node_limit

    def run(self) -> AutomorphismResult:
        """Execute the search and return the generator set."""
        graph = self.graph
        n = graph.num_vertices
        result = AutomorphismResult()
        if n == 0:
            return result
        root = refine(graph, OrderedPartition.from_colors(self.colors))
        first_leaf: List[Optional[List[int]]] = [None]

        def fixing_generators(prefix: List[int]) -> List[Permutation]:
            prefix_set = prefix
            return [
                g
                for g in result.generators
                if all(g(v) == v for v in prefix_set)
            ]

        def handle_leaf(partition: OrderedPartition) -> None:
            labeling = partition.labeling()
            if first_leaf[0] is None:
                first_leaf[0] = labeling
                return
            base = first_leaf[0]
            image = [0] * n
            for a, b in zip(base, labeling):
                image[a] = b
            if sorted(image) != list(range(n)):
                return
            if all(i == j for i, j in enumerate(image)):
                return
            candidate_ok = graph.is_automorphism(image) and all(
                self.colors[v] == self.colors[image[v]] for v in range(n)
            )
            if candidate_ok:
                result.generators.append(Permutation(image))

        def recurse(partition: OrderedPartition, prefix: List[int]) -> None:
            if self.node_limit is not None and result.nodes_explored >= self.node_limit:
                result.complete = False
                return
            result.nodes_explored += 1
            target = partition.first_non_singleton()
            if target < 0:
                handle_leaf(partition)
                return
            cell = sorted(partition.cells[target])
            explored: List[int] = []
            for v in cell:
                if explored:
                    fixing = fixing_generators(prefix)
                    if fixing:
                        orbit = orbit_of(v, fixing)
                        if any(w in orbit for w in explored):
                            explored.append(v)
                            continue
                child = individualize(partition, target, v)
                child = refine(self.graph, child, active=[target])
                recurse(child, prefix + [v])
                explored.append(v)
        recurse(root, [])
        return result


def find_automorphisms(
    graph: Graph,
    colors: Optional[Sequence[int]] = None,
    node_limit: Optional[int] = None,
) -> AutomorphismResult:
    """Convenience wrapper around :class:`AutomorphismFinder`."""
    return AutomorphismFinder(graph, colors=colors, node_limit=node_limit).run()
