"""End-to-end symmetry detection on formulas (the paper's Shatter flow,
detection half): formula -> colored graph -> automorphism generators ->
formula symmetries + group statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.formula import Formula
from .automorphism import find_automorphisms
from .formula_graph import (
    FormulaGraph,
    build_formula_graph,
    formula_perm_is_consistent,
    graph_perm_to_formula_perm,
)
from .group import PermutationGroup
from .permutation import Permutation


@dataclass
class SymmetryReport:
    """What the paper's Table 2 reports per formula.

    ``generators`` are permutations over *literal indices* (degree
    ``2 * num_vars``, see :func:`repro.core.literals.lit_index`).
    ``order`` is the symmetry group order (``#S``), computed by
    Schreier–Sims from the generators.
    """

    generators: List[Permutation] = field(default_factory=list)
    order: int = 1
    detection_seconds: float = 0.0
    complete: bool = True
    graph_vertices: int = 0
    nodes_explored: int = 0

    @property
    def num_generators(self) -> int:
        return len(self.generators)


def detect_symmetries(
    formula: Formula,
    node_limit: Optional[int] = None,
    compute_order: bool = True,
) -> SymmetryReport:
    """Detect the symmetries of a formula.

    ``node_limit`` bounds the automorphism search (the report's
    ``complete`` flag records whether it was hit).  ``compute_order``
    can be disabled when only generators are needed (the Schreier–Sims
    order computation can dominate for very large groups).
    """
    start = time.monotonic()
    fgraph: FormulaGraph = build_formula_graph(formula)
    search = find_automorphisms(
        fgraph.graph, colors=fgraph.colors, node_limit=node_limit
    )
    generators: List[Permutation] = []
    for perm in search.generators:
        restricted = graph_perm_to_formula_perm(fgraph, perm)
        if not formula_perm_is_consistent(restricted):
            # Cannot happen with variable vertices in the construction;
            # guard against regressions rather than emit unsound SBPs.
            continue
        if not restricted.is_identity:
            generators.append(restricted)
    order = 1
    if compute_order and generators:
        order = PermutationGroup(generators).order()
    return SymmetryReport(
        generators=generators,
        order=order,
        detection_seconds=time.monotonic() - start,
        complete=search.complete,
        graph_vertices=fgraph.graph.num_vertices,
        nodes_explored=search.nodes_explored,
    )
