"""Graphs: ADT, DIMACS I/O, benchmark generators, cliques, heuristics."""

from .analysis import (
    chromatic_bounds,
    connected_components,
    count_triangles,
    degeneracy_bound,
    degeneracy_ordering,
    is_bipartite,
)
from .cliques import clique_lower_bound, greedy_clique, is_clique, max_clique
from .coloring_heuristics import dsatur, greedy_coloring, welsh_powell
from .dimacs import read_dimacs_graph, write_dimacs_graph
from .generators import (
    book_graph,
    games_graph,
    geometric_graph,
    gnm_graph,
    gnp_graph,
    interference_graph,
    mycielski_graph,
    mycielski_step,
    queens_graph,
)
from .graph import Graph, disjoint_union

__all__ = [
    "Graph",
    "book_graph",
    "chromatic_bounds",
    "clique_lower_bound",
    "connected_components",
    "count_triangles",
    "degeneracy_bound",
    "degeneracy_ordering",
    "disjoint_union",
    "is_bipartite",
    "dsatur",
    "games_graph",
    "geometric_graph",
    "gnm_graph",
    "gnp_graph",
    "greedy_clique",
    "greedy_coloring",
    "interference_graph",
    "is_clique",
    "max_clique",
    "mycielski_graph",
    "mycielski_step",
    "queens_graph",
    "read_dimacs_graph",
    "welsh_powell",
    "write_dimacs_graph",
]
