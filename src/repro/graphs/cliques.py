"""Clique computation.

The max-clique size lower-bounds the chromatic number (paper Section
2.1), which the chromatic-number search uses to stop early, and the SC
(selective coloring) SBP is motivated by clique seeding.  We provide a
fast greedy heuristic plus an exact branch-and-bound (Carraghan–Pardalos
style with a greedy-coloring bound) for small/medium graphs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .graph import Graph


def greedy_clique(graph: Graph, start: Optional[int] = None) -> List[int]:
    """Grow a clique greedily from the highest-degree vertex.

    Returns the clique as a vertex list.  Linear-time apart from the
    neighbor intersections; used as a cheap chromatic lower bound.
    """
    if graph.num_vertices == 0:
        return []
    if start is None:
        start = max(graph.vertices(), key=graph.degree)
    clique = [start]
    candidates = set(graph.neighbors(start))
    while candidates:
        # Pick the candidate with most neighbors among the candidates.
        best = max(candidates, key=lambda v: len(candidates & graph.neighbors(v)))
        clique.append(best)
        candidates &= graph.neighbors(best)
    return clique


def clique_lower_bound(graph: Graph, tries: int = 8) -> int:
    """Best greedy clique size over several high-degree starts."""
    if graph.num_vertices == 0:
        return 0
    starts = sorted(graph.vertices(), key=graph.degree, reverse=True)[:tries]
    return max(len(greedy_clique(graph, s)) for s in starts)


def _coloring_bound(graph: Graph, candidates: Sequence[int]) -> int:
    """Greedy-coloring upper bound on the clique size within ``candidates``."""
    colors: dict = {}
    count = 0
    for v in candidates:
        used = {colors[w] for w in graph.neighbors(v) if w in colors}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
        if c + 1 > count:
            count = c + 1
    return count


def max_clique(graph: Graph, node_limit: Optional[int] = None) -> List[int]:
    """Exact maximum clique by branch and bound.

    Expands candidates in descending-degree order, pruning with the
    greedy-coloring bound.  ``node_limit`` caps the search (the best
    clique found so far is returned if the cap is hit), making the
    function safe to call on graphs where exactness is intractable.
    """
    best: List[int] = []
    order = sorted(graph.vertices(), key=graph.degree, reverse=True)
    nodes = [0]

    def expand(clique: List[int], candidates: List[int]) -> None:
        nonlocal best
        if node_limit is not None and nodes[0] > node_limit:
            return
        nodes[0] += 1
        if not candidates:
            if len(clique) > len(best):
                best = list(clique)
            return
        if len(clique) + _coloring_bound(graph, candidates) <= len(best):
            return
        while candidates:
            if len(clique) + len(candidates) <= len(best):
                return
            v = candidates.pop(0)
            clique.append(v)
            nbrs = graph.neighbors(v)
            expand(clique, [w for w in candidates if w in nbrs])
            clique.pop()

    expand([], order)
    return best


def is_clique(graph: Graph, vertices: Sequence[int]) -> bool:
    """True when the given vertices are pairwise adjacent."""
    vs = list(vertices)
    return all(
        graph.has_edge(vs[i], vs[j])
        for i in range(len(vs))
        for j in range(i + 1, len(vs))
    )
