"""DIMACS ``.col`` graph format.

The DIMACS graph-coloring benchmark suite (the instances in the paper's
Table 1) uses a simple line format::

    c comment
    p edge <num_vertices> <num_edges>
    e <u> <v>        (1-based endpoints)

The reader tolerates duplicate edge lines and both edge directions, as
the published benchmark files do.
"""

from __future__ import annotations

from typing import TextIO, Union

from .graph import Graph

PathOrFile = Union[str, TextIO]


def _open_for(target: PathOrFile, mode: str):
    if isinstance(target, (str, bytes)):
        return open(target, mode), True
    return target, False


def read_dimacs_graph(source: PathOrFile, name: str = "") -> Graph:
    """Parse a DIMACS ``.col`` file into a :class:`Graph`."""
    handle, owned = _open_for(source, "r")
    try:
        graph: Graph = Graph(0, name=name)
        declared = None
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) < 3 or parts[1] not in ("edge", "edges", "col"):
                    raise ValueError(f"malformed DIMACS problem line: {line!r}")
                declared = int(parts[2])
                graph = Graph(declared, name=name)
            elif parts[0] == "e":
                if declared is None:
                    raise ValueError("edge line before problem line")
                u, v = int(parts[1]) - 1, int(parts[2]) - 1
                if u != v:  # some benchmark files contain stray loops
                    graph.add_edge(u, v)
        if declared is None:
            raise ValueError("no problem line found")
        return graph
    finally:
        if owned:
            handle.close()


def write_dimacs_graph(graph: Graph, target: PathOrFile) -> None:
    """Write a graph as a DIMACS ``.col`` file (1-based vertices)."""
    handle, owned = _open_for(target, "w")
    try:
        if graph.name:
            handle.write(f"c {graph.name}\n")
        handle.write(f"p edge {graph.num_vertices} {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"e {u + 1} {v + 1}\n")
    finally:
        if owned:
            handle.close()
