"""Mycielski graphs.

The Mycielski transformation (Mycielski 1955) produces, from a
triangle-free graph with chromatic number k, a larger triangle-free
graph with chromatic number k+1.  Starting from K2 and iterating yields
exactly the DIMACS ``mycielN`` instances: ``myciel3`` = (11 vertices,
20 edges, chi = 4), ``myciel4`` = (23, 71, 5), ``myciel5`` = (47, 236, 6).
"""

from __future__ import annotations

from ..graph import Graph


def mycielski_step(graph: Graph) -> Graph:
    """One Mycielski transformation: G(n, m) -> G'(2n+1, 3m+n).

    Vertices 0..n-1 are the originals, n..2n-1 their shadow copies, and
    2n the apex connected to every shadow.
    """
    n = graph.num_vertices
    out = Graph(2 * n + 1)
    apex = 2 * n
    for u, v in graph.edges():
        out.add_edge(u, v)
        out.add_edge(u, n + v)
        out.add_edge(v, n + u)
    for i in range(n):
        out.add_edge(n + i, apex)
    return out


def mycielski_graph(k: int) -> Graph:
    """The DIMACS ``myciel{k}`` instance.

    ``k - 1`` transformations applied to K2: ``myciel2`` is the 5-cycle,
    ``myciel3`` the Grötzsch-family (11, 20) instance, and in general
    the chromatic number of ``mycielski_graph(k)`` is exactly ``k + 1``.
    """
    if k < 1:
        raise ValueError("mycielski index starts at 1 (= K2)")
    graph = Graph.from_edges(2, [(0, 1)])
    for _ in range(k - 1):
        graph = mycielski_step(graph)
    graph.name = f"myciel{k}"
    return graph
