"""Erdos-Renyi random graphs — the DSJC family stand-in.

The DIMACS ``DSJC*`` benchmarks (Johnson et al.) are uniform random
graphs G(n, p).  We provide both the G(n, p) model and the exact-size
G(n, m) model; the benchmark registry uses G(n, m) with fixed seeds so
the reproduced instances match the published vertex/edge counts exactly.
"""

from __future__ import annotations

import random
from typing import Optional

from ..graph import Graph


def gnp_graph(n: int, p: float, seed: Optional[int] = None, name: str = "") -> Graph:
    """G(n, p): each of the C(n, 2) edges present independently with prob p."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("edge probability must lie in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(n, name=name or f"gnp_{n}_{p}")
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def gnm_graph(n: int, m: int, seed: Optional[int] = None, name: str = "") -> Graph:
    """G(n, m): exactly m edges sampled uniformly without replacement."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"{m} edges requested but K_{n} has only {max_edges}")
    rng = random.Random(seed)
    graph = Graph(n, name=name or f"gnm_{n}_{m}")
    if m > max_edges // 2:
        # Dense: sample the complement instead, then invert.
        forbidden = set()
        while len(forbidden) < max_edges - m:
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u != v:
                forbidden.add((min(u, v), max(u, v)))
        for u in range(n):
            for v in range(u + 1, n):
                if (u, v) not in forbidden:
                    graph.add_edge(u, v)
        return graph
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and graph.add_edge(u, v):
            added += 1
    return graph
