"""Synthetic book graphs — stand-ins for anna / david / huck / jean.

The DIMACS book graphs (from Knuth's Stanford GraphBase) connect two
characters of a novel when they appear in a common scene.  The data
files are not redistributable here, so we synthesize graphs with the
same generative structure: characters have Zipf-distributed prominence
(a few protagonists appear everywhere), scenes are small groups sampled
by prominence, and co-occurrence within a scene forms a clique.  The
generator adds scene cliques until the target edge count is reached
exactly, so vertex/edge counts match the published instances; chromatic
numbers come out close to (and are measured rather than assumed equal
to) the originals, which is what the coloring pipeline cares about.
"""

from __future__ import annotations

import random
from typing import Optional

from ..graph import Graph


def book_graph(
    num_characters: int,
    num_edges: int,
    seed: Optional[int] = None,
    name: str = "",
    scene_min: int = 2,
    scene_max: int = 6,
) -> Graph:
    """Scene-co-occurrence graph with an exact edge count.

    ``scene_min``/``scene_max`` bound the number of characters per scene.
    """
    max_edges = num_characters * (num_characters - 1) // 2
    if num_edges > max_edges:
        raise ValueError("edge target exceeds complete graph")
    rng = random.Random(seed)
    graph = Graph(num_characters, name=name)
    # Zipf-ish prominence: character i has weight 1/(i+1).
    weights = [1.0 / (i + 1) for i in range(num_characters)]
    population = list(range(num_characters))
    guard = 0
    while graph.num_edges < num_edges:
        guard += 1
        if guard > 100 * num_edges + 1000:
            raise RuntimeError("book generator failed to reach edge target")
        size = rng.randint(scene_min, scene_max)
        scene = set()
        while len(scene) < size:
            scene.update(rng.choices(population, weights=weights, k=size - len(scene)))
        members = sorted(scene)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                graph.add_edge(u, v)
                if graph.num_edges == num_edges:
                    return graph
    return graph
