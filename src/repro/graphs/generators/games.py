"""Schedule graphs — stand-in for the ``games120`` instance.

``games120`` connects college football teams that played each other in
a season: a near-regular "schedule" structure (every team plays a
similar number of games).  We reproduce that by overlaying random
perfect matchings (each matching is one "round" in which every team
plays once), topping up with random edges to hit the exact edge count.
"""

from __future__ import annotations

import random
from typing import Optional

from ..graph import Graph


def games_graph(
    num_teams: int,
    num_edges: int,
    seed: Optional[int] = None,
    name: str = "",
) -> Graph:
    """Near-regular schedule graph with exactly ``num_edges`` edges."""
    if num_teams % 2:
        raise ValueError("schedule generator needs an even number of teams")
    max_edges = num_teams * (num_teams - 1) // 2
    if num_edges > max_edges:
        raise ValueError("edge target exceeds complete graph")
    rng = random.Random(seed)
    graph = Graph(num_teams, name=name)
    teams = list(range(num_teams))
    guard = 0
    while graph.num_edges < num_edges:
        guard += 1
        if guard > 100 * num_edges + 1000:
            raise RuntimeError("games generator failed to reach edge target")
        rng.shuffle(teams)
        for i in range(0, num_teams, 2):
            graph.add_edge(teams[i], teams[i + 1])
            if graph.num_edges == num_edges:
                return graph
    return graph
