"""Register-interference graphs — stand-ins for ``mulsol`` / ``zeroin``.

The DIMACS register-allocation instances are interference graphs of
real programs (two variables conflict when simultaneously live).  We
model a program as live intervals on a linear timeline: a core of
long-lived variables (globals and loop-carried values) that overlap in
a deep "hot region", plus many short-lived temporaries.  Interval
overlap gives an interval graph, whose chromatic number equals its
maximum overlap depth — exactly the structural property that makes the
real ``*.i.*`` instances have chromatic number equal to their clique
number (and > 20, so they are K=20-infeasible, as in the paper).

The temporary-interval length is calibrated by bisection so the edge
count matches the published instance, then random edges are trimmed or
topped up for an exact match (real interference graphs also deviate
slightly from pure interval structure because of control flow).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..graph import Graph


def _interval_edges(intervals: List[Tuple[float, float]]) -> List[Tuple[int, int]]:
    """Overlap pairs of half-open intervals, by sweep."""
    order = sorted(range(len(intervals)), key=lambda i: intervals[i][0])
    active: List[int] = []
    edges: List[Tuple[int, int]] = []
    for i in order:
        start, _ = intervals[i]
        active = [j for j in active if intervals[j][1] > start]
        for j in active:
            edges.append((min(i, j), max(i, j)))
        active.append(i)
    return edges


def interference_graph(
    num_variables: int,
    num_edges: int,
    depth: int,
    seed: Optional[int] = None,
    name: str = "",
) -> Graph:
    """Live-interval interference graph.

    ``depth`` long-lived variables overlap in a hot region (forcing the
    clique/chromatic number to at least ``depth``); the rest are
    temporaries whose length is calibrated to reach ``num_edges``.
    """
    max_edges = num_variables * (num_variables - 1) // 2
    if num_edges > max_edges:
        raise ValueError("edge target exceeds complete graph")
    if depth > num_variables:
        raise ValueError("depth cannot exceed the variable count")
    rng = random.Random(seed)
    num_temporaries = num_variables - depth
    # Long-lived core: staggered long intervals all covering [0.45, 0.55].
    core = []
    for i in range(depth):
        start = rng.uniform(0.0, 0.45)
        end = rng.uniform(0.55, 1.0)
        core.append((start, end))
    starts = [rng.random() * 0.98 for _ in range(num_temporaries)]

    def build(length: float) -> List[Tuple[float, float]]:
        return core + [(s, s + length) for s in starts]

    lo, hi = 0.0, 1.0
    for _ in range(40):
        mid = (lo + hi) / 2
        if len(_interval_edges(build(mid))) < num_edges:
            lo = mid
        else:
            hi = mid
    edges = _interval_edges(build(hi))
    graph = Graph(num_variables, name=name)
    for u, v in edges:
        graph.add_edge(u, v)
    # Exact-count correction: drop surplus edges touching a temporary
    # (the core-core clique is preserved so the chromatic number stays
    # >= depth) or top up with random ones (control-flow noise).
    if graph.num_edges > num_edges:
        removable = [
            (u, v) for u, v in graph.edges() if u >= depth or v >= depth
        ]
        rng.shuffle(removable)
        surplus = graph.num_edges - num_edges
        rebuilt = Graph(num_variables, name=name)
        dropped = set(removable[:surplus])
        for u, v in graph.edges():
            if (u, v) not in dropped:
                rebuilt.add_edge(u, v)
        graph = rebuilt
    guard = 0
    while graph.num_edges < num_edges:
        guard += 1
        if guard > 100 * num_edges + 1000:
            raise RuntimeError("interference generator failed to reach edge target")
        u = rng.randrange(num_variables)
        v = rng.randrange(num_variables)
        if u != v:
            graph.add_edge(u, v)
    return graph
