"""n x m queens graphs.

Vertices are board squares; two squares are adjacent when a queen on
one attacks the other (same row, column or diagonal).  A K-coloring of
the n x n queens graph places n non-attacking queen sets.  This is an
exact reconstruction of the DIMACS ``queenN_M`` instances: for example
``queens(5, 5)`` has 25 vertices and 160 edges (the paper's Table 1
reports 320 because the original ``.col`` files list both directions of
every edge).
"""

from __future__ import annotations

from ..graph import Graph


def queens_graph(rows: int, cols: int) -> Graph:
    """Build the rows x cols queens graph."""
    if rows <= 0 or cols <= 0:
        raise ValueError("board dimensions must be positive")
    graph = Graph(rows * cols, name=f"queen{rows}_{cols}")

    def index(r: int, c: int) -> int:
        return r * cols + c

    for r1 in range(rows):
        for c1 in range(cols):
            for r2 in range(rows):
                for c2 in range(cols):
                    if (r2, c2) <= (r1, c1):
                        continue
                    same_row = r1 == r2
                    same_col = c1 == c2
                    same_diag = abs(r1 - r2) == abs(c1 - c2)
                    if same_row or same_col or same_diag:
                        graph.add_edge(index(r1, c1), index(r2, c2))
    return graph
