"""Random geometric graphs — stand-in for the ``miles`` family.

The DIMACS mileage graphs connect US cities whose road distance falls
below a threshold (miles250 uses 250 miles).  The faithful synthetic
analog is a random geometric graph: points in the unit square, edges
between pairs closer than a radius.  We pick the radius as the k-th
smallest pairwise distance so the edge count matches the published
instance exactly.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

from ..graph import Graph


def geometric_graph(
    num_points: int,
    num_edges: int,
    seed: Optional[int] = None,
    name: str = "",
) -> Graph:
    """Unit-square geometric graph with exactly ``num_edges`` edges."""
    max_edges = num_points * (num_points - 1) // 2
    if num_edges > max_edges:
        raise ValueError("edge target exceeds complete graph")
    rng = random.Random(seed)
    points: List[Tuple[float, float]] = [
        (rng.random(), rng.random()) for _ in range(num_points)
    ]
    pairs = []
    for u in range(num_points):
        xu, yu = points[u]
        for v in range(u + 1, num_points):
            xv, yv = points[v]
            pairs.append((math.hypot(xu - xv, yu - yv), u, v))
    pairs.sort()
    graph = Graph(num_points, name=name)
    for _, u, v in pairs[:num_edges]:
        graph.add_edge(u, v)
    return graph
