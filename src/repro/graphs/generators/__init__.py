"""Benchmark graph generators for the DIMACS coloring families."""

from .books import book_graph
from .games import games_graph
from .geometric import geometric_graph
from .mycielski import mycielski_graph, mycielski_step
from .queens import queens_graph
from .random_graphs import gnm_graph, gnp_graph
from .register import interference_graph
from .structured import (
    complete_multipartite,
    crown_graph,
    kneser_graph,
    wheel_graph,
)

__all__ = [
    "book_graph",
    "complete_multipartite",
    "crown_graph",
    "kneser_graph",
    "wheel_graph",
    "games_graph",
    "geometric_graph",
    "gnm_graph",
    "gnp_graph",
    "interference_graph",
    "mycielski_graph",
    "mycielski_step",
    "queens_graph",
]
