"""Structured graph families with known chromatic numbers.

These are validation families rather than paper benchmarks: each has a
closed-form chromatic number, so they pin down the exact solvers in
tests far more strongly than random graphs can.

* wheels        — chi(W_n) = 4 for odd cycles, 3 for even;
* crowns        — K_{n,n} minus a perfect matching: chi = 2, but greedy
  in the natural order uses n colors (a classic greedy worst case);
* Kneser graphs — K(n, k): chi = n - 2k + 2 (Lovász 1978);
* complete multipartite — chi = number of parts.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from ..graph import Graph


def wheel_graph(spokes: int) -> Graph:
    """W_n: a cycle of ``spokes`` vertices plus a hub joined to all.

    chi = 4 when ``spokes`` is odd, 3 when even (spokes >= 3).
    """
    if spokes < 3:
        raise ValueError("a wheel needs at least 3 spokes")
    graph = Graph(spokes + 1, name=f"wheel{spokes}")
    hub = spokes
    for i in range(spokes):
        graph.add_edge(i, (i + 1) % spokes)
        graph.add_edge(i, hub)
    return graph


def crown_graph(n: int) -> Graph:
    """The crown S_n^0: K_{n,n} minus a perfect matching (chi = 2).

    Greedy coloring in the interleaved natural order needs n colors —
    the textbook example of heuristic/optimal gaps the paper's Coudert
    discussion alludes to.
    """
    if n < 2:
        raise ValueError("crown graphs need n >= 2")
    graph = Graph(2 * n, name=f"crown{n}")
    for i in range(n):
        for j in range(n):
            if i != j:
                graph.add_edge(i, n + j)
    return graph


def kneser_graph(n: int, k: int) -> Graph:
    """K(n, k): vertices are k-subsets of [n], edges join disjoint sets.

    chi = n - 2k + 2 for n >= 2k (Lovász); K(5, 2) is the Petersen graph.
    """
    if k < 1 or n < 2 * k:
        raise ValueError("Kneser graphs need n >= 2k >= 2")
    subsets = [frozenset(c) for c in combinations(range(n), k)]
    graph = Graph(len(subsets), name=f"kneser{n}_{k}")
    for i, a in enumerate(subsets):
        for j in range(i + 1, len(subsets)):
            if not a & subsets[j]:
                graph.add_edge(i, j)
    return graph


def complete_multipartite(part_sizes: Sequence[int]) -> Graph:
    """Complete multipartite graph; chi = number of (non-empty) parts."""
    sizes = [s for s in part_sizes]
    if any(s <= 0 for s in sizes):
        raise ValueError("part sizes must be positive")
    total = sum(sizes)
    graph = Graph(total, name="multipartite" + "_".join(map(str, sizes)))
    starts = []
    offset = 0
    for s in sizes:
        starts.append(offset)
        offset += s
    for p in range(len(sizes)):
        for q in range(p + 1, len(sizes)):
            for u in range(starts[p], starts[p] + sizes[p]):
                for v in range(starts[q], starts[q] + sizes[q]):
                    graph.add_edge(u, v)
    return graph
