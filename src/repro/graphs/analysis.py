"""Structural graph analysis: bounds and decompositions for coloring.

Everything here feeds the exact pipelines with cheap information:

* degeneracy (and its ordering) — gives the chromatic bound
  chi <= degeneracy + 1, usually far tighter than max-degree + 1;
* connected components — color components independently;
* bipartiteness — chi = 2 detection (DSATUR is exact there anyway,
  but the check is O(n + m));
* triangle counting — quick density signal used when sanity-checking
  generated benchmark families (Mycielski graphs are triangle-free).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from .graph import Graph


def degeneracy_ordering(graph: Graph) -> Tuple[List[int], int]:
    """Matula–Beck smallest-last ordering.

    Returns ``(order, degeneracy)``; coloring greedily in the returned
    order uses at most ``degeneracy + 1`` colors.
    """
    import heapq

    n = graph.num_vertices
    if n == 0:
        return [], 0
    degree = [graph.degree(v) for v in range(n)]
    heap = [(degree[v], v) for v in range(n)]
    heapq.heapify(heap)
    removed = [False] * n
    order: List[int] = []
    degeneracy = 0
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != degree[v]:
            continue  # stale entry
        degeneracy = max(degeneracy, d)
        removed[v] = True
        order.append(v)
        for w in graph.neighbors(v):
            if not removed[w]:
                degree[w] -= 1
                heapq.heappush(heap, (degree[w], w))
    order.reverse()  # smallest-last: color in reverse removal order
    return order, degeneracy


def degeneracy_bound(graph: Graph) -> int:
    """Upper bound chi <= degeneracy + 1 (0 for the empty graph)."""
    if graph.num_vertices == 0:
        return 0
    _, d = degeneracy_ordering(graph)
    return d + 1


def connected_components(graph: Graph) -> List[List[int]]:
    """Connected components as sorted vertex lists, ordered by minimum."""
    n = graph.num_vertices
    seen = [False] * n
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        queue = deque([start])
        seen[start] = True
        component = []
        while queue:
            v = queue.popleft()
            component.append(v)
            for w in sorted(graph.neighbors(v)):
                if not seen[w]:
                    seen[w] = True
                    queue.append(w)
        components.append(sorted(component))
    return components


def is_bipartite(graph: Graph) -> Tuple[bool, Optional[Dict[int, int]]]:
    """BFS 2-coloring; returns ``(True, sides)`` or ``(False, None)``."""
    n = graph.num_vertices
    side: Dict[int, int] = {}
    for start in range(n):
        if start in side:
            continue
        side[start] = 0
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for w in graph.neighbors(v):
                if w not in side:
                    side[w] = 1 - side[v]
                    queue.append(w)
                elif side[w] == side[v]:
                    return False, None
    return True, side


def count_triangles(graph: Graph) -> int:
    """Number of triangles (each counted once)."""
    count = 0
    for u, v in graph.edges():
        count += len(graph.neighbors(u) & graph.neighbors(v))
    return count // 3


def chromatic_bounds(graph: Graph) -> Tuple[int, int]:
    """Cheap ``(lower, upper)`` chromatic bounds.

    Lower: greedy clique; 2 if any edge; bipartite detection refines.
    Upper: min(DSATUR, degeneracy + 1).
    """
    from .cliques import clique_lower_bound
    from .coloring_heuristics import dsatur

    n = graph.num_vertices
    if n == 0:
        return 0, 0
    if graph.num_edges == 0:
        return 1, 1
    bipartite, _ = is_bipartite(graph)
    if bipartite:
        return 2, 2
    lower = max(3, clique_lower_bound(graph))
    _, dsatur_ub = dsatur(graph)
    upper = min(dsatur_ub, degeneracy_bound(graph))
    return lower, max(lower, upper)
