"""Greedy coloring heuristics: greedy, Welsh–Powell and DSATUR.

These play two roles in the reproduction, as in the paper:

* DSATUR (Brelaz 1979) supplies the feasible *upper bound* used to seed
  the chromatic-number search (paper Section 4.1's "apply any heuristic
  for min-coloring to determine a feasible upper bound").
* They are the heuristic baselines against which exact results are
  compared (Coudert's observation that heuristics can be far from
  optimal).

All functions return ``(coloring, num_colors)`` with colors ``0-based``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional, Sequence, Tuple

from .graph import Graph


def _first_free_color(graph: Graph, coloring: Dict[int, int], v: int) -> int:
    used = {coloring[w] for w in graph.neighbors(v) if w in coloring}
    color = 0
    while color in used:
        color += 1
    return color


def greedy_coloring(
    graph: Graph, order: Optional[Sequence[int]] = None
) -> Tuple[Dict[int, int], int]:
    """Color vertices in the given order with the lowest legal color."""
    if order is None:
        order = list(graph.vertices())
    if sorted(order) != list(graph.vertices()):
        raise ValueError("order must enumerate every vertex exactly once")
    coloring: Dict[int, int] = {}
    for v in order:
        coloring[v] = _first_free_color(graph, coloring, v)
    return coloring, (max(coloring.values()) + 1 if coloring else 0)


def welsh_powell(graph: Graph) -> Tuple[Dict[int, int], int]:
    """Greedy coloring in descending-degree order (Welsh & Powell 1967)."""
    order = sorted(graph.vertices(), key=lambda v: -graph.degree(v))
    return greedy_coloring(graph, order)


def dsatur(graph: Graph) -> Tuple[Dict[int, int], int]:
    """The DSATUR heuristic (Brelaz 1979).

    Repeatedly colors the uncolored vertex of maximal *saturation
    degree* (number of distinct colors among its neighbors), breaking
    ties by degree, with the lowest legal color.  Optimal on bipartite
    graphs.
    """
    n = graph.num_vertices
    coloring: Dict[int, int] = {}
    if n == 0:
        return coloring, 0
    neighbor_colors = [set() for _ in range(n)]
    # Max-heap keyed by (saturation, degree); lazy entries.
    heap = [(0, -graph.degree(v), v) for v in graph.vertices()]
    heapq.heapify(heap)
    while len(coloring) < n:
        while True:
            sat_neg, deg_neg, v = heapq.heappop(heap)
            if v in coloring:
                continue
            if -sat_neg != len(neighbor_colors[v]):
                heapq.heappush(heap, (-len(neighbor_colors[v]), deg_neg, v))
                continue
            break
        color = 0
        used = neighbor_colors[v]
        while color in used:
            color += 1
        coloring[v] = color
        for w in sorted(graph.neighbors(v)):
            if w not in coloring and color not in neighbor_colors[w]:
                neighbor_colors[w].add(color)
                heapq.heappush(heap, (-len(neighbor_colors[w]), -graph.degree(w), w))
    return coloring, max(coloring.values()) + 1


def saturation_degree(graph: Graph, coloring: Dict[int, int], v: int) -> int:
    """Number of distinct colors adjacent to ``v`` under a partial coloring."""
    return len({coloring[w] for w in graph.neighbors(v) if w in coloring})
