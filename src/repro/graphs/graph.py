"""A minimal undirected graph ADT.

Vertices are the integers ``0 .. n-1``; edges are unordered pairs of
distinct vertices (no self-loops, no multi-edges).  The representation
is an adjacency-set list, which is what the coloring encoder, the
symmetry machinery and the heuristics all want.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple


class Graph:
    """Undirected simple graph on vertices ``0..n-1``."""

    def __init__(self, num_vertices: int = 0, name: str = "") -> None:
        if num_vertices < 0:
            raise ValueError("vertex count cannot be negative")
        self._adj: List[Set[int]] = [set() for _ in range(num_vertices)]
        self._num_edges: int = 0
        self.name: str = name

    # ------------------------------------------------------------ building
    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[Tuple[int, int]], name: str = ""
    ) -> "Graph":
        """Build a graph from an edge list."""
        graph = cls(num_vertices, name=name)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def add_vertex(self) -> int:
        """Append a fresh vertex; returns its id."""
        self._adj.append(set())
        return len(self._adj) - 1

    def add_edge(self, u: int, v: int) -> bool:
        """Add edge {u, v}; returns False if it already existed."""
        self._check(u)
        self._check(v)
        if u == v:
            raise ValueError(f"self-loop on vertex {u}")
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        return True

    def _check(self, v: int) -> None:
        if not 0 <= v < len(self._adj):
            raise IndexError(f"vertex {v} out of range 0..{len(self._adj) - 1}")

    # ------------------------------------------------------------- queries
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> range:
        return range(len(self._adj))

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as ordered pairs ``(u, v)`` with u < v."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        self._check(u)
        self._check(v)
        return v in self._adj[u]

    def neighbors(self, v: int) -> Set[int]:
        self._check(v)
        return self._adj[v]

    def degree(self, v: int) -> int:
        self._check(v)
        return len(self._adj[v])

    def max_degree(self) -> int:
        """Largest vertex degree (0 for the empty graph)."""
        return max((len(nbrs) for nbrs in self._adj), default=0)

    def density(self) -> float:
        """Edge density relative to the complete graph."""
        n = self.num_vertices
        if n < 2:
            return 0.0
        return 2.0 * self._num_edges / (n * (n - 1))

    # --------------------------------------------------------- derivations
    def copy(self) -> "Graph":
        dup = Graph(self.num_vertices, name=self.name)
        dup._adj = [set(nbrs) for nbrs in self._adj]
        dup._num_edges = self._num_edges
        return dup

    def complement(self) -> "Graph":
        """The complement graph (same vertices, inverted adjacency)."""
        n = self.num_vertices
        comp = Graph(n, name=f"{self.name}-complement" if self.name else "")
        for u in range(n):
            for v in range(u + 1, n):
                if v not in self._adj[u]:
                    comp.add_edge(u, v)
        return comp

    def subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Induced subgraph; vertex i of the result is ``vertices[i]``."""
        index = {v: i for i, v in enumerate(vertices)}
        if len(index) != len(vertices):
            raise ValueError("duplicate vertices in subgraph selection")
        sub = Graph(len(vertices))
        for v, i in index.items():
            self._check(v)
            for w in self._adj[v]:
                j = index.get(w)
                if j is not None and i < j:
                    sub.add_edge(i, j)
        return sub

    def relabel(self, permutation: Sequence[int]) -> "Graph":
        """Image of the graph under a vertex permutation (v -> perm[v])."""
        if sorted(permutation) != list(range(self.num_vertices)):
            raise ValueError("not a permutation of the vertex set")
        out = Graph(self.num_vertices, name=self.name)
        for u, v in self.edges():
            out.add_edge(permutation[u], permutation[v])
        return out

    def is_automorphism(self, permutation: Sequence[int]) -> bool:
        """True when the vertex permutation preserves adjacency."""
        if sorted(permutation) != list(range(self.num_vertices)):
            return False
        return all(
            permutation[v] in self._adj[permutation[u]] for u, v in self.edges()
        )

    # ----------------------------------------------------------- validation
    def is_proper_coloring(self, coloring: Dict[int, int]) -> bool:
        """True when every vertex is colored and no edge is monochromatic."""
        if any(v not in coloring for v in self.vertices()):
            return False
        return all(coloring[u] != coloring[v] for u, v in self.edges())

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Graph({label} |V|={self.num_vertices}, |E|={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Graph)
            and self.num_vertices == other.num_vertices
            and self._adj == other._adj
        )


def disjoint_union(*graphs: Graph, name: str = "") -> Graph:
    """The disjoint union of the given graphs, vertices renumbered in order.

    The canonical disconnected instance: ``chi(G1 + G2) =
    max(chi(G1), chi(G2))``, which is exactly what the per-component
    Session pool exploits (and what the differential tests stress).
    """
    union = Graph(sum(g.num_vertices for g in graphs), name=name)
    offset = 0
    for g in graphs:
        for u, v in g.edges():
            union.add_edge(u + offset, v + offset)
        offset += g.num_vertices
    if not name:
        union.name = "+".join(g.name for g in graphs if g.name)
    return union
