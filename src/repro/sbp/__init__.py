"""Symmetry-breaking predicates: instance-dependent lex-leader (Shatter
stand-in) and the paper's instance-independent NU/CA/LI/SC constructions."""

from .instance_independent import (
    SBP_KINDS,
    add_cardinality_ordering,
    add_lowest_index_ordering,
    add_null_color_elimination,
    add_selective_coloring,
    apply_sbp,
)
from .lex_leader import (
    DEFAULT_SUPPORT_CAP,
    add_full_group_sbps,
    add_lex_leader_sbp,
    add_symmetry_breaking_predicates,
    generator_support_vars,
)

__all__ = [
    "DEFAULT_SUPPORT_CAP",
    "SBP_KINDS",
    "add_cardinality_ordering",
    "add_full_group_sbps",
    "add_lex_leader_sbp",
    "add_lowest_index_ordering",
    "add_null_color_elimination",
    "add_selective_coloring",
    "add_symmetry_breaking_predicates",
    "apply_sbp",
    "generator_support_vars",
]
