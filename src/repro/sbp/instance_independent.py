"""The paper's four instance-independent SBP constructions (Section 3).

All four break (subsets of) the color-permutation symmetry that every
0-1 ILP coloring instance has, and are added *during encoding*, before
any symmetry detection:

* **NU** (null-color elimination): unused colors sink to the end —
  ``y_{k+1} -> y_k``; K-1 binary clauses, no new variables.
* **CA** (cardinality ordering): color class sizes are non-increasing —
  ``sum_v x[v][k] >= sum_v x[v][k+1]``; K-1 PB constraints.
* **LI** (lowest-index ordering): fully breaks color symmetry by
  ordering the lowest-index vertex of successive colors.  The paper's
  printed clause set is internally inconsistent; we implement the
  semantics of its Figure 1(e)/worked example — the lowest-index
  vertices of colors 1, 2, ..., m are in *descending* vertex order, and
  used colors form a prefix — via prefix-occurrence variables, keeping
  the claimed linear O(nK) size (see DESIGN.md).
* **SC** (selective coloring): pin the highest-degree vertex to color 1
  and its highest-degree neighbor to color 2; two unit clauses.

Every construction is *sound*: it preserves at least one optimal
solution (Section 3 of the paper gives the arguments; the test suite
re-verifies optimum preservation by brute force on small graphs).
"""

from __future__ import annotations


from ..coloring.encoding import ColoringEncoding

SBP_KINDS = ("none", "nu", "ca", "li", "sc", "nu+sc")


def add_null_color_elimination(encoding: ColoringEncoding) -> int:
    """NU: ``y_{k+1} -> y_k`` for k = 1..K-1; returns #clauses added."""
    formula = encoding.formula
    for k in range(1, encoding.num_colors):
        formula.add_clause([-encoding.y(k + 1), encoding.y(k)])
    return encoding.num_colors - 1


def add_cardinality_ordering(encoding: ColoringEncoding) -> int:
    """CA: ``|class k| >= |class k+1|``; returns #PB constraints added."""
    formula = encoding.formula
    n = encoding.graph.num_vertices
    for k in range(1, encoding.num_colors):
        terms = [(1, encoding.x(v, k)) for v in range(n)]
        terms += [(-1, encoding.x(v, k + 1)) for v in range(n)]
        formula.add_pb(terms, ">=", 0)
    return encoding.num_colors - 1


def add_lowest_index_ordering(encoding: ColoringEncoding) -> int:
    """LI: complete color-symmetry breaking; returns #clauses added.

    Auxiliary variables (2nK of them):

    * ``P[v][k]`` — some vertex with index <= v has color k;
    * ``V[v][k]`` — v is the lowest-index vertex with color k.

    Clauses per (v, k): P-definition (3), V-definition (3), plus the
    ordering clause ``V[v][k] & y_{k+1} -> P[v-1][k+1]`` and the NU
    chain (so LI subsumes NU, as the paper requires).
    """
    formula = encoding.formula
    graph = encoding.graph
    n = graph.num_vertices
    K = encoding.num_colors
    added = 0
    p_var = {}
    v_var = {}
    for k in range(1, K + 1):
        for v in range(n):
            p_var[(v, k)] = formula.new_var(("li_p", v, k))
            v_var[(v, k)] = formula.new_var(("li_v", v, k))
    for k in range(1, K + 1):
        for v in range(n):
            x_vk = encoding.x(v, k)
            p_vk = p_var[(v, k)]
            v_vk = v_var[(v, k)]
            if v == 0:
                # P[0][k] <-> x[0][k]; V[0][k] <-> x[0][k].
                formula.add_clause([-x_vk, p_vk])
                formula.add_clause([-p_vk, x_vk])
                formula.add_clause([-x_vk, v_vk])
                formula.add_clause([-v_vk, x_vk])
                added += 4
                continue
            p_prev = p_var[(v - 1, k)]
            # P[v][k] <-> P[v-1][k] | x[v][k]
            formula.add_clause([-p_prev, p_vk])
            formula.add_clause([-x_vk, p_vk])
            formula.add_clause([-p_vk, p_prev, x_vk])
            # V[v][k] <-> x[v][k] & ~P[v-1][k]
            formula.add_clause([-x_vk, p_prev, v_vk])
            formula.add_clause([-v_vk, x_vk])
            formula.add_clause([-v_vk, -p_prev])
            added += 6
    # Ordering: if v is lowest for color k and color k+1 is used, then
    # color k+1 already appeared strictly before v (descending
    # lowest-index convention of the paper's Figure 1(e)).
    for k in range(1, K):
        y_next = encoding.y(k + 1)
        for v in range(n):
            v_vk = v_var[(v, k)]
            if v == 0:
                formula.add_clause([-v_vk, -y_next])
            else:
                formula.add_clause([-v_vk, -y_next, p_var[(v - 1, k + 1)]])
            added += 1
    # NU chain, so LI subsumes NU (unused colors form a suffix).
    added += add_null_color_elimination(encoding)
    return added


def add_selective_coloring(encoding: ColoringEncoding) -> int:
    """SC: pin the max-degree vertex and its max-degree neighbor."""
    graph = encoding.graph
    formula = encoding.formula
    if graph.num_vertices == 0 or encoding.num_colors < 1:
        return 0
    vl = max(graph.vertices(), key=lambda v: (graph.degree(v), -v))
    formula.add_clause([encoding.x(vl, 1)])
    added = 1
    neighbors = graph.neighbors(vl)
    if neighbors and encoding.num_colors >= 2:
        vl2 = max(neighbors, key=lambda v: (graph.degree(v), -v))
        formula.add_clause([encoding.x(vl2, 2)])
        added += 1
    return added


def apply_sbp(encoding: ColoringEncoding, kind: str) -> ColoringEncoding:
    """Return a copy of the encoding with the named SBPs appended.

    ``kind`` is one of ``"none"``, ``"nu"``, ``"ca"``, ``"li"``,
    ``"sc"``, ``"nu+sc"`` (matching the rows of the paper's tables).
    """
    if kind not in SBP_KINDS:
        raise ValueError(f"unknown SBP kind {kind!r}; expected one of {SBP_KINDS}")
    out = encoding.copy()
    if kind == "nu":
        add_null_color_elimination(out)
    elif kind == "ca":
        add_cardinality_ordering(out)
    elif kind == "li":
        add_lowest_index_ordering(out)
    elif kind == "sc":
        add_selective_coloring(out)
    elif kind == "nu+sc":
        add_null_color_elimination(out)
        add_selective_coloring(out)
    return out
