"""Instance-dependent symmetry-breaking predicates (the Shatter stand-in).

Implements the efficient, tautology-free, linear-size lex-leader
construction of Aloul, Markov & Sakallah (DAC 2003 / IJCAI 2003): for
each symmetry generator ``pi`` (a permutation of literals), add clauses
asserting that the current assignment is lexicographically no larger
than its image under ``pi``, considering variables in index order.

For support variables ``x_1 < x_2 < ... < x_k`` with image literals
``y_j = pi(x_j)``, the predicate is::

    AND_j  [ (x_1 = y_1) & ... & (x_{j-1} = y_{j-1}) ]  ->  (x_j <= y_j)

encoded with chaining variables ``p_j`` ("prefix equal through j"):

    p_0 = true
    p_{j-1} -> (x_j <= y_j)                     1 ternary clause
    p_{j-1} & (x_j = y_j) -> p_j                2 quaternary clauses

Only breaking generators (not the whole group) is *incomplete* but
sound, and is the configuration the paper uses.  A per-generator
support cap keeps predicates small, which the 2003/2004 papers found
essential; truncating the conjunction keeps a (weaker) sound predicate
because the lex-smallest member of every orbit satisfies each conjunct
individually.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.formula import Formula
from ..core.literals import index_lit, lit_index
from ..symmetry.permutation import Permutation

DEFAULT_SUPPORT_CAP = 64


def _image_literal(perm: Permutation, lit: int) -> int:
    """Image of a DIMACS literal under a literal-index permutation."""
    return index_lit(perm(lit_index(lit)))


def generator_support_vars(perm: Permutation) -> List[int]:
    """Variables whose positive literal is moved by the generator."""
    out = []
    for idx in range(0, perm.degree, 2):
        if perm(idx) != idx:
            out.append(idx // 2 + 1)
    return out


def add_lex_leader_sbp(
    formula: Formula,
    generator: Permutation,
    support_cap: Optional[int] = DEFAULT_SUPPORT_CAP,
) -> int:
    """Append the lex-leader SBP for one generator; returns #clauses added.

    The generator permutes literal indices (degree ``2 * num_vars`` or
    less; smaller degrees are interpreted over the first variables).
    """
    if generator.degree > 2 * formula.num_vars:
        raise ValueError("generator degree exceeds the formula's literals")
    support = generator_support_vars(generator)
    if support_cap is not None:
        support = support[:support_cap]
    added = 0
    prev_p: Optional[int] = None
    for j, var in enumerate(support):
        y = _image_literal(generator, var)
        if y == var:
            continue
        # x_j <= y_j under the prefix condition.
        clause = [-var, y] if y != -var else [-var]
        if prev_p is not None:
            clause = [-prev_p] + clause
        formula.add_clause(clause)
        added += 1
        if j == len(support) - 1:
            break  # last chain variable is never used
        if y == -var:
            # Phase-shift image: x_j = y_j is unsatisfiable, so the
            # prefix-equal chain dies here; later conjuncts are vacuous.
            break
        p_j = formula.new_var()
        # p_{j-1} & (x_j = y_j) -> p_j, split over the two equal cases:
        eq_true = [-var, -y, p_j]  # both true:  x &  y -> p
        eq_false = [var, y, p_j]  # both false: ~x & ~y -> p
        clause_t = eq_true if prev_p is None else [-prev_p] + eq_true
        clause_f = eq_false if prev_p is None else [-prev_p] + eq_false
        formula.add_clause(clause_t)
        formula.add_clause(clause_f)
        added += 2
        prev_p = p_j
    return added


def add_symmetry_breaking_predicates(
    formula: Formula,
    generators: Sequence[Permutation],
    support_cap: Optional[int] = DEFAULT_SUPPORT_CAP,
) -> int:
    """Append lex-leader SBPs for every generator; returns #clauses added."""
    total = 0
    for generator in generators:
        total += add_lex_leader_sbp(formula, generator, support_cap=support_cap)
    return total


def add_full_group_sbps(
    formula: Formula,
    generators: Sequence[Permutation],
    element_limit: int = 5000,
    support_cap: Optional[int] = DEFAULT_SUPPORT_CAP,
) -> int:
    """Crawford-style *complete* lex-leader breaking: one predicate per
    group element, not just per generator.

    The paper (Section 2.4) credits Crawford et al. with breaking the
    whole group — complete but potentially exponential — and Aloul et
    al. with the generators-only compromise the experiments use.  This
    function materializes the Crawford variant so the two can be
    compared; ``element_limit`` guards against group blow-up (a
    ``ValueError`` is raised when the closure exceeds it, since a
    silently truncated enumeration would no longer be "complete").

    Returns the number of clauses added.
    """
    degree = max((g.degree for g in generators), default=0)
    if degree == 0:
        return 0
    elements = {Permutation.identity(degree)}
    frontier = [g for g in generators if not g.is_identity]
    while frontier:
        element = frontier.pop()
        if element in elements:
            continue
        elements.add(element)
        if len(elements) > element_limit:
            raise ValueError(
                f"group closure exceeds element_limit={element_limit}; "
                "use add_symmetry_breaking_predicates (generators only)"
            )
        for gen in generators:
            product = gen * element
            if product not in elements:
                frontier.append(product)
    total = 0
    for element in sorted(elements, key=lambda p: p.image):
        if element.is_identity:
            continue
        total += add_lex_leader_sbp(formula, element, support_cap=support_cap)
    return total
