"""Ablation studies for the design choices DESIGN.md calls out.

Not tables from the paper, but experiments that probe *why* its trends
hold, using the same machinery:

* ``ablate_support_cap`` — lex-leader SBP size vs effectiveness: the
  2003/2004 SBP papers argue truncated (small) predicates win; sweep
  the per-generator support cap.
* ``ablate_strategy`` — linear vs binary objective search on identical
  engines (the real PBS/Pueblo differ here).
* ``ablate_formula_growth`` — how much each instance-independent SBP
  construction grows the formula (the paper's explanation for CA/LI
  underperforming).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..coloring.encoding import encode_coloring
from ..pb.optimizer import minimize
from ..pb.presets import get_preset
from ..sbp.instance_independent import SBP_KINDS, apply_sbp
from ..sbp.lex_leader import add_symmetry_breaking_predicates
from ..symmetry.detect import detect_symmetries
from .instances import ScalePreset, get_instance


@dataclass
class SupportCapRow:
    cap: Optional[int]
    clauses_added: int
    seconds: float
    status: str


def ablate_support_cap(
    instance_name: str = "queen5_5",
    k: int = 7,
    caps: Sequence[Optional[int]] = (4, 16, 64, None),
    time_limit: float = 30.0,
) -> List[SupportCapRow]:
    """Sweep the lex-leader per-generator support cap."""
    graph = get_instance(instance_name).graph()
    encoding = encode_coloring(graph, k)
    report = detect_symmetries(encoding.formula, node_limit=50000, compute_order=False)
    rows: List[SupportCapRow] = []
    for cap in caps:
        trial = encoding.copy()
        before = len(trial.formula.clauses)
        add_symmetry_breaking_predicates(trial.formula, report.generators, support_cap=cap)
        added = len(trial.formula.clauses) - before
        preset = get_preset("pbs2")
        start = time.monotonic()
        result = minimize(
            trial.formula,
            strategy="linear",
            solver_factory=preset.solver_factory(),
            time_limit=time_limit,
        )
        rows.append(
            SupportCapRow(cap, added, time.monotonic() - start, result.status)
        )
    return rows


@dataclass
class StrategyRow:
    strategy: str
    seconds: float
    status: str
    value: Optional[int]


def ablate_strategy(
    instance_name: str = "queen6_6",
    k: int = 9,
    time_limit: float = 60.0,
) -> List[StrategyRow]:
    """Linear vs binary objective search with the same engine settings."""
    graph = get_instance(instance_name).graph()
    encoding = apply_sbp(encode_coloring(graph, k), "nu")
    preset = get_preset("pbs2")
    rows: List[StrategyRow] = []
    for strategy in ("linear", "binary"):
        start = time.monotonic()
        result = minimize(
            encoding.formula.copy(),
            strategy=strategy,
            solver_factory=preset.solver_factory(),
            time_limit=time_limit,
        )
        rows.append(
            StrategyRow(strategy, time.monotonic() - start, result.status, result.best_value)
        )
    return rows


@dataclass
class GrowthRow:
    sbp_kind: str
    num_vars: int
    num_clauses: int
    num_pb: int
    growth_vs_none: float  # clause-count ratio


def ablate_formula_growth(scale: ScalePreset) -> List[GrowthRow]:
    """Formula-size growth per SBP construction, summed over the scale's
    instances — quantifies "LI nearly doubles the formula" (Section 3.3)."""
    totals = {}
    for kind in SBP_KINDS:
        num_vars = num_clauses = num_pb = 0
        for instance in scale.instances():
            encoding = apply_sbp(encode_coloring(instance.graph(), scale.k_primary), kind)
            stats = encoding.formula.stats()
            num_vars += stats.num_vars
            num_clauses += stats.num_clauses
            num_pb += stats.num_pb
        totals[kind] = (num_vars, num_clauses, num_pb)
    base_clauses = totals["none"][1]
    return [
        GrowthRow(kind, *totals[kind], growth_vs_none=totals[kind][1] / base_clauses)
        for kind in SBP_KINDS
    ]
