"""Experiment drivers regenerating every table and figure of the paper."""

from .ablations import ablate_formula_growth, ablate_strategy, ablate_support_cap
from .figure1 import figure1_counts, figure1_graph, render_figure1
from .instances import (
    Instance,
    QUEENS_NAMES,
    REGISTRY,
    SCALES,
    ScalePreset,
    all_instances,
    get_instance,
    get_scale,
)
from .report import list_reports, load_report, save_report
from .runner import CellResult, RunRecord, format_seconds, run_cell, run_one
from .tables import (
    SBP_ROWS,
    SolverTable,
    render_solver_table,
    render_table1,
    render_table2,
    render_table5,
    solver_table,
    table1,
    table2,
    table3,
    table4,
    table5,
)

__all__ = [
    "CellResult",
    "Instance",
    "QUEENS_NAMES",
    "REGISTRY",
    "RunRecord",
    "SBP_ROWS",
    "SCALES",
    "ScalePreset",
    "SolverTable",
    "ablate_formula_growth",
    "ablate_strategy",
    "ablate_support_cap",
    "all_instances",
    "figure1_counts",
    "figure1_graph",
    "format_seconds",
    "get_instance",
    "get_scale",
    "list_reports",
    "load_report",
    "render_figure1",
    "save_report",
    "render_solver_table",
    "render_table1",
    "render_table2",
    "render_table5",
    "run_cell",
    "run_one",
    "solver_table",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
]
