"""Reproduction of the paper's Figure 1: the 4-vertex worked example.

Figure 1(a) is the graph with a triangle {V1, V2, V3} and a pendant V4
attached to V3, colored with a budget of K = 4.  The figure illustrates
how each instance-independent SBP shrinks the set of permissible
optimal (3-color) assignments:

* no SBPs  — colors permute freely: 24 ordered choices per independent-
  set partition, 2 partitions -> 48 optimal assignments;
* NU       — used colors form a prefix: 3! = 6 per partition -> 12;
* CA       — class sizes descend, the 2-element set takes color 1 -> 4;
* LI       — exactly one assignment per partition -> 2;
* SC       — pins V3 and one neighbor, leaving few choices.

``figure1_counts`` enumerates every coloring, extends it with the
auxiliary variables (which the encodings define functionally), and
counts the assignments each construction admits.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List

from ..coloring.encoding import ColoringEncoding, encode_coloring
from ..graphs.graph import Graph
from ..sbp.instance_independent import SBP_KINDS, apply_sbp


def figure1_graph() -> Graph:
    """The graph of Figure 1(a): triangle V1 V2 V3 plus V4 - V3."""
    return Graph.from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)], name="figure1")


def _extend_model(
    encoding: ColoringEncoding, coloring: Dict[int, int]
) -> Dict[int, bool]:
    """Total assignment for a coloring: x/y plus functionally-determined
    auxiliary variables (the LI construction's P and V)."""
    formula = encoding.formula
    model = {var: False for var in range(1, formula.num_vars + 1)}
    n = encoding.graph.num_vertices
    used = set(coloring.values())
    for v, k in coloring.items():
        model[encoding.x(v, k)] = True
    for k in range(1, encoding.num_colors + 1):
        model[encoding.y(k)] = k in used
    pool = formula.pool
    for k in range(1, encoding.num_colors + 1):
        seen = False
        lowest_done = False
        for v in range(n):
            seen = seen or coloring[v] == k
            if ("li_p", v, k) in pool:
                model[pool.lookup("li_p", v, k)] = seen
            if ("li_v", v, k) in pool:
                is_lowest = coloring[v] == k and not lowest_done
                if is_lowest:
                    lowest_done = True
                model[pool.lookup("li_v", v, k)] = is_lowest
    return model


@dataclass
class Figure1Row:
    """Counts of admissible assignments under one SBP construction."""

    sbp_kind: str
    optimal_allowed: int  # 3-color assignments that satisfy the SBPs
    total_allowed: int  # any-color assignments that satisfy the SBPs


def figure1_counts(num_colors: int = 4) -> List[Figure1Row]:
    """Enumerate colorings of the example and count survivors per SBP."""
    graph = figure1_graph()
    base = encode_coloring(graph, num_colors)
    rows: List[Figure1Row] = []
    colorings: List[Dict[int, int]] = []
    for assignment in product(range(1, num_colors + 1), repeat=graph.num_vertices):
        coloring = dict(enumerate(assignment))
        if all(coloring[u] != coloring[v] for u, v in graph.edges()):
            colorings.append(coloring)
    optimal = min(len(set(c.values())) for c in colorings)
    for kind in SBP_KINDS:
        encoding = apply_sbp(base, kind)
        allowed = 0
        allowed_optimal = 0
        for coloring in colorings:
            model = _extend_model(encoding, coloring)
            if encoding.formula.evaluate(model):
                allowed += 1
                if len(set(coloring.values())) == optimal:
                    allowed_optimal += 1
        rows.append(Figure1Row(kind, allowed_optimal, allowed))
    return rows


def render_figure1(rows: List[Figure1Row]) -> str:
    """ASCII rendering of the Figure 1 assignment counts."""
    lines = [
        "Figure 1 example: triangle {V1,V2,V3} + pendant V4 (K=4, chi=3)",
        f"{'SBP':8s} {'optimal assignments':>20s} {'all assignments':>17s}",
    ]
    for r in rows:
        lines.append(f"{r.sbp_kind:8s} {r.optimal_allowed:>20d} {r.total_allowed:>17d}")
    return "\n".join(lines)
