"""Result artifacts: persist experiment outputs as JSON + Markdown.

Table drivers return dataclasses; this module serializes them so runs
can be archived, diffed across machines, and pasted into
EXPERIMENTS.md.  ``save_report`` writes ``<name>.json`` (machine
readable) and ``<name>.md`` (the rendered table); ``load_report``
restores the JSON side.
"""

from __future__ import annotations

import dataclasses
import json
import os
from datetime import date
from typing import Any, Dict, List, Optional


def _to_jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _to_jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def save_report(
    directory: str,
    name: str,
    rows: Any,
    rendered: str,
    metadata: Optional[Dict[str, Any]] = None,
) -> str:
    """Write ``<name>.json`` and ``<name>.md`` under ``directory``.

    Returns the JSON path.  ``rows`` is any dataclass/list/dict
    structure; ``rendered`` is the human-readable table text.
    """
    os.makedirs(directory, exist_ok=True)
    payload = {
        "experiment": name,
        "date": date.today().isoformat(),
        "metadata": metadata or {},
        "rows": _to_jsonable(rows),
    }
    json_path = os.path.join(directory, f"{name}.json")
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    md_path = os.path.join(directory, f"{name}.md")
    with open(md_path, "w") as handle:
        handle.write(f"# {name}\n\n")
        for key, value in (metadata or {}).items():
            handle.write(f"* {key}: {value}\n")
        handle.write("\n```\n")
        handle.write(rendered.rstrip("\n"))
        handle.write("\n```\n")
    return json_path


def load_report(json_path: str) -> Dict[str, Any]:
    """Load a saved report's JSON payload."""
    with open(json_path) as handle:
        payload = json.load(handle)
    for key in ("experiment", "rows"):
        if key not in payload:
            raise ValueError(f"not a report file (missing {key!r}): {json_path}")
    return payload


def list_reports(directory: str) -> List[str]:
    """JSON report paths under ``directory``, sorted."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, f)
        for f in os.listdir(directory)
        if f.endswith(".json")
    )
