"""Timeout-controlled experiment runner and result records.

The paper's Tables 3/4 report, per (SBP construction, solver,
with/without instance-dependent SBPs): the summed runtime over all 20
benchmarks (timeouts charged at the limit) and the number of instances
solved.  :class:`CellResult` is one such aggregate; ``run_cell``
produces it.

``run_cell(..., jobs=N)`` fans the cell's instances across the
:mod:`repro.batch` worker pool (one slow instance no longer stalls the
whole table); ``jobs=0`` (the default) keeps the historical sequential
in-process loop, which shares the symmetry-detection cache across
cells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import BudgetedOptimize, ChromaticProblem, Pipeline, Result
from .instances import Instance

# Symmetry detection depends only on (instance, K, SBP kind) — the
# encodings are deterministic — so results are shared across solvers and
# across the with/without-instance-dependent-SBP columns of a table.
DETECTION_CACHE: Dict = {}


@dataclass
class RunRecord:
    """One (instance, configuration) solve."""

    instance: str
    solver: str
    sbp_kind: str
    instance_dependent: bool
    k: int
    status: str
    num_colors: Optional[int]
    seconds: float
    solved: bool


@dataclass
class CellResult:
    """Aggregate over the instance set for one table cell."""

    solver: str
    sbp_kind: str
    instance_dependent: bool
    total_seconds: float = 0.0
    num_solved: int = 0
    records: List[RunRecord] = field(default_factory=list)

    def add(self, record: RunRecord, time_limit: float) -> None:
        self.records.append(record)
        self.total_seconds += min(record.seconds, time_limit) if not record.solved else record.seconds
        if record.solved:
            self.num_solved += 1


@dataclass
class DescentRecord:
    """One chromatic-number descent (the repeated-SAT K-search).

    The machine-readable shape the benchmark JSON emitter consumes:
    which K values were queried, how the solver(s) behaved, and whether
    the descent ran on one persistent solver or from scratch per query.
    """

    instance: str
    strategy: str
    incremental: bool
    status: str
    chromatic_number: Optional[int]
    sat_calls: int
    k_queries: List[Tuple[int, str]]
    conflicts: int
    propagations: int
    solvers_created: int
    seconds: float
    # Kernel components the descent ran on: 1 for whole-kernel runs,
    # the Session pool's component count when it split.
    components: int = 1

    def as_json(self) -> Dict:
        """Plain-dict form for the benchmark JSON reports."""
        return {
            "instance": self.instance,
            "strategy": self.strategy,
            "incremental": self.incremental,
            "status": self.status,
            "chromatic_number": self.chromatic_number,
            "k_queries": [list(q) for q in self.k_queries],
            "sat_calls": self.sat_calls,
            "conflicts": self.conflicts,
            "propagations": self.propagations,
            "solvers_created": self.solvers_created,
            "components": self.components,
            "wall_seconds": self.seconds,
        }


def run_descent(
    name: str,
    graph,
    strategy: str = "linear",
    incremental: bool = True,
    time_limit: Optional[float] = None,
    sbp_kind: str = "none",
    amo_encoding: str = "pairwise",
    preprocess: bool = True,
    reduce: bool = True,
    split_components: bool = True,
) -> DescentRecord:
    """Run one chromatic-number descent and record it for the perf logs.

    Routes through :mod:`repro.api`: the ``cdcl-incremental`` backend
    drives the descent on persistent solvers — the per-component
    Session pool when the kernel is disconnected (and
    ``split_components`` is left on), one whole-kernel solver otherwise
    — while ``cdcl-scratch`` re-encodes per K query.
    """
    backend = "cdcl-incremental" if incremental else "cdcl-scratch"
    pipeline = (
        Pipeline()
        .reduce(reduce)
        .encode(amo=amo_encoding)
        .symmetry(sbp_kind=sbp_kind)
        .simplify(preprocess)
        .solve(backend=backend, strategy=strategy, time_limit=time_limit,
               split_components=split_components)
    )
    result: Result = pipeline.run(ChromaticProblem(graph))
    return DescentRecord(
        instance=name,
        strategy=strategy,
        incremental=incremental,
        status=result.status,
        chromatic_number=result.chromatic_number,
        sat_calls=len(result.queries),
        k_queries=list(result.queries),
        conflicts=result.stats.conflicts,
        propagations=result.stats.propagations,
        solvers_created=result.solvers_created,
        seconds=result.total_seconds,
        components=max(1, len(result.components)),
    )


def run_one(
    instance: Instance,
    k: int,
    solver: str,
    sbp_kind: str,
    instance_dependent: bool,
    time_limit: float,
    detection_node_limit: int,
    preprocess: bool = True,
    reduce: bool = False,
    incremental: bool = True,
) -> RunRecord:
    """Solve one instance under one configuration.

    ``preprocess``/``reduce`` toggle the simplification pipeline; the
    tables keep kernelization off by default so the measured formulas
    match the paper's encodings, while clause simplification (which is
    model-preserving) runs like the paper's Chaff-lineage solvers do.
    """
    graph = instance.graph()
    start = time.monotonic()
    try:
        pipeline = (
            Pipeline()
            .reduce(reduce)
            .symmetry(
                sbp_kind=sbp_kind,
                instance_dependent=instance_dependent,
                detection_node_limit=detection_node_limit,
            )
            .simplify(preprocess)
            .solve(backend=solver, time_limit=time_limit, incremental=incremental)
        )
        result: Result = pipeline.run(
            BudgetedOptimize(graph, k), detection_cache=DETECTION_CACHE
        )
        status = result.status
        num_colors = result.num_colors
        solved = result.solved
        # Like the paper, report solver runtime; symmetry detection is
        # accounted separately (Table 2) and amortized by the cache.
        seconds = result.solve_seconds
    except MemoryError:
        status, num_colors, solved = "ERROR", None, False
        seconds = time.monotonic() - start
    return RunRecord(
        instance=instance.name,
        solver=solver,
        sbp_kind=sbp_kind,
        instance_dependent=instance_dependent,
        k=k,
        status=status,
        num_colors=num_colors,
        seconds=seconds,
        solved=solved,
    )


def cell_tasks(
    instances: Sequence[Instance],
    k: int,
    solver: str,
    sbp_kind: str,
    instance_dependent: bool,
    time_limit: float,
    detection_node_limit: int,
    preprocess: bool = True,
    reduce: bool = False,
    incremental: bool = True,
) -> List:
    """The batch TaskSpecs equivalent to one table cell's run_one loop."""
    from ..batch.manifest import GraphSpec, TaskSpec

    return [
        TaskSpec(
            graph=GraphSpec(instance=instance.name),
            name=instance.name,
            kind="budgeted-optimize",
            max_colors=k,
            backend=solver,
            sbp_kind=sbp_kind,
            instance_dependent=instance_dependent,
            detection_node_limit=detection_node_limit,
            time_limit=time_limit,
            reduce=reduce,
            simplify=preprocess,
            incremental=incremental,
        )
        for instance in instances
    ]


def record_to_run_record(
    record: Dict, k: int, solver: str, sbp_kind: str, instance_dependent: bool
) -> RunRecord:
    """Map one batch JSONL record back to the tables' RunRecord shape.

    Like ``run_one``, the reported time is solver time when the solve
    stage ran; a hard-killed worker has no stage trace, so its full
    wall clock is charged instead (the caller clamps at the limit).
    """
    seconds = record.get("solve_seconds")
    if seconds is None:
        seconds = record.get("seconds") or 0.0
    return RunRecord(
        instance=str(record.get("task")),
        solver=solver,
        sbp_kind=sbp_kind,
        instance_dependent=instance_dependent,
        k=k,
        status=str(record.get("status")),
        num_colors=record.get("num_colors"),
        seconds=float(seconds),
        solved=record.get("outcome") == "ok",
    )


def run_cell(
    instances: Sequence[Instance],
    k: int,
    solver: str,
    sbp_kind: str,
    instance_dependent: bool,
    time_limit: float,
    detection_node_limit: int,
    verbose: bool = False,
    preprocess: bool = True,
    reduce: bool = False,
    incremental: bool = True,
    jobs: int = 0,
    task_timeout: Optional[float] = None,
) -> CellResult:
    """Aggregate one table cell over the instance set.

    ``jobs >= 1`` runs the cell through the :mod:`repro.batch` pool
    (records come back in instance order, so the aggregate is
    deterministic); ``jobs=0`` keeps the sequential in-process loop.
    Both paths bound the *solver* with ``time_limit``, like the paper;
    ``task_timeout`` optionally adds a hard wall-clock kill per task
    (which also charges encode/detect time, so it is off by default to
    keep parallel tables comparable with sequential ones).
    """
    cell = CellResult(solver=solver, sbp_kind=sbp_kind, instance_dependent=instance_dependent)

    def report(record: RunRecord) -> None:
        cell.add(record, time_limit)
        if verbose:
            print(
                f"    {record.instance:12s} {record.status:8s} "
                f"colors={record.num_colors} {record.seconds:7.2f}s",
                flush=True,
            )

    if jobs:
        from ..batch import solve_many

        tasks = cell_tasks(
            instances, k, solver, sbp_kind, instance_dependent,
            time_limit, detection_node_limit,
            preprocess=preprocess, reduce=reduce, incremental=incremental,
        )
        batch = solve_many(
            tasks, jobs=jobs, task_timeout=task_timeout,
            on_record=lambda rec: report(
                record_to_run_record(rec, k, solver, sbp_kind, instance_dependent)
            ),
        )
        assert len(batch) == len(instances)
        return cell

    for instance in instances:
        report(run_one(
            instance, k, solver, sbp_kind, instance_dependent,
            time_limit, detection_node_limit,
            preprocess=preprocess, reduce=reduce, incremental=incremental,
        ))
    return cell


def format_seconds(seconds: float) -> str:
    """Compact runtime rendering in the paper's style (K = 1000 s)."""
    if seconds >= 1000:
        return f"{seconds / 1000:.1f}K"
    if seconds >= 100:
        return f"{seconds:.0f}"
    return f"{seconds:.1f}"
