"""Reproduction drivers for the paper's Tables 1-5.

Each ``tableN`` function runs the corresponding experiment at a given
scale and returns structured rows; ``render_tableN`` turns them into
the ASCII layout of the paper.  The benchmark harness under
``benchmarks/`` calls these with the ``tiny`` scale; the CLI
(``python -m repro.experiments``) exposes every scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..coloring.encoding import encode_coloring
from ..coloring.exact_dsatur import exact_chromatic_number
from ..sbp.instance_independent import apply_sbp
from ..symmetry.detect import detect_symmetries
from .instances import Instance, QUEENS_NAMES, ScalePreset, get_instance
from .runner import CellResult, format_seconds, run_cell, run_one

SBP_ROWS = ("none", "nu", "ca", "li", "sc", "nu+sc")
SBP_LABEL = {
    "none": "no SBPs", "nu": "NU", "ca": "CA",
    "li": "LI", "sc": "SC", "nu+sc": "NU+SC",
}


# ------------------------------------------------------------------ Table 1
@dataclass
class Table1Row:
    name: str
    num_vertices: int
    num_edges: int
    paper_chi: Optional[int]  # None = "> 20"
    measured_chi: Optional[int]  # None = not proved within budget
    measured_optimal: bool


def table1(scale: ScalePreset, per_instance_budget: Optional[float] = None) -> List[Table1Row]:
    """Benchmark statistics (paper Table 1), with measured chromatic numbers.

    The chromatic number is measured with the DSATUR branch-and-bound
    baseline under a small budget; instances whose chromatic number
    exceeds ``scale.k_primary`` are reported as such (the paper's
    "> 20" entries, scaled).
    """
    budget = per_instance_budget if per_instance_budget is not None else scale.time_limit
    rows: List[Table1Row] = []
    for instance in scale.instances():
        graph = instance.graph()
        result = exact_chromatic_number(graph, time_limit=budget)
        rows.append(
            Table1Row(
                name=instance.name,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                paper_chi=instance.chromatic,
                measured_chi=result.chromatic_number,
                measured_optimal=result.optimal,
            )
        )
    return rows


def render_table1(rows: Sequence[Table1Row], k_limit: int) -> str:
    """ASCII rendering in the paper's Table 1 layout."""
    lines = [f"{'Instance':14s} {'#V':>5s} {'#E':>6s} {'K(paper)':>9s} {'K(measured)':>12s}"]
    for r in rows:
        paper = str(r.paper_chi) if r.paper_chi is not None else ">20"
        if r.measured_chi is None:
            measured = "?"
        elif not r.measured_optimal:
            measured = f"<={r.measured_chi}"
        elif r.measured_chi > k_limit:
            measured = f">{k_limit} ({r.measured_chi})"
        else:
            measured = str(r.measured_chi)
        lines.append(
            f"{r.name:14s} {r.num_vertices:5d} {r.num_edges:6d} {paper:>9s} {measured:>12s}"
        )
    return "\n".join(lines)


# ------------------------------------------------------------------ Table 2
@dataclass
class Table2Row:
    sbp_kind: str
    num_vars: int = 0
    num_clauses: int = 0
    num_pb: int = 0
    order: float = 0.0  # total symmetry count (sum over instances)
    num_generators: int = 0
    detection_seconds: float = 0.0
    complete: bool = True


def table2(scale: ScalePreset, verbose: bool = False) -> List[Table2Row]:
    """Formula sizes + symmetry statistics per SBP construction (Table 2).

    As in the paper, numbers are totals over the instance set at
    ``K = scale.k_primary``: formula statistics, symmetry group order
    (``#S``), generator count (``#G``) and detection runtime.
    """
    rows: List[Table2Row] = []
    for kind in SBP_ROWS:
        row = Table2Row(sbp_kind=kind)
        for instance in scale.instances():
            graph = instance.graph()
            encoding = apply_sbp(encode_coloring(graph, scale.k_primary), kind)
            stats = encoding.formula.stats()
            row.num_vars += stats.num_vars
            row.num_clauses += stats.num_clauses
            row.num_pb += stats.num_pb
            report = detect_symmetries(
                encoding.formula, node_limit=scale.detection_node_limit
            )
            row.order += float(report.order)
            row.num_generators += report.num_generators
            row.detection_seconds += report.detection_seconds
            row.complete = row.complete and report.complete
            if verbose:
                print(
                    f"    {kind:6s} {instance.name:12s} #S={report.order:.3g} "
                    f"#G={report.num_generators} t={report.detection_seconds:.2f}s",
                    flush=True,
                )
        rows.append(row)
    return rows


def render_table2(rows: Sequence[Table2Row]) -> str:
    """ASCII rendering in the paper's Table 2 layout."""
    lines = [
        f"{'SBP':8s} {'#V':>8s} {'#CL':>9s} {'#PB':>7s} {'#S':>10s} {'#G':>6s} {'Time':>8s}"
    ]
    for r in rows:
        flag = "" if r.complete else "*"
        lines.append(
            f"{SBP_LABEL[r.sbp_kind]:8s} {r.num_vars:8d} {r.num_clauses:9d} "
            f"{r.num_pb:7d} {r.order:10.3g} {r.num_generators:6d} "
            f"{r.detection_seconds:7.1f}s{flag}"
        )
    if any(not r.complete for r in rows):
        lines.append("* search budget hit; counts are lower bounds")
    return "\n".join(lines)


# -------------------------------------------------------------- Tables 3, 4
@dataclass
class SolverTable:
    """One of the paper's Tables 3/4: cells[(sbp, solver, inst_dep)]."""

    k: int
    scale_name: str
    cells: Dict[Tuple[str, str, bool], CellResult] = field(default_factory=dict)


def solver_table(
    scale: ScalePreset,
    k: int,
    sbp_rows: Sequence[str] = SBP_ROWS,
    verbose: bool = False,
    jobs: int = 0,
) -> SolverTable:
    """Run the full (SBP row) x (solver) x (inst-dep?) grid at color budget k.

    ``jobs >= 1`` parallelizes each cell's instances through the
    :mod:`repro.batch` worker pool.
    """
    table = SolverTable(k=k, scale_name=scale.name)
    instances = scale.instances()
    for sbp in sbp_rows:
        for solver in scale.solvers:
            for inst_dep in (False, True):
                if verbose:
                    print(f"  cell sbp={sbp} solver={solver} inst_dep={inst_dep}", flush=True)
                cell = run_cell(
                    instances, k, solver, sbp, inst_dep,
                    scale.time_limit, scale.detection_node_limit,
                    verbose=verbose, jobs=jobs,
                )
                table.cells[(sbp, solver, inst_dep)] = cell
    return table


def table3(scale: ScalePreset, verbose: bool = False, jobs: int = 0) -> SolverTable:
    """Paper Table 3: the K=20 analog (``scale.k_primary``)."""
    return solver_table(scale, scale.k_primary, verbose=verbose, jobs=jobs)


def table4(scale: ScalePreset, verbose: bool = False, jobs: int = 0) -> SolverTable:
    """Paper Table 4: the K=30 analog (``scale.k_secondary``)."""
    return solver_table(scale, scale.k_secondary, verbose=verbose, jobs=jobs)


def render_solver_table(table: SolverTable, solvers: Sequence[str]) -> str:
    """ASCII rendering in the paper's Table 3/4 layout."""
    header = f"{'SBP':8s}"
    for solver in solvers:
        header += f" | {solver + ' orig':>12s} | {solver + ' w/i-d':>12s}"
    lines = [f"[scale={table.scale_name}, K={table.k}]", header]
    sbps = sorted({key[0] for key in table.cells}, key=SBP_ROWS.index)
    for sbp in sbps:
        line = f"{SBP_LABEL[sbp]:8s}"
        for solver in solvers:
            for inst_dep in (False, True):
                cell = table.cells.get((sbp, solver, inst_dep))
                if cell is None:
                    line += f" | {'-':>12s}"
                    continue
                text = f"{format_seconds(cell.total_seconds)}/{cell.num_solved}"
                line += f" | {text:>12s}"
        lines.append(line)
    lines.append("cells: total-seconds / #solved (paper format: Tm. / #S)")
    return "\n".join(lines)


# ------------------------------------------------------------------ Table 5
def table5(scale: ScalePreset, verbose: bool = False, jobs: int = 0) -> List:
    """Appendix Table 5: per-instance queens results, every construction.

    The grid's (instance, sbp, solver, inst-dep) combinations are
    independent, so ``jobs >= 1`` runs the whole table as one batch
    (results still arrive in grid order).
    """
    names = [n for n in QUEENS_NAMES if n in scale.instance_names] or list(QUEENS_NAMES[:2])
    grid = [
        (name, sbp, solver, inst_dep)
        for name in names
        for sbp in SBP_ROWS
        for solver in scale.solvers
        for inst_dep in (False, True)
    ]

    def report(record) -> None:
        if verbose:
            print(
                f"    {record.instance} {record.sbp_kind:6s} "
                f"{record.solver:8s} i-d={record.instance_dependent} "
                f"{record.status:8s} {record.seconds:6.2f}s",
                flush=True,
            )

    if jobs:
        from ..batch import solve_many
        from .runner import cell_tasks, record_to_run_record

        tasks = [
            cell_tasks(
                [get_instance(name)], scale.k_primary, solver, sbp, inst_dep,
                scale.time_limit, scale.detection_node_limit,
            )[0]
            for (name, sbp, solver, inst_dep) in grid
        ]
        batch = solve_many(tasks, jobs=jobs)
        records = []
        for rec, (name, sbp, solver, inst_dep) in zip(batch, grid):
            record = record_to_run_record(rec, scale.k_primary, solver, sbp, inst_dep)
            records.append(record)
            report(record)
        return records

    records = []
    for (name, sbp, solver, inst_dep) in grid:
        record = run_one(
            get_instance(name), scale.k_primary, solver, sbp, inst_dep,
            scale.time_limit, scale.detection_node_limit,
        )
        records.append(record)
        report(record)
    return records


def render_table5(records: Sequence, time_limit: float) -> str:
    """ASCII rendering in the paper's Table 5 (Appendix) layout."""
    lines = [f"{'Instance':11s} {'SBP':8s} " + " ".join(
        f"{'[' + s + ' o/w]':>17s}" for s in ("pbs2", "galena", "pueblo", "cplex-bb"))]
    by_key: Dict[Tuple[str, str], Dict[Tuple[str, bool], object]] = {}
    solvers_seen = []
    for r in records:
        by_key.setdefault((r.instance, r.sbp_kind), {})[(r.solver, r.instance_dependent)] = r
        if r.solver not in solvers_seen:
            solvers_seen.append(r.solver)
    for (instance, sbp), cells in by_key.items():
        line = f"{instance:11s} {SBP_LABEL[sbp]:8s} "
        for solver in solvers_seen:
            pair = []
            for inst_dep in (False, True):
                r = cells.get((solver, inst_dep))
                if r is None:
                    pair.append("-")
                elif r.solved:
                    pair.append(format_seconds(r.seconds))
                else:
                    pair.append("T/O")
            line += f"{pair[0] + '/' + pair[1]:>18s}"
        lines.append(line)
    lines.append(f"entries: orig/with-inst-dep; T/O = timeout at {time_limit:.0f}s")
    return "\n".join(lines)
