"""CLI for regenerating the paper's tables and figure.

Usage::

    python -m repro.experiments table1 [--scale tiny|small|paper]
    python -m repro.experiments table2 [--scale ...]
    python -m repro.experiments table3 [--scale ...]
    python -m repro.experiments table4 [--scale ...]
    python -m repro.experiments table5 [--scale ...]
    python -m repro.experiments figure1
    python -m repro.experiments all [--scale ...]
"""

from __future__ import annotations

import argparse
import sys

from .figure1 import figure1_counts, render_figure1
from .instances import get_scale
from .report import save_report
from .tables import (
    render_solver_table,
    render_table1,
    render_table2,
    render_table5,
    table1,
    table2,
    table3,
    table4,
    table5,
)

EXPERIMENTS = ("table1", "table2", "table3", "table4", "table5", "figure1", "all")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figure.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument("--scale", default="tiny", help="bench | tiny | small | paper")
    parser.add_argument("--jobs", "-j", type=int, default=0,
                        help="fan table solves across N worker processes "
                             "via repro.batch (0 = sequential in-process)")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write <experiment>.json/.md artifacts to DIR")
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    want = EXPERIMENTS[:-1] if args.experiment == "all" else (args.experiment,)
    metadata = {"scale": scale.name, "k_primary": scale.k_primary,
                "k_secondary": scale.k_secondary, "time_limit": scale.time_limit}

    def emit(name: str, rows, rendered: str) -> None:
        print(rendered)
        print()
        if args.save:
            save_report(args.save, f"{name}_{scale.name}", rows, rendered, metadata)

    if "table1" in want:
        print(f"== Table 1 (scale={scale.name}) ==")
        rows = table1(scale)
        emit("table1", rows, render_table1(rows, scale.k_primary))
    if "table2" in want:
        print(f"== Table 2 (scale={scale.name}, K={scale.k_primary}) ==")
        rows = table2(scale, verbose=args.verbose)
        emit("table2", rows, render_table2(rows))
    if "table3" in want:
        print(f"== Table 3 (scale={scale.name}, K={scale.k_primary}) ==")
        table = table3(scale, verbose=args.verbose, jobs=args.jobs)
        emit("table3", list(table.cells.values()),
             render_solver_table(table, scale.solvers))
    if "table4" in want:
        print(f"== Table 4 (scale={scale.name}, K={scale.k_secondary}) ==")
        table = table4(scale, verbose=args.verbose, jobs=args.jobs)
        emit("table4", list(table.cells.values()),
             render_solver_table(table, scale.solvers))
    if "table5" in want:
        print(f"== Table 5 (scale={scale.name}, K={scale.k_primary}) ==")
        records = table5(scale, verbose=args.verbose, jobs=args.jobs)
        emit("table5", records, render_table5(records, scale.time_limit))
    if "figure1" in want:
        print("== Figure 1 ==")
        rows = figure1_counts()
        emit("figure1", rows, render_figure1(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
