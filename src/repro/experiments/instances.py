"""The benchmark registry: the 20 DIMACS instances of the paper's Table 1.

``queen*``, ``myciel*`` are exact reconstructions; ``DSJC*`` are G(n, m)
with fixed seeds; the book / miles / games / register families are
calibrated synthetic stand-ins (see DESIGN.md).  Vertex and edge counts
match the published instances exactly (the paper's table prints the
``e``-line counts of the original ``.col`` files, which for several
families list both directions of each edge — we record the true
undirected counts).

Scale presets control how the experiment drivers run: the paper used
K = 20 / K = 30 with 1000 s timeouts on 2004 hardware; the default
reproduction scale is smaller so the whole suite finishes on a laptop,
and ``--scale paper`` restores the published parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..graphs.generators import (
    book_graph,
    games_graph,
    geometric_graph,
    gnm_graph,
    interference_graph,
    mycielski_graph,
    queens_graph,
)
from ..graphs.graph import Graph


@dataclass(frozen=True)
class Instance:
    """One benchmark instance: how to build it and what the paper says."""

    name: str
    family: str
    build: Callable[[], Graph]
    num_vertices: int
    num_edges: int
    chromatic: Optional[int]  # None => "> 20" in the paper's Table 1
    note: str = ""

    def graph(self) -> Graph:
        g = self.build()
        g.name = self.name
        if g.num_vertices != self.num_vertices or g.num_edges != self.num_edges:
            raise AssertionError(
                f"{self.name}: generator produced |V|={g.num_vertices}, "
                f"|E|={g.num_edges}; registry says {self.num_vertices}, {self.num_edges}"
            )
        return g


def _registry() -> Dict[str, Instance]:
    entries: List[Instance] = [
        Instance("anna", "book", lambda: book_graph(138, 493, seed=101, name="anna"),
                 138, 493, 11, "synthetic co-occurrence stand-in"),
        Instance("david", "book", lambda: book_graph(87, 406, seed=102, name="david"),
                 87, 406, 11, "synthetic co-occurrence stand-in"),
        Instance("DSJC125.1", "random", lambda: gnm_graph(125, 736, seed=103, name="DSJC125.1"),
                 125, 736, 5, "G(n,m) with fixed seed"),
        Instance("DSJC125.9", "random", lambda: gnm_graph(125, 6961, seed=104, name="DSJC125.9"),
                 125, 6961, None, "G(n,m) with fixed seed; chi > 20"),
        Instance("games120", "games", lambda: games_graph(120, 638, seed=105, name="games120"),
                 120, 638, 9, "near-regular schedule stand-in"),
        Instance("huck", "book", lambda: book_graph(74, 301, seed=106, name="huck"),
                 74, 301, 11, "synthetic co-occurrence stand-in"),
        Instance("jean", "book", lambda: book_graph(80, 254, seed=107, name="jean"),
                 80, 254, 10, "synthetic co-occurrence stand-in"),
        Instance("miles250", "mileage", lambda: geometric_graph(128, 387, seed=108, name="miles250"),
                 128, 387, 8, "random geometric stand-in"),
        Instance("mulsol.i.2", "register", lambda: interference_graph(188, 3885, depth=31, seed=109, name="mulsol.i.2"),
                 188, 3885, None, "interval-interference stand-in; chi > 20"),
        Instance("mulsol.i.4", "register", lambda: interference_graph(185, 3946, depth=31, seed=110, name="mulsol.i.4"),
                 185, 3946, None, "interval-interference stand-in; chi > 20"),
        Instance("myciel3", "mycielski", lambda: mycielski_graph(3),
                 11, 20, 4, "exact construction"),
        Instance("myciel4", "mycielski", lambda: mycielski_graph(4),
                 23, 71, 5, "exact construction"),
        Instance("myciel5", "mycielski", lambda: mycielski_graph(5),
                 47, 236, 6, "exact construction"),
        Instance("queen5_5", "queens", lambda: queens_graph(5, 5),
                 25, 160, 5, "exact construction"),
        Instance("queen6_6", "queens", lambda: queens_graph(6, 6),
                 36, 290, 7, "exact construction"),
        Instance("queen7_7", "queens", lambda: queens_graph(7, 7),
                 49, 476, 7, "exact construction"),
        Instance("queen8_12", "queens", lambda: queens_graph(8, 12),
                 96, 1368, 12, "exact construction"),
        Instance("zeroin.i.1", "register", lambda: interference_graph(211, 4100, depth=49, seed=111, name="zeroin.i.1"),
                 211, 4100, None, "interval-interference stand-in; chi > 20"),
        Instance("zeroin.i.2", "register", lambda: interference_graph(211, 3541, depth=30, seed=112, name="zeroin.i.2"),
                 211, 3541, None, "interval-interference stand-in; chi > 20"),
        Instance("zeroin.i.3", "register", lambda: interference_graph(206, 3540, depth=30, seed=113, name="zeroin.i.3"),
                 206, 3540, None, "interval-interference stand-in; chi > 20"),
    ]
    return {inst.name: inst for inst in entries}


REGISTRY: Dict[str, Instance] = _registry()

QUEENS_NAMES = ("queen5_5", "queen6_6", "queen7_7", "queen8_12")


def get_instance(name: str) -> Instance:
    """Look up an instance by its DIMACS name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown instance {name!r}; known: {sorted(REGISTRY)}")


def all_instances() -> List[Instance]:
    """All 20 instances in the paper's Table 1 order."""
    return list(REGISTRY.values())


@dataclass(frozen=True)
class ScalePreset:
    """Experiment scale: which instances, what K, what budgets."""

    name: str
    instance_names: Tuple[str, ...]
    k_primary: int  # the paper's K=20 analog (Tables 2, 3)
    k_secondary: int  # the paper's K=30 analog (Table 4)
    time_limit: float  # per-solve budget, seconds (paper: 1000)
    detection_node_limit: int
    solvers: Tuple[str, ...] = ("pbs2", "galena", "pueblo", "cplex-bb")

    def instances(self) -> List[Instance]:
        return [get_instance(n) for n in self.instance_names]


_TINY_NAMES = ("myciel3", "myciel4", "queen5_5", "huck", "jean")
_SMALL_NAMES = (
    "anna", "david", "DSJC125.1", "games120", "huck", "jean", "miles250",
    "myciel3", "myciel4", "myciel5", "queen5_5", "queen6_6", "queen7_7",
)

SCALES: Dict[str, ScalePreset] = {
    # Benchmark scale: seconds per table, for pytest-benchmark.
    "bench": ScalePreset(
        name="bench", instance_names=("myciel3", "myciel4", "queen5_5"),
        k_primary=6, k_secondary=8, time_limit=5.0,
        detection_node_limit=20000,
        solvers=("pbs2", "pueblo"),
    ),
    # CI scale: minutes for the whole table suite.
    "tiny": ScalePreset(
        name="tiny", instance_names=_TINY_NAMES,
        k_primary=6, k_secondary=8, time_limit=5.0,
        detection_node_limit=20000,
        solvers=("pbs2", "galena", "pueblo"),
    ),
    # Laptop scale: most of the qualitative trends, under an hour.
    "small": ScalePreset(
        name="small", instance_names=_SMALL_NAMES,
        k_primary=8, k_secondary=12, time_limit=20.0,
        detection_node_limit=50000,
    ),
    # The paper's parameters (hours to days in pure Python).
    "paper": ScalePreset(
        name="paper", instance_names=tuple(REGISTRY),
        k_primary=20, k_secondary=30, time_limit=1000.0,
        detection_node_limit=2_000_000,
    ),
}


def get_scale(name: str) -> ScalePreset:
    """Look up a scale preset by name."""
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; known: {sorted(SCALES)}")
