"""Benchmark export: materialize the registry as ``.col`` / ``.opb`` files.

Downstream users (or external solvers) may want the reproduced DIMACS
instances and their 0-1 ILP encodings as plain files.  ``export_instances``
writes every registry instance as DIMACS ``.col``; ``export_encodings``
additionally encodes each at a given K (with a chosen SBP construction)
in OPB format — the input format of pseudo-Boolean solver competitions.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional

from ..coloring.encoding import encode_coloring
from ..core.io_opb import write_opb
from ..graphs.dimacs import write_dimacs_graph
from ..sbp.instance_independent import apply_sbp
from .instances import Instance, all_instances


def export_instances(
    directory: str,
    instances: Optional[Iterable[Instance]] = None,
) -> List[str]:
    """Write instances as DIMACS ``.col``; returns the file paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for instance in instances if instances is not None else all_instances():
        path = os.path.join(directory, f"{instance.name}.col")
        write_dimacs_graph(instance.graph(), path)
        paths.append(path)
    return paths


def export_encodings(
    directory: str,
    k: int,
    sbp_kind: str = "none",
    instances: Optional[Iterable[Instance]] = None,
) -> List[str]:
    """Write K-coloring 0-1 ILP encodings as ``.opb``; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for instance in instances if instances is not None else all_instances():
        encoding = apply_sbp(encode_coloring(instance.graph(), k), sbp_kind)
        suffix = f".k{k}" + (f".{sbp_kind}" if sbp_kind != "none" else "")
        path = os.path.join(directory, f"{instance.name}{suffix}.opb")
        write_opb(encoding.formula, path)
        paths.append(path)
    return paths
