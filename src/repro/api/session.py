"""Reusable solve sessions: many queries, one persistent solver.

A :class:`Session` owns the persistent
:class:`~repro.coloring.sat_pipeline.IncrementalKSearch` for one graph
and answers *multiple* queries against it — decision at K, decision at
K−1, a full chromatic descent — all on the same solver, so learned
clauses, saved phases and activity carry across queries, not just
across the K values of a single search.

The encoding grows *upward* too: asking about a budget above the
currently encoded horizon adds the new color groups to the live solver
(:meth:`IncrementalKSearch.grow_to`) instead of re-encoding — the
ROADMAP's "incremental encoding growth upward" item.  Downward queries
are plain assumption queries, so a lowered budget can always be raised
back.

Progress callbacks fire per query; the cancellation predicate is
polled between queries *and inside each query* (every few dozen
conflicts in the solver's search loop), and makes the session return
its best-so-far answer with ``cancelled=True`` — a single monster
UNSAT query no longer needs the batch layer's hard kill.
"""

from __future__ import annotations

import copy
import time
from typing import Callable, List, Optional, Tuple

from ..coloring.sat_pipeline import IncrementalKSearch
from ..coloring.verify import check_proper
from ..graphs.cliques import clique_lower_bound
from ..graphs.coloring_heuristics import dsatur
from ..graphs.graph import Graph
from ..obs.hooks import active_tracer
from ..obs.metrics import get_registry
from ..resilience import Deadline
from ..sat.result import FEASIBLE, OPTIMAL, SAT, UNKNOWN, UNSAT
from .config import PipelineConfig
from .results import ProgressEvent, Result, RunContext, StageStat


def _note_deadline_expired() -> None:
    """Record a session-level budget expiry (traced event + counter)."""
    tracer = active_tracer()
    if tracer is not None:
        tracer.deadline_expired("session")
    get_registry().inc("deadline_expired_total", where="session")


class Session:
    """Multiple coloring queries on one graph, one persistent solver.

    ``config`` supplies the encoding/simplification knobs (the
    ``cdcl-incremental`` backend's subset: pairwise AMO, growth-safe
    SBPs, model-preserving simplification) and the default time limit.
    The solver is created lazily on the first query, encoded at that
    query's horizon, and only ever *grows* afterwards.
    """

    def __init__(
        self,
        graph: Graph,
        config: Optional[PipelineConfig] = None,
        on_progress: Optional[Callable[[ProgressEvent], None]] = None,
        cancel: Optional[Callable[[], bool]] = None,
    ):
        self.graph = graph
        self.config = config if config is not None else PipelineConfig()
        from ..coloring.sat_pipeline import GROWABLE_SBP_KINDS

        if self.config.symmetry.sbp_kind not in GROWABLE_SBP_KINDS:
            raise ValueError(
                f"Session supports sbp_kind in {GROWABLE_SBP_KINDS} (the "
                "growth-safe subset), got "
                f"{self.config.symmetry.sbp_kind!r}"
            )
        self._ctx = RunContext(on_progress=on_progress, cancel=cancel)
        self._search: Optional[IncrementalKSearch] = None
        self.solvers_created = 0
        self.queries: List[Tuple[int, str]] = []
        self._best_coloring = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release the persistent solver."""
        self._search = None

    @property
    def budget(self) -> int:
        """The currently encoded color horizon (0 before the first query)."""
        return self._search.max_k if self._search is not None else 0

    @property
    def stats(self):
        """Cumulative solver statistics over every query so far."""
        if self._search is None:
            from ..sat.result import SolverStats

            return SolverStats()
        return self._search.stats

    def _ensure_search(self, k_needed: int) -> IncrementalKSearch:
        """Create the solver at ``k_needed`` colors, or grow it to reach."""
        if self._search is None:
            self._search = IncrementalKSearch(
                self.graph,
                max(k_needed, 1),
                amo_encoding="pairwise",
                sbp_kind=self.config.symmetry.sbp_kind,
                simplify=self.config.simplify.enabled,
                growable=True,
            )
            self.solvers_created += 1
        elif k_needed > self._search.max_k:
            self._ctx.emit(
                "grow",
                f"raising color budget {self._search.max_k} -> {k_needed} "
                "(adding color groups in place)",
                k=k_needed,
            )
            self._search.grow_to(k_needed)
        return self._search

    def raise_budget(self, new_max: int) -> None:
        """Grow the encoded color horizon to ``new_max`` without re-encoding."""
        if new_max <= 0:
            raise ValueError(f"budget must be positive, got {new_max}")
        self._ensure_search(new_max)

    def _should_stop(self):
        """The in-query stop predicate the solver polls mid-search.

        Only armed when a cancel callback exists — the predicate is
        polled every few dozen conflicts, so even one monster UNSAT
        query inside :meth:`chromatic` stays interruptible.
        """
        return self._ctx.cancelled if self._ctx.cancel is not None else None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _result(self, status, coloring, seconds, query_k=None, query_status=None,
                cancelled=False) -> Result:
        queries = [(query_k, query_status)] if query_k is not None else []
        return Result(
            status=status,
            num_colors=len(set(coloring.values())) if coloring else
            (0 if coloring == {} else None),
            coloring=coloring,
            stages=[StageStat("solve", seconds)],
            # Snapshot: the session's cumulative stats keep growing with
            # later queries, but each returned Result must stand still.
            stats=copy.copy(self.stats),
            queries=queries,
            solvers_created=self.solvers_created,
            cancelled=cancelled,
        )

    def decide(self, k: int, time_limit: Optional[float] = None) -> Result:
        """Is the graph ``k``-colorable?  (SAT/UNSAT/UNKNOWN + coloring.)

        A ``k`` above the current horizon grows the encoding in place; a
        ``k`` below it is a plain assumption query — so interleaving
        budgets in any order keeps the one persistent solver.
        """
        t0 = time.monotonic()
        if k <= 0 or self.graph.num_vertices == 0:
            status = SAT if self.graph.num_vertices == 0 else UNSAT
            coloring = {} if status == SAT else None
            self.queries.append((k, status))
            return self._result(status, coloring, time.monotonic() - t0,
                                query_k=k, query_status=status)
        if self._ctx.cancelled():
            return self._result(UNKNOWN, None, time.monotonic() - t0,
                                cancelled=True)
        search = self._ensure_search(k)
        self._ctx.emit("query", f"deciding {k}-colorability", k=k)
        if time_limit is None:
            time_limit = self.config.solve.time_limit
        status, coloring, _ = search.solve_k(
            k, time_limit=time_limit, should_stop=self._should_stop()
        )
        self.queries.append((k, status))
        get_registry().inc("session_queries_total", status=status)
        self._ctx.emit("query", f"K={k}: {status}", k=k, status=status)
        if coloring is not None:
            self._best_coloring = coloring
        return self._result(status, coloring, time.monotonic() - t0,
                            query_k=k, query_status=status,
                            cancelled=status == UNKNOWN and self._ctx.cancelled())

    def chromatic(
        self,
        strategy: str = "linear",
        time_limit: Optional[float] = None,
        max_colors: Optional[int] = None,
        lower_bound: Optional[int] = None,
    ) -> Result:
        """Chromatic number by a K descent on the session's solver.

        Unlike the one-shot descent, nothing is disabled permanently —
        every query is assumption-based, so the session stays fully
        reusable (including budget raises) afterwards.

        ``lower_bound`` clamps the descent floor: colors below it are
        never probed, so the proved answer is ``max(lower_bound,
        chi(graph))`` rather than the chromatic number itself.  The
        component pool passes the *global* clique bound here — a
        component whose chromatic number falls below it cannot affect
        the recombined maximum, so distinguishing values under the bound
        is wasted UNSAT proving.
        """
        if strategy not in ("linear", "binary"):
            raise ValueError(f"unknown strategy {strategy!r}; expected linear/binary")
        t0 = time.monotonic()
        if time_limit is None:
            time_limit = self.config.solve.time_limit
        deadline = Deadline.after(time_limit)
        n = self.graph.num_vertices
        if n == 0:
            return self._result(OPTIMAL, {}, time.monotonic() - t0)
        if max_colors is not None and max_colors <= 0:
            return self._result(UNSAT, None, time.monotonic() - t0)
        heuristic, ub = dsatur(self.graph)
        lb = max(1, clique_lower_bound(self.graph), lower_bound or 0)
        best = {v: c + 1 for v, c in heuristic.items()}
        if ub <= lb and (max_colors is None or max_colors >= ub):
            # The clique bound meets the heuristic bound: the chromatic
            # number is proved without instantiating a solver.
            return self._result(OPTIMAL, best, time.monotonic() - t0)
        if max_colors is not None and max_colors < ub:
            # The cap undercuts the heuristic bound: establish
            # feasibility at the cap first.
            probe = self.decide(max_colors, time_limit=deadline.remaining())
            if probe.status != SAT:
                return self._result(
                    probe.status if probe.status == UNSAT else UNKNOWN,
                    None, time.monotonic() - t0, query_k=max_colors,
                    query_status=probe.status, cancelled=probe.cancelled,
                )
            best = probe.coloring
            ub = len(set(best.values()))
        search = self._ensure_search(ub)
        queries: List[Tuple[int, str]] = []
        proved_lb = lb

        def finish(status: str, coloring, cancelled=False) -> Result:
            # A descent stopped by its budget (or a cancel) before the
            # bounds met degrades to FEASIBLE: the best-so-far coloring,
            # re-verified here, with whatever bounds were proved.
            # Degradation weakens optimality, never correctness.
            degraded = status == SAT
            if degraded:
                status = FEASIBLE
                tracer = active_tracer()
                if tracer is not None:
                    tracer.degraded("session", FEASIBLE)
                get_registry().inc("session_degraded_total")
            upper = None
            if coloring:
                check_proper(self.graph, coloring)
                upper = len(set(coloring.values()))
            result = self._result(status, coloring, time.monotonic() - t0,
                                  cancelled=cancelled)
            result.degraded = degraded
            result.upper_bound = upper
            if status == OPTIMAL:
                result.lower_bound = upper
            elif status == FEASIBLE:
                result.lower_bound = proved_lb
            result.queries = queries
            return result

        if strategy == "linear":
            k = ub - 1
            while k >= lb:
                if deadline.expired():
                    _note_deadline_expired()
                    return finish(SAT, best)
                if self._ctx.cancelled():
                    return finish(SAT, best, cancelled=True)
                self._ctx.emit("query", f"deciding {k}-colorability", k=k)
                status, coloring, _ = search.solve_k(
                    k, time_limit=deadline.remaining(),
                    should_stop=self._should_stop(),
                )
                queries.append((k, status))
                self.queries.append((k, status))
                get_registry().inc("session_queries_total", status=status)
                self._ctx.emit("query", f"K={k}: {status}", k=k, status=status)
                if status == UNKNOWN:
                    return finish(SAT, best, cancelled=self._ctx.cancelled())
                if status == UNSAT:
                    return finish(OPTIMAL, best)
                best = coloring
                k = len(set(coloring.values())) - 1
            return finish(OPTIMAL, best)

        lo, hi = lb, ub
        while lo < hi:
            mid = (lo + hi) // 2
            if deadline.expired():
                _note_deadline_expired()
                return finish(SAT, best)
            if self._ctx.cancelled():
                return finish(SAT, best, cancelled=True)
            self._ctx.emit("query", f"deciding {mid}-colorability", k=mid)
            status, coloring, failed_colors = search.solve_k(
                mid, time_limit=deadline.remaining(),
                should_stop=self._should_stop(),
            )
            queries.append((mid, status))
            self.queries.append((mid, status))
            get_registry().inc("session_queries_total", status=status)
            self._ctx.emit("query", f"K={mid}: {status}", k=mid, status=status)
            if status == UNKNOWN:
                return finish(SAT, best, cancelled=self._ctx.cancelled())
            if status == UNSAT:
                lo = max(mid + 1, min(failed_colors) if failed_colors else 0)
                proved_lb = lo
            else:
                best = coloring
                hi = min(len(set(coloring.values())), mid)
        return finish(OPTIMAL, best)
