"""repro.api — the composable public API over the whole solve stack.

One import gives the four concepts every workload composes from:

* **Problems** — immutable value objects saying *what* to solve:
  :class:`DecisionProblem`, :class:`ChromaticProblem`,
  :class:`BudgetedOptimize`.
* **Pipeline** — a validated, reorderable stage chain (reduce → encode
  → sbp → simplify → detect → solve) with one small config dataclass
  per stage, replacing the historical kwarg soup.
* **Backends** — named engines behind a registry
  (``pb-pbs2``/``pb-galena``/``pb-pueblo``, ``cplex-bb``,
  ``cdcl-incremental``, ``cdcl-scratch``, ``brute``, ``exact-dsatur``);
  new engines plug in via :func:`register_backend` without touching
  call sites.
* **Session** — many queries on one graph sharing one persistent
  solver, including raising the color budget in place.
* **ComponentSessionPool** — kernelization composed with persistence:
  one persistent Session per kernel component, scheduled largest-first,
  recombined with per-component provenance.
* **Resilience** — :class:`Deadline` (one budget object threaded
  through every stage; expiry degrades to a verified ``FEASIBLE``
  best-so-far instead of discarding work) and :class:`RetryPolicy`
  (bounded, deterministic retry for the batch runner).  Re-exported
  from :mod:`repro.resilience`; see ``docs/resilience.md``.

Quickstart::

    from repro.api import ChromaticProblem, Pipeline
    from repro.graphs import queens_graph

    result = (Pipeline()
              .symmetry(sbp_kind="nu+sc")
              .solve(backend="pb-pbs2", time_limit=60)
              .run(ChromaticProblem(queens_graph(5, 5))))
    assert result.status == "OPTIMAL" and result.chromatic_number == 5

Multi-query session (one persistent solver, budget raised in place)::

    from repro.api import Session

    with Session(graph) as session:
        session.decide(5)          # encodes once at K=5
        session.decide(4)          # assumption query, same solver
        session.raise_budget(7)    # adds color groups 6..7 in place
        session.decide(7)          # still the same solver
"""

from ..resilience import Budget, Deadline, RetryPolicy
from .backends import (
    Backend,
    available_backends,
    get_backend,
    known_backend_names,
    register_backend,
    resolve_backend_name,
)
from .config import (
    DEFAULT_STAGE_ORDER,
    EncodeConfig,
    PipelineConfig,
    ReduceConfig,
    SHATTER_STAGE_ORDER,
    SimplifyConfig,
    SolveConfig,
    SymmetryConfig,
)
from .pipeline import Pipeline, solve_problem
from .pool import ComponentSessionPool
from .problems import (
    BudgetedOptimize,
    ChromaticProblem,
    DecisionProblem,
    PROBLEM_KINDS,
    Problem,
)
from .results import (
    ComponentTrace,
    ProgressEvent,
    Provenance,
    Result,
    RunContext,
    StageStat,
)
from .session import Session


def __getattr__(name):
    # Lazy so importing the api never pays for (or cycles into) the
    # batch subsystem; `from repro.api import solve_many` still works.
    if name == "solve_many":
        from ..batch import solve_many

        return solve_many
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Backend",
    "Budget",
    "BudgetedOptimize",
    "ChromaticProblem",
    "ComponentSessionPool",
    "ComponentTrace",
    "DEFAULT_STAGE_ORDER",
    "Deadline",
    "DecisionProblem",
    "EncodeConfig",
    "PROBLEM_KINDS",
    "Pipeline",
    "PipelineConfig",
    "Problem",
    "ProgressEvent",
    "Provenance",
    "ReduceConfig",
    "Result",
    "RetryPolicy",
    "RunContext",
    "SHATTER_STAGE_ORDER",
    "Session",
    "SimplifyConfig",
    "SolveConfig",
    "StageStat",
    "SymmetryConfig",
    "available_backends",
    "get_backend",
    "known_backend_names",
    "register_backend",
    "resolve_backend_name",
    "solve_many",
    "solve_problem",
]
