"""Per-component Session pool: kernelization composed with persistence.

Kernelization (peeling at the clique bound + component split) and the
persistent-solver K-search have lived side by side since PR 2 without
composing: the incremental descent ran *one* solver over the whole
kernel, so learned clauses from one component polluted the search of
another and a hard component stalled the easy ones.
:class:`ComponentSessionPool` closes that gap — after the kernel splits,
every connected component gets its own persistent
:class:`~repro.api.Session` (one :class:`IncrementalKSearch` each), the
pool schedules the component descents largest-first (optionally fanning
them across threads), and the answers recombine exactly:

``chi(G) = max(lb, max over components of chi(component))``

where ``lb`` is the clique bound the kernel was peeled at.  The merged
:class:`~repro.api.Result` carries one :class:`ComponentTrace` per
component (size, status, K-query trace, solver count) so callers can
see exactly which component cost what — and ``solvers_created`` equals
the number of components that needed a solver, the pool's contract.

The ``cdcl-incremental`` backend routes chromatic problems through the
pool by default whenever the kernel is disconnected
(``SolveConfig.split_components``); the pool class itself is public API
for callers that want to keep the per-component sessions alive for
follow-up queries.
"""

from __future__ import annotations

import copy
import time
from typing import Callable, Dict, List, Optional

from ..coloring.reduce import component_subgraphs, extend_coloring, peel_low_degree
from ..coloring.solve import PipelineInfo
from ..coloring.verify import check_proper
from ..graphs.cliques import clique_lower_bound
from ..graphs.graph import Graph
from ..obs.hooks import active_tracer
from ..obs.metrics import get_registry
from ..resilience import Deadline
from ..sat.result import FEASIBLE, OPTIMAL, SAT, UNKNOWN, UNSAT, SolverStats
from .config import PipelineConfig
from .results import ComponentTrace, ProgressEvent, Result, RunContext, StageStat
from .session import Session


#: Minimum fraction of the pool's remaining budget any one component's
#: descent receives, however small the component (the "floor slice").
_POOL_FLOOR = 0.1


def _kernelize(graph: Graph):
    """Peel at the clique bound and split: ``(lb, kernel, component pairs)``."""
    lb = max(1, clique_lower_bound(graph)) if graph.num_vertices else 0
    kernel = peel_low_degree(graph, max(1, lb))
    pairs = component_subgraphs(kernel.graph, largest_first=True)
    return lb, kernel, pairs


def _stats_delta(after, before):
    """Per-call solver statistics: ``after`` minus the ``before`` snapshot."""
    delta = SolverStats()
    delta.decisions = after.decisions - before.decisions
    delta.conflicts = after.conflicts - before.conflicts
    delta.propagations = after.propagations - before.propagations
    delta.restarts = after.restarts - before.restarts
    delta.learned = after.learned - before.learned
    delta.deleted = after.deleted - before.deleted
    delta.time_seconds = after.time_seconds - before.time_seconds
    return delta


class ComponentSessionPool:
    """One persistent :class:`Session` per kernel component.

    The pool kernelizes ``graph`` once at the clique lower bound
    (chi-preserving, like the whole-kernel incremental descent), splits
    the kernel into connected components, and lazily owns one Session —
    hence one persistent solver — per component.  :meth:`chromatic`
    runs the per-component K descents (largest component first, or
    concurrently with ``threads > 1``) and recombines status, coloring,
    stats, query traces and per-component provenance into one
    :class:`Result`.

    The pool is reusable: sessions keep their learned clauses between
    calls, so a second :meth:`chromatic` (or a direct query on a member
    of :attr:`sessions`) rides the already-warm solvers.
    """

    def __init__(
        self,
        graph: Graph,
        config: Optional[PipelineConfig] = None,
        on_progress: Optional[Callable[[ProgressEvent], None]] = None,
        cancel: Optional[Callable[[], bool]] = None,
        threads: int = 0,
        _kernelized: Optional[tuple] = None,
    ):
        self.graph = graph
        self.config = config if config is not None else PipelineConfig()
        if threads < 0:
            raise ValueError(f"threads must be >= 0, got {threads}")
        self.threads = threads
        self._ctx = RunContext(on_progress=on_progress, cancel=cancel)
        reduce_start = time.monotonic()
        if _kernelized is not None:
            # The backend probe already kernelized; don't redo the work.
            self.clique_bound, self.kernel, pairs = _kernelized
        else:
            self.clique_bound, self.kernel, pairs = _kernelize(graph)
        self._reduce_seconds = time.monotonic() - reduce_start
        #: Component vertex lists in kernel numbering, largest first.
        self.components: List[List[int]] = [vertices for vertices, _ in pairs]
        self._subgraphs: List[Graph] = [sub for _, sub in pairs]
        self.sessions: List[Session] = [
            Session(
                sub,
                config=self.config,
                on_progress=self._forward_progress(index),
                cancel=cancel,
            )
            for index, sub in enumerate(self._subgraphs)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "ComponentSessionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release every component's persistent solver."""
        for session in self.sessions:
            session.close()

    @property
    def solvers_created(self) -> int:
        """Persistent solvers instantiated so far (at most one per component)."""
        return sum(session.solvers_created for session in self.sessions)

    def _forward_progress(self, index: int):
        if self._ctx.on_progress is None:
            return None

        def forward(event: ProgressEvent) -> None:
            self._ctx.emit(
                event.stage,
                f"[component {index}] {event.message}",
                k=event.k,
                status=event.status,
            )

        return forward

    # ------------------------------------------------------------------
    # Chromatic number
    # ------------------------------------------------------------------

    def chromatic(
        self,
        strategy: str = "linear",
        time_limit: Optional[float] = None,
        max_colors: Optional[int] = None,
    ) -> Result:
        """Chromatic number via per-component persistent-solver descents.

        Every component descends independently on its own Session; the
        results recombine as the max over components (against the clique
        bound the kernel was peeled at), the component colorings are
        unioned — disjoint components may share color classes — and the
        peeled vertices are greedily re-inserted.  ``max_colors`` caps
        the answer exactly: a cap below the clique bound, or below any
        single component's chromatic number, is UNSAT.
        """
        t0 = time.monotonic()
        if time_limit is None:
            time_limit = self.config.solve.time_limit
        info = PipelineInfo(
            preprocess=self.config.simplify.enabled,
            reduce=True,
            original_vertices=self.graph.num_vertices,
            kernel_vertices=self.kernel.graph.num_vertices,
            peeled_vertices=self.graph.num_vertices
            - self.kernel.graph.num_vertices,
        )
        if self.graph.num_vertices == 0:
            return Result(status=OPTIMAL, num_colors=0, coloring={},
                          pipeline=info)
        if max_colors is not None and max_colors <= 0:
            return Result(status=UNSAT, pipeline=info)
        reduce_stage = StageStat(
            "reduce", self._reduce_seconds,
            {
                "clique_bound": self.clique_bound,
                "kernel_vertices": info.kernel_vertices,
                "peeled_vertices": info.peeled_vertices,
                "components": len(self.components),
            },
        )
        if max_colors is not None and self.clique_bound > max_colors:
            # The kernel contains a clique larger than the cap.
            return Result(status=UNSAT, stages=[reduce_stage], pipeline=info)
        if not self.components:
            # Peeling dissolved the whole graph: replaying it greedily
            # colors within the clique bound, which is optimal.
            coloring = extend_coloring(self.kernel, {})
            check_proper(self.graph, coloring)
            return Result(
                status=OPTIMAL,
                num_colors=len(set(coloring.values())),
                coloring=coloring,
                stages=[reduce_stage],
                pipeline=info,
            )

        deadline = Deadline.after(time_limit)
        tracer = active_tracer()
        if tracer is not None:
            tracer.pool_begin(len(self.components))
        registry = get_registry()
        registry.inc("pool_runs_total")
        registry.observe("pool_components", len(self.components))
        # Budget split: weighted by component size (descent cost scales
        # with vertices), floored so a tiny component still gets a
        # searchable slice instead of being starved by a giant sibling.
        weights = [float(sub.num_vertices) for sub in self._subgraphs]

        def solve_component(index: int, limit: Optional[float]) -> Result:
            if tracer is not None:
                tracer.component_begin(
                    index, self._subgraphs[index].num_vertices)
            self._ctx.emit(
                "pool",
                f"[component {index}] descent on "
                f"{self._subgraphs[index].num_vertices} vertices",
            )
            result = self.sessions[index].chromatic(
                strategy=strategy,
                time_limit=limit,
                max_colors=max_colors,
                # Colors below the global clique bound cannot change the
                # recombined max — no component descends past it.
                lower_bound=self.clique_bound,
            )
            if tracer is not None:
                tracer.component_end(index, result.status, result.num_colors)
            registry.inc("pool_component_total", status=result.status)
            return result

        # Sessions report *cumulative* stats; snapshot them so a reused
        # pool attributes only this call's work to this call's Result.
        baselines = [copy.copy(session.stats) for session in self.sessions]
        indices = range(len(self.components))
        if self.threads > 1 and len(self.components) > 1:
            from concurrent.futures import ThreadPoolExecutor

            # Concurrent components split the remaining budget upfront;
            # each child deadline is clamped by the pool's own.
            children = deadline.split(weights, floor_fraction=_POOL_FLOOR)
            with ThreadPoolExecutor(
                max_workers=min(self.threads, len(self.components))
            ) as executor:
                results = list(
                    executor.map(
                        lambda i: solve_component(i, children[i].remaining()),
                        indices,
                    )
                )
        else:
            results = []
            for index in indices:
                # Sequential weighted allotment, recomputed against the
                # still-unsolved components' total weight: budget a fast
                # component left unused flows to the ones after it.
                limit = deadline.share(
                    weights[index],
                    sum(weights[index:]),
                    floor_fraction=_POOL_FLOOR,
                )
                result = solve_component(index, limit)
                results.append(result)
                if result.status == UNSAT:
                    # Definitive: one component over the cap settles the
                    # whole answer — don't pay for the rest (their
                    # traces are simply absent from the merged result).
                    break
        merged = self._merge(results, baselines, info, reduce_stage, t0)
        if tracer is not None:
            tracer.pool_end(merged.status, merged.num_colors)
        return merged

    def _merge(
        self,
        results: List[Result],
        baselines: List,
        info: PipelineInfo,
        reduce_stage: StageStat,
        t0: float,
    ) -> Result:
        merged = Result(status=OPTIMAL, stages=[reduce_stage], pipeline=info)
        kernel_coloring: Dict[int, int] = {}
        proved_lb = self.clique_bound
        for index, result in enumerate(results):
            call_stats = _stats_delta(result.stats, baselines[index])
            trace = ComponentTrace(
                index=index,
                vertices=self._subgraphs[index].num_vertices,
                edges=self._subgraphs[index].num_edges,
                status=result.status,
                num_colors=result.num_colors,
                queries=list(result.queries),
                solvers_created=result.solvers_created,
                seconds=result.total_seconds,
                cancelled=result.cancelled,
            )
            merged.components.append(trace)
            merged.stats.merge(call_stats)
            merged.queries.extend(result.queries)
            merged.solvers_created += result.solvers_created
            merged.cancelled = merged.cancelled or result.cancelled
            merged.degraded = merged.degraded or result.degraded
            if result.status in (UNSAT, UNKNOWN):
                # A component over the cap (UNSAT) is definitive; an
                # inconclusive component leaves the whole answer open.
                if merged.status != UNSAT:
                    merged.status = result.status
                continue
            if result.lower_bound is not None:
                proved_lb = max(proved_lb, result.lower_bound)
            if result.status in (SAT, FEASIBLE) and merged.status == OPTIMAL:
                # A budget-degraded component caps the merged answer at
                # feasible: its coloring is verified, its optimum isn't.
                merged.status = FEASIBLE
            info.components_solved += 1
            for local, color in sorted(result.coloring.items()):
                kernel_coloring[self.components[index][local]] = color
        merged.stages.append(StageStat("solve", time.monotonic() - t0))
        if merged.status in (UNSAT, UNKNOWN):
            return merged
        coloring = extend_coloring(self.kernel, kernel_coloring)
        check_proper(self.graph, coloring)
        merged.coloring = coloring
        merged.num_colors = len(set(coloring.values()))
        merged.upper_bound = merged.num_colors
        merged.lower_bound = (
            merged.num_colors if merged.status == OPTIMAL else proved_lb
        )
        return merged


def pooled_chromatic_result(problem, config, ctx):
    """The ``cdcl-incremental`` backend's pool route.

    Returns ``(result, kernelized)``.  ``result`` is ``None`` when
    pooling does not apply — the kernel is connected (the whole-kernel
    persistent descent is already optimal there), or the configuration
    uses a construction the growable per-component sessions cannot host
    (non-pairwise AMO, NU chains) — and the caller falls back to the
    whole-kernel incremental descent.  ``kernelized`` is the probe's
    ``(clique bound, kernel, component pairs)`` when it was computed,
    so the fallback can reuse it instead of kernelizing again.
    """
    from ..coloring.sat_pipeline import GROWABLE_SBP_KINDS

    if config.symmetry.sbp_kind not in GROWABLE_SBP_KINDS:
        return None, None
    if config.encode.amo != "pairwise":
        return None, None
    # Cheap disconnectedness probe first: the common connected case must
    # not pay for Session construction (and the kernelization is handed
    # to the pool, not redone).
    kernelized = _kernelize(problem.graph)
    if len(kernelized[2]) <= 1:
        return None, kernelized
    pool = ComponentSessionPool(
        problem.graph,
        config=config,
        on_progress=ctx.on_progress,
        cancel=ctx.cancel,
        threads=config.solve.pool_threads,
        _kernelized=kernelized,
    )
    strategy = config.solve.strategy or "linear"
    ctx.emit(
        "pool",
        f"kernel split into {len(pool.components)} components; "
        "per-component persistent solvers",
    )
    result = pool.chromatic(
        strategy=strategy,
        time_limit=config.solve.time_limit,
        max_colors=problem.max_colors,
    )
    return result, kernelized
