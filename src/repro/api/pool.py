"""Per-component Session pool: kernelization composed with persistence.

Kernelization (peeling at the clique bound + component split) and the
persistent-solver K-search have lived side by side since PR 2 without
composing: the incremental descent ran *one* solver over the whole
kernel, so learned clauses from one component polluted the search of
another and a hard component stalled the easy ones.
:class:`ComponentSessionPool` closes that gap — after the kernel splits,
every connected component gets its own persistent
:class:`~repro.api.Session` (one :class:`IncrementalKSearch` each), the
pool schedules the component descents largest-first, and the answers
recombine exactly:

``chi(G) = max(lb, max over components of chi(component))``

where ``lb`` is the clique bound the kernel was peeled at.  The merged
:class:`~repro.api.Result` carries one :class:`ComponentTrace` per
component (size, status, K-query trace, solver count) so callers can
see exactly which component cost what — and ``solvers_created`` equals
the number of components that needed a solver, the pool's contract.

Execution tiers (``SolveConfig.pool_jobs`` / ``pool_threads``):

* **sequential** (the default) — largest component first, with the
  pool's :class:`~repro.resilience.Deadline` shared via
  :meth:`Deadline.share` so unused budget flows forward;
* **process fan-out** (``jobs > 1``) — each component *subproblem*
  (graph + config + budget slice, never the live Session) is serialized
  to a worker process, with a per-component child deadline, a parent-
  side hard kill deadline, crash retry via
  :class:`~repro.resilience.RetryPolicy` (then an inline fallback solve,
  so a dying worker can never lose the answer), and a shared stop event
  that cancels siblings the moment one component proves UNSAT;
* **thread fan-out** (``threads > 1``, deprecated) — the historical
  GIL-bound tier, kept for measurement; it shares the same stop-event
  early exit.

Whatever the tier, results recombine identically — the differential
harness (``tests/test_component_pool.py``) holds pool == single-solver
== scratch == exact-dsatur across all of them.  In process mode the
parent's sessions stay cold (worker state dies with the worker); the
pool stays reusable, but a second call re-solves rather than riding
warm solvers.

The ``cdcl-incremental`` backend routes chromatic problems through the
pool by default whenever the kernel is disconnected
(``SolveConfig.split_components``); the pool class itself is public API
for callers that want to keep the per-component sessions alive for
follow-up queries.
"""

from __future__ import annotations

import copy
import multiprocessing
import multiprocessing.connection
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from ..coloring.reduce import component_subgraphs, extend_coloring, peel_low_degree
from ..coloring.solve import PipelineInfo
from ..coloring.verify import check_proper
from ..graphs.cliques import clique_lower_bound
from ..graphs.graph import Graph
from ..obs.hooks import active_tracer
from ..obs.metrics import get_registry
from ..resilience import Deadline, RetryPolicy
from ..resilience.faults import fire as _fire_fault
from ..resilience.faults import install_env_faults
from ..sat.result import FEASIBLE, OPTIMAL, SAT, UNKNOWN, UNSAT, SolverStats
from .config import PipelineConfig
from .results import ComponentTrace, ProgressEvent, Result, RunContext, StageStat
from .session import Session


#: Minimum fraction of the pool's remaining budget any one component's
#: descent receives, however small the component (the "floor slice").
_POOL_FLOOR = 0.1

#: Worker deaths are transient: retried this many times per component
#: before the parent solves the component inline instead.
_WORKER_RETRIES = 1


def _kernelize(graph: Graph):
    """Peel at the clique bound and split: ``(lb, kernel, component pairs)``."""
    lb = max(1, clique_lower_bound(graph)) if graph.num_vertices else 0
    kernel = peel_low_degree(graph, max(1, lb))
    pairs = component_subgraphs(kernel.graph, largest_first=True)
    return lb, kernel, pairs


def _stats_delta(after, before):
    """Per-call solver statistics: ``after`` minus the ``before`` snapshot."""
    delta = SolverStats()
    delta.decisions = after.decisions - before.decisions
    delta.conflicts = after.conflicts - before.conflicts
    delta.propagations = after.propagations - before.propagations
    delta.restarts = after.restarts - before.restarts
    delta.learned = after.learned - before.learned
    delta.deleted = after.deleted - before.deleted
    delta.time_seconds = after.time_seconds - before.time_seconds
    return delta


def _solve_pool_component(pool: "ComponentSessionPool", index: int,
                          limit: Optional[float], strategy: str,
                          max_colors: Optional[int]) -> Optional[Result]:
    """Thread-tier worker: one component descent on the pool's Session.

    Module-level (not a closure) so the submission obeys RPR006's
    no-closures-at-the-pool-boundary rule for every executor tier.
    Returns ``None`` when a sibling already settled the answer before
    this descent started (its trace is then absent from the merge, the
    same as the sequential early exit); flips the pool's stop event on
    a definitive UNSAT so in-flight siblings cancel mid-query.
    """
    if pool._stop.is_set():
        return None
    result = pool._solve_component(index, limit, strategy, max_colors)
    if result.status == UNSAT:
        pool._stop.set()
    return result


def _component_worker(payload: Dict[str, object], conn, stop_event) -> None:
    """Process-tier worker entry: solve one component subproblem.

    The payload is the serialized *subproblem* — the component graph,
    the (frozen, picklable) pipeline config and the budget slice —
    never a live Session.  The full :class:`Result` object travels back
    over the pipe (every field is a plain picklable dataclass).
    ``stop_event`` is the cross-process cancel: the Session polls it
    inside ``CDCLSolver.solve`` via ``should_stop``, so a sibling's
    UNSAT interrupts this descent within one conflict batch.
    """
    try:
        install_env_faults()
        _fire_fault("racer", f"component:{payload['index']}")
        session = Session(
            payload["graph"],
            config=payload["config"],
            cancel=stop_event.is_set,
        )
        result = session.chromatic(
            strategy=payload["strategy"],
            time_limit=payload["time_limit"],
            max_colors=payload["max_colors"],
            lower_bound=payload["lower_bound"],
        )
        message: Tuple[str, object] = ("ok", result)
    except BaseException as exc:  # noqa: BLE001 - must report, not vanish
        message = ("error", f"{type(exc).__name__}: {exc}")
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):
        pass
    finally:
        conn.close()


class _PoolFlight:
    """One in-flight component worker (``kill_at`` is the parent-side
    hard deadline on the *real* clock — the backstop that holds even
    when a fault skews the worker's own clock)."""

    __slots__ = ("index", "process", "conn", "kill_at", "retries")

    def __init__(self, index, process, conn, kill_at, retries):
        self.index = index
        self.process = process
        self.conn = conn
        self.kill_at = kill_at
        self.retries = retries


class ComponentSessionPool:
    """One persistent :class:`Session` per kernel component.

    The pool kernelizes ``graph`` once at the clique lower bound
    (chi-preserving, like the whole-kernel incremental descent), splits
    the kernel into connected components, and lazily owns one Session —
    hence one persistent solver — per component.  :meth:`chromatic`
    runs the per-component K descents (largest component first;
    ``jobs > 1`` fans them across worker processes, ``threads > 1``
    across threads) and recombines status, coloring, stats, query
    traces and per-component provenance into one :class:`Result`.

    The pool is reusable: in the sequential and thread tiers sessions
    keep their learned clauses between calls, so a second
    :meth:`chromatic` (or a direct query on a member of
    :attr:`sessions`) rides the already-warm solvers.
    """

    def __init__(
        self,
        graph: Graph,
        config: Optional[PipelineConfig] = None,
        on_progress: Optional[Callable[[ProgressEvent], None]] = None,
        cancel: Optional[Callable[[], bool]] = None,
        threads: int = 0,
        jobs: int = 0,
        _kernelized: Optional[tuple] = None,
    ):
        self.graph = graph
        self.config = config if config is not None else PipelineConfig()
        if threads < 0:
            raise ValueError(f"threads must be >= 0, got {threads}")
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        self.threads = threads
        self.jobs = jobs
        self._ctx = RunContext(on_progress=on_progress, cancel=cancel)
        # Set when one component's answer settles the whole pool (a
        # definitive UNSAT): in-flight sibling descents poll it through
        # their Session cancel predicate and stop mid-query.
        self._stop = threading.Event()
        reduce_start = time.monotonic()
        if _kernelized is not None:
            # The backend probe already kernelized; don't redo the work.
            self.clique_bound, self.kernel, pairs = _kernelized
        else:
            self.clique_bound, self.kernel, pairs = _kernelize(graph)
        self._reduce_seconds = time.monotonic() - reduce_start
        #: Component vertex lists in kernel numbering, largest first.
        self.components: List[List[int]] = [vertices for vertices, _ in pairs]
        self._subgraphs: List[Graph] = [sub for _, sub in pairs]
        self.sessions: List[Session] = [
            Session(
                sub,
                config=self.config,
                on_progress=self._forward_progress(index),
                cancel=self._session_cancel,
            )
            for index, sub in enumerate(self._subgraphs)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "ComponentSessionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release every component's persistent solver."""
        for session in self.sessions:
            session.close()

    @property
    def solvers_created(self) -> int:
        """Persistent solvers instantiated so far (at most one per component).

        Counts this process's sessions: component descents that ran in
        worker processes report their solver counts through the merged
        Result instead."""
        return sum(session.solvers_created for session in self.sessions)

    def _session_cancel(self) -> bool:
        """Sibling-settled stop OR the caller's own cancel predicate."""
        return self._stop.is_set() or self._ctx.cancelled()

    def _forward_progress(self, index: int):
        if self._ctx.on_progress is None:
            return None

        def forward(event: ProgressEvent) -> None:
            self._ctx.emit(
                event.stage,
                f"[component {index}] {event.message}",
                k=event.k,
                status=event.status,
            )

        return forward

    # ------------------------------------------------------------------
    # Chromatic number
    # ------------------------------------------------------------------

    def chromatic(
        self,
        strategy: str = "linear",
        time_limit: Optional[float] = None,
        max_colors: Optional[int] = None,
    ) -> Result:
        """Chromatic number via per-component persistent-solver descents.

        Every component descends independently on its own Session; the
        results recombine as the max over components (against the clique
        bound the kernel was peeled at), the component colorings are
        unioned — disjoint components may share color classes — and the
        peeled vertices are greedily re-inserted.  ``max_colors`` caps
        the answer exactly: a cap below the clique bound, or below any
        single component's chromatic number, is UNSAT — and a component
        proving UNSAT cancels every in-flight sibling (their traces are
        simply absent from, or marked cancelled in, the merged result).
        """
        t0 = time.monotonic()
        self._stop.clear()
        if time_limit is None:
            time_limit = self.config.solve.time_limit
        info = PipelineInfo(
            preprocess=self.config.simplify.enabled,
            reduce=True,
            original_vertices=self.graph.num_vertices,
            kernel_vertices=self.kernel.graph.num_vertices,
            peeled_vertices=self.graph.num_vertices
            - self.kernel.graph.num_vertices,
        )
        if self.graph.num_vertices == 0:
            return Result(status=OPTIMAL, num_colors=0, coloring={},
                          pipeline=info)
        if max_colors is not None and max_colors <= 0:
            return Result(status=UNSAT, pipeline=info)
        reduce_stage = StageStat(
            "reduce", self._reduce_seconds,
            {
                "clique_bound": self.clique_bound,
                "kernel_vertices": info.kernel_vertices,
                "peeled_vertices": info.peeled_vertices,
                "components": len(self.components),
            },
        )
        if max_colors is not None and self.clique_bound > max_colors:
            # The kernel contains a clique larger than the cap.
            return Result(status=UNSAT, stages=[reduce_stage], pipeline=info)
        if not self.components:
            # Peeling dissolved the whole graph: replaying it greedily
            # colors within the clique bound, which is optimal.
            coloring = extend_coloring(self.kernel, {})
            check_proper(self.graph, coloring)
            return Result(
                status=OPTIMAL,
                num_colors=len(set(coloring.values())),
                coloring=coloring,
                stages=[reduce_stage],
                pipeline=info,
            )

        deadline = Deadline.after(time_limit)
        tracer = active_tracer()
        if tracer is not None:
            tracer.pool_begin(len(self.components))
        registry = get_registry()
        registry.inc("pool_runs_total")
        registry.observe("pool_components", len(self.components))
        # Budget split: weighted by component size (descent cost scales
        # with vertices), floored so a tiny component still gets a
        # searchable slice instead of being starved by a giant sibling.
        weights = [float(sub.num_vertices) for sub in self._subgraphs]

        # Sessions report *cumulative* stats; snapshot them so a reused
        # pool attributes only this call's work to this call's Result.
        # (Process-tier workers report self-contained per-call stats, so
        # their baseline is the zero snapshot.)
        baselines = [copy.copy(session.stats) for session in self.sessions]
        indices = range(len(self.components))
        if self.jobs > 1 and len(self.components) > 1:
            pairs = self._run_processes(
                deadline, weights, strategy, max_colors)
            baselines = [SolverStats() for _ in self.components]
        elif self.threads > 1 and len(self.components) > 1:
            pairs = self._run_threads(deadline, weights, strategy, max_colors)
        else:
            pairs = []
            for index in indices:
                # Sequential weighted allotment, recomputed against the
                # still-unsolved components' total weight: budget a fast
                # component left unused flows to the ones after it.
                limit = deadline.share(
                    weights[index],
                    sum(weights[index:]),
                    floor_fraction=_POOL_FLOOR,
                )
                result = self._solve_component(
                    index, limit, strategy, max_colors)
                pairs.append((index, result))
                if result.status == UNSAT:
                    # Definitive: one component over the cap settles the
                    # whole answer — don't pay for the rest (their
                    # traces are simply absent from the merged result).
                    break
        merged = self._merge(pairs, baselines, info, reduce_stage, t0)
        if tracer is not None:
            tracer.pool_end(merged.status, merged.num_colors)
        return merged

    def _solve_component(self, index: int, limit: Optional[float],
                         strategy: str, max_colors: Optional[int]) -> Result:
        """One component descent on this process's Session (seq/thread)."""
        tracer = active_tracer()
        if tracer is not None:
            tracer.component_begin(index, self._subgraphs[index].num_vertices)
        self._ctx.emit(
            "pool",
            f"[component {index}] descent on "
            f"{self._subgraphs[index].num_vertices} vertices",
        )
        result = self.sessions[index].chromatic(
            strategy=strategy,
            time_limit=limit,
            max_colors=max_colors,
            # Colors below the global clique bound cannot change the
            # recombined max — no component descends past it.
            lower_bound=self.clique_bound,
        )
        if tracer is not None:
            tracer.component_end(index, result.status, result.num_colors)
        get_registry().inc("pool_component_total", status=result.status)
        return result

    # ------------------------------------------------------------------
    # Thread tier (deprecated, kept for measurement)
    # ------------------------------------------------------------------

    def _run_threads(self, deadline: Deadline, weights: List[float],
                     strategy: str,
                     max_colors: Optional[int]) -> List[Tuple[int, Result]]:
        from concurrent.futures import ThreadPoolExecutor

        # Concurrent components split the remaining budget upfront;
        # each child deadline is clamped by the pool's own.
        children = deadline.split(weights, floor_fraction=_POOL_FLOOR)
        with ThreadPoolExecutor(
            max_workers=min(self.threads, len(self.components))
        ) as executor:
            futures = [
                executor.submit(
                    _solve_pool_component, self, index,
                    children[index].remaining(), strategy, max_colors,
                )
                for index in range(len(self.components))
            ]
            results = [future.result() for future in futures]
        return [
            (index, result)
            for index, result in enumerate(results)
            if result is not None
        ]

    # ------------------------------------------------------------------
    # Process tier (the multi-core path)
    # ------------------------------------------------------------------

    def _run_processes(self, deadline: Deadline, weights: List[float],
                       strategy: str,
                       max_colors: Optional[int]) -> List[Tuple[int, Result]]:
        """Fan component subproblems across worker processes.

        Per component: a child deadline split from the pool's (clamped
        to the parent), a parent-side ``kill_at`` hard deadline on the
        real clock, retry-on-death via :class:`RetryPolicy`, and an
        inline fallback solve when retries run out — a crashing worker
        degrades throughput, never correctness.  A definitive UNSAT
        sets the shared stop event (workers poll it in-query) and the
        parent terminates the stragglers.
        """
        ctx = multiprocessing.get_context()
        stop_event = ctx.Event()
        retry_policy = RetryPolicy(max_retries=_WORKER_RETRIES)
        children = deadline.split(weights, floor_fraction=_POOL_FLOOR)
        registry = get_registry()
        tracer = active_tracer()
        pending = deque(range(len(self.components)))
        flights: Dict[int, _PoolFlight] = {}
        pairs: List[Tuple[int, Result]] = []
        unsat = False
        max_workers = min(self.jobs, len(self.components))

        def launch(index: int, retries: int) -> None:
            limit = children[index].remaining()
            if tracer is not None and retries == 0:
                tracer.component_begin(
                    index, self._subgraphs[index].num_vertices)
            self._ctx.emit(
                "pool",
                f"[component {index}] worker descent on "
                f"{self._subgraphs[index].num_vertices} vertices",
            )
            recv, send = ctx.Pipe(duplex=False)
            payload = {
                "index": index,
                "graph": self._subgraphs[index],
                "config": self.config,
                "strategy": strategy,
                "time_limit": limit,
                "max_colors": max_colors,
                "lower_bound": self.clique_bound,
            }
            process = ctx.Process(
                target=_component_worker,
                args=(payload, send, stop_event),
                daemon=True,
            )
            process.start()
            send.close()  # the parent only reads
            kill_at = Deadline.after(
                limit + max(1.0, 0.5 * limit) if limit is not None else None
            )
            flights[index] = _PoolFlight(index, process, recv, kill_at, retries)

        def settle(index: int, result: Result) -> None:
            nonlocal unsat
            pairs.append((index, result))
            if tracer is not None:
                tracer.component_end(index, result.status, result.num_colors)
            registry.inc("pool_component_total", status=result.status)
            if result.status == UNSAT:
                unsat = True
                stop_event.set()
                self._stop.set()

        def fallback(index: int, note: str) -> None:
            """Solve the component inline with whatever budget is left."""
            self._ctx.emit("pool", f"[component {index}] {note}; "
                                   "solving inline in the parent")
            registry.inc("pool_worker_fallback_total")
            settle(index, self.sessions[index].chromatic(
                strategy=strategy,
                time_limit=children[index].remaining(),
                max_colors=max_colors,
                lower_bound=self.clique_bound,
            ))

        while pending or flights:
            if self._ctx.cancelled():
                # The caller's cancel reaches workers through the shared
                # event; they return verified best-so-far results, which
                # the loop keeps draining below.
                stop_event.set()
            while pending and len(flights) < max_workers and not unsat:
                launch(pending.popleft(), 0)
            if not flights:
                break
            self._wait(flights)
            for index in list(flights):
                flight = flights[index]
                if flight.conn.poll():
                    try:
                        outcome, value = flight.conn.recv()
                    except (EOFError, OSError):
                        outcome, value = "died", "worker pipe closed"
                    self._reap(flight)
                    del flights[index]
                    if outcome == "ok":
                        settle(index, value)
                    elif retry_policy.should_retry("died", flight.retries) \
                            and outcome == "died":
                        launch(index, flight.retries + 1)
                    else:
                        fallback(index, f"worker failed ({value})")
                elif not flight.process.is_alive():
                    # Died without reporting (crash, OOM, injected
                    # kill).  Drain first: a message may have raced in
                    # between poll() and the death check.
                    if flight.conn.poll():
                        continue  # handled by the poll branch next pass
                    self._reap(flight)
                    del flights[index]
                    registry.inc("pool_worker_deaths_total")
                    if retry_policy.should_retry("died", flight.retries):
                        launch(index, flight.retries + 1)
                    else:
                        fallback(index, "worker died twice")
                elif flight.kill_at.expired():
                    # The worker overran its slice past the grace — the
                    # cooperative deadline failed (hung solver, skewed
                    # clock).  Kill it; the inline fallback sees an
                    # exhausted child budget and degrades instantly to
                    # the verified greedy bound.
                    self._kill(flight)
                    self._reap(flight)
                    del flights[index]
                    registry.inc("pool_worker_kills_total")
                    fallback(index, "worker overran its deadline")
            if unsat:
                # One component settled the answer: stop paying for the
                # rest.  Their traces are absent, as in the sequential
                # early exit.
                pending.clear()
                for flight in flights.values():
                    self._kill(flight)
                    self._reap(flight)
                flights.clear()
        return pairs

    @staticmethod
    def _wait(flights: Dict[int, _PoolFlight]) -> None:
        """Block until a worker reports, dies, or a kill deadline nears."""
        timeout = 0.2
        for flight in flights.values():
            remaining = flight.kill_at.remaining()
            if remaining is not None:
                timeout = min(timeout, remaining)
        handles = [f.conn for f in flights.values()]
        handles += [f.process.sentinel for f in flights.values()]
        multiprocessing.connection.wait(handles, timeout=timeout)

    @staticmethod
    def _kill(flight: _PoolFlight) -> None:
        flight.process.terminate()
        flight.process.join(1.0)
        if flight.process.is_alive():
            flight.process.kill()
            flight.process.join(1.0)

    @staticmethod
    def _reap(flight: _PoolFlight) -> None:
        flight.conn.close()
        flight.process.join(10.0)
        if flight.process.is_alive():
            flight.process.kill()
            flight.process.join(1.0)
        flight.process.close()

    # ------------------------------------------------------------------
    # Recombination
    # ------------------------------------------------------------------

    def _merge(
        self,
        pairs: List[Tuple[int, Result]],
        baselines: List,
        info: PipelineInfo,
        reduce_stage: StageStat,
        t0: float,
    ) -> Result:
        merged = Result(status=OPTIMAL, stages=[reduce_stage], pipeline=info)
        kernel_coloring: Dict[int, int] = {}
        proved_lb = self.clique_bound
        pairs = sorted(pairs, key=lambda pair: pair[0])
        for index, result in pairs:
            call_stats = _stats_delta(result.stats, baselines[index])
            trace = ComponentTrace(
                index=index,
                vertices=self._subgraphs[index].num_vertices,
                edges=self._subgraphs[index].num_edges,
                status=result.status,
                num_colors=result.num_colors,
                queries=list(result.queries),
                solvers_created=result.solvers_created,
                seconds=result.total_seconds,
                cancelled=result.cancelled,
            )
            merged.components.append(trace)
            merged.stats.merge(call_stats)
            merged.queries.extend(result.queries)
            merged.solvers_created += result.solvers_created
            merged.cancelled = merged.cancelled or result.cancelled
            merged.degraded = merged.degraded or result.degraded
            if result.status in (UNSAT, UNKNOWN):
                # A component over the cap (UNSAT) is definitive; an
                # inconclusive component leaves the whole answer open.
                if merged.status != UNSAT:
                    merged.status = result.status
                continue
            if result.lower_bound is not None:
                proved_lb = max(proved_lb, result.lower_bound)
            if result.status in (SAT, FEASIBLE) and merged.status == OPTIMAL:
                # A budget-degraded component caps the merged answer at
                # feasible: its coloring is verified, its optimum isn't.
                merged.status = FEASIBLE
            info.components_solved += 1
            for local, color in sorted(result.coloring.items()):
                kernel_coloring[self.components[index][local]] = color
        merged.stages.append(StageStat("solve", time.monotonic() - t0))
        if merged.status == UNSAT and not self._ctx.cancelled():
            # The pool's own early-exit cancelled the siblings; that is
            # scheduling, not caller cancellation, and the UNSAT answer
            # is exact — the flags must not say otherwise.
            merged.cancelled = False
            merged.degraded = False
        if merged.status in (UNSAT, UNKNOWN):
            return merged
        coloring = extend_coloring(self.kernel, kernel_coloring)
        check_proper(self.graph, coloring)
        merged.coloring = coloring
        merged.num_colors = len(set(coloring.values()))
        merged.upper_bound = merged.num_colors
        merged.lower_bound = (
            merged.num_colors if merged.status == OPTIMAL else proved_lb
        )
        return merged


def pooled_chromatic_result(problem, config, ctx):
    """The ``cdcl-incremental`` backend's pool route.

    Returns ``(result, kernelized)``.  ``result`` is ``None`` when
    pooling does not apply — the kernel is connected (the whole-kernel
    persistent descent is already optimal there), or the configuration
    uses a construction the growable per-component sessions cannot host
    (non-pairwise AMO, NU chains) — and the caller falls back to the
    whole-kernel incremental descent.  ``kernelized`` is the probe's
    ``(clique bound, kernel, component pairs)`` when it was computed,
    so the fallback can reuse it instead of kernelizing again.
    """
    from ..coloring.sat_pipeline import GROWABLE_SBP_KINDS

    if config.symmetry.sbp_kind not in GROWABLE_SBP_KINDS:
        return None, None
    if config.encode.amo != "pairwise":
        return None, None
    # Cheap disconnectedness probe first: the common connected case must
    # not pay for Session construction (and the kernelization is handed
    # to the pool, not redone).
    kernelized = _kernelize(problem.graph)
    if len(kernelized[2]) <= 1:
        return None, kernelized
    pool = ComponentSessionPool(
        problem.graph,
        config=config,
        on_progress=ctx.on_progress,
        cancel=ctx.cancel,
        threads=config.solve.pool_threads,
        jobs=config.solve.pool_jobs,
        _kernelized=kernelized,
    )
    strategy = config.solve.strategy or "linear"
    ctx.emit(
        "pool",
        f"kernel split into {len(pool.components)} components; "
        "per-component persistent solvers",
    )
    result = pool.chromatic(
        strategy=strategy,
        time_limit=config.solve.time_limit,
        max_colors=problem.max_colors,
    )
    return result, kernelized
