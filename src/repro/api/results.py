"""Structured results, progress events and run context for the public API.

Every query — whatever the problem kind or backend — returns one
:class:`Result`: the answer (status, colors, coloring), a per-stage
trace (:class:`StageStat`, in execution order, with wall seconds and
stage-specific details), aggregated solver statistics, the K-query
trace of descent-style searches, and :class:`Provenance` recording
exactly which problem, backend and configuration produced it.

:class:`RunContext` is the side-channel a run carries: the progress
callback (:class:`ProgressEvent` per stage transition / K query), the
cancellation predicate (checked between stages and between queries —
a cancelled run returns its best-so-far answer with ``cancelled=True``
rather than raising), and the shared symmetry-detection cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..coloring.solve import PipelineInfo
from ..obs.hooks import active_tracer
from ..resilience import Deadline
from ..resilience.faults import fire as _fire_fault
from ..sat.result import FEASIBLE, OPTIMAL, SAT, UNSAT, SolverStats
from ..symmetry.detect import SymmetryReport


@dataclass
class StageStat:
    """One executed pipeline stage: name, wall time, stage details."""

    name: str
    seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)


@dataclass
class ProgressEvent:
    """One progress notification delivered to the ``on_progress`` callback."""

    stage: str
    message: str
    k: Optional[int] = None
    status: Optional[str] = None


@dataclass
class RunContext:
    """Per-run side channel: progress, cancellation, budget, caches.

    ``deadline`` is the run's :class:`~repro.resilience.Deadline`
    (unbounded by default); the Pipeline seeds it from the configured
    time limit and every stage checks it instead of re-deriving
    elapsed-time arithmetic.  ``emit`` doubles as the fault harness's
    ``stage:<name>`` injection point.
    """

    on_progress: Optional[Callable[[ProgressEvent], None]] = None
    cancel: Optional[Callable[[], bool]] = None
    detection_cache: Optional[Dict[Any, Any]] = None
    deadline: Deadline = field(default_factory=Deadline.unbounded)

    def emit(
        self,
        stage: str,
        message: str,
        k: Optional[int] = None,
        status: Optional[str] = None,
    ) -> None:
        """Deliver a progress event, if a callback is attached."""
        _fire_fault(f"stage:{stage}", message)
        tracer = active_tracer()
        if tracer is not None:
            tracer.stage(stage)
        if self.on_progress is not None:
            self.on_progress(ProgressEvent(stage, message, k=k, status=status))

    def cancelled(self) -> bool:
        """True when the caller has requested cancellation."""
        return bool(self.cancel and self.cancel())


@dataclass
class Provenance:
    """Where a result came from: problem, backend, configuration."""

    problem: str
    backend: str
    stage_order: Tuple[str, ...] = ()
    config: Dict[str, object] = field(default_factory=dict)


@dataclass
class ComponentTrace:
    """Provenance of one kernel component solved by the Session pool.

    The per-component record the :class:`~repro.api.ComponentSessionPool`
    merges into its :class:`Result`: which piece of the kernel this was
    (schedule position — components are scheduled largest-first — and
    size), what the component's own persistent-solver descent answered,
    and its K-query trace.  ``solvers_created`` is 0 when the
    component's bounds met without any solver query, else 1 (one
    persistent solver per component is the pool's contract).
    """

    index: int
    vertices: int
    edges: int
    status: str
    num_colors: Optional[int] = None
    queries: List[Tuple[int, str]] = field(default_factory=list)
    solvers_created: int = 0
    seconds: float = 0.0
    cancelled: bool = False


@dataclass
class Result:
    """The structured outcome of one API query.

    ``status`` is ``OPTIMAL`` / ``FEASIBLE`` / ``SAT`` / ``UNSAT`` /
    ``UNKNOWN``.  Decision queries answer ``SAT``/``UNSAT``;
    optimization queries answer ``OPTIMAL`` when the optimum was
    proved, or ``FEASIBLE`` when the budget expired (or the caller
    cancelled) mid-descent — then ``coloring`` is the *verified*
    best-so-far solution, ``degraded`` is True, and
    ``lower_bound``/``upper_bound`` carry whatever bounds the search
    had proved.  ``num_colors`` is the number of colors the reported
    ``coloring`` uses (the chromatic number when status is OPTIMAL on
    a chromatic problem).

    Contract: a FEASIBLE result's coloring is always proper (verified
    before it is returned); degradation can weaken *optimality*, never
    *correctness*.
    """

    status: str
    num_colors: Optional[int] = None
    coloring: Optional[Dict[int, int]] = None
    stages: List[StageStat] = field(default_factory=list)
    pipeline: Optional[PipelineInfo] = None
    detection: Optional[SymmetryReport] = None
    stats: SolverStats = field(default_factory=SolverStats)
    # (k, status) trace of descent-style searches, in query order.
    queries: List[Tuple[int, str]] = field(default_factory=list)
    # Fresh solver instantiations this result cost: 1 for a persistent-
    # solver run, one per kernel component for the Session pool, one per
    # query for scratch strategies.
    solvers_created: int = 0
    cancelled: bool = False
    # True when the run hit its budget (or was cancelled) before proving
    # optimality and returned a verified best-so-far answer instead.
    degraded: bool = False
    # Bounds the search had proved when it stopped: every k <=
    # lower_bound - 1 was refuted, a coloring with upper_bound colors
    # was verified.  OPTIMAL means the two met.
    lower_bound: Optional[int] = None
    upper_bound: Optional[int] = None
    provenance: Optional[Provenance] = None
    # Per-component traces when the Session pool split the kernel
    # (empty for whole-kernel runs).
    components: List[ComponentTrace] = field(default_factory=list)

    @property
    def solved(self) -> bool:
        """Definitive outcome: optimum proved or infeasibility proved."""
        return self.status in (OPTIMAL, UNSAT)

    @property
    def is_sat(self) -> bool:
        return self.status in (OPTIMAL, FEASIBLE, SAT)

    @property
    def feasible(self) -> bool:
        """A verified coloring exists, optimal or not."""
        return self.status in (OPTIMAL, FEASIBLE, SAT)

    @property
    def chromatic_number(self) -> Optional[int]:
        """Alias of ``num_colors`` for chromatic-number queries."""
        return self.num_colors

    @property
    def backend(self) -> str:
        return self.provenance.backend if self.provenance else ""

    def stage(self, name: str) -> Optional[StageStat]:
        """The last executed stage with this name, if any."""
        for stat in reversed(self.stages):
            if stat.name == name:
                return stat
        return None

    def stage_seconds(self, *names: str) -> float:
        """Total wall seconds spent in the named stages (all, if none given)."""
        return sum(
            s.seconds for s in self.stages if not names or s.name in names
        )

    @property
    def encode_seconds(self) -> float:
        """Everything before the solver ran: encode + SBPs + simplify + detect."""
        return self.stage_seconds("encode", "sbp", "simplify", "detect")

    @property
    def solve_seconds(self) -> float:
        return self.stage_seconds("solve")

    @property
    def total_seconds(self) -> float:
        return self.stage_seconds()
