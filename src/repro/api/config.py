"""Pipeline configuration: one dataclass per stage, validated eagerly.

The old entry points took 10+ loosely-typed kwargs and surfaced a bad
solver or SBP name as a ``KeyError`` deep inside the preset tables.
Here every stage of the pipeline — reduce, encode, sbp, simplify,
detect, solve — has its own small config dataclass, and every name is
checked at *construction* time with a ``ValueError`` naming the
registered choices.

The stage order itself is explicit and reorderable: the default runs
symmetry detection *after* clause simplification (the cheaper order —
detection canonicalizes the smaller formula), while
``("reduce", "encode", "sbp", "detect", "simplify", "solve")`` restores
the historical Shatter flow.  ``reduce``/``encode`` must stay first
(they produce the graph kernel and the formula the later stages
transform) and ``solve`` last; the middle stages permute freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from ..sbp.instance_independent import SBP_KINDS

AMO_ENCODINGS = ("pairwise", "sequential")
SEARCH_STRATEGIES = ("linear", "binary")

STAGES = ("reduce", "encode", "sbp", "simplify", "detect", "solve")
DEFAULT_STAGE_ORDER: Tuple[str, ...] = STAGES
SHATTER_STAGE_ORDER: Tuple[str, ...] = (
    "reduce", "encode", "sbp", "detect", "simplify", "solve",
)


def _check_choice(value: str, choices: Sequence[str], what: str) -> None:
    if value not in choices:
        raise ValueError(
            f"unknown {what} {value!r}; registered choices: {tuple(choices)}"
        )


@dataclass(frozen=True)
class ReduceConfig:
    """Graph kernelization before encoding: low-degree peeling at the
    clique bound plus connected-component splitting."""

    enabled: bool = True


@dataclass(frozen=True)
class EncodeConfig:
    """How constraints are compiled.  ``amo`` selects the at-most-one
    encoding on the pure-CNF route (the 0-1 ILP route uses native
    exactly-one PB constraints and ignores it)."""

    amo: str = "pairwise"

    def __post_init__(self) -> None:
        _check_choice(self.amo, AMO_ENCODINGS, "at-most-one encoding")


@dataclass(frozen=True)
class SymmetryConfig:
    """Symmetry breaking: the paper's instance-independent constructions
    (``sbp_kind``) and optional instance-dependent detection + lex-leader
    predicates (``instance_dependent``)."""

    sbp_kind: str = "none"
    instance_dependent: bool = False
    detection_node_limit: Optional[int] = 50000

    def __post_init__(self) -> None:
        _check_choice(self.sbp_kind, SBP_KINDS, "SBP kind")


@dataclass(frozen=True)
class SimplifyConfig:
    """Model-preserving clause-database simplification after encoding."""

    enabled: bool = True


#: Default racer line-up of the ``portfolio`` backend: one persistent
#: CDCL descent, one PB optimizer, one problem-specific branch and bound.
DEFAULT_RACERS: Tuple[str, ...] = (
    "cdcl-incremental", "pb-pueblo", "exact-dsatur",
)


@dataclass(frozen=True)
class SolveConfig:
    """Which engine answers the query, and its resource budget.

    ``split_components`` routes chromatic descents on the persistent-
    solver backend through the per-component Session pool whenever the
    kernel is disconnected: each component gets its own persistent
    solver and the results recombine as the max over components.
    ``pool_jobs`` fans the pool's component descents across that many
    *worker processes* (0 = sequential, largest component first) — the
    multi-core path.  ``pool_threads`` is the deprecated GIL-bound
    thread fan-out, kept as an alias with a warning.

    ``racers`` names the engines the ``portfolio`` backend races
    (``"backend"`` or ``"backend:strategy"`` specs); ``share_clauses``
    additionally exchanges short learned clauses between the portfolio's
    CDCL racers.
    """

    backend: str = "pb-pbs2"
    strategy: Optional[str] = None  # None = the backend's default
    time_limit: Optional[float] = None
    conflict_limit: Optional[int] = None
    incremental: bool = True
    use_bounds: bool = True
    split_components: bool = True
    pool_jobs: int = 0
    pool_threads: int = 0
    racers: Tuple[str, ...] = DEFAULT_RACERS
    share_clauses: bool = False

    def __post_init__(self) -> None:
        if self.strategy is not None:
            _check_choice(self.strategy, SEARCH_STRATEGIES, "search strategy")
        if self.pool_jobs < 0:
            raise ValueError(f"pool_jobs must be >= 0, got {self.pool_jobs}")
        if self.pool_threads < 0:
            raise ValueError(
                f"pool_threads must be >= 0, got {self.pool_threads}"
            )
        if self.pool_threads > 0:
            import warnings

            warnings.warn(
                "SolveConfig.pool_threads is deprecated: the threaded "
                "component fan-out is GIL-bound; use pool_jobs (worker "
                "processes) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        # Imported lazily: the backend registry imports this module.
        from .backends import check_backend_name, resolve_backend_name

        check_backend_name(self.backend)
        racers = tuple(self.racers)
        object.__setattr__(self, "racers", racers)
        for spec in racers:
            name, _, strategy = spec.partition(":")
            resolve_backend_name(name)
            if strategy:
                _check_choice(strategy, SEARCH_STRATEGIES, "search strategy")


@dataclass(frozen=True)
class BudgetConfig:
    """How the run's time budget is divided across pipeline stages.

    ``prep_fraction`` caps the *optional* preparation stages (sbp,
    simplify, detect) at that fraction of the total budget: once the
    prep sub-deadline expires, remaining optional stages are skipped —
    they only speed the solver up, so on a tight budget the time is
    better spent solving.  The mandatory stages (reduce, encode, solve)
    always run against the run's own deadline.  With no time limit
    configured the budget is unbounded and no stage is ever skipped.
    """

    prep_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.prep_fraction <= 1.0:
            raise ValueError(
                f"prep_fraction must be in [0, 1], got {self.prep_fraction}"
            )


@dataclass(frozen=True)
class PipelineConfig:
    """The full pipeline: one config per stage plus the stage order."""

    reduce: ReduceConfig = field(default_factory=ReduceConfig)
    encode: EncodeConfig = field(default_factory=EncodeConfig)
    symmetry: SymmetryConfig = field(default_factory=SymmetryConfig)
    simplify: SimplifyConfig = field(default_factory=SimplifyConfig)
    solve: SolveConfig = field(default_factory=SolveConfig)
    budget: BudgetConfig = field(default_factory=BudgetConfig)
    order: Tuple[str, ...] = DEFAULT_STAGE_ORDER

    def __post_init__(self) -> None:
        order = tuple(self.order)
        object.__setattr__(self, "order", order)
        if sorted(order) != sorted(STAGES):
            raise ValueError(
                f"stage order must be a permutation of {STAGES}, got {order}"
            )
        if order[0] != "reduce" or order[1] != "encode" or order[-1] != "solve":
            raise ValueError(
                "stage order must start with ('reduce', 'encode') and end "
                f"with 'solve' (the middle stages permute freely), got {order}"
            )

    def formula_stages(self) -> Tuple[str, ...]:
        """The stages between encoding and solving, in execution order."""
        return tuple(s for s in self.order if s in ("sbp", "simplify", "detect"))

    def with_stage(self, **stage_configs: object) -> "PipelineConfig":
        """Copy with the named stage configs replaced."""
        return replace(self, **stage_configs)

    def summary(self) -> Dict[str, object]:
        """Flat provenance-friendly view of every knob."""
        return {
            "reduce": self.reduce.enabled,
            "amo": self.encode.amo,
            "sbp_kind": self.symmetry.sbp_kind,
            "instance_dependent": self.symmetry.instance_dependent,
            "detection_node_limit": self.symmetry.detection_node_limit,
            "simplify": self.simplify.enabled,
            "backend": self.solve.backend,
            "strategy": self.solve.strategy,
            "time_limit": self.solve.time_limit,
            "conflict_limit": self.solve.conflict_limit,
            "incremental": self.solve.incremental,
            "use_bounds": self.solve.use_bounds,
            "split_components": self.solve.split_components,
            "pool_jobs": self.solve.pool_jobs,
            "pool_threads": self.solve.pool_threads,
            "racers": self.solve.racers,
            "share_clauses": self.solve.share_clauses,
            "prep_fraction": self.budget.prep_fraction,
            "order": self.order,
        }
