"""Portfolio racing: several engines, one problem, first answer wins.

The paper's experiments repeatedly show that no single engine
dominates — the PB profiles win on some instance families, the
persistent CDCL descent on others, and the problem-specific DSATUR
branch and bound embarrasses both on sparse kernels.  The ``portfolio``
backend turns that observation into a solving strategy: every racer
named in ``SolveConfig.racers`` (``"backend"`` or
``"backend:strategy"`` specs) attacks the *same* problem in its own
worker process, and the first conclusive answer (optimum proved, or
infeasibility proved) cancels the rest through the shared stop event.

Racers cooperate while they compete:

* **bound exchange** — every racer publishes the bounds it proves to a
  queue (a SAT coloring at K is ``ub = K`` for everyone, a refuted K is
  ``lb = K + 1``); the parent folds them into shared ``ub``/``lb``
  values that racers poll in their cancel predicates, so the race also
  ends when the *combined* bounds meet — even if no single racer
  proved both sides.  ``cdcl-incremental`` racers publish per-K-query
  (they ride a :class:`~repro.api.Session`, whose progress events
  carry each query's outcome); the one-shot engines publish their
  final bounds.
* **clause sharing** (``SolveConfig.share_clauses``) — short learned
  clauses flow between the ``cdcl-incremental`` racers through the
  parent.  This is sound *only* because Session descents are
  assumption-based: nothing is ever disabled at level 0, so every
  learnt clause is implied by the (deterministically identical)
  encoding alone; receivers additionally drop clauses mentioning
  variables beyond their current horizon.

Failure handling mirrors the component pool: a dying racer is retried
once (:class:`~repro.resilience.RetryPolicy` classifies a death as
transient), then dropped — the race continues with the survivors, and
only a fully dead field yields UNKNOWN.  The ``racer`` fault-injection
point fires at the top of every racer process, which is how the chaos
suite kills a racer mid-race and watches the field recover.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import queue as queue_mod
import time
from typing import Dict, List, Optional, Tuple

from ..coloring.verify import check_proper
from ..obs.hooks import active_tracer
from ..obs.metrics import get_registry
from ..resilience import Deadline, RetryPolicy
from ..resilience.faults import fire as _fire_fault
from ..resilience.faults import install_env_faults
from ..sat.result import FEASIBLE, OPTIMAL, SAT, UNKNOWN, UNSAT
from .backends import Backend, get_backend, resolve_backend_name
from .config import PipelineConfig
from .problems import CHROMATIC, DECISION, ChromaticProblem, DecisionProblem, Problem
from .results import Result, RunContext, StageStat

#: Racer deaths are transient: retried this many times before the
#: racer is dropped and the race continues with the survivors.
_RACER_RETRIES = 1

#: Clause sharing exports learnt clauses of at most this many literals
#: (short clauses prune the most per byte), at most this many per
#: ``solve()`` call.
_SHARE_MAX_LEN = 4
_SHARE_BATCH = 64

#: The Session-routed racer (per-query bound publication + clause
#: sharing); every other engine races through its backend's run().
_SESSION_RACER = "cdcl-incremental"


def parse_racer(spec: str) -> Tuple[str, Optional[str]]:
    """Split a ``"backend"`` / ``"backend:strategy"`` spec (canonical name)."""
    name, _, strategy = spec.partition(":")
    return resolve_backend_name(name), (strategy or None)


def _race_decided(ub_val, lb_val) -> bool:
    """Have the published bounds met?  (``ub`` of 0 means "none yet".)"""
    ub = ub_val.value
    return ub > 0 and lb_val.value >= ub


def _install_clause_sharing(index: int, inbox, outbox) -> None:
    """Wrap the racer's solver factory seam for clause exchange.

    Every ``solve()`` call first drains the inbox (clauses from sibling
    racers, dropped unless every variable is within this solver's
    current horizon — see the module docstring for why that makes the
    exchange sound), then exports its own fresh short learnt clauses.
    """
    from ..sat import factory

    seen: set = set()
    previous = None

    def sharing_factory(*args, **kwargs):
        solver = previous(*args, **kwargs)
        inner_solve = solver.solve

        def solve(*sargs, **skwargs):
            while True:
                try:
                    clause = inbox.get_nowait()
                except queue_mod.Empty:
                    break
                if clause and max(abs(lit) for lit in clause) <= solver.num_vars:
                    seen.add(tuple(sorted(clause)))
                    solver.add_clause(list(clause))
            result = inner_solve(*sargs, **skwargs)
            exported: List[Tuple[int, ...]] = []
            for learnt in solver.learned:
                if len(learnt) > _SHARE_MAX_LEN:
                    continue
                key = tuple(sorted(learnt))
                if key in seen:
                    continue
                seen.add(key)
                exported.append(tuple(learnt))
                if len(exported) >= _SHARE_BATCH:
                    break
            if exported:
                try:
                    outbox.put((index, exported))
                except (BrokenPipeError, OSError):
                    pass
            return result

        solver.solve = solve
        return solver

    previous = factory.set_solver_factory(sharing_factory)


def _run_session_racer(payload, cancelled, publish):
    """A ``cdcl-incremental`` chromatic racer on a whole-graph Session.

    The Session's assumption-based descent emits one progress event per
    K query; SAT at K publishes ``ub = K``, UNSAT publishes
    ``lb = K + 1`` — both globally valid for the whole graph, which is
    exactly what the sibling racers are coloring too.
    """
    from .session import Session

    index = payload["index"]
    config: PipelineConfig = payload["config"]
    if payload["share"]:
        _install_clause_sharing(
            index, payload["clause_in"], payload["clause_out"])

    def on_progress(event) -> None:
        if event.stage != "query" or event.k is None or event.status is None:
            return
        try:
            if event.status == SAT:
                publish.put((index, "ub", event.k))
            elif event.status == UNSAT:
                publish.put((index, "lb", event.k + 1))
        except (BrokenPipeError, OSError):
            pass

    session = Session(
        payload["graph"], config=config,
        on_progress=on_progress, cancel=cancelled,
    )
    return session.chromatic(
        strategy=config.solve.strategy or "linear",
        time_limit=config.solve.time_limit,
        max_colors=payload["max_colors"],
    )


def _run_racer(payload, stop_event, ub_val, lb_val, publish) -> Result:
    """Solve the race's problem with this racer's engine."""
    kind = payload["kind"]

    def cancelled() -> bool:
        if stop_event.is_set():
            return True
        return kind == CHROMATIC and _race_decided(ub_val, lb_val)

    if kind == CHROMATIC and payload["backend"] == _SESSION_RACER:
        return _run_session_racer(payload, cancelled, publish)
    backend = get_backend(payload["backend"])
    config: PipelineConfig = payload["config"]
    if kind == DECISION:
        problem: Problem = DecisionProblem(payload["graph"], payload["k"])
    else:
        problem = ChromaticProblem(payload["graph"], payload["max_colors"])
    result = backend.run(problem, config, RunContext(cancel=cancelled))
    if kind == CHROMATIC:
        index = payload["index"]
        try:
            if result.feasible and result.num_colors is not None:
                publish.put((index, "ub", result.num_colors))
            if result.status == OPTIMAL and result.num_colors is not None:
                publish.put((index, "lb", result.num_colors))
            elif result.lower_bound is not None:
                publish.put((index, "lb", result.lower_bound))
        except (BrokenPipeError, OSError):
            pass
    return result


def _racer_entry(payload, conn, stop_event, ub_val, lb_val, publish) -> None:
    """Racer process entry point (top-level and picklable, per RPR006)."""
    try:
        install_env_faults()
        _fire_fault("racer", payload["spec"])
        message: Tuple[str, object] = (
            "ok", _run_racer(payload, stop_event, ub_val, lb_val, publish))
    except BaseException as exc:  # noqa: BLE001 - must report, not vanish
        message = ("error", f"{type(exc).__name__}: {exc}")
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):
        pass
    finally:
        conn.close()


class _RaceFlight:
    """One in-flight racer process."""

    __slots__ = ("index", "process", "conn", "kill_at", "retries")

    def __init__(self, index, process, conn, kill_at, retries):
        self.index = index
        self.process = process
        self.conn = conn
        self.kill_at = kill_at
        self.retries = retries


class PortfolioBackend(Backend):
    """Race the configured engines; first conclusive answer wins.

    See the module docstring for the cooperation protocol (bound
    exchange, optional clause sharing) and the failure model (retry
    once, then drop the racer).  The merged Result is the winner's,
    with a ``race`` stage recording the field, the winner, how many
    racers were cancelled, and the final shared bounds; when no racer
    is individually conclusive the best verified coloring is returned,
    upgraded to OPTIMAL if the *combined* published bounds met it.
    """

    name = "portfolio"
    description = "races the configured engines; first conclusive answer wins"
    supports = (DECISION, CHROMATIC)
    sbp_kinds = ("none",)
    persistent = False

    def validate(self, problem: Problem, config: PipelineConfig) -> None:
        super().validate(problem, config)
        specs = config.solve.racers
        if len(specs) < 2:
            raise ValueError(
                f"portfolio needs at least 2 racers, got {specs!r}"
            )
        for spec in specs:
            name, _ = parse_racer(spec)
            if name == self.name:
                raise ValueError("portfolio cannot race itself")
            racer = get_backend(name)
            if problem.kind not in racer.supports:
                raise ValueError(
                    f"racer {spec!r} does not answer {problem.kind!r} "
                    f"problems; it supports {racer.supports}"
                )

    def run(self, problem: Problem, config: PipelineConfig,
            ctx: RunContext) -> Result:
        from .pipeline import _trivial_result

        trivial = _trivial_result(problem.kind, problem.graph)
        if trivial is not None:
            return trivial
        return _race(problem, config, ctx)


def _racer_config(config: PipelineConfig, name: str,
                  strategy: Optional[str]) -> PipelineConfig:
    """The racer's own config: its backend, no nested fan-out."""
    from dataclasses import replace

    return config.with_stage(solve=replace(
        config.solve,
        backend=name,
        strategy=strategy if strategy is not None else config.solve.strategy,
        pool_jobs=0,
        pool_threads=0,
        share_clauses=False,
    ))


def _race(problem: Problem, config: PipelineConfig, ctx: RunContext) -> Result:
    t0 = time.monotonic()
    specs = tuple(config.solve.racers)
    parsed = [parse_racer(spec) for spec in specs]
    time_limit = config.solve.time_limit
    deadline = Deadline.after(time_limit)
    mp_ctx = multiprocessing.get_context()
    stop_event = mp_ctx.Event()
    ub_val = mp_ctx.Value("i", 0)
    lb_val = mp_ctx.Value("i", 0)
    publish = mp_ctx.Queue()
    session_racers = [
        i for i, (name, _) in enumerate(parsed) if name == _SESSION_RACER
    ]
    share = (
        config.solve.share_clauses
        and problem.kind == CHROMATIC
        and len(session_racers) >= 2
    )
    clause_bus = mp_ctx.Queue() if share else None
    inboxes: Dict[int, object] = (
        {i: mp_ctx.Queue() for i in session_racers} if share else {}
    )
    registry = get_registry()
    tracer = active_tracer()
    registry.inc("race_runs_total")
    if tracer is not None:
        tracer.race_begin(len(specs))
    ctx.emit("race", f"racing {len(specs)} engines: {', '.join(specs)}")
    retry_policy = RetryPolicy(max_retries=_RACER_RETRIES)
    flights: Dict[int, _RaceFlight] = {}
    results: Dict[int, Result] = {}
    ub: Optional[int] = None
    lb: Optional[int] = None

    def launch(index: int, retries: int) -> None:
        name, strategy = parsed[index]
        payload = {
            "index": index,
            "spec": specs[index],
            "backend": name,
            "kind": problem.kind,
            "graph": problem.graph,
            "config": _racer_config(config, name, strategy),
            "k": getattr(problem, "k", None),
            "max_colors": getattr(problem, "max_colors", None),
            "share": share and index in inboxes,
            "clause_in": inboxes.get(index),
            "clause_out": clause_bus,
        }
        recv, send = mp_ctx.Pipe(duplex=False)
        process = mp_ctx.Process(
            target=_racer_entry,
            args=(payload, send, stop_event, ub_val, lb_val, publish),
            daemon=True,
        )
        process.start()
        send.close()
        kill_at = Deadline.after(
            time_limit + max(2.0, 0.5 * time_limit)
            if time_limit is not None else None
        )
        flights[index] = _RaceFlight(index, process, recv, kill_at, retries)

    def drain_bounds() -> None:
        nonlocal ub, lb
        while True:
            try:
                racer, kind, value = publish.get_nowait()
            except queue_mod.Empty:
                break
            except (EOFError, OSError):
                break
            if kind == "ub" and (ub is None or value < ub):
                ub = value
                with ub_val.get_lock():
                    ub_val.value = value
            elif kind == "lb" and (lb is None or value > lb):
                lb = value
                with lb_val.get_lock():
                    lb_val.value = value
            else:
                continue
            registry.inc("race_bounds_total", kind=kind)
            if tracer is not None:
                tracer.race_bound(racer, kind, value)

    def relay_clauses() -> None:
        if clause_bus is None:
            return
        while True:
            try:
                source, clauses = clause_bus.get_nowait()
            except queue_mod.Empty:
                break
            except (EOFError, OSError):
                break
            registry.inc("race_clauses_shared_total", amount=len(clauses))
            for index, inbox in inboxes.items():
                if index == source:
                    continue
                for clause in clauses:
                    try:
                        inbox.put(clause)
                    except (BrokenPipeError, OSError):
                        pass

    def conclusive(result: Result) -> bool:
        if problem.kind == DECISION:
            return result.status in (SAT, UNSAT)
        return result.solved

    if not ctx.cancelled():  # a pre-cancelled run launches nothing
        for index in range(len(specs)):
            launch(index, 0)
    winner_index: Optional[int] = None
    cancelled_count = 0
    while flights:
        if ctx.cancelled():
            stop_event.set()
        drain_bounds()
        relay_clauses()
        _wait_flights(flights)
        for index in list(flights):
            flight = flights[index]
            if flight.conn.poll():
                try:
                    outcome, value = flight.conn.recv()
                except (EOFError, OSError):
                    outcome, value = "died", "racer pipe closed"
                _reap_flight(flight)
                del flights[index]
                if outcome == "ok":
                    results[index] = value
                    if winner_index is None and conclusive(value):
                        winner_index = index
                        stop_event.set()
                else:
                    registry.inc("race_racer_errors_total")
                    ctx.emit("race", f"racer {specs[index]} failed ({value})")
            elif not flight.process.is_alive():
                if flight.conn.poll():
                    continue  # a message raced in; handled next pass
                _reap_flight(flight)
                del flights[index]
                registry.inc("race_racer_deaths_total")
                if retry_policy.should_retry("died", flight.retries) \
                        and winner_index is None:
                    ctx.emit("race",
                             f"racer {specs[index]} died; relaunching")
                    launch(index, flight.retries + 1)
                else:
                    ctx.emit("race", f"racer {specs[index]} dropped")
            elif flight.kill_at.expired():
                _kill_flight(flight)
                _reap_flight(flight)
                del flights[index]
                registry.inc("race_racer_kills_total")
                ctx.emit("race",
                         f"racer {specs[index]} overran its deadline; killed")
        if winner_index is not None and flights:
            # The race is decided; the survivors were told to stop and
            # anything still running now is cancelled outright.
            grace = Deadline.after(1.0)
            while flights and not grace.expired():
                drain_bounds()
                _wait_flights(flights)
                for index in list(flights):
                    flight = flights[index]
                    if flight.conn.poll():
                        try:
                            outcome, value = flight.conn.recv()
                        except (EOFError, OSError):
                            outcome = "died"
                        if outcome == "ok":
                            results[index] = value
                        _reap_flight(flight)
                        del flights[index]
                        cancelled_count += 1
                    elif not flight.process.is_alive():
                        _reap_flight(flight)
                        del flights[index]
                        cancelled_count += 1
            for flight in flights.values():
                _kill_flight(flight)
                _reap_flight(flight)
                cancelled_count += 1
            flights.clear()
    drain_bounds()
    final = _settle_race(problem, results, winner_index, ub, lb, deadline, ctx)
    # The exchanged bounds are race-level knowledge: a loser's refutation
    # tightens the winner's result even when the winner never saw it.
    if problem.kind == CHROMATIC:
        if ub is not None and (final.upper_bound is None or ub < final.upper_bound):
            final.upper_bound = ub
        if lb is not None and (final.lower_bound is None or lb > final.lower_bound):
            final.lower_bound = lb
    registry.inc("race_cancelled_total", amount=cancelled_count)
    if winner_index is not None:
        registry.inc("race_winner_total", backend=specs[winner_index])
    if tracer is not None:
        tracer.race_end(winner_index, final.status, cancelled_count)
    final.stages.append(StageStat(
        "race", time.monotonic() - t0,
        {
            "racers": list(specs),
            "winner": specs[winner_index] if winner_index is not None else None,
            "cancelled": cancelled_count,
            "ub": ub,
            "lb": lb,
        },
    ))
    return final


def _settle_race(problem, results: Dict[int, Result],
                 winner_index: Optional[int], ub: Optional[int],
                 lb: Optional[int], deadline: Deadline,
                 ctx: RunContext) -> Result:
    """The race's merged answer: the winner's, or the best of the field.

    Without an individually conclusive winner, the best *verified*
    coloring across the field wins — upgraded to OPTIMAL when the
    combined published bounds met at its color count (one racer proved
    the coloring, another refuted the color count below it: together
    they are a proof neither had alone).
    """
    if winner_index is not None:
        return results[winner_index]
    best: Optional[Result] = None
    for result in results.values():
        if not result.feasible or result.num_colors is None:
            continue
        if best is None or result.num_colors < best.num_colors:
            best = result
    if best is None:
        for result in results.values():
            if result.status == UNKNOWN:
                return result
        return Result(
            status=UNKNOWN,
            cancelled=ctx.cancelled(),
            degraded=deadline.expired(),
            lower_bound=lb,
            upper_bound=ub,
        )
    if problem.kind == CHROMATIC and lb is not None \
            and best.num_colors is not None and lb >= best.num_colors:
        check_proper(problem.graph, best.coloring)
        best.status = OPTIMAL
        best.lower_bound = best.num_colors
        best.upper_bound = best.num_colors
        best.degraded = False
        best.cancelled = False
    return best


def _wait_flights(flights: Dict[int, _RaceFlight]) -> None:
    """Block until a racer reports, dies, or a kill deadline nears."""
    timeout = 0.1
    for flight in flights.values():
        remaining = flight.kill_at.remaining()
        if remaining is not None:
            timeout = min(timeout, remaining)
    handles = [f.conn for f in flights.values()]
    handles += [f.process.sentinel for f in flights.values()]
    multiprocessing.connection.wait(handles, timeout=max(timeout, 0.01))


def _kill_flight(flight: _RaceFlight) -> None:
    flight.process.terminate()
    flight.process.join(1.0)
    if flight.process.is_alive():
        flight.process.kill()
        flight.process.join(1.0)


def _reap_flight(flight: _RaceFlight) -> None:
    flight.conn.close()
    flight.process.join(10.0)
    if flight.process.is_alive():
        flight.process.kill()
        flight.process.join(1.0)
    flight.process.close()
