"""The :class:`Pipeline` builder and the staged execution engine.

A pipeline is a validated :class:`~repro.api.config.PipelineConfig`
plus a fluent builder over it.  ``Pipeline().symmetry(sbp_kind="nu+sc")
.solve(backend="pb-pbs2", time_limit=60).run(problem)`` replaces the
old 10-kwarg entry points; every stage is explicit, individually
configurable and (for the formula stages) reorderable.

:func:`run_optimize_flow` is the staged interpreter behind every
0-1-ILP backend: it executes ``reduce`` (kernelization + component
split, recursing per component), ``encode``, then the configured
permutation of ``sbp`` / ``simplify`` / ``detect``, then hands the
prepared formula to the backend's solve hook — recording one
:class:`~repro.api.results.StageStat` per stage and honouring the run
context's cancellation between stages.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional

from ..coloring.encoding import (
    ColoringEncoding,
    decode_coloring,
    encode_coloring,
    normalize_coloring,
)
from ..coloring.reduce import extend_coloring, peel_low_degree
from ..coloring.solve import PipelineInfo
from ..coloring.verify import check_proper
from ..graphs.analysis import connected_components
from ..graphs.cliques import clique_lower_bound
from ..graphs.coloring_heuristics import dsatur
from ..graphs.graph import Graph
from ..obs.hooks import active_tracer
from ..obs.metrics import get_registry
from ..resilience import Deadline
from ..sat.preprocessing import SimplifyStats, simplify_formula
from ..sat.result import FEASIBLE, OPTIMAL, SAT, UNKNOWN, UNSAT
from ..sbp.lex_leader import add_symmetry_breaking_predicates
from ..symmetry.detect import SymmetryReport, detect_symmetries
from .config import (
    PipelineConfig,
    ReduceConfig,
)
from .problems import CHROMATIC, DECISION, Problem
from .results import ProgressEvent, Provenance, Result, RunContext, StageStat


class Pipeline:
    """Composable solve pipeline: configure stages, then ``run`` problems.

    Builder methods return a *new* pipeline (configs are frozen), so
    partial pipelines can be shared and specialized::

        base = Pipeline().symmetry(sbp_kind="nu+sc")
        fast = base.solve(backend="pb-pueblo", time_limit=10)
        slow = base.solve(backend="cplex-bb", time_limit=600)
    """

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self._config = config if config is not None else PipelineConfig()

    @property
    def config(self) -> PipelineConfig:
        return self._config

    def _replace(self, **kwargs: object) -> "Pipeline":
        return Pipeline(replace(self._config, **kwargs))

    def reduce(self, enabled: bool = True) -> "Pipeline":
        """Toggle graph kernelization (peeling + component split)."""
        return self._replace(reduce=ReduceConfig(enabled=enabled))

    def encode(self, **kwargs: object) -> "Pipeline":
        """Configure constraint compilation (``amo=...``)."""
        return self._replace(encode=replace(self._config.encode, **kwargs))

    def symmetry(self, **kwargs: object) -> "Pipeline":
        """Configure symmetry breaking (``sbp_kind``,
        ``instance_dependent``, ``detection_node_limit``)."""
        return self._replace(symmetry=replace(self._config.symmetry, **kwargs))

    def simplify(self, enabled: bool = True) -> "Pipeline":
        """Toggle model-preserving clause simplification."""
        return self._replace(simplify=replace(self._config.simplify, enabled=enabled))

    def solve(self, **kwargs: object) -> "Pipeline":
        """Configure the solve stage (``backend``, ``strategy``,
        ``time_limit``, ``conflict_limit``, ``incremental``,
        ``use_bounds``)."""
        return self._replace(solve=replace(self._config.solve, **kwargs))

    def budget(self, **kwargs: object) -> "Pipeline":
        """Configure the stage budget split (``prep_fraction=...``)."""
        current = self._config.budget
        return self._replace(budget=replace(current, **kwargs))

    def stage_order(self, *order: str) -> "Pipeline":
        """Reorder the stages (validated; see ``PipelineConfig``)."""
        return self._replace(order=tuple(order))

    def run(
        self,
        problem: Problem,
        on_progress: Optional[Callable[[ProgressEvent], None]] = None,
        cancel: Optional[Callable[[], bool]] = None,
        detection_cache: Optional[Dict[Any, Any]] = None,
    ) -> Result:
        """Execute the configured pipeline on ``problem``.

        ``on_progress`` receives :class:`ProgressEvent` notifications at
        stage transitions (and per K query where the backend supports
        it); ``cancel`` is a zero-argument predicate polled between
        stages and queries — when it turns true the run stops and the
        best-so-far answer is returned with ``cancelled=True``.
        """
        from .backends import get_backend

        backend = get_backend(self._config.solve.backend)
        backend.validate(problem, self._config)
        ctx = RunContext(
            on_progress=on_progress,
            cancel=cancel,
            detection_cache=detection_cache,
            deadline=Deadline.after(self._config.solve.time_limit),
        )
        ctx.emit("pipeline", f"{problem.kind} on backend {backend.name}")
        result = backend.run(problem, self._config, ctx)
        if problem.kind != DECISION and result.status in (SAT, FEASIBLE):
            # The optimization run produced a verified coloring but no
            # optimality proof: budget ran out (or the caller cancelled)
            # mid-descent.  Degrade, don't discard.
            result.status = FEASIBLE
            result.degraded = True
            if result.upper_bound is None:
                result.upper_bound = result.num_colors
        registry = get_registry()
        registry.inc("pipeline_runs_total",
                     backend=backend.name, status=result.status)
        if result.degraded:
            registry.inc("pipeline_degraded_total")
            tracer = active_tracer()
            if tracer is not None:
                tracer.degraded("pipeline", result.status)
        for stage in result.stages:
            registry.observe_seconds(
                "pipeline_stage_seconds", stage.seconds, stage=stage.name)
        result.provenance = Provenance(
            problem=problem.kind,
            backend=backend.name,
            stage_order=self._config.order,
            config=self._config.summary(),
        )
        return result


def solve_problem(problem: Problem, config: Optional[PipelineConfig] = None, **run_kwargs) -> Result:
    """One-call convenience: ``Pipeline(config).run(problem)``."""
    return Pipeline(config).run(problem, **run_kwargs)


# --------------------------------------------------------------------------
# The staged interpreter behind the 0-1 ILP backends.
# --------------------------------------------------------------------------


def _trivial_result(problem_kind: str, graph: Graph) -> Optional[Result]:
    """Empty-graph fast path shared by every flow (0 colors, optimal)."""
    if graph.num_vertices:
        return None
    status = SAT if problem_kind == DECISION else OPTIMAL
    return Result(status=status, num_colors=0, coloring={}, solvers_created=0)


def _infeasible_budget(graph: Graph, budget: int, config: PipelineConfig) -> Result:
    """A zero/too-small color budget on a non-empty graph is UNSAT."""
    info = PipelineInfo(
        preprocess=config.simplify.enabled,
        reduce=config.reduce.enabled,
        original_vertices=graph.num_vertices,
        kernel_vertices=graph.num_vertices,
    )
    return Result(status=UNSAT, pipeline=info)


def _cancelled_result(stages: List[StageStat], info: PipelineInfo) -> Result:
    return Result(status=UNKNOWN, stages=stages, pipeline=info, cancelled=True)


def _detection_key(graph: Graph, budget: int, sbp_kind: str,
                   simplified_ran: bool, node_limit: Optional[int]):
    """Content-derived cache key for a symmetry-detection report.

    Keyed on the graph's canonical edge-set certificate (isomorphic
    inputs under the same budget/config share one detection run —
    batch workers re-solving the same instance family stop re-detecting
    per task), plus everything that changes the formula detection sees.
    Returns None — uncacheable — when the canonicalizer exhausts its
    node budget.
    """
    from hashlib import sha1

    from ..symmetry.canonical import canonical_form

    try:
        certificate = canonical_form(graph, node_limit=node_limit)
    except RuntimeError:
        return None
    digest = sha1(
        repr((graph.num_vertices, certificate)).encode()).hexdigest()
    return (digest, budget, sbp_kind, simplified_ran)


def _detect_and_break(
    formula,
    key,
    node_limit: Optional[int],
    cache: Optional[Dict],
) -> SymmetryReport:
    """Detect symmetries and append lex-leader SBPs (cached by key)."""
    if cache is not None and key is not None:
        hit = key in cache
        get_registry().inc(
            "symmetry_cache_total", result="hit" if hit else "miss")
        if hit:
            report = cache[key]
        else:
            report = detect_symmetries(
                formula, node_limit=node_limit, compute_order=False)
            cache[key] = report
    else:
        report = detect_symmetries(
            formula, node_limit=node_limit, compute_order=False)
    add_symmetry_breaking_predicates(formula, report.generators)
    return report


def run_optimize_flow(
    graph: Graph,
    budget: int,
    config: PipelineConfig,
    ctx: RunContext,
    engine,
    decision: bool = False,
) -> Result:
    """Execute the staged 0-1 ILP flow on ``graph`` with ``budget`` colors.

    ``engine`` supplies the solve stage: ``engine.minimize(formula,
    time_limit, conflict_limit, upper, lower, incremental)`` returning an
    :class:`OptimizeResult`, and ``engine.decide(formula, time_limit,
    conflict_limit)`` returning a :class:`SolveResult` (used when
    ``decision=True`` — satisfiability only, no objective tightening).
    """
    if budget <= 0:
        return _infeasible_budget(graph, budget, config)
    if not ctx.deadline.bounded and config.solve.time_limit is not None:
        # Entered outside Pipeline.run (a backend called directly):
        # seed the run deadline from the configured limit so the whole
        # flow — all components, all stages — shares one budget.
        ctx = replace(ctx, deadline=Deadline.after(config.solve.time_limit))
    if config.reduce.enabled:
        return _run_reduced(graph, budget, config, ctx, engine, decision)
    return _run_formula_stages(graph, budget, config, ctx, engine, decision)


def _run_reduced(
    graph: Graph,
    budget: int,
    config: PipelineConfig,
    ctx: RunContext,
    engine,
    decision: bool,
) -> Result:
    """The reduce stage: kernelize, run the rest per component, lift back.

    Peeling at the clique lower bound ``lb`` is exact for optimization:
    removing a vertex of degree < lb never changes ``max(chi, lb)``, so
    ``chi(G) = max(chi(kernel), lb)``, and re-inserting peeled vertices
    greedily stays inside that many colors.  For the decision problem,
    peeling at ``min(lb, budget)`` preserves the answer.
    """
    start = time.monotonic()
    ctx.emit("reduce", "kernelizing (peel + component split)")
    info = PipelineInfo(
        preprocess=config.simplify.enabled,
        reduce=True,
        original_vertices=graph.num_vertices,
        kernel_vertices=graph.num_vertices,
    )
    lb = clique_lower_bound(graph)
    if lb > budget:
        stage = StageStat("reduce", time.monotonic() - start, {"clique_bound": lb})
        return Result(status=UNSAT, stages=[stage], pipeline=info)
    threshold = max(1, lb)
    kernel = peel_low_degree(graph, threshold)
    info.kernel_vertices = kernel.graph.num_vertices
    info.peeled_vertices = graph.num_vertices - kernel.graph.num_vertices
    info.simplify = SimplifyStats() if config.simplify.enabled else None
    components = (
        connected_components(kernel.graph) if kernel.graph.num_vertices else []
    )
    reduce_stage = StageStat(
        "reduce",
        time.monotonic() - start,
        {
            "clique_bound": lb,
            "kernel_vertices": info.kernel_vertices,
            "peeled_vertices": info.peeled_vertices,
            "components": len(components),
        },
    )
    stages: List[StageStat] = [reduce_stage]
    sub_config = config.with_stage(reduce=ReduceConfig(enabled=False))

    merged = Result(status=OPTIMAL, stages=stages, pipeline=info)
    kernel_coloring: Dict[int, int] = {}
    for component in components:
        if ctx.cancelled():
            return _cancelled_result(stages, info)
        # Components share the run's deadline sequentially: each one
        # sees whatever budget its predecessors left.
        sub = kernel.graph.subgraph(component)
        result = _run_formula_stages(sub, budget, sub_config, ctx, engine, decision)
        _merge_stage_times(stages, result.stages)
        merged.stats.merge(result.stats)
        merged.solvers_created += result.solvers_created
        if result.pipeline and result.pipeline.simplify and info.simplify:
            info.simplify.merge(result.pipeline.simplify)
        if merged.detection is None:
            merged.detection = result.detection
        if result.status in (UNSAT, UNKNOWN):
            merged.status = result.status
            merged.cancelled = result.cancelled
            return merged
        if result.status == SAT and not decision:
            merged.status = SAT  # feasible but optimality not proved
        merged.cancelled = merged.cancelled or result.cancelled
        info.components_solved += 1
        for local, color in normalize_coloring(result.coloring).items():
            kernel_coloring[component[local]] = color
    coloring = extend_coloring(kernel, kernel_coloring)
    if coloring:
        check_proper(graph, coloring)
    if decision and merged.status == OPTIMAL:
        merged.status = SAT
    merged.num_colors = len(set(coloring.values()))
    merged.coloring = coloring
    if not decision:
        merged.upper_bound = merged.num_colors
        merged.lower_bound = (
            merged.num_colors if merged.status == OPTIMAL else max(lb, 1)
        )
    return merged


def _merge_stage_times(stages: List[StageStat], new_stages: List[StageStat]) -> None:
    """Accumulate per-component stage times into the parent's stage list."""
    by_name = {s.name: s for s in stages}
    for stat in new_stages:
        if stat.name in by_name:
            by_name[stat.name].seconds += stat.seconds
        else:
            copy = StageStat(stat.name, stat.seconds, dict(stat.details))
            stages.append(copy)
            by_name[stat.name] = copy


def _run_formula_stages(
    graph: Graph,
    budget: int,
    config: PipelineConfig,
    ctx: RunContext,
    engine,
    decision: bool,
) -> Result:
    """Encode, then run the configured sbp/simplify/detect permutation,
    then solve."""
    stages: List[StageStat] = []
    info = PipelineInfo(
        preprocess=config.simplify.enabled,
        original_vertices=graph.num_vertices,
        kernel_vertices=graph.num_vertices,
    )
    sym = config.symmetry
    deadline = ctx.deadline
    if not deadline.bounded and config.solve.time_limit is not None:
        deadline = Deadline.after(config.solve.time_limit)
    # The optional preparation stages (sbp / simplify / detect) get at
    # most prep_fraction of what's left; past that they are skipped —
    # they only help the solver, and a tight budget is better spent
    # solving.
    budget_left = deadline.remaining()
    prep_deadline = deadline.child(
        None if budget_left is None
        else budget_left * config.budget.prep_fraction
    )

    t0 = time.monotonic()
    ctx.emit("encode", f"encoding {budget}-coloring as 0-1 ILP")
    encoding = encode_coloring(graph, budget)
    formula = encoding.formula
    fstats = formula.stats()
    stages.append(
        StageStat(
            "encode",
            time.monotonic() - t0,
            {"vars": fstats.num_vars, "clauses": fstats.num_clauses,
             "pb": fstats.num_pb},
        )
    )

    detection: Optional[SymmetryReport] = None
    simplified_ran = False
    for stage_name in config.formula_stages():
        if ctx.cancelled():
            return _cancelled_result(stages, info)
        if prep_deadline.expired():
            ctx.emit(stage_name, "skipped: preparation budget exhausted")
            stages.append(StageStat(stage_name, 0.0, {"skipped": "budget"}))
            continue
        t0 = time.monotonic()
        if stage_name == "sbp":
            if sym.sbp_kind != "none":
                ctx.emit("sbp", f"appending {sym.sbp_kind} SBPs")
                work = ColoringEncoding(
                    graph=encoding.graph,
                    num_colors=encoding.num_colors,
                    formula=formula,
                    x_var=encoding.x_var,
                    y_var=encoding.y_var,
                )
                from ..sbp.instance_independent import apply_sbp

                formula = apply_sbp(work, sym.sbp_kind).formula
                stages.append(
                    StageStat("sbp", time.monotonic() - t0, {"kind": sym.sbp_kind})
                )
        elif stage_name == "simplify":
            if config.simplify.enabled:
                ctx.emit("simplify", "simplifying the clause database")
                simplified, sstats = simplify_formula(formula)
                info.simplify = sstats
                simplified_ran = True
                stages.append(
                    StageStat(
                        "simplify",
                        time.monotonic() - t0,
                        {"clauses_before": sstats.clauses_before,
                         "clauses_after": sstats.clauses_after},
                    )
                )
                if simplified is None:
                    # The clause database alone is contradictory (e.g.
                    # SBPs colliding with a too-small budget).
                    return Result(
                        status=UNSAT, stages=stages, pipeline=info,
                        detection=detection,
                    )
                formula = simplified
        elif stage_name == "detect":
            if sym.instance_dependent:
                ctx.emit("detect", "detecting symmetries + lex-leader SBPs")
                # The canonical certificate costs a graph traversal, so
                # compute the key only when a cache is actually wired in.
                key = (
                    _detection_key(graph, budget, sym.sbp_kind,
                                   simplified_ran, sym.detection_node_limit)
                    if ctx.detection_cache is not None else None
                )
                detection = _detect_and_break(
                    formula, key, sym.detection_node_limit, ctx.detection_cache
                )
                stages.append(
                    StageStat(
                        "detect",
                        time.monotonic() - t0,
                        {"generators": detection.num_generators},
                    )
                )

    if ctx.cancelled():
        return _cancelled_result(stages, info)

    solve_cfg = config.solve
    upper = None
    lower = 0
    if solve_cfg.use_bounds and not decision:
        _, heuristic_colors = dsatur(graph)
        if heuristic_colors <= budget:
            upper = heuristic_colors
        lower = clique_lower_bound(graph)

    t0 = time.monotonic()
    ctx.emit("solve", "decision query" if decision else "minimizing used colors")
    cancel_hook = ctx.cancelled if ctx.cancel else None
    if decision:
        solve_result = engine.decide(
            formula, deadline.remaining(), solve_cfg.conflict_limit,
            should_stop=cancel_hook,
        )
        seconds = time.monotonic() - t0
        stages.append(StageStat("solve", seconds, {"status": solve_result.status}))
        packaged = _package_decision(
            encoding, solve_result, stages, info, detection
        )
        if packaged.status == UNKNOWN and ctx.cancelled():
            packaged.cancelled = True
        return packaged
    opt_result = engine.minimize(
        formula,
        deadline.remaining(),
        solve_cfg.conflict_limit,
        upper,
        lower,
        solve_cfg.incremental,
        should_stop=cancel_hook,
    )
    seconds = time.monotonic() - t0
    stages.append(StageStat("solve", seconds, {"status": opt_result.status}))
    packaged = _package_optimize(encoding, opt_result, stages, info, detection)
    packaged.upper_bound = packaged.num_colors
    if packaged.status == OPTIMAL:
        packaged.lower_bound = packaged.num_colors
    elif lower > 0:
        packaged.lower_bound = lower
    # A stop that fired inside the minimize loop surfaces as a
    # best-so-far SAT/UNKNOWN; stamp it so callers can tell a cancelled
    # descent from a naturally unproved one.
    if not packaged.solved and ctx.cancelled():
        packaged.cancelled = True
    return packaged


def _package_optimize(
    encoding: ColoringEncoding,
    result,
    stages: List[StageStat],
    info: PipelineInfo,
    detection: Optional[SymmetryReport],
) -> Result:
    coloring = None
    num_colors = None
    if result.best_model is not None:
        coloring = decode_coloring(encoding, result.best_model)
        check_proper(encoding.graph, coloring)
        num_colors = len(set(coloring.values()))
        if result.best_value is not None and num_colors != result.best_value:
            raise AssertionError(
                f"decoded coloring uses {num_colors} colors but solver "
                f"reported {result.best_value}"
            )
    return Result(
        status=result.status,
        num_colors=num_colors,
        coloring=coloring,
        stages=stages,
        pipeline=info,
        detection=detection,
        stats=result.stats,
        solvers_created=1,
    )


def _package_decision(
    encoding: ColoringEncoding,
    result,
    stages: List[StageStat],
    info: PipelineInfo,
    detection: Optional[SymmetryReport],
) -> Result:
    coloring = None
    num_colors = None
    if result.is_sat and result.model is not None:
        coloring = decode_coloring(encoding, result.model)
        check_proper(encoding.graph, coloring)
        num_colors = len(set(coloring.values()))
    return Result(
        status=result.status,
        num_colors=num_colors,
        coloring=coloring,
        stages=stages,
        pipeline=info,
        detection=detection,
        stats=result.stats,
        solvers_created=1,
    )


def run_chromatic_via_budget(
    graph: Graph,
    max_colors: Optional[int],
    config: PipelineConfig,
    ctx: RunContext,
    engine,
) -> Result:
    """Chromatic number through the budgeted-optimize flow.

    Picks the budget K from the DSATUR upper bound (which always
    suffices), capped by ``max_colors``.  A cap of zero on a non-empty
    graph is infeasible (UNSAT) — it must never be clamped up to a
    budget that silently "solves" with one color.
    """
    trivial = _trivial_result(CHROMATIC, graph)
    if trivial is not None:
        return trivial
    if max_colors is not None and max_colors <= 0:
        return _infeasible_budget(graph, max_colors, config)
    _, ub = dsatur(graph)
    k = ub if max_colors is None else min(max_colors, ub)
    return run_optimize_flow(graph, max(k, 1), config, ctx, engine)
