"""Problem value objects: what to solve, separated from how to solve it.

Three immutable problem kinds cover the repo's workloads:

* :class:`DecisionProblem` — is the graph K-colorable?
* :class:`BudgetedOptimize` — minimize the colors used within a fixed
  budget (the paper's application-driven ``K`` scenario: solve the 0-1
  ILP encoding at ``max_colors`` and minimize used colors).
* :class:`ChromaticProblem` — compute the chromatic number, optionally
  capped by ``max_colors`` (a cap below the chromatic number makes the
  problem infeasible and the result UNSAT).

Construction validates eagerly: malformed budgets raise ``ValueError``
at the call site, never deep inside a solver.  A budget of zero is
*valid input* — it means "no colors allowed", which is infeasible for
every non-empty graph and trivially optimal for the empty one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional

from ..graphs.graph import Graph

DECISION = "decision"
CHROMATIC = "chromatic"
BUDGETED = "budgeted-optimize"

PROBLEM_KINDS = (DECISION, CHROMATIC, BUDGETED)


@dataclass(frozen=True)
class Problem:
    """Base class of all problem value objects."""

    graph: Graph

    kind: ClassVar[str] = ""

    def __post_init__(self) -> None:
        if not isinstance(self.graph, Graph):
            raise ValueError(
                f"problem graph must be a repro Graph, got {type(self.graph).__name__}"
            )


def _check_budget(value: object, what: str) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ValueError(f"{what} must be a non-negative int, got {value!r}")


@dataclass(frozen=True)
class DecisionProblem(Problem):
    """Is ``graph`` colorable with ``k`` colors available?"""

    k: int

    kind: ClassVar[str] = DECISION

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_budget(self.k, "color count k")


@dataclass(frozen=True)
class ChromaticProblem(Problem):
    """Compute the chromatic number of ``graph``.

    ``max_colors`` caps the search (``None`` = uncapped; the DSATUR
    bound always suffices).  A cap below the chromatic number yields an
    UNSAT (infeasible) result — it never silently loosens.
    """

    max_colors: Optional[int] = None

    kind: ClassVar[str] = CHROMATIC

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_colors is not None:
            _check_budget(self.max_colors, "max_colors")


@dataclass(frozen=True)
class BudgetedOptimize(Problem):
    """Minimize the colors used on ``graph`` within a budget of ``max_colors``."""

    max_colors: int

    kind: ClassVar[str] = BUDGETED

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_budget(self.max_colors, "max_colors")
