"""The :class:`Backend` protocol and the backend registry.

A backend is a named solving engine that answers API problems.  New
engines plug in by subclassing :class:`Backend` and calling
:func:`register_backend` — no call site changes.  Lookup is by name
(or alias) and a bad name raises ``ValueError`` listing the registered
choices, at the API boundary instead of a deep ``KeyError``.

Registered engines:

=================  =========================================================
``pb-pbs2``        PBS II profile of the CDCL+PB engine (alias ``pbs2``)
``pb-galena``      Galena profile (alias ``galena``)
``pb-pueblo``      Pueblo profile, binary-search optimization (alias
                   ``pueblo``)
``cplex-bb``       generic LP-based branch and bound (CPLEX stand-in)
``cdcl-incremental``  pure-CNF CDCL; chromatic descents run on one
                   persistent solver with per-color activation literals
``cdcl-scratch``   pure-CNF CDCL, one fresh solver per K query
``brute``          exhaustive enumeration (tiny instances; the oracle)
``exact-dsatur``   DSATUR branch and bound (problem-specific baseline)
``portfolio``      races the engines in ``SolveConfig.racers`` in worker
                   processes; first conclusive answer cancels the rest,
                   racers exchange bounds (and optionally short learned
                   clauses) while they run
=================  =========================================================
"""

from __future__ import annotations

import abc
import time
from typing import Dict, Iterable, Tuple

from ..coloring.exact_dsatur import exact_chromatic_number
from ..coloring.sat_pipeline import chromatic_number_sat, sat_k_colorable
from ..ilp.branch_and_bound import BranchAndBoundSolver
from ..pb.optimizer import minimize
from ..pb.presets import get_preset
from ..sat.brute import MAX_BRUTE_VARS, brute_force_solve
from ..sat.result import (
    OPTIMAL,
    SAT,
    SolveResult,
    SolverStats,
    UNKNOWN,
    UNSAT,
)
from ..sbp.instance_independent import SBP_KINDS
from .config import PipelineConfig
from .pipeline import (
    _trivial_result,
    _infeasible_budget,
    run_chromatic_via_budget,
    run_optimize_flow,
)
from .problems import BUDGETED, CHROMATIC, DECISION, DecisionProblem, Problem
from .results import Result, RunContext, StageStat

# The CNF route supports the clause-expressible SBP subset only.
CNF_SBP_KINDS = ("none", "nu", "sc", "nu+sc")


class Backend(abc.ABC):
    """A named engine answering coloring problems.

    Subclasses declare which problem kinds they ``supports`` and which
    instance-independent SBP constructions they accept, and implement
    :meth:`run`.  ``persistent`` advertises whether multi-query searches
    reuse one solver (the incremental engines).
    """

    name: str = ""
    description: str = ""
    supports: Tuple[str, ...] = (DECISION, CHROMATIC, BUDGETED)
    sbp_kinds: Tuple[str, ...] = SBP_KINDS
    persistent: bool = False

    def validate(self, problem: Problem, config: PipelineConfig) -> None:
        """Fail fast on unsupported problem kinds / SBP constructions."""
        if problem.kind not in self.supports:
            raise ValueError(
                f"backend {self.name!r} does not answer {problem.kind!r} "
                f"problems; it supports {self.supports}"
            )
        if config.symmetry.sbp_kind not in self.sbp_kinds:
            raise ValueError(
                f"backend {self.name!r} supports sbp_kind in {self.sbp_kinds}, "
                f"got {config.symmetry.sbp_kind!r}"
            )

    @abc.abstractmethod
    def run(self, problem: Problem, config: PipelineConfig, ctx: RunContext) -> Result:
        """Answer ``problem`` under ``config``; never raises for UNSAT."""


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

_REGISTRY: Dict[str, Backend] = {}
_ALIASES: Dict[str, str] = {}


def register_backend(backend: Backend, aliases: Iterable[str] = ()) -> Backend:
    """Register ``backend`` under its name (and ``aliases``)."""
    if not backend.name:
        raise ValueError("backend must have a non-empty name")
    _REGISTRY[backend.name] = backend
    for alias in aliases:
        _ALIASES[alias] = backend.name
    return backend


def known_backend_names() -> Tuple[str, ...]:
    """Every accepted backend name (canonical names + aliases), sorted."""
    return tuple(sorted(set(_REGISTRY) | set(_ALIASES)))


def resolve_backend_name(name: str) -> str:
    """Canonical name for ``name``; ``ValueError`` naming the choices."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        raise ValueError(
            f"unknown backend {name!r}; registered backends: "
            f"{tuple(sorted(_REGISTRY))} (aliases: {dict(sorted(_ALIASES.items()))})"
        )
    return canonical


def check_backend_name(name: str) -> None:
    """Eager-validation hook used by ``SolveConfig``."""
    resolve_backend_name(name)


def get_backend(name: str) -> Backend:
    """Look up a backend by name or alias (``ValueError`` if unknown)."""
    return _REGISTRY[resolve_backend_name(name)]


def available_backends() -> Dict[str, Backend]:
    """Canonical name -> backend, for registry listings."""
    return dict(sorted(_REGISTRY.items()))


# --------------------------------------------------------------------------
# 0-1 ILP backends (the paper's solvers) on the staged pipeline flow.
# --------------------------------------------------------------------------


class _OptimizeFlowBackend(Backend):
    """Shared dispatch for backends that ride the staged 0-1 ILP flow."""

    def run(self, problem: Problem, config: PipelineConfig, ctx: RunContext) -> Result:
        trivial = _trivial_result(problem.kind, problem.graph)
        if trivial is not None:
            return trivial
        if problem.kind == DECISION:
            if problem.k <= 0:
                return _infeasible_budget(problem.graph, problem.k, config)
            return run_optimize_flow(
                problem.graph, problem.k, config, ctx, self, decision=True
            )
        if problem.kind == BUDGETED:
            return run_optimize_flow(
                problem.graph, problem.max_colors, config, ctx, self
            )
        return run_chromatic_via_budget(
            problem.graph, problem.max_colors, config, ctx, self
        )

    def minimize(
        self, formula, time_limit, conflict_limit, upper, lower, incremental,
        should_stop=None,
    ):
        raise NotImplementedError

    def decide(self, formula, time_limit, conflict_limit, should_stop=None) -> SolveResult:
        raise NotImplementedError


class PBPresetBackend(_OptimizeFlowBackend):
    """One behavioural profile of the CDCL+PB engine (PBS II / Galena /
    Pueblo), minimizing used colors per the preset's strategy."""

    def __init__(self, canonical_name: str, preset_name: str):
        self.name = canonical_name
        self.preset = get_preset(preset_name)
        self.persistent = True  # bound probes share one persistent solver
        self.description = self.preset.description

    def minimize(
        self, formula, time_limit, conflict_limit, upper, lower, incremental,
        should_stop=None,
    ):
        return minimize(
            formula,
            strategy=self.preset.optimization_strategy,
            solver_factory=self.preset.solver_factory(),
            time_limit=time_limit,
            conflict_limit=conflict_limit,
            upper_bound_hint=upper,
            lower_bound=lower,
            incremental=incremental,
            should_stop=should_stop,
        )

    def decide(self, formula, time_limit, conflict_limit, should_stop=None) -> SolveResult:
        solver = self.preset.make_solver(formula.num_vars)
        if not solver.add_formula(formula):
            return SolveResult(UNSAT)
        return solver.solve(
            time_limit=time_limit,
            conflict_limit=conflict_limit,
            should_stop=should_stop,
        )


class BranchAndBoundBackend(_OptimizeFlowBackend):
    """Generic LP-based branch and bound (the paper's CPLEX role)."""

    name = "cplex-bb"
    description = "LP-relaxation branch and bound standing in for CPLEX"

    def minimize(
        self, formula, time_limit, conflict_limit, upper, lower, incremental,
        should_stop=None,
    ):
        return BranchAndBoundSolver().optimize(
            formula, time_limit=time_limit, should_stop=should_stop
        )

    def decide(self, formula, time_limit, conflict_limit, should_stop=None) -> SolveResult:
        result = BranchAndBoundSolver().optimize(
            formula, time_limit=time_limit, should_stop=should_stop
        )
        if result.status in (OPTIMAL, SAT) and result.best_model is not None:
            return SolveResult(SAT, model=result.best_model, stats=result.stats)
        return SolveResult(result.status, stats=result.stats)


# --------------------------------------------------------------------------
# Pure-CNF CDCL backends (the repeated-SAT route).
# --------------------------------------------------------------------------


class CdclBackend(Backend):
    """Clause-only CDCL: decision queries and chromatic descents.

    ``cdcl-incremental`` drives chromatic descents through persistent
    solvers with per-color activation literals (learned clauses, phases
    and activity carry over between K queries).  When kernelization
    leaves a *disconnected* kernel, the descent runs on the
    per-component Session pool by default — one persistent solver per
    component, recombined as the max over components
    (``SolveConfig.split_components`` turns this off).
    ``cdcl-scratch`` re-encodes and re-solves from scratch at every K
    (the historical behaviour, kept for measurement).  One-shot decision
    queries are identical between the two — reuse across *multiple*
    queries is what :class:`repro.api.Session` exists for.
    """

    supports = (DECISION, CHROMATIC)
    sbp_kinds = CNF_SBP_KINDS

    def __init__(self, canonical_name: str, incremental: bool):
        self.name = canonical_name
        self.incremental = incremental
        self.persistent = incremental
        self.description = (
            "CNF CDCL; persistent-solver K descent" if incremental
            else "CNF CDCL; fresh solver per K query"
        )

    def run(self, problem: Problem, config: PipelineConfig, ctx: RunContext) -> Result:
        trivial = _trivial_result(problem.kind, problem.graph)
        if trivial is not None:
            return trivial
        if problem.kind == DECISION:
            return self._decide(problem, config, ctx)
        return self._chromatic(problem, config, ctx)

    def _decide(self, problem, config: PipelineConfig, ctx: RunContext) -> Result:
        if ctx.cancelled():
            return Result(status=UNKNOWN, cancelled=True)
        ctx.emit("solve", f"deciding {problem.k}-colorability", k=problem.k)
        stats = SolverStats()
        t0 = time.monotonic()
        status, coloring = sat_k_colorable(
            problem.graph,
            problem.k,
            time_limit=config.solve.time_limit,
            amo_encoding=config.encode.amo,
            sbp_kind=config.symmetry.sbp_kind,
            preprocess=config.simplify.enabled,
            reduce=config.reduce.enabled,
            stats=stats,
            should_stop=ctx.cancelled if ctx.cancel else None,
        )
        seconds = time.monotonic() - t0
        return Result(
            status=status,
            num_colors=len(set(coloring.values())) if coloring else None,
            coloring=coloring,
            stages=[StageStat("solve", seconds, {"status": status})],
            stats=stats,
            queries=[(problem.k, status)],
            solvers_created=1,
            cancelled=status == UNKNOWN and ctx.cancelled(),
        )

    def _chromatic(self, problem, config: PipelineConfig, ctx: RunContext) -> Result:
        strategy = config.solve.strategy or "linear"
        kernelized = None
        if (
            self.incremental
            and config.reduce.enabled
            and config.solve.split_components
        ):
            # The per-component Session pool: one persistent solver per
            # kernel component.  Applies only when the kernel is
            # disconnected (and the config fits the growable sessions);
            # otherwise fall through to the whole-kernel descent, which
            # reuses the probe's kernelization instead of redoing it.
            from .pool import pooled_chromatic_result

            pooled, kernelized = pooled_chromatic_result(problem, config, ctx)
            if pooled is not None:
                return pooled
        probe = None
        if problem.max_colors is not None:
            # Settle the cap with a single decision probe before paying
            # for the descent: UNSAT at the cap proves infeasibility
            # cheaply, SAT guarantees the descent lands within it.
            probe = self._decide(
                DecisionProblem(problem.graph, problem.max_colors), config, ctx
            )
            if probe.status != SAT:
                return probe
        ctx.emit("solve", f"{strategy} K descent ({self.name})")
        t0 = time.monotonic()
        sat_result = chromatic_number_sat(
            problem.graph,
            strategy=strategy,
            time_limit=config.solve.time_limit,
            amo_encoding=config.encode.amo,
            sbp_kind=config.symmetry.sbp_kind,
            preprocess=config.simplify.enabled,
            reduce=config.reduce.enabled,
            incremental=self.incremental,
            should_stop=ctx.cancelled if ctx.cancel else None,
            kernelized=kernelized,
        )
        seconds = time.monotonic() - t0
        result = Result(
            status=sat_result.status,
            num_colors=sat_result.chromatic_number,
            coloring=sat_result.coloring,
            stages=[StageStat(
                "solve", seconds,
                {"strategy": strategy, "sat_calls": sat_result.sat_calls},
            )],
            stats=sat_result.stats,
            queries=list(sat_result.k_queries),
            solvers_created=sat_result.solvers_created,
            cancelled=ctx.cancelled(),
        )
        if probe is not None:
            # Account the cap-feasibility probe in the trace.
            result.queries = list(probe.queries) + result.queries
            result.solvers_created += probe.solvers_created
            result.stats.merge(probe.stats)
            result.stages = list(probe.stages) + result.stages
        return result


# --------------------------------------------------------------------------
# Reference baselines.
# --------------------------------------------------------------------------


class BruteForceBackend(Backend):
    """Exhaustive enumeration over the CNF encoding — the oracle for
    tiny instances (raises ``ValueError`` beyond ~22 variables)."""

    name = "brute"
    description = "exhaustive enumeration oracle (tiny instances only)"
    supports = (DECISION, CHROMATIC)
    sbp_kinds = ("none",)

    def run(self, problem: Problem, config: PipelineConfig, ctx: RunContext) -> Result:
        trivial = _trivial_result(problem.kind, problem.graph)
        if trivial is not None:
            return trivial
        if problem.kind == DECISION:
            status, coloring, seconds = self._decide_k(problem.graph, problem.k)
            return Result(
                status=status,
                num_colors=len(set(coloring.values())) if coloring else None,
                coloring=coloring,
                stages=[StageStat("solve", seconds)],
                queries=[(problem.k, status)],
                solvers_created=1,
            )
        queries = []
        stages = []
        cap = problem.max_colors
        if cap is not None and cap <= 0:
            return _infeasible_budget(problem.graph, cap, config)
        upper = problem.graph.num_vertices if cap is None else min(cap, problem.graph.num_vertices)
        solvers = 0
        for k in range(1, upper + 1):
            if ctx.cancelled():
                return Result(status=UNKNOWN, stages=stages, queries=queries,
                              cancelled=True, solvers_created=solvers)
            ctx.emit("solve", f"brute-force {k}-colorability", k=k)
            status, coloring, seconds = self._decide_k(problem.graph, k)
            queries.append((k, status))
            stages.append(StageStat("solve", seconds, {"k": k}))
            solvers += 1
            if status == SAT:
                return Result(
                    status=OPTIMAL,
                    num_colors=len(set(coloring.values())),
                    coloring=coloring,
                    stages=stages,
                    queries=queries,
                    solvers_created=solvers,
                )
        return Result(status=UNSAT, stages=stages, queries=queries,
                      solvers_created=solvers)

    @staticmethod
    def _decide_k(graph, k):
        from ..coloring.sat_pipeline import encode_k_coloring_cnf

        t0 = time.monotonic()
        if k <= 0:
            status = UNSAT if graph.num_vertices else SAT
            return status, ({} if not graph.num_vertices else None), time.monotonic() - t0
        formula, x = encode_k_coloring_cnf(graph, k)
        if formula.num_vars > MAX_BRUTE_VARS:
            raise ValueError(
                f"brute backend needs <= {MAX_BRUTE_VARS} encoding variables, "
                f"got {formula.num_vars} (use a CDCL or PB backend)"
            )
        result = brute_force_solve(formula)
        coloring = None
        if result.is_sat:
            coloring = {}
            for v in range(graph.num_vertices):
                for c in range(1, k + 1):
                    if result.model[x[(v, c)]]:
                        coloring[v] = c
                        break
        return result.status, coloring, time.monotonic() - t0


class ExactDSaturBackend(Backend):
    """DSATUR-style branch and bound — the problem-specific baseline of
    the exact-coloring literature (no formula pipeline at all)."""

    name = "exact-dsatur"
    description = "DSATUR branch and bound (problem-specific baseline)"
    supports = (DECISION, CHROMATIC)
    sbp_kinds = ("none",)

    def run(self, problem: Problem, config: PipelineConfig, ctx: RunContext) -> Result:
        trivial = _trivial_result(problem.kind, problem.graph)
        if trivial is not None:
            return trivial
        ctx.emit("solve", "DSATUR branch and bound")
        t0 = time.monotonic()
        bb = exact_chromatic_number(problem.graph, time_limit=config.solve.time_limit)
        seconds = time.monotonic() - t0
        stages = [StageStat("solve", seconds, {"nodes": bb.nodes_explored})]
        chi = bb.chromatic_number
        if problem.kind == DECISION:
            if chi is not None and chi <= problem.k:
                coloring = bb.coloring
                return Result(status=SAT, num_colors=chi, coloring=coloring,
                              stages=stages, solvers_created=1)
            if bb.optimal:
                return Result(status=UNSAT, stages=stages, solvers_created=1)
            return Result(status=UNKNOWN, stages=stages, solvers_created=1)
        cap = problem.max_colors
        if cap is not None and chi is not None and chi > cap:
            status = UNSAT if bb.optimal else UNKNOWN
            return Result(status=status, stages=stages, solvers_created=1)
        status = OPTIMAL if bb.optimal else (SAT if chi is not None else UNKNOWN)
        return Result(
            status=status, num_colors=chi, coloring=bb.coloring,
            stages=stages, solvers_created=1,
        )


# --------------------------------------------------------------------------
# Registration (import side effect of the api package).
# --------------------------------------------------------------------------

register_backend(PBPresetBackend("pb-pbs2", "pbs2"), aliases=("pbs2",))
register_backend(PBPresetBackend("pb-galena", "galena"), aliases=("galena",))
register_backend(PBPresetBackend("pb-pueblo", "pueblo"), aliases=("pueblo",))
register_backend(BranchAndBoundBackend())
register_backend(CdclBackend("cdcl-incremental", incremental=True))
register_backend(CdclBackend("cdcl-scratch", incremental=False))
register_backend(BruteForceBackend())
register_backend(ExactDSaturBackend())

# Imported last: the portfolio backend races the engines above, so it
# needs the registry populated (and the module imports this one).
from .portfolio import PortfolioBackend  # noqa: E402

register_backend(PortfolioBackend(), aliases=("race",))
