"""Command-line interface: exact coloring of DIMACS ``.col`` files.

Usage::

    python -m repro color graph.col [--solver pbs2] [--sbp nu+sc]
        [--instance-dependent] [--k 20] [--time-limit 60]
        [--no-preprocess] [--no-reduce] [--no-incremental]
        [--trace run.trace] [--metrics metrics.json]
    python -m repro chromatic graph.col [--strategy linear|binary]
        [--no-incremental] [--no-split-components] [--sbp nu]
        [--time-limit 60] [--trace run.trace] [--metrics metrics.json]
    python -m repro.obs report run.trace [--json]
    python -m repro stats graph.col
    python -m repro detect graph.col --k 8
    python -m repro backends
    python -m repro batch manifest.json [--jobs 4] [--task-timeout 30]
        [--fallback exact-dsatur] [--out results.jsonl]
        [--resume results.jsonl]

Every solving command runs through :mod:`repro.api`: the arguments
build a :class:`~repro.api.Pipeline` (stage configs + backend name)
and the command submits the matching problem value object.  ``color``
minimizes used colors within a budget (``BudgetedOptimize``) on a 0-1
ILP backend; ``chromatic`` computes the chromatic number
(``ChromaticProblem``) on the pure-CNF descent backends —
``cdcl-incremental`` (one persistent solver, the default) or
``cdcl-scratch`` (``--no-incremental``).  ``stats`` prints graph
statistics and heuristic bounds; ``detect`` reports the symmetry
statistics of the encoded instance; ``backends`` lists the registered
backend table.  ``batch`` fans a JSON/JSONL manifest of tasks across a
worker pool (:mod:`repro.batch`) and streams one JSONL record per task
in manifest order, plus an aggregate summary.

``--trace FILE`` records a binary solver event trace
(``docs/TRACE_FORMAT.md``; render with ``python -m repro.obs report``)
and ``--metrics FILE`` dumps the run's metrics-registry snapshot as
sorted JSON — see :mod:`repro.obs` and ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

from .api import (
    BudgetedOptimize,
    ChromaticProblem,
    Pipeline,
    available_backends,
)
from .coloring.encoding import encode_coloring
from .coloring.solve import SOLVER_NAMES
from .graphs.cliques import clique_lower_bound
from .graphs.coloring_heuristics import dsatur
from .graphs.dimacs import read_dimacs_graph
from .sbp.instance_independent import SBP_KINDS, apply_sbp
from .symmetry.detect import detect_symmetries


def _load(path: str):
    graph = read_dimacs_graph(path, name=path)
    return graph


def cmd_stats(args) -> int:
    graph = _load(args.graph)
    _, ub = dsatur(graph)
    lb = clique_lower_bound(graph)
    print(f"file:        {args.graph}")
    print(f"vertices:    {graph.num_vertices}")
    print(f"edges:       {graph.num_edges}")
    print(f"density:     {graph.density():.4f}")
    print(f"max degree:  {graph.max_degree()}")
    print(f"clique bound (lower): {lb}")
    print(f"DSATUR bound (upper): {ub}")
    return 0


def _pipeline_from_args(args, backend: str) -> Pipeline:
    """The shared argument -> Pipeline translation of the solve commands."""
    return (
        Pipeline()
        .reduce(args.reduce)
        .encode(amo=getattr(args, "amo", "pairwise"))
        .symmetry(
            sbp_kind=args.sbp,
            instance_dependent=getattr(args, "instance_dependent", False),
        )
        .simplify(args.preprocess)
        .solve(
            backend=backend,
            time_limit=args.time_limit,
            incremental=getattr(args, "incremental", True),
            strategy=getattr(args, "strategy", None),
            split_components=getattr(args, "split_components", True),
            pool_jobs=getattr(args, "pool_jobs", 0),
        )
    )


def _run_observed(args, pipeline, problem):
    """Run the pipeline, honouring ``--trace`` / ``--metrics`` if given.

    Both flags are opt-in observability (:mod:`repro.obs`): ``--trace``
    streams the binary solver event trace to FILE, ``--metrics`` dumps
    the run-scoped metrics registry as sorted JSON.  Without either the
    run is byte-for-byte what it always was.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if trace_path is None and metrics_path is None:
        return pipeline.run(problem)

    from .obs import scoped_registry, tracing

    def run_traced():
        if trace_path is not None:
            with tracing(trace_path):
                return pipeline.run(problem)
        return pipeline.run(problem)

    if metrics_path is not None:
        with scoped_registry() as registry:
            result = run_traced()
        with open(metrics_path, "w") as fh:
            fh.write(registry.to_json())
            fh.write("\n")
        print(f"metrics written to {metrics_path}", file=sys.stderr)
    else:
        result = run_traced()
    if trace_path is not None:
        print(f"trace written to {trace_path} "
              f"(render: python -m repro.obs report {trace_path})",
              file=sys.stderr)
    return result


def cmd_color(args) -> int:
    graph = _load(args.graph)
    k = args.k
    if k is None:
        _, k = dsatur(graph)
    pipeline = _pipeline_from_args(args, backend=args.solver)
    result = _run_observed(args, pipeline, BudgetedOptimize(graph, k))
    print(f"status:           {result.status}")
    if result.num_colors is not None:
        print(f"colors used:      {result.num_colors}")
    print(f"encode time:      {result.encode_seconds:.2f}s")
    print(f"solve time:       {result.solve_seconds:.2f}s")
    info = result.pipeline
    if info is not None and info.reduce:
        print(f"kernel:           {info.kernel_vertices}/{info.original_vertices} vertices "
              f"({info.peeled_vertices} peeled, {info.components_solved} components solved)")
    if info is not None and info.simplify is not None and info.simplify.clauses_before:
        s = info.simplify
        print(f"preprocessing:    {s.clauses_before} -> {s.clauses_after} clauses "
              f"({s.units_propagated} units, {s.subsumed} subsumed, "
              f"{s.strengthened} strengthened)")
    if result.detection is not None:
        print(f"symmetry gens:    {result.detection.num_generators} "
              f"(detected in {result.detection.detection_seconds:.2f}s)")
    if result.coloring and args.show_coloring:
        for v in sorted(result.coloring):
            print(f"  vertex {v + 1}: color {result.coloring[v]}")
    if result.status == "UNSAT":
        print(f"(not colorable with K={k}; raise --k)")
    return 0 if result.solved else 1


def cmd_chromatic(args) -> int:
    graph = _load(args.graph)
    if args.portfolio:
        backend = "portfolio"
    elif args.incremental:
        backend = "cdcl-incremental"
    else:
        backend = "cdcl-scratch"
    pipeline = _pipeline_from_args(args, backend=backend)
    result = _run_observed(args, pipeline, ChromaticProblem(graph))
    print(f"status:           {result.status}")
    print(f"chromatic number: {result.chromatic_number}"
          + ("" if result.status == "OPTIMAL" else " (upper bound; not proved)"))
    race = next((s for s in result.stages if s.name == "race"), None)
    if race is not None:
        winner = race.details.get("winner") or "(none)"
        mode = (f"portfolio race ({len(race.details['racers'])} racers, "
                f"winner {winner}, {race.details['cancelled']} cancelled)")
    elif result.components:
        mode = (f"component pool ({len(result.components)} components, "
                f"{result.solvers_created} persistent solvers)")
    elif args.incremental:
        mode = "incremental (1 persistent solver)"
    else:
        mode = f"scratch ({result.solvers_created} fresh solvers)"
    print(f"search:           {args.strategy}, {mode}")
    trace = ", ".join(f"K={k}:{status}" for k, status in result.queries) or "(bounds met)"
    print(f"K queries:        {len(result.queries)}  [{trace}]")
    for trace in result.components:
        comp_trace = ", ".join(f"K={k}:{s}" for k, s in trace.queries) or "(bounds met)"
        print(f"  component {trace.index}:    {trace.vertices}v "
              f"{trace.status} colors={trace.num_colors}  [{comp_trace}]")
    print(f"conflicts:        {result.stats.conflicts}")
    print(f"propagations:     {result.stats.propagations}")
    print(f"time:             {result.total_seconds:.2f}s")
    if result.coloring and args.show_coloring:
        for v in sorted(result.coloring):
            print(f"  vertex {v + 1}: color {result.coloring[v]}")
    return 0 if result.status == "OPTIMAL" else 1


def cmd_detect(args) -> int:
    graph = _load(args.graph)
    encoding = apply_sbp(encode_coloring(graph, args.k), args.sbp)
    report = detect_symmetries(encoding.formula, node_limit=args.node_limit)
    stats = encoding.formula.stats()
    print(f"formula:     {stats.num_vars} vars, {stats.num_clauses} clauses, "
          f"{stats.num_pb} PB constraints")
    print(f"symmetries:  #S = {report.order:.6g}")
    print(f"generators:  {report.num_generators}")
    print(f"detection:   {report.detection_seconds:.2f}s "
          f"({'complete' if report.complete else 'budget hit'})")
    return 0


def cmd_batch(args) -> int:
    import json

    from .batch import BatchRunner, load_manifest, load_plugins
    from .resilience import read_wal

    load_plugins(args.plugin)
    manifest = load_manifest(args.manifest)
    if not manifest.tasks:
        print(f"manifest {args.manifest} contains no tasks", file=sys.stderr)
        return 2
    fallback = [name for spec in args.fallback for name in spec.split(",") if name]

    resume_records = []
    if args.resume is not None:
        # Read the write-ahead log BEFORE (re)opening --out for write:
        # resuming in place (--resume out.jsonl --out out.jsonl) is the
        # normal crash-recovery invocation.
        records, dropped = read_wal(args.resume)
        resume_records = [r for r in records if "summary" not in r]
        if not args.quiet:
            note = f" ({dropped} torn/corrupt line(s) dropped)" if dropped else ""
            print(
                f"resuming from {args.resume}: "
                f"{len(resume_records)} completed record(s){note}",
                file=sys.stderr,
            )

    def progress(record) -> None:
        if args.quiet:
            return
        label = record.get("num_colors")
        label = "" if label is None else f" colors={label}"
        print(
            f"  [{record['index'] + 1}/{len(manifest.tasks)}] "
            f"{record['task']:24s} {record['status']:8s}{label} "
            f"backend={record['backend']} "
            f"({record.get('seconds', 0) or 0:.2f}s)",
            file=sys.stderr,
            flush=True,
        )

    def run(jsonl) -> int:
        runner = BatchRunner(
            manifest.tasks,
            jobs=args.jobs,
            task_timeout=args.task_timeout,
            fallback=fallback,
            retries=args.retries,
            include_colorings=args.colorings,
            plugins=tuple(args.plugin) + manifest.plugins,
            on_record=progress,
            jsonl=jsonl,
            resume_records=resume_records,
        )
        report = runner.run()
        print(json.dumps(report.summary, sort_keys=True), file=sys.stderr)
        outcomes = report.summary["outcomes"]
        return 1 if outcomes.get("error", 0) or outcomes.get("died", 0) else 0

    if args.out == "-":
        return run(sys.stdout)
    with open(args.out, "w") as fh:
        code = run(fh)
    if not args.quiet:
        print(f"wrote {len(manifest.tasks)} records to {args.out}", file=sys.stderr)
    return code


def cmd_backends(args) -> int:
    print(f"{'name':18s} {'problems':34s} description")
    for name, backend in available_backends().items():
        kinds = ",".join(backend.supports)
        persistent = " [persistent]" if backend.persistent else ""
        print(f"{name:18s} {kinds:34s} {backend.description}{persistent}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Exact graph coloring with symmetry breaking (DATE'04 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="graph statistics and bounds")
    p_stats.add_argument("graph", help="DIMACS .col file")
    p_stats.set_defaults(func=cmd_stats)

    p_color = sub.add_parser("color", help="minimum coloring via 0-1 ILP")
    p_color.add_argument("graph", help="DIMACS .col file")
    p_color.add_argument("--solver", default="pbs2", choices=SOLVER_NAMES)
    p_color.add_argument("--sbp", default="nu+sc", choices=SBP_KINDS)
    p_color.add_argument("--instance-dependent", action="store_true",
                         help="detect symmetries and add lex-leader SBPs")
    p_color.add_argument("--k", type=int, default=None,
                         help="color budget (default: DSATUR bound)")
    p_color.add_argument("--time-limit", type=float, default=300.0)
    p_color.add_argument("--show-coloring", action="store_true")
    p_color.add_argument(
        "--preprocess", default=True, action=argparse.BooleanOptionalAction,
        help="simplify the CNF clause database after encoding "
             "(units, subsumption, self-subsuming resolution)")
    p_color.add_argument(
        "--reduce", default=True, action=argparse.BooleanOptionalAction,
        help="kernelize the graph before encoding "
             "(low-degree peeling + connected-component split)")
    p_color.add_argument(
        "--incremental", default=True, action=argparse.BooleanOptionalAction,
        help="run binary-search bound probes on one persistent solver "
             "with selector-guarded bound constraints")
    p_color.add_argument("--trace", default=None, metavar="FILE",
                         help="write a binary solver event trace to FILE "
                              "(render: python -m repro.obs report FILE)")
    p_color.add_argument("--metrics", default=None, metavar="FILE",
                         help="write the run's metrics snapshot to FILE "
                              "as sorted JSON")
    p_color.set_defaults(func=cmd_color)

    p_chrom = sub.add_parser(
        "chromatic",
        help="chromatic number via the repeated-SAT K-search (pure CNF)")
    p_chrom.add_argument("graph", help="DIMACS .col file")
    p_chrom.add_argument("--strategy", default="linear",
                         choices=("linear", "binary"),
                         help="descend linearly from the DSATUR bound or "
                              "bisect between the clique and DSATUR bounds")
    p_chrom.add_argument("--sbp", default="none",
                         choices=("none", "nu", "sc", "nu+sc"),
                         help="CNF-expressible symmetry-breaking predicates")
    p_chrom.add_argument("--amo", default="pairwise",
                         choices=("pairwise", "sequential"),
                         help="at-most-one encoding of the exactly-one rows")
    p_chrom.add_argument("--time-limit", type=float, default=300.0)
    p_chrom.add_argument("--show-coloring", action="store_true")
    p_chrom.add_argument(
        "--preprocess", default=True, action=argparse.BooleanOptionalAction,
        help="simplify the CNF before solving (model-preserving subset "
             "on the incremental path, full preprocessor on the scratch path)")
    p_chrom.add_argument(
        "--reduce", default=True, action=argparse.BooleanOptionalAction,
        help="kernelize before encoding (once at the clique bound on the "
             "incremental path, per query on the scratch path)")
    p_chrom.add_argument(
        "--incremental", default=True, action=argparse.BooleanOptionalAction,
        help="drive the whole K descent through one persistent solver "
             "(the cdcl-incremental backend); --no-incremental selects "
             "cdcl-scratch, one fresh solver per K query")
    p_chrom.add_argument(
        "--split-components", default=True,
        action=argparse.BooleanOptionalAction,
        help="when the kernel is disconnected, run the descent on the "
             "per-component Session pool (one persistent solver per "
             "component); --no-split-components keeps one solver over "
             "the whole kernel")
    p_chrom.add_argument(
        "--pool-jobs", type=int, default=0, metavar="N",
        help="run component descents on N worker processes (crash-"
             "isolated, true parallelism); 0 keeps the in-process pool")
    p_chrom.add_argument(
        "--portfolio", action="store_true",
        help="race cdcl-incremental, pb-pueblo and exact-dsatur on the "
             "whole problem; first conclusive answer cancels the rest "
             "(racers exchange bounds while running)")
    p_chrom.add_argument("--trace", default=None, metavar="FILE",
                         help="write a binary solver event trace to FILE "
                              "(render: python -m repro.obs report FILE)")
    p_chrom.add_argument("--metrics", default=None, metavar="FILE",
                         help="write the run's metrics snapshot to FILE "
                              "as sorted JSON")
    p_chrom.set_defaults(func=cmd_chromatic)

    p_detect = sub.add_parser("detect", help="symmetry statistics of the encoding")
    p_detect.add_argument("graph", help="DIMACS .col file")
    p_detect.add_argument("--k", type=int, default=8, help="color budget")
    p_detect.add_argument("--sbp", default="none", choices=SBP_KINDS)
    p_detect.add_argument("--node-limit", type=int, default=100000)
    p_detect.set_defaults(func=cmd_detect)

    p_backends = sub.add_parser(
        "backends", help="list the registered solve backends")
    p_backends.set_defaults(func=cmd_backends)

    p_batch = sub.add_parser(
        "batch",
        help="run a manifest of problems across a parallel worker pool")
    p_batch.add_argument("manifest", help="JSON or JSONL task manifest")
    p_batch.add_argument("--jobs", "-j", type=int, default=1,
                         help="concurrent worker processes (0 = run inline "
                              "in this process, cooperative timeouts only)")
    p_batch.add_argument("--task-timeout", type=float, default=None,
                         help="wall-clock seconds per attempt; a timed-out "
                              "attempt moves to the next fallback backend")
    p_batch.add_argument("--fallback", action="append", default=[],
                         help="backend(s) appended to every task's fallback "
                              "chain (repeatable or comma-separated)")
    p_batch.add_argument("--retries", type=int, default=1,
                         help="retries per backend when a worker dies")
    p_batch.add_argument("--out", default="-",
                         help="JSONL output path ('-' = stdout; the summary "
                              "always also goes to stderr)")
    p_batch.add_argument("--resume", default=None, metavar="JSONL",
                         help="treat JSONL as the write-ahead log of an "
                              "interrupted run: completed tasks are replayed "
                              "byte-identically, a torn tail line is dropped, "
                              "and only the remaining tasks are solved")
    p_batch.add_argument("--plugin", action="append", default=[],
                         help="module name or .py path imported in every "
                              "worker (e.g. to register custom backends)")
    p_batch.add_argument("--colorings", action="store_true",
                         help="include the full vertex coloring in records")
    p_batch.add_argument("--quiet", action="store_true",
                         help="suppress per-task progress on stderr")
    p_batch.set_defaults(func=cmd_batch)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
