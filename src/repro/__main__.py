"""Command-line interface: exact coloring of DIMACS ``.col`` files.

Usage::

    python -m repro color graph.col [--solver pbs2] [--sbp nu+sc]
        [--instance-dependent] [--k 20] [--time-limit 60]
        [--no-preprocess] [--no-reduce] [--no-incremental]
    python -m repro chromatic graph.col [--strategy linear|binary]
        [--no-incremental] [--sbp nu] [--time-limit 60]
    python -m repro stats graph.col
    python -m repro detect graph.col --k 8

``color`` runs the paper's full pipeline on a file — kernelization
(low-degree peeling + component split) before encoding and CNF
simplification after encoding are on by default, disable them with
``--no-reduce`` / ``--no-preprocess``; binary-search solver profiles
run all probes on one persistent incremental solver unless
``--no-incremental`` is given.  ``chromatic`` runs the pure-CNF
repeated-SAT K-search (the paper's Section 4.1 descent); by default the
whole descent shares one persistent solver with per-color activation
literals — ``--no-incremental`` restores one fresh SAT instance per K
query.  ``stats`` prints graph statistics and heuristic bounds;
``detect`` reports the symmetry statistics of the encoded instance (a
one-instance Table 2 row).
"""

from __future__ import annotations

import argparse
import sys

from .coloring.encoding import encode_coloring
from .coloring.sat_pipeline import chromatic_number_sat
from .coloring.solve import SOLVER_NAMES, solve_coloring
from .graphs.cliques import clique_lower_bound
from .graphs.coloring_heuristics import dsatur
from .graphs.dimacs import read_dimacs_graph
from .sbp.instance_independent import SBP_KINDS, apply_sbp
from .symmetry.detect import detect_symmetries


def _load(path: str):
    graph = read_dimacs_graph(path, name=path)
    return graph


def cmd_stats(args) -> int:
    graph = _load(args.graph)
    _, ub = dsatur(graph)
    lb = clique_lower_bound(graph)
    print(f"file:        {args.graph}")
    print(f"vertices:    {graph.num_vertices}")
    print(f"edges:       {graph.num_edges}")
    print(f"density:     {graph.density():.4f}")
    print(f"max degree:  {graph.max_degree()}")
    print(f"clique bound (lower): {lb}")
    print(f"DSATUR bound (upper): {ub}")
    return 0


def cmd_color(args) -> int:
    graph = _load(args.graph)
    k = args.k
    if k is None:
        _, k = dsatur(graph)
    result = solve_coloring(
        graph,
        k,
        solver=args.solver,
        sbp_kind=args.sbp,
        instance_dependent=args.instance_dependent,
        time_limit=args.time_limit,
        preprocess=args.preprocess,
        reduce=args.reduce,
        incremental=args.incremental,
    )
    print(f"status:           {result.status}")
    if result.num_colors is not None:
        print(f"colors used:      {result.num_colors}")
    print(f"encode time:      {result.encode_seconds:.2f}s")
    print(f"solve time:       {result.solve_seconds:.2f}s")
    info = result.pipeline
    if info is not None and info.reduce:
        print(f"kernel:           {info.kernel_vertices}/{info.original_vertices} vertices "
              f"({info.peeled_vertices} peeled, {info.components_solved} components solved)")
    if info is not None and info.simplify is not None and info.simplify.clauses_before:
        s = info.simplify
        print(f"preprocessing:    {s.clauses_before} -> {s.clauses_after} clauses "
              f"({s.units_propagated} units, {s.subsumed} subsumed, "
              f"{s.strengthened} strengthened)")
    if result.detection is not None:
        print(f"symmetry gens:    {result.detection.num_generators} "
              f"(detected in {result.detection.detection_seconds:.2f}s)")
    if result.coloring and args.show_coloring:
        for v in sorted(result.coloring):
            print(f"  vertex {v + 1}: color {result.coloring[v]}")
    if result.status == "UNSAT":
        print(f"(not colorable with K={k}; raise --k)")
    return 0 if result.solved else 1


def cmd_chromatic(args) -> int:
    graph = _load(args.graph)
    result = chromatic_number_sat(
        graph,
        strategy=args.strategy,
        time_limit=args.time_limit,
        amo_encoding=args.amo,
        sbp_kind=args.sbp,
        preprocess=args.preprocess,
        reduce=args.reduce,
        incremental=args.incremental,
    )
    print(f"status:           {result.status}")
    print(f"chromatic number: {result.chromatic_number}"
          + ("" if result.status == "OPTIMAL" else " (upper bound; not proved)"))
    mode = "incremental (1 persistent solver)" if result.incremental else \
        f"scratch ({result.solvers_created} fresh solvers)"
    print(f"search:           {args.strategy}, {mode}")
    trace = ", ".join(f"K={k}:{status}" for k, status in result.k_queries) or "(bounds met)"
    print(f"K queries:        {result.sat_calls}  [{trace}]")
    print(f"conflicts:        {result.stats.conflicts}")
    print(f"propagations:     {result.stats.propagations}")
    print(f"time:             {result.time_seconds:.2f}s")
    if result.coloring and args.show_coloring:
        for v in sorted(result.coloring):
            print(f"  vertex {v + 1}: color {result.coloring[v]}")
    return 0 if result.status == "OPTIMAL" else 1


def cmd_detect(args) -> int:
    graph = _load(args.graph)
    encoding = apply_sbp(encode_coloring(graph, args.k), args.sbp)
    report = detect_symmetries(encoding.formula, node_limit=args.node_limit)
    stats = encoding.formula.stats()
    print(f"formula:     {stats.num_vars} vars, {stats.num_clauses} clauses, "
          f"{stats.num_pb} PB constraints")
    print(f"symmetries:  #S = {report.order:.6g}")
    print(f"generators:  {report.num_generators}")
    print(f"detection:   {report.detection_seconds:.2f}s "
          f"({'complete' if report.complete else 'budget hit'})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Exact graph coloring with symmetry breaking (DATE'04 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="graph statistics and bounds")
    p_stats.add_argument("graph", help="DIMACS .col file")
    p_stats.set_defaults(func=cmd_stats)

    p_color = sub.add_parser("color", help="minimum coloring via 0-1 ILP")
    p_color.add_argument("graph", help="DIMACS .col file")
    p_color.add_argument("--solver", default="pbs2", choices=SOLVER_NAMES)
    p_color.add_argument("--sbp", default="nu+sc", choices=SBP_KINDS)
    p_color.add_argument("--instance-dependent", action="store_true",
                         help="detect symmetries and add lex-leader SBPs")
    p_color.add_argument("--k", type=int, default=None,
                         help="color budget (default: DSATUR bound)")
    p_color.add_argument("--time-limit", type=float, default=300.0)
    p_color.add_argument("--show-coloring", action="store_true")
    p_color.add_argument(
        "--preprocess", default=True, action=argparse.BooleanOptionalAction,
        help="simplify the CNF clause database after encoding "
             "(units, subsumption, self-subsuming resolution)")
    p_color.add_argument(
        "--reduce", default=True, action=argparse.BooleanOptionalAction,
        help="kernelize the graph before encoding "
             "(low-degree peeling + connected-component split)")
    p_color.add_argument(
        "--incremental", default=True, action=argparse.BooleanOptionalAction,
        help="run binary-search bound probes on one persistent solver "
             "with selector-guarded bound constraints")
    p_color.set_defaults(func=cmd_color)

    p_chrom = sub.add_parser(
        "chromatic",
        help="chromatic number via the repeated-SAT K-search (pure CNF)")
    p_chrom.add_argument("graph", help="DIMACS .col file")
    p_chrom.add_argument("--strategy", default="linear",
                         choices=("linear", "binary"),
                         help="descend linearly from the DSATUR bound or "
                              "bisect between the clique and DSATUR bounds")
    p_chrom.add_argument("--sbp", default="none",
                         choices=("none", "nu", "sc", "nu+sc"),
                         help="CNF-expressible symmetry-breaking predicates")
    p_chrom.add_argument("--amo", default="pairwise",
                         choices=("pairwise", "sequential"),
                         help="at-most-one encoding of the exactly-one rows")
    p_chrom.add_argument("--time-limit", type=float, default=300.0)
    p_chrom.add_argument("--show-coloring", action="store_true")
    p_chrom.add_argument(
        "--preprocess", default=True, action=argparse.BooleanOptionalAction,
        help="simplify the CNF before solving (model-preserving subset "
             "on the incremental path, full preprocessor on the scratch path)")
    p_chrom.add_argument(
        "--reduce", default=True, action=argparse.BooleanOptionalAction,
        help="kernelize before encoding (once at the clique bound on the "
             "incremental path, per query on the scratch path)")
    p_chrom.add_argument(
        "--incremental", default=True, action=argparse.BooleanOptionalAction,
        help="drive the whole K descent through one persistent solver via "
             "per-color activation literals (default); --no-incremental "
             "re-encodes and re-solves from scratch at every K")
    p_chrom.set_defaults(func=cmd_chromatic)

    p_detect = sub.add_parser("detect", help="symmetry statistics of the encoding")
    p_detect.add_argument("graph", help="DIMACS .col file")
    p_detect.add_argument("--k", type=int, default=8, help="color budget")
    p_detect.add_argument("--sbp", default="none", choices=SBP_KINDS)
    p_detect.add_argument("--node-limit", type=int, default=100000)
    p_detect.set_defaults(func=cmd_detect)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
