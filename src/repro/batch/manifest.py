"""Batch manifests: declarative task lists the fleet runner executes.

A manifest names *what* to solve without holding any live objects, so
tasks ship to worker processes as plain dicts and round-trip through
JSON.  Each task combines:

* a **graph source** (:class:`GraphSpec`): a DIMACS ``.col`` path, a
  registered benchmark instance name (``repro.experiments.instances``),
  a generator spec (``{"generator": "queens", "args": [5, 5]}``), or an
  inline edge list;
* a **problem kind** (``chromatic`` / ``decision`` / ``budgeted``) with
  its budget;
* the **pipeline knobs** (backend, fallback chain, SBP kind, strategy,
  AMO encoding, reduce/simplify toggles, per-component Session pooling
  (``split_components``, ``pool_jobs`` worker processes, deprecated
  ``pool_threads``), per-engine time limit).

File formats: a ``.json`` manifest is either a JSON list of task dicts
or ``{"defaults": {...}, "plugins": [...], "tasks": [...]}``; a
``.jsonl`` manifest is one task object per line (an object with only a
``defaults``/``plugins`` key updates the running defaults for the lines
after it).  ``defaults`` supplies any task field; each task overrides.

``plugins`` lists modules (import names or ``.py`` paths) imported
before tasks are parsed — the hook for registering custom backends via
:func:`repro.api.register_backend` so batch runs can target engines the
core does not ship.
"""

from __future__ import annotations

import importlib
import importlib.util
import json
import os
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..graphs.dimacs import read_dimacs_graph
from ..graphs.generators import (
    book_graph,
    games_graph,
    geometric_graph,
    gnm_graph,
    gnp_graph,
    interference_graph,
    mycielski_graph,
    queens_graph,
)
from ..graphs.graph import Graph

if TYPE_CHECKING:  # lazy at runtime: the api package imports this module
    from ..api.pipeline import Pipeline
    from ..api.problems import Problem

# Generator specs name these constructors; args may be positional
# (JSON list) or keyword (JSON object).
GENERATORS: Dict[str, Callable[..., Graph]] = {
    "queens": queens_graph,
    "mycielski": mycielski_graph,
    "gnm": gnm_graph,
    "gnp": gnp_graph,
    "book": book_graph,
    "games": games_graph,
    "geometric": geometric_graph,
    "interference": interference_graph,
}

PROBLEM_KIND_ALIASES = {
    "chromatic": "chromatic",
    "decision": "decision",
    "budgeted": "budgeted-optimize",
    "budgeted-optimize": "budgeted-optimize",
}


def load_plugins(specs: Sequence[str]) -> None:
    """Import plugin modules (by import name or ``.py`` file path).

    Plugins run for their side effects — typically
    :func:`repro.api.register_backend` calls — both in the coordinating
    process (so task validation sees the extra backends) and again in
    every worker.
    """
    for spec in specs:
        if spec.endswith(".py") or os.sep in spec:
            name = "repro_batch_plugin_" + os.path.splitext(os.path.basename(spec))[0]
            loader_spec = importlib.util.spec_from_file_location(name, spec)
            if loader_spec is None or loader_spec.loader is None:
                raise ValueError(f"cannot load batch plugin from {spec!r}")
            module = importlib.util.module_from_spec(loader_spec)
            loader_spec.loader.exec_module(module)
        else:
            importlib.import_module(spec)


@dataclass(frozen=True)
class GraphSpec:
    """One graph source; exactly one of the four fields is set."""

    path: Optional[str] = None
    instance: Optional[str] = None
    generator: Optional[str] = None
    args: Any = None  # positional list or kwargs dict for `generator`
    edges: Optional[Tuple[int, Tuple[Tuple[int, int], ...]]] = None
    name: str = ""

    def __post_init__(self) -> None:
        sources = [
            s for s in ("path", "instance", "generator", "edges")
            if getattr(self, s) is not None
        ]
        if len(sources) != 1:
            raise ValueError(
                "graph spec needs exactly one of path/instance/generator/"
                f"edges, got {sources or 'none'}"
            )
        if self.generator is not None and self.generator not in GENERATORS:
            raise ValueError(
                f"unknown generator {self.generator!r}; registered "
                f"generators: {tuple(sorted(GENERATORS))}"
            )

    @classmethod
    def from_value(cls, value: object) -> "GraphSpec":
        """Parse the manifest's ``graph`` field (string shorthand or dict).

        A bare string is a ``.col`` path if it looks like one, else a
        registered instance name.
        """
        if isinstance(value, GraphSpec):
            return value
        if isinstance(value, str):
            if value.endswith(".col") or os.sep in value:
                return cls(path=value)
            return cls(instance=value)
        if isinstance(value, dict):
            known = {
                "path", "instance", "generator", "args", "edges",
                "vertices", "name",
            }
            unknown = set(value) - known
            if unknown:
                raise ValueError(
                    f"unknown graph spec fields {sorted(unknown)}; "
                    f"expected a subset of {sorted(known)}"
                )
            edges = value.get("edges")
            if edges is not None:
                pairs = tuple((int(u), int(v)) for u, v in edges)
                if "vertices" in value:
                    num_vertices = int(value["vertices"])
                else:
                    num_vertices = max(
                        (max(u, v) for u, v in pairs), default=-1
                    ) + 1
                edges = (num_vertices, pairs)
            return cls(
                path=value.get("path"),
                instance=value.get("instance"),
                generator=value.get("generator"),
                args=value.get("args"),
                edges=edges,
                name=value.get("name", ""),
            )
        raise ValueError(f"cannot parse graph spec from {value!r}")

    @classmethod
    def from_graph(cls, graph: Graph) -> "GraphSpec":
        """Inline spec for a live Graph (used when the API caller hands
        Problems rather than manifest entries)."""
        return cls(
            edges=(graph.num_vertices, tuple(graph.edges())),
            name=graph.name,
        )

    def build(self) -> Graph:
        """Construct the graph this spec names."""
        if self.path is not None:
            return read_dimacs_graph(self.path, name=self.name or self.path)
        if self.instance is not None:
            from ..experiments.instances import get_instance

            return get_instance(self.instance).graph()
        if self.generator is not None:
            fn = GENERATORS[self.generator]
            if isinstance(self.args, dict):
                graph = fn(**self.args)
            elif self.args is None:
                graph = fn()
            else:
                graph = fn(*self.args)
            if self.name:
                graph.name = self.name
            return graph
        assert self.edges is not None  # __post_init__ guarantees one source
        num_vertices, edges = self.edges
        return Graph.from_edges(num_vertices, edges, name=self.name)

    def describe(self) -> str:
        """A short human label (the default task name)."""
        if self.name:
            return self.name
        if self.instance is not None:
            return self.instance
        if self.path is not None:
            return os.path.splitext(os.path.basename(self.path))[0]
        if self.generator is not None:
            if isinstance(self.args, dict):
                arg_text = ",".join(f"{k}={v}" for k, v in self.args.items())
            else:
                arg_text = ",".join(str(a) for a in (self.args or ()))
            return f"{self.generator}({arg_text})"
        return f"edges[{self.edges[0] if self.edges else 0}v]"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        if self.path is not None:
            out["path"] = self.path
        if self.instance is not None:
            out["instance"] = self.instance
        if self.generator is not None:
            out["generator"] = self.generator
            if self.args is not None:
                out["args"] = self.args
        if self.edges is not None:
            out["vertices"] = self.edges[0]
            out["edges"] = [list(e) for e in self.edges[1]]
        if self.name:
            out["name"] = self.name
        return out


@dataclass(frozen=True)
class TaskSpec:
    """One batch task: a graph source, a problem, and pipeline knobs."""

    graph: GraphSpec
    name: str = ""
    kind: str = "chromatic"
    k: Optional[int] = None  # decision budget
    max_colors: Optional[int] = None  # chromatic cap / budgeted budget
    backend: str = "cdcl-incremental"
    fallback: Tuple[str, ...] = ()
    sbp_kind: str = "none"
    strategy: Optional[str] = None
    amo: str = "pairwise"
    reduce: bool = True
    simplify: bool = True
    instance_dependent: bool = False
    detection_node_limit: Optional[int] = None  # None = SymmetryConfig default
    incremental: bool = True
    split_components: bool = True
    pool_jobs: int = 0
    pool_threads: int = 0
    time_limit: Optional[float] = None

    def __post_init__(self) -> None:
        kind = PROBLEM_KIND_ALIASES.get(self.kind)
        if kind is None:
            raise ValueError(
                f"unknown problem kind {self.kind!r}; expected one of "
                f"{tuple(sorted(set(PROBLEM_KIND_ALIASES)))}"
            )
        object.__setattr__(self, "kind", kind)
        if kind == "decision" and self.k is None:
            raise ValueError(f"decision task {self.describe()!r} needs 'k'")
        if kind == "budgeted-optimize" and self.max_colors is None:
            raise ValueError(
                f"budgeted task {self.describe()!r} needs 'max_colors'"
            )
        object.__setattr__(self, "fallback", tuple(self.fallback))

    def describe(self) -> str:
        return self.name or self.graph.describe()

    @property
    def backends(self) -> Tuple[str, ...]:
        """The backend chain: primary first, fallbacks in order."""
        chain = [self.backend]
        for name in self.fallback:
            if name not in chain:
                chain.append(name)
        return tuple(chain)

    def with_global_fallback(self, fallback: Sequence[str]) -> "TaskSpec":
        """Append runner-level fallback backends to this task's chain."""
        extra = [b for b in fallback if b not in self.backends]
        if not extra:
            return self
        return replace(self, fallback=self.fallback + tuple(extra))

    # ------------------------------------------------------------ execution
    def problem(self, graph: Graph) -> "Problem":
        """The api Problem value object this task asks for."""
        from ..api.problems import (
            BudgetedOptimize,
            ChromaticProblem,
            DecisionProblem,
        )

        if self.kind == "decision":
            assert self.k is not None  # __post_init__ guarantees it
            return DecisionProblem(graph, self.k)
        if self.kind == "budgeted-optimize":
            assert self.max_colors is not None  # __post_init__ guarantees it
            return BudgetedOptimize(graph, self.max_colors)
        return ChromaticProblem(graph, max_colors=self.max_colors)

    def pipeline(self, backend: str, time_limit: Optional[float]) -> "Pipeline":
        """The configured api Pipeline for one attempt on ``backend``."""
        from ..api.pipeline import Pipeline

        symmetry_kwargs: Dict[str, Any] = {
            "sbp_kind": self.sbp_kind,
            "instance_dependent": self.instance_dependent,
        }
        if self.detection_node_limit is not None:
            symmetry_kwargs["detection_node_limit"] = self.detection_node_limit
        return (
            Pipeline()
            .reduce(self.reduce)
            .encode(amo=self.amo)
            .symmetry(**symmetry_kwargs)
            .simplify(self.simplify)
            .solve(
                backend=backend,
                strategy=self.strategy,
                time_limit=time_limit,
                incremental=self.incremental,
                split_components=self.split_components,
                pool_jobs=self.pool_jobs,
                pool_threads=self.pool_threads,
            )
        )

    # -------------------------------------------------------- serialization
    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TaskSpec":
        """Parse one manifest task entry (strict: unknown keys raise)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown task fields {sorted(unknown)}; expected a subset "
                f"of {sorted(known)}"
            )
        if "graph" not in data:
            raise ValueError(f"task entry needs a 'graph' source: {data!r}")
        kwargs: Dict[str, Any] = dict(data)
        kwargs["graph"] = GraphSpec.from_value(kwargs["graph"])
        fallback = kwargs.get("fallback", ())
        if isinstance(fallback, str):
            fallback = tuple(p for p in fallback.split(",") if p)
        kwargs["fallback"] = tuple(fallback)
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, object]:
        """Manifest-shaped dict (round-trips through ``from_dict``)."""
        out: Dict[str, object] = {"graph": self.graph.to_dict()}
        defaults = TaskSpec(graph=self.graph)
        for f in fields(self):
            if f.name == "graph":
                continue
            value = getattr(self, f.name)
            if value != getattr(defaults, f.name):
                out[f.name] = list(value) if isinstance(value, tuple) else value
        return out


def as_task(item: object, index: int = 0) -> TaskSpec:
    """Coerce one `solve_many` input item to a TaskSpec.

    Accepts TaskSpec (as-is), a manifest-style dict, an api Problem
    (wrapped with an inline edge-list graph spec), or a ``(name,
    problem)`` pair.
    """
    from ..api.problems import (
        BudgetedOptimize,
        ChromaticProblem,
        DecisionProblem,
        Problem,
    )

    name = ""
    if (
        isinstance(item, tuple) and len(item) == 2
        and isinstance(item[0], str) and isinstance(item[1], Problem)
    ):
        name, item = item
    if isinstance(item, TaskSpec):
        return item
    if isinstance(item, dict):
        return TaskSpec.from_dict(item)
    if isinstance(item, Problem):
        spec = GraphSpec.from_graph(item.graph)
        kwargs: Dict[str, Any] = {
            "graph": spec,
            "kind": item.kind,
            "name": name or spec.describe() or f"task-{index}",
        }
        if isinstance(item, DecisionProblem):
            kwargs["k"] = item.k
        elif isinstance(item, BudgetedOptimize):
            kwargs["max_colors"] = item.max_colors
            kwargs["backend"] = "pb-pbs2"
        elif isinstance(item, ChromaticProblem):
            kwargs["max_colors"] = item.max_colors
        return TaskSpec(**kwargs)
    raise ValueError(
        f"cannot interpret batch task {item!r}; expected TaskSpec, dict, "
        "api Problem, or (name, Problem)"
    )


@dataclass
class Manifest:
    """A parsed manifest: tasks plus the plugin modules they rely on."""

    tasks: List[TaskSpec] = field(default_factory=list)
    plugins: Tuple[str, ...] = ()


def _merge_defaults(defaults: Dict[str, Any], entry: Dict[str, Any]) -> Dict[str, Any]:
    merged = dict(defaults)
    merged.update(entry)
    return merged


def load_manifest(path: str) -> Manifest:
    """Load a ``.json`` or ``.jsonl`` manifest from ``path``.

    Plugins named by the manifest are imported *before* tasks are
    parsed, so tasks may target plugin-registered backends.
    """
    with open(path) as fh:
        if path.endswith(".jsonl"):
            entries = [
                json.loads(line) for line in fh if line.strip()
            ]
        else:
            payload = json.load(fh)
            if isinstance(payload, list):
                entries = payload
            elif isinstance(payload, dict):
                entries = []
                meta = {
                    k: payload[k] for k in ("defaults", "plugins")
                    if k in payload
                }
                if meta:
                    entries.append(meta)
                entries.extend(payload.get("tasks", ()))
            else:
                raise ValueError(
                    f"manifest {path!r} must be a JSON list or object, "
                    f"got {type(payload).__name__}"
                )
    manifest = Manifest()
    defaults: Dict[str, Any] = {}
    plugins: List[str] = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"manifest entries must be objects, got {entry!r}")
        if set(entry) <= {"defaults", "plugins"}:
            new_plugins = tuple(entry.get("plugins", ()))
            load_plugins(new_plugins)
            plugins.extend(new_plugins)
            defaults = _merge_defaults(defaults, entry.get("defaults", {}))
            continue
        manifest.tasks.append(TaskSpec.from_dict(_merge_defaults(defaults, entry)))
    manifest.plugins = tuple(plugins)
    _uniquify_names(manifest.tasks)
    return manifest


def _uniquify_names(tasks: List[TaskSpec]) -> None:
    """Give every task a distinct non-empty name (stable across runs)."""
    seen: Dict[str, int] = {}
    for i, task in enumerate(tasks):
        base = task.describe() or f"task-{i}"
        count = seen.get(base, 0)
        seen[base] = count + 1
        name = base if count == 0 else f"{base}#{count + 1}"
        if name != task.name:
            tasks[i] = replace(task, name=name)
