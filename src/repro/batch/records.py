"""The batch JSONL record schema: api Results as plain JSON dicts.

Every task a batch runs produces exactly one record — whatever backend
ultimately answered it — with the structured :class:`~repro.api.Result`
fields flattened into JSON-friendly shapes: the answer (status, colors),
the solver counters (conflicts, propagations, solvers_created), the
K-query trace, per-stage wall seconds, and the full
:class:`~repro.api.Provenance` of the winning run.  The runner adds the
batch-level envelope on top (task name, manifest index, attempt log,
final outcome); :func:`result_to_record` is only the per-attempt part.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..api.problems import DECISION
from ..api.results import Result
from ..sat.result import SAT


def conclusive(result: Result, kind: str) -> bool:
    """Did this result definitively answer the problem?

    ``OPTIMAL``/``UNSAT`` are conclusive for every kind; ``SAT``
    additionally settles a *decision* query.  ``FEASIBLE`` — a verified
    but degraded best-so-far bound from a budget-expired descent — is
    deliberately *not* conclusive: a fallback backend may still improve
    on it, and the runner keeps the best partial answer either way.
    """
    return result.solved or (kind == DECISION and result.status == SAT)


def result_to_record(
    result: Result, include_coloring: bool = False
) -> Dict[str, object]:
    """Flatten one :class:`Result` into the JSONL record shape."""
    record: Dict[str, object] = {
        "status": result.status,
        "num_colors": result.num_colors,
        "cancelled": result.cancelled,
        "degraded": result.degraded,
        "queries": [list(q) for q in result.queries],
        "conflicts": result.stats.conflicts,
        "propagations": result.stats.propagations,
        "solvers_created": result.solvers_created,
        "stage_seconds": {
            s.name: round(result.stage_seconds(s.name), 6)
            for s in result.stages
        },
        "solve_seconds": round(result.solve_seconds, 6),
    }
    if result.components:
        # Per-component provenance of a Session-pool run: which kernel
        # component answered what, on how many persistent solvers.
        record["components"] = [
            {
                "index": trace.index,
                "vertices": trace.vertices,
                "status": trace.status,
                "num_colors": trace.num_colors,
                "queries": [list(q) for q in trace.queries],
                "solvers_created": trace.solvers_created,
            }
            for trace in result.components
        ]
    if include_coloring and result.coloring is not None:
        record["coloring"] = {str(v): c for v, c in sorted(result.coloring.items())}
    if result.provenance is not None:
        prov = result.provenance
        record["provenance"] = {
            "problem": prov.problem,
            "backend": prov.backend,
            "stage_order": list(prov.stage_order),
            "config": _jsonable(prov.config),
        }
    return record


def _jsonable(value: object) -> object:
    """Recursively coerce provenance config values to JSON-native types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def error_record(message: str, seconds: Optional[float] = None) -> Dict[str, object]:
    """The record shape of an attempt that raised (or was killed).

    ``num_colors`` is always present (as None) so consumers can read
    the answer keys without guarding per-record.
    """
    record: Dict[str, object] = {
        "status": "ERROR", "error": message, "num_colors": None,
    }
    if seconds is not None:
        record["seconds"] = round(seconds, 6)
    return record
