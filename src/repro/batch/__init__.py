"""repro.batch — the parallel fleet runner over :mod:`repro.api`.

Solve a *suite* of problems the way the paper's tables do, but fanned
across a worker pool instead of one-at-a-time::

    from repro.batch import solve_many

    report = solve_many(
        [
            {"graph": "myciel4", "kind": "chromatic"},
            {"graph": {"generator": "queens", "args": [6, 6]}},
        ],
        jobs=4,
        task_timeout=30,
        fallback=["exact-dsatur"],
    )
    for record in report:           # manifest order, always
        print(record["task"], record["status"], record["num_colors"])
    print(report.summary["backend_wins"])

The pieces:

* :class:`TaskSpec` / :class:`GraphSpec` / :func:`load_manifest` — the
  declarative manifest layer (JSON/JSONL in, tasks out);
* :class:`BatchRunner` / :func:`solve_many` — the process pool with
  per-task wall-clock timeouts, backend-fallback chains, retry on
  worker death, deterministic manifest-order results and streaming
  JSONL output;
* :func:`result_to_record` — the Result -> JSONL record schema.

The CLI form is ``python -m repro batch MANIFEST --jobs N``;
``repro.api.solve_many`` re-exports the facade.
"""

from .manifest import (
    GENERATORS,
    GraphSpec,
    Manifest,
    TaskSpec,
    as_task,
    load_manifest,
    load_plugins,
)
from .records import conclusive, result_to_record
from .runner import BatchReport, BatchRunner, solve_many

__all__ = [
    "BatchReport",
    "BatchRunner",
    "GENERATORS",
    "GraphSpec",
    "Manifest",
    "TaskSpec",
    "as_task",
    "conclusive",
    "load_manifest",
    "load_plugins",
    "result_to_record",
    "solve_many",
]
