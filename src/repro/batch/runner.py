"""The parallel fleet runner: many problems, a pool of worker processes.

:class:`BatchRunner` fans a list of :class:`~repro.batch.manifest.TaskSpec`
across up to ``jobs`` concurrent worker processes (one process per
attempt, so a hung or crashed solver never takes the pool down), with:

* **per-task wall-clock timeouts** — each attempt gets ``task_timeout``
  seconds; inside the worker the engine's ``SolveConfig.time_limit`` and
  the ``RunContext`` cancel predicate are both armed with the deadline
  (the cooperative path), and the coordinator hard-kills any worker that
  overruns the deadline by the kill grace (the insurance path);
* **backend-fallback chains** — a timed-out or inconclusive attempt is
  re-queued on the next backend of the task's chain (e.g.
  ``cdcl-incremental`` -> ``cplex-bb``), with a fresh timeout budget;
* **retry on worker death** — a worker that dies without reporting (OOM
  kill, solver crash) is a *transient* failure under the runner's
  :class:`~repro.resilience.RetryPolicy`: retried (with the policy's
  deterministic backoff schedule) up to its retry budget on the same
  backend before the chain advances;
* **deterministic ordering** — records are emitted in manifest order no
  matter the completion order, so ``--jobs 4`` output is byte-comparable
  with ``--jobs 1``;
* **streaming JSONL** — each finalized record is written (and handed to
  ``on_record``) as soon as every earlier task has finalized, plus one
  aggregate summary at the end (per-backend wins, timeouts, total wall).
  Every line is flushed *and fsynced* (a write-ahead log), so a crashed
  batch loses at most the line that was mid-write — and
  ``resume_records`` (the CLI's ``--resume``) replays a previous run's
  intact records and schedules only the tasks they don't cover,
  reproducing the uninterrupted run's records byte-for-byte.

``jobs=0`` runs every attempt inline in the calling process — no
subprocesses, cooperative timeouts only — which is the right mode for
debugging and for platforms without ``fork``.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional, Sequence, Tuple, Union

from ..obs.metrics import get_registry, scoped_registry
from ..resilience import Deadline, RetryPolicy, append_record
from ..resilience.faults import fire as _fire_fault
from .manifest import TaskSpec, as_task, load_plugins
from .records import conclusive, error_record, result_to_record

# Outcomes an attempt can end with: "ok" finalizes; the rest are
# classified by the runner's RetryPolicy — "died" is transient (retry,
# then advance the fallback chain), "timeout" / "inconclusive" /
# "error" promote to the next backend immediately.


def _execute_attempt(
    task: TaskSpec,
    backend: str,
    task_timeout: Optional[float],
    include_coloring: bool,
    detection_cache=None,
) -> Tuple[str, Dict[str, object]]:
    """Run one (task, backend) attempt to completion in this process.

    ``detection_cache`` is the pool-wide symmetry-detection cache (a
    plain dict inline, a ``Manager().dict()`` proxy in workers), keyed
    on the instance's canonical certificate — tasks re-solving the same
    instance family reuse one detection run instead of re-detecting
    per attempt.
    """
    start = time.monotonic()
    deadline = Deadline.after(task_timeout)
    _fire_fault("attempt", backend)

    # A fresh ambient metrics registry scopes the attempt's counters:
    # the deterministic snapshot lands in the JSONL record, identical
    # for identical work whether the attempt ran inline or in a worker
    # process (the --jobs 1 vs --jobs 4 byte-comparability contract).
    with scoped_registry() as registry:
        try:
            graph = task.graph.build()
            problem = task.problem(graph)
            time_limit = task.time_limit
            if task_timeout is not None:
                time_limit = (
                    task_timeout if time_limit is None
                    else min(time_limit, task_timeout)
                )
            pipeline = task.pipeline(backend=backend, time_limit=time_limit)
            result = pipeline.run(
                problem,
                cancel=deadline.expired if deadline.bounded else None,
                detection_cache=detection_cache,
            )
        except Exception as exc:  # noqa: BLE001 - reported, never fatal to the batch
            return "error", error_record(
                f"{type(exc).__name__}: {exc}", seconds=time.monotonic() - start
            )
    record = result_to_record(result, include_coloring=include_coloring)
    record["metrics"] = registry.snapshot(deterministic_only=True)
    record["seconds"] = round(time.monotonic() - start, 6)
    if conclusive(result, task.kind):
        outcome = "ok"
    elif result.cancelled or deadline.expired():
        outcome = "timeout"
        record["timed_out"] = True
    else:
        # The engine gave up inside its own budget (UNKNOWN / SAT bound
        # not proved) — let the fallback chain have a go.
        outcome = "inconclusive"
    return outcome, record


def _worker_entry(payload: Dict[str, object], conn) -> None:
    """Subprocess entry point: run one attempt, send (outcome, record)."""
    try:
        load_plugins(payload["plugins"])
        task = TaskSpec.from_dict(payload["task"])
        message = _execute_attempt(
            task,
            payload["backend"],
            payload["task_timeout"],
            payload["include_coloring"],
            detection_cache=payload.get("detection_cache"),
        )
    except BaseException as exc:  # noqa: BLE001 - must report, not vanish
        message = ("error", error_record(f"{type(exc).__name__}: {exc}"))
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):
        pass
    finally:
        conn.close()


@dataclass
class BatchReport:
    """What a batch run produced: ordered records + the aggregate summary."""

    records: List[Dict[str, object]] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def record(self, task_name: str) -> Dict[str, object]:
        """The record of the named task (``KeyError`` if absent)."""
        for record in self.records:
            if record.get("task") == task_name:
                return record
        raise KeyError(f"no record for task {task_name!r}")


class _TaskState:
    """Coordinator-side progress of one task through its backend chain."""

    __slots__ = ("chain", "backend_idx", "retry", "attempts", "best_partial")

    def __init__(self, chain: Tuple[str, ...]):
        self.chain = chain
        self.backend_idx = 0
        self.retry = 0
        self.attempts: List[Dict[str, object]] = []
        # The most informative inconclusive record seen so far (e.g. a
        # SAT bound from a timed-out chromatic descent) with the backend
        # that produced it — kept so a later attempt ending worse
        # (crash, error) cannot discard an answer already in hand.
        self.best_partial: Optional[Tuple[str, Dict[str, object]]] = None

    @property
    def backend(self) -> str:
        return self.chain[self.backend_idx]

    def has_fallback(self) -> bool:
        return self.backend_idx + 1 < len(self.chain)


class _Flight:
    """One in-flight worker process (``kill_at`` is its hard Deadline)."""

    __slots__ = ("index", "process", "conn", "started", "kill_at")

    def __init__(self, index, process, conn, started, kill_at):
        self.index = index
        self.process = process
        self.conn = conn
        self.started = started
        self.kill_at = kill_at


class _OrderedEmitter:
    """Buffers finalized records and releases the contiguous prefix."""

    def __init__(self, total: int, on_record, jsonl: Optional[IO[str]]):
        self._records: List[Optional[Dict[str, object]]] = [None] * total
        self._cursor = 0
        self._on_record = on_record
        self._jsonl = jsonl

    def add(self, index: int, record: Dict[str, object]) -> None:
        self._records[index] = record
        while (
            self._cursor < len(self._records)
            and self._records[self._cursor] is not None
        ):
            ready = self._records[self._cursor]
            if self._jsonl is not None:
                # Write-ahead-log discipline: the record is on disk
                # before the runner schedules anything that depends on
                # it, so --resume can trust every intact line.
                append_record(self._jsonl, ready)
            if self._on_record is not None:
                self._on_record(ready)
            self._cursor += 1

    def records(self) -> List[Dict[str, object]]:
        return [r for r in self._records if r is not None]


class BatchRunner:
    """Run a list of batch tasks across a worker pool; collect records.

    ``tasks`` items may be :class:`TaskSpec`, manifest-style dicts, api
    ``Problem`` objects, or ``(name, Problem)`` pairs.  ``fallback``
    appends a runner-level backend chain to every task.  ``jsonl`` is an
    optional open text file receiving one record per line (in manifest
    order, streamed) plus a final ``{"summary": ...}`` line.
    """

    def __init__(
        self,
        tasks: Sequence[Union[TaskSpec, Dict, object]],
        jobs: int = 1,
        task_timeout: Optional[float] = None,
        fallback: Sequence[str] = (),
        retries: int = 1,
        kill_grace: Optional[float] = None,
        include_colorings: bool = False,
        plugins: Sequence[str] = (),
        on_record=None,
        jsonl: Optional[IO[str]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        resume_records: Sequence[Dict[str, object]] = (),
    ):
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {task_timeout}")
        load_plugins(plugins)
        self.plugins = tuple(plugins)
        self.tasks = [
            as_task(item, i).with_global_fallback(fallback)
            for i, item in enumerate(tasks)
        ]
        from ..api.backends import resolve_backend_name

        for task in self.tasks:
            for name in task.backends:
                resolve_backend_name(name)  # fail fast, names the choices
        self.jobs = jobs
        self.task_timeout = task_timeout
        self.retries = retries
        # One policy object answers retry?/promote?/wait-how-long for
        # every attempt; ``retries`` remains the convenience knob.
        self.retry_policy = (
            retry_policy if retry_policy is not None
            else RetryPolicy(max_retries=retries)
        )
        self.resume_records = list(resume_records)
        if kill_grace is None and task_timeout is not None:
            kill_grace = max(1.0, 0.5 * task_timeout)
        self.kill_grace = kill_grace
        self.include_colorings = include_colorings
        self._on_record = on_record
        self._jsonl = jsonl
        # Set per run by _run_pool (a Manager().dict() proxy) when any
        # task runs instance-dependent detection.
        self._detection_cache = None

    # ------------------------------------------------------------------ run
    def run(self) -> BatchReport:
        start = time.monotonic()
        states = [_TaskState(task.backends) for task in self.tasks]
        emitter = _OrderedEmitter(len(self.tasks), self._on_record, self._jsonl)
        done = self._replay_resumed(emitter)
        if self.jobs == 0:
            self._run_inline(states, emitter, skip=done)
        else:
            self._run_pool(states, emitter, skip=done)
        report = BatchReport(records=emitter.records())
        report.summary = self._summarize(report.records, time.monotonic() - start)
        if self._jsonl is not None:
            append_record(self._jsonl, {"summary": report.summary})
        return report

    def _replay_resumed(self, emitter: "_OrderedEmitter") -> frozenset:
        """Re-emit a previous run's intact records; return their indices.

        A resumed record must still name the task it claims to answer
        (same manifest index, same task description) — a record from a
        different or reordered manifest is silently ignored and its
        task re-runs, which is always safe.
        """
        done = set()
        for record in self.resume_records:
            index = record.get("index")
            if not isinstance(index, int) or not 0 <= index < len(self.tasks):
                continue
            if record.get("task") != self.tasks[index].describe():
                continue
            if index in done:
                continue
            done.add(index)
            emitter.add(index, dict(record))
        return frozenset(done)

    def _needs_detection_cache(self) -> bool:
        """Only instance-dependent tasks ever consult the cache."""
        return any(task.instance_dependent for task in self.tasks)

    # ----------------------------------------------------------- inline mode
    def _run_inline(self, states, emitter, skip=frozenset()) -> None:
        # One plain dict shared across the whole batch: repeated
        # instances re-detect once, not once per task.
        detection_cache = {} if self._needs_detection_cache() else None
        for index, task in enumerate(self.tasks):
            if index in skip:
                continue
            state = states[index]
            while True:
                outcome, record = _execute_attempt(
                    task, state.backend, self.task_timeout,
                    self.include_colorings,
                    detection_cache=detection_cache,
                )
                if self._settle(index, state, outcome, record, emitter):
                    break

    # ------------------------------------------------------------- pool mode
    def _run_pool(self, states, emitter, skip=frozenset()) -> None:
        ctx = self._mp_context()
        # The cross-worker symmetry-detection cache: a manager-hosted
        # dict proxy shipped in every worker payload, so detection runs
        # once per canonical instance across the whole pool.  The
        # manager process is only paid for when a task can use it.
        manager = None
        self._detection_cache = None
        if self._needs_detection_cache():
            manager = ctx.Manager()
            self._detection_cache = manager.dict()
        try:
            self._pool_loop(ctx, states, emitter, skip)
        finally:
            self._detection_cache = None
            if manager is not None:
                manager.shutdown()

    def _pool_loop(self, ctx, states, emitter, skip) -> None:
        pending = deque(i for i in range(len(self.tasks)) if i not in skip)
        flights: Dict[int, _Flight] = {}
        while pending or flights:
            get_registry().gauge(
                "batch_queue_depth", len(pending) + len(flights))
            while pending and len(flights) < self.jobs:
                index = pending.popleft()
                flights[index] = self._launch(ctx, index, states[index])
            self._wait(flights)
            now = time.monotonic()
            for index in list(flights):
                flight = flights[index]
                state = states[index]
                if flight.conn.poll():
                    outcome, record = self._receive(flight)
                    self._reap(flight)
                    del flights[index]
                    if not self._settle(index, state, outcome, record, emitter):
                        pending.append(index)
                elif not flight.process.is_alive():
                    # Died without reporting: crash or external kill.
                    # (Read the exit code before _reap closes the handle —
                    # and before draining: a message may still have raced
                    # into the pipe between poll() and the death check.)
                    exitcode = flight.process.exitcode
                    if flight.conn.poll():
                        outcome, record = self._receive(flight)
                        self._reap(flight)
                        del flights[index]
                        if not self._settle(index, state, outcome, record, emitter):
                            pending.append(index)
                        continue
                    self._reap(flight)
                    del flights[index]
                    record = error_record(
                        f"worker died (exit code {exitcode})",
                        seconds=now - flight.started,
                    )
                    if not self._settle(index, state, "died", record, emitter):
                        pending.append(index)
                elif flight.kill_at.expired():
                    # Overran the deadline past the kill grace: the
                    # cooperative path failed, pull the plug.
                    self._kill(flight)
                    self._reap(flight)
                    del flights[index]
                    record = error_record(
                        f"killed after exceeding the {self.task_timeout}s "
                        "task timeout",
                        seconds=now - flight.started,
                    )
                    record["status"] = "UNKNOWN"
                    record["timed_out"] = True
                    if not self._settle(index, state, "timeout", record, emitter):
                        pending.append(index)

    @staticmethod
    def _mp_context():
        # The platform's default start method: fork on Linux (cheap),
        # spawn on macOS/Windows — forcing fork there hits the Apple
        # objc fork-safety abort.  _worker_entry is importable and its
        # payload picklable, so spawn works too.
        return multiprocessing.get_context()

    def _launch(self, ctx, index: int, state: _TaskState) -> _Flight:
        recv, send = ctx.Pipe(duplex=False)
        payload = {
            "task": self.tasks[index].to_dict(),
            "backend": state.backend,
            "task_timeout": self.task_timeout,
            "include_coloring": self.include_colorings,
            "plugins": self.plugins,
            "detection_cache": self._detection_cache,
        }
        process = ctx.Process(
            target=_worker_entry, args=(payload, send), daemon=True
        )
        process.start()
        send.close()  # the parent only reads
        started = time.monotonic()
        kill_at = Deadline.after(
            self.task_timeout + (self.kill_grace or 0.0)
            if self.task_timeout is not None else None
        )
        return _Flight(index, process, recv, started, kill_at)

    def _wait(self, flights: Dict[int, _Flight]) -> None:
        """Block until a worker reports, dies, or a kill deadline nears."""
        if not flights:
            return
        timeout = 0.5
        for flight in flights.values():
            remaining = flight.kill_at.remaining()
            if remaining is not None:
                timeout = min(timeout, remaining)
        handles = [f.conn for f in flights.values()]
        handles += [f.process.sentinel for f in flights.values()]
        multiprocessing.connection.wait(handles, timeout=timeout)

    @staticmethod
    def _receive(flight: _Flight) -> Tuple[str, Dict[str, object]]:
        try:
            return flight.conn.recv()
        except (EOFError, OSError):
            return "died", error_record("worker pipe closed without a result")

    @staticmethod
    def _kill(flight: _Flight) -> None:
        flight.process.terminate()
        flight.process.join(1.0)
        if flight.process.is_alive():
            flight.process.kill()
            flight.process.join(1.0)

    @staticmethod
    def _reap(flight: _Flight) -> None:
        flight.conn.close()
        flight.process.join(10.0)
        if flight.process.is_alive():
            flight.process.kill()
            flight.process.join(1.0)
        flight.process.close()

    # ------------------------------------------------------------ settlement
    def _settle(
        self, index: int, state: _TaskState, outcome: str,
        record: Dict[str, object], emitter: _OrderedEmitter,
    ) -> bool:
        """Fold one attempt outcome into the task state.

        Returns True when the task is finalized, False when it was
        re-queued (retry or fallback promotion).
        """
        state.attempts.append({
            "backend": state.backend,
            "outcome": outcome,
            "seconds": record.get("seconds"),
        })
        get_registry().inc("batch_attempts_total",
                           outcome=outcome, backend=state.backend)
        if outcome == "ok":
            self._finalize(index, state, outcome, record, emitter)
            return True
        colors = record.get("num_colors")
        if colors is not None:
            best = state.best_partial
            if best is None or best[1].get("num_colors") > colors:
                state.best_partial = (state.backend, record)
        if self.retry_policy.should_retry(outcome, state.retry):
            state.retry += 1
            delay = self.retry_policy.delay(state.retry)
            if delay > 0:
                time.sleep(delay)
            return False
        if self.retry_policy.should_promote(outcome):
            if state.has_fallback():
                state.backend_idx += 1
                state.retry = 0
                return False
        self._finalize(index, state, outcome, record, emitter)
        return True

    def _finalize(
        self, index: int, state: _TaskState, outcome: str,
        record: Dict[str, object], emitter: _OrderedEmitter,
    ) -> None:
        backend = state.backend
        if (
            outcome != "ok"
            and record.get("num_colors") is None
            and state.best_partial is not None
        ):
            # The chain ended on a worse outcome than an earlier
            # attempt: report the best answer in hand, keep the
            # chain-ending outcome in the envelope.
            backend, record = state.best_partial
        final = dict(record)
        final["task"] = self.tasks[index].describe()
        final["index"] = index
        final["backend"] = backend
        final["outcome"] = outcome
        final["attempts"] = state.attempts
        registry = get_registry()
        registry.inc("batch_tasks_total", outcome=outcome)
        seconds = record.get("seconds")
        if isinstance(seconds, (int, float)):
            registry.observe_seconds("batch_task_seconds", float(seconds))
        emitter.add(index, final)

    # --------------------------------------------------------------- summary
    def _summarize(
        self, records: List[Dict[str, object]], wall: float
    ) -> Dict[str, object]:
        wins: Dict[str, int] = {}
        outcomes: Dict[str, int] = {}
        fallbacks = retries = 0
        for record in records:
            outcomes[record["outcome"]] = outcomes.get(record["outcome"], 0) + 1
            if record["outcome"] == "ok":
                wins[record["backend"]] = wins.get(record["backend"], 0) + 1
            attempts = record.get("attempts", ())
            backends_tried = {a["backend"] for a in attempts}
            fallbacks += len(backends_tried) - 1
            retries += len(attempts) - len(backends_tried)
        return {
            "tasks": len(records),
            "jobs": self.jobs,
            "task_timeout": self.task_timeout,
            "outcomes": dict(sorted(outcomes.items())),
            "backend_wins": dict(sorted(wins.items())),
            "fallback_promotions": fallbacks,
            "retries": retries,
            "wall_seconds": round(wall, 6),
        }


def solve_many(
    tasks: Sequence[Union[TaskSpec, Dict, object]],
    jobs: int = 1,
    task_timeout: Optional[float] = None,
    fallback: Sequence[str] = (),
    retries: int = 1,
    kill_grace: Optional[float] = None,
    include_colorings: bool = False,
    plugins: Sequence[str] = (),
    on_record=None,
    jsonl_path: Optional[str] = None,
    retry_policy: Optional[RetryPolicy] = None,
    resume_records: Sequence[Dict[str, object]] = (),
) -> BatchReport:
    """Solve many problems across a worker pool; records in input order.

    The batch facade over :class:`~repro.api.Pipeline`: each item is a
    :class:`TaskSpec`, a manifest-style dict, an api ``Problem``, or a
    ``(name, Problem)`` pair.  See :class:`BatchRunner` for the timeout /
    fallback / retry semantics; ``jsonl_path`` streams records (plus the
    final summary line) to a file as tasks finalize.
    """
    kwargs = dict(
        jobs=jobs, task_timeout=task_timeout, fallback=fallback,
        retries=retries, kill_grace=kill_grace,
        include_colorings=include_colorings, plugins=plugins,
        on_record=on_record, retry_policy=retry_policy,
        resume_records=resume_records,
    )
    if jsonl_path is not None:
        with open(jsonl_path, "w") as fh:
            return BatchRunner(tasks, jsonl=fh, **kwargs).run()
    return BatchRunner(tasks, **kwargs).run()
