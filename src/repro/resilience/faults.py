"""Deterministic fault injection for the chaos suite.

A :class:`FaultPlan` is a list of :class:`FaultSpec` triggers armed at
named **injection points** scattered through the stack:

=================  ========================================================
``stage:<name>``   fired by :meth:`RunContext.emit` at every pipeline
                   progress event (``stage:encode``, ``stage:solve``,
                   ``stage:query``, ...) — the *raise-in-stage* hook
``attempt``        fired at the top of every batch attempt, with the
                   backend name as the detail — the *worker-kill* hook
``solver``         fired on every ``solve()`` call of solvers built
                   through the :mod:`repro.sat.factory` seam (RPR005's
                   chokepoint) — the *sleep-in-query* / hang hook
``racer``          fired at the top of every portfolio racer process
                   (detail: the racer's backend spec) and by every
                   component-pool worker ("component") — the
                   *kill-a-racer-mid-race* hook
=================  ========================================================

Each spec names its point, a fault ``kind`` (``raise`` / ``sleep`` /
``kill`` / ``skew``), the hit count ``at`` on which it fires (once),
and an optional substring ``match`` on the point's detail (e.g. only
kill attempts on the ``cdcl-incremental`` backend, so the fallback
chain can be watched recovering).  Counters are plan-local, so a plan
re-installed in a fresh worker process starts over — which is exactly
what makes "kill the first attempt, let the retry through" scenarios
expressible.

Installation is process-global (:func:`install_faults` /
:func:`clear_faults`); :meth:`FaultPlan.to_env` serializes a plan into
the ``REPRO_FAULTS`` environment variable that
:mod:`repro.resilience.chaos_plugin` reads when the batch runner
imports it in each worker.  :func:`seeded_plan` derives a plan
deterministically from an integer seed — the chaos-smoke CI job's
nightly fresh-seed mode.

The injection points themselves are no-ops when no plan is installed
(one module-global ``None`` check), so production paths pay nothing.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from .budget import reset_clock, set_clock

#: Environment variable carrying a serialized plan into batch workers.
FAULTS_ENV = "REPRO_FAULTS"

FAULT_KINDS = ("raise", "sleep", "kill", "skew")


class FaultInjected(RuntimeError):
    """The exception a ``raise``-kind fault throws at its point."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where, what, when, and for whom.

    ``at`` is the 1-based hit count of the (point, match) pair on which
    the fault fires — exactly once per plan installation.  ``seconds``
    is the sleep duration (``sleep``) or the clock-skew delta
    (``skew``); ``match`` filters on the injection point's detail
    string (substring).
    """

    point: str
    kind: str
    at: int = 1
    seconds: float = 0.0
    match: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at < 1:
            raise ValueError(f"at is a 1-based hit count, got {self.at}")


class FaultPlan:
    """A set of specs plus their per-installation hit counters."""

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self._hits: List[int] = [0] * len(self.specs)
        self._fired: List[bool] = [False] * len(self.specs)

    # ---------------------------------------------------------- serialize
    def to_env(self) -> str:
        """JSON form for the ``REPRO_FAULTS`` environment variable."""
        return json.dumps([asdict(spec) for spec in self.specs], sort_keys=True)

    @classmethod
    def from_env(cls, value: str) -> "FaultPlan":
        decoded = json.loads(value)
        return cls([FaultSpec(**spec) for spec in decoded])

    # -------------------------------------------------------------- firing
    def fire(self, point: str, detail: str = "") -> None:
        """Count a hit at ``point``; trigger any spec whose turn it is."""
        for i, spec in enumerate(self.specs):
            if spec.point != point:
                continue
            if spec.match and spec.match not in detail:
                continue
            self._hits[i] += 1
            if self._fired[i] or self._hits[i] != spec.at:
                continue
            self._fired[i] = True
            self._trigger(spec, point, detail)

    @staticmethod
    def _trigger(spec: FaultSpec, point: str, detail: str) -> None:
        if spec.kind == "raise":
            raise FaultInjected(
                f"injected fault at {point}" + (f" ({detail})" if detail else "")
            )
        if spec.kind == "sleep":
            time.sleep(spec.seconds)
        elif spec.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif spec.kind == "skew":
            offset = spec.seconds
            set_clock(lambda: time.monotonic() + offset)


_active: Optional[FaultPlan] = None
_previous_factory: Optional[Callable[..., Any]] = None


def active_plan() -> Optional[FaultPlan]:
    return _active


def fire(point: str, detail: str = "") -> None:
    """Injection-point hook: free when no plan is installed."""
    if _active is not None:
        _active.fire(point, detail)


def install_faults(plan: FaultPlan) -> None:
    """Install ``plan`` process-wide (replacing any previous plan).

    If the plan arms the ``solver`` point, the solver factory seam
    (:func:`repro.sat.factory.set_solver_factory`) is wrapped so every
    factory-built solver fires ``solver`` on each ``solve()`` call —
    the in-query hang/sleep faults ride the RPR005 chokepoint instead
    of needing hooks inside the engines.
    """
    global _active, _previous_factory
    clear_faults()
    _active = plan
    if any(spec.point == "solver" for spec in plan.specs):
        from ..sat.factory import set_solver_factory

        def faulty_factory(*args: Any, **kwargs: Any) -> Any:
            assert _previous_factory is not None
            solver = _previous_factory(*args, **kwargs)
            inner_solve = solver.solve

            def solve(*sargs: Any, **skwargs: Any) -> Any:
                fire("solver")
                return inner_solve(*sargs, **skwargs)

            solver.solve = solve
            return solver

        _previous_factory = set_solver_factory(faulty_factory)


def install_env_faults() -> None:
    """Install the ``REPRO_FAULTS`` plan, if the environment carries one.

    The chaos plugin calls this on import in batch workers; the pool
    and portfolio worker entry points call it directly (they are
    spawned as bare processes, not through the plugin import hook), so
    a serialized plan reaches every execution tier the same way.
    """
    raw = os.environ.get(FAULTS_ENV)
    if raw:
        install_faults(FaultPlan.from_env(raw))


def clear_faults() -> None:
    """Remove the active plan and undo its seams (factory, clock)."""
    global _active, _previous_factory
    _active = None
    if _previous_factory is not None:
        from ..sat.factory import set_solver_factory

        set_solver_factory(_previous_factory)
        _previous_factory = None
    reset_clock()


def seeded_plan(seed: int) -> FaultPlan:
    """Derive one fault scenario deterministically from ``seed``.

    The chaos-smoke job runs the matrix with a fixed seed on PRs and a
    fresh seed nightly; the scenario (fault class, hit count, duration)
    is a pure function of the seed, so any nightly failure replays
    locally from the seed alone.
    """
    rng = random.Random(seed)
    scenario = rng.choice(
        ("stage-raise", "solver-sleep", "attempt-kill", "skew", "racer-kill")
    )
    specs: Dict[str, FaultSpec] = {
        "stage-raise": FaultSpec(
            point=f"stage:{rng.choice(('encode', 'solve', 'query'))}",
            kind="raise",
            at=rng.randint(1, 3),
        ),
        "solver-sleep": FaultSpec(
            point="solver",
            kind="sleep",
            at=rng.randint(1, 3),
            seconds=rng.choice((0.5, 1.0, 2.0)),
        ),
        "attempt-kill": FaultSpec(
            point="attempt", kind="kill", at=1, match="cdcl"
        ),
        "skew": FaultSpec(
            point="solver",
            kind="skew",
            at=1,
            seconds=rng.choice((5.0, 30.0)),
        ),
        "racer-kill": FaultSpec(
            point="racer", kind="kill", at=1, match="cdcl"
        ),
    }
    return FaultPlan([specs[scenario]])
