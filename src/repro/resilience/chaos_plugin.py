"""Batch plugin that arms the fault harness from the environment.

The batch runner's plugin mechanism imports each ``--plugin`` module in
the parent *and* in every worker process (see
:func:`repro.batch.manifest.load_plugins`).  This module uses that
import as its installation hook: if the ``REPRO_FAULTS`` environment
variable holds a serialized :class:`~repro.resilience.faults.FaultPlan`,
it is installed process-wide on import.  Hit counters are per-process,
so a plan that kills "the first matching attempt" does so in each
worker it reaches — pair it with a ``match`` filter on the backend name
to let retries and fallbacks through.

Usage::

    REPRO_FAULTS=$(python -c "
    from repro.resilience import seeded_plan; print(seeded_plan(0).to_env())
    ") python -m repro batch tasks.json --plugin repro.resilience.chaos_plugin
"""

from __future__ import annotations

from .faults import install_env_faults

install_env_faults()
