"""Bounded retries with deterministic backoff and failure classification.

One :class:`RetryPolicy` object answers the three questions the batch
runner used to answer with ad-hoc counters and tuple membership tests:

* *retry?* — only **transient** failures (a worker that died without
  reporting: OOM kill, solver crash, broken pipe) are worth re-running
  on the same backend, up to ``max_retries`` times;
* *promote?* — outcomes that exhausted their attempt (timeout,
  engine gave up, deterministic error, death past the retry budget)
  advance the task's backend-fallback chain;
* *wait how long?* — exponential backoff from ``base_delay`` with a
  multiplicative cap and **deterministic** jitter: the jitter is drawn
  from a ``random.Random`` seeded by ``(seed, attempt)``, so two runs
  of the same batch produce the same delay schedule — the chaos suite
  asserts this byte-for-byte.

The default ``base_delay`` is 0 (immediate retry), matching the
historical runner behaviour; deployments that talk to shared
infrastructure raise it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

#: Attempt outcomes worth retrying on the *same* backend: the failure
#: was environmental, not deterministic.
TRANSIENT_OUTCOMES = frozenset({"died"})

#: Outcomes that advance the backend-fallback chain once retries are
#: exhausted (a deterministic "error" will not go away on retry, so it
#: promotes immediately; "ok" never promotes).
PROMOTABLE_OUTCOMES = frozenset({"timeout", "inconclusive", "error", "died"})

#: Exception types that plausibly vanish on retry (resource pressure,
#: torn pipes) vs. everything else, which is treated as deterministic.
TRANSIENT_EXCEPTIONS = (
    BrokenPipeError,
    ConnectionError,
    EOFError,
    InterruptedError,
    MemoryError,
    TimeoutError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget + backoff schedule + failure classification.

    ``delay(attempt)`` for attempt 1, 2, ... is
    ``min(base_delay * backoff**(attempt-1), max_delay)`` scaled by a
    deterministic jitter in ``[1 - jitter, 1 + jitter]``.
    """

    max_retries: int = 1
    base_delay: float = 0.0
    backoff: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    # ------------------------------------------------------ classification
    def classify(self, outcome: str) -> str:
        """``"transient"`` (retryable) or ``"fatal"`` (deterministic)."""
        return "transient" if outcome in TRANSIENT_OUTCOMES else "fatal"

    def classify_exception(self, exc: BaseException) -> str:
        return (
            "transient" if isinstance(exc, TRANSIENT_EXCEPTIONS) else "fatal"
        )

    def should_retry(self, outcome: str, retries_used: int) -> bool:
        """Retry the same backend?  Transient failures only, bounded."""
        return (
            self.classify(outcome) == "transient"
            and retries_used < self.max_retries
        )

    def should_promote(self, outcome: str) -> bool:
        """Advance the fallback chain (given retries are exhausted)?"""
        return outcome in PROMOTABLE_OUTCOMES

    # ------------------------------------------------------------ schedule
    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based).

        Deterministic: the jitter RNG is seeded per ``(seed, attempt)``,
        so the full schedule is a pure function of the policy.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        raw = min(
            self.base_delay * self.backoff ** (attempt - 1), self.max_delay
        )
        if raw <= 0.0 or self.jitter == 0.0:
            return raw
        rng = random.Random(f"{self.seed}:{attempt}")
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def schedule(self) -> List[float]:
        """The whole backoff schedule, one delay per permitted retry."""
        return [self.delay(attempt) for attempt in range(1, self.max_retries + 1)]
