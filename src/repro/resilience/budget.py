"""The :class:`Deadline` budget object — all deadline arithmetic in one
place.

A :class:`Deadline` freezes an *absolute* expiry instant on the
monotonic clock at construction; every consumer asks ``remaining()`` /
``expired()`` instead of re-deriving ``time_limit - (now - start)`` by
hand.  That hand-rolled arithmetic is exactly what the static checker's
RPR007 rule forbids outside this package: the three copies of it that
used to live in ``pb/optimizer``, ``ilp/branch_and_bound`` and
``batch/runner`` each clamped, rounded and compared slightly
differently.

Deadlines compose downward: :meth:`child` carves a sub-budget that can
never outlive its parent, :meth:`split` divides the remaining budget
across concurrent children by weight (with a floor slice so a tiny
component is never starved to zero), and :meth:`share` computes one
sequential consumer's weighted allotment so unused budget flows to the
consumers after it.

The module-level clock is a seam (:func:`set_clock`), which is how the
fault harness injects clock skew deterministically in tests without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

Clock = Callable[[], float]

_default_clock: Clock = time.monotonic
_clock: Clock = time.monotonic


def _now() -> float:
    return _clock()


def set_clock(clock: Clock) -> Clock:
    """Install a replacement monotonic clock; returns the previous one.

    The seam exists for the fault-injection harness (clock skew) and
    for deterministic tests; production code never calls it.
    """
    global _clock
    previous = _clock
    _clock = clock
    return previous


def reset_clock() -> None:
    """Restore the real monotonic clock."""
    global _clock
    _clock = _default_clock


class Deadline:
    """A monotonic-clock budget: ``None`` expiry means unbounded.

    Instances are immutable; arithmetic helpers return new deadlines.
    A deadline constructed from a non-positive allotment is already
    expired (``remaining() == 0.0``) rather than an error — callers at
    the end of their budget still get a well-formed object they can
    pass down, and the consumer degrades gracefully.
    """

    __slots__ = ("_expiry",)

    def __init__(self, expiry: Optional[float]) -> None:
        self._expiry = expiry

    # ------------------------------------------------------- construction
    @classmethod
    def after(cls, seconds: Optional[float]) -> "Deadline":
        """A deadline ``seconds`` from now (``None`` = unbounded)."""
        if seconds is None:
            return cls(None)
        return cls(_now() + max(0.0, seconds))

    @classmethod
    def unbounded(cls) -> "Deadline":
        return cls(None)

    # ------------------------------------------------------------ queries
    @property
    def bounded(self) -> bool:
        return self._expiry is not None

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0.0), or ``None`` when unbounded."""
        if self._expiry is None:
            return None
        return max(0.0, self._expiry - _now())

    def expired(self) -> bool:
        return self._expiry is not None and _now() >= self._expiry

    # -------------------------------------------------------- composition
    def child(self, seconds: Optional[float]) -> "Deadline":
        """A sub-deadline at most ``seconds`` away, never past the parent."""
        if seconds is None:
            return Deadline(self._expiry)
        expiry = _now() + max(0.0, seconds)
        if self._expiry is not None:
            expiry = min(expiry, self._expiry)
        return Deadline(expiry)

    def split(
        self, weights: Sequence[float], floor_fraction: float = 0.0
    ) -> List["Deadline"]:
        """Divide the remaining budget across concurrent children.

        Child ``i`` gets ``remaining * weights[i] / sum(weights)``
        seconds, but never less than ``remaining * floor_fraction`` (the
        floor slice: a tiny component must still get a searchable
        budget).  Children run concurrently, so the floor may push the
        nominal total past ``remaining`` — every child is still clamped
        by the parent's absolute expiry, so none can outlive it.  An
        unbounded parent yields unbounded children.
        """
        if not 0.0 <= floor_fraction <= 1.0:
            raise ValueError(
                f"floor_fraction must be in [0, 1], got {floor_fraction}"
            )
        budget = self.remaining()
        if budget is None:
            return [Deadline(None) for _ in weights]
        total = float(sum(weights))
        out: List[Deadline] = []
        for weight in weights:
            seconds = budget * (weight / total) if total > 0 else 0.0
            seconds = max(seconds, budget * floor_fraction)
            out.append(self.child(seconds))
        return out

    def share(
        self, weight: float, total_weight: float, floor_fraction: float = 0.0
    ) -> Optional[float]:
        """One sequential consumer's allotment of the remaining budget.

        ``weight / total_weight`` of ``remaining()``, floored at
        ``remaining() * floor_fraction`` and capped at ``remaining()``.
        Callers recompute per consumer with the *remaining* total
        weight, so budget a fast consumer left unused flows to the ones
        after it.  Returns ``None`` (no limit) when unbounded.
        """
        if not 0.0 <= floor_fraction <= 1.0:
            raise ValueError(
                f"floor_fraction must be in [0, 1], got {floor_fraction}"
            )
        budget = self.remaining()
        if budget is None:
            return None
        fraction = weight / total_weight if total_weight > 0 else 1.0
        return min(budget, budget * max(fraction, floor_fraction))

    def __repr__(self) -> str:
        if self._expiry is None:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


#: The ISSUE-facing alias: a Deadline *is* the budget object.
Budget = Deadline
