"""repro.resilience — one budget/fault model for the whole solve stack.

Before this package, every execution tier managed time and failure its
own way: the Pipeline recomputed ``time_limit - elapsed`` by hand per
component, the Session pool solved every component against the same
undivided deadline, and the batch runner hard-coded its retry-on-death
counter.  This package centralizes those concerns:

* :class:`Deadline` (alias :data:`Budget`) — a monotonic-clock budget
  with ``remaining()``/``expired()``, weighted child splits and a
  swappable clock seam (the clock-skew fault hook).  All deadline
  arithmetic in the repo goes through it — enforced by the static
  checker's RPR007 rule.
* :class:`RetryPolicy` — bounded retries with exponential backoff,
  deterministic jitter and transient-vs-fatal failure classification;
  the batch runner's retry and fallback-promotion decisions run
  through one policy object.
* :mod:`~repro.resilience.wal` — write-ahead-log JSONL helpers
  (flush+fsync per record, truncated-tail detection) behind the batch
  runner's crash-safe ``--resume``.
* :mod:`~repro.resilience.faults` — the deterministic fault-injection
  harness: seeded injection points (raise-in-stage, sleep-in-query,
  worker kill, clock skew) installable process-wide and, via
  :mod:`~repro.resilience.chaos_plugin`, in every batch worker.

The package depends only on the standard library, so every layer of
the repo (``sat/``, ``pb/``, ``ilp/``, ``coloring/``, ``api/``,
``batch/``) can import it without cycles.
"""

from .budget import Budget, Deadline, reset_clock, set_clock
from .faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    active_plan,
    clear_faults,
    fire,
    install_env_faults,
    install_faults,
    seeded_plan,
)
from .retry import RetryPolicy
from .wal import append_record, corrupt_tail, fsync_file, read_wal

__all__ = [
    "Budget",
    "Deadline",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "active_plan",
    "append_record",
    "clear_faults",
    "corrupt_tail",
    "fire",
    "fsync_file",
    "install_env_faults",
    "install_faults",
    "read_wal",
    "reset_clock",
    "set_clock",
]
