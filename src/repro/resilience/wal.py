"""Write-ahead-log JSONL: durable appends, recoverable reads.

The batch runner's streamed JSONL doubles as its checkpoint: if every
record hits the disk before the next task is scheduled, a crash (or
SIGKILL) loses at most the one record that was mid-write, and a
``--resume`` run can skip everything already settled.  That only works
with two guarantees this module provides:

* :func:`append_record` / :func:`fsync_file` — each line is flushed
  *and fsynced*, so the OS page cache cannot hold a batch of "written"
  records hostage across a power cut;
* :func:`read_wal` — reading tolerates exactly the failure mode the
  write path permits: a truncated or garbled **tail**.  The first
  undecodable or unterminated line and everything after it are
  dropped (and reported), never re-interpreted.

:func:`corrupt_tail` exists for the fault harness: it truncates a WAL
mid-record to simulate the crash the reader must survive.
"""

from __future__ import annotations

import json
import os
from typing import IO, Dict, List, Tuple


def fsync_file(fh: IO[str]) -> None:
    """Flush ``fh`` and fsync its descriptor, if it has one.

    Streams without a real descriptor (StringIO, some pipes/ttys where
    fsync is meaningless) are flushed only — durability is moot there.
    """
    fh.flush()
    try:
        os.fsync(fh.fileno())
    except (OSError, ValueError, AttributeError):
        pass


def append_record(fh: IO[str], record: Dict[str, object]) -> None:
    """Append one JSON record durably (canonical key order, one line)."""
    fh.write(json.dumps(record, sort_keys=True) + "\n")
    fsync_file(fh)


def read_wal(path: str) -> Tuple[List[Dict[str, object]], int]:
    """Read a JSONL write-ahead log, dropping a damaged tail.

    Returns ``(records, dropped)`` where ``records`` are the decoded
    dicts of every intact line and ``dropped`` counts the trailing
    lines discarded: a final line without its newline terminator (the
    write was cut mid-line) or any line that fails to decode — and,
    conservatively, everything after the first such line, since a WAL
    is only trustworthy up to its first tear.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    if not raw:
        return [], 0
    lines = raw.split(b"\n")
    # A well-terminated file ends with b"" after the final newline;
    # anything else is a torn tail, dropped before decoding.
    torn_tail = lines[-1] != b""
    lines = lines[:-1]
    records: List[Dict[str, object]] = []
    dropped = 1 if torn_tail else 0
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            decoded = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            dropped += len(lines) - i
            break
        if not isinstance(decoded, dict):
            dropped += len(lines) - i
            break
        records.append(decoded)
    return records, dropped


def corrupt_tail(path: str, cut_bytes: int = 7) -> None:
    """Truncate the WAL mid-record (fault-harness helper).

    Cuts ``cut_bytes`` off the end of the file, tearing the final line
    the way a crash between ``write`` and the terminating newline would.
    """
    size = os.path.getsize(path)
    with open(path, "rb+") as fh:
        fh.truncate(max(0, size - cut_bytes))
