"""Interprocedural rules over the project call graph.

Where :mod:`repro.analysis.rules` checks one file at a time, the three
rules here check *call chains*: a cancellation callback dropped at a
module boundary, a deadline that stops flowing downward, a
deterministic-scope function leaning on a helper that is only
transitively nondeterministic.  Each fires at a concrete call site, so
the usual per-line ``# repro: allow[...]`` suppressions apply.
"""

from __future__ import annotations

from typing import Iterator

from .callgraph import CallGraph
from .core import Finding, ProjectRule, register_project_rule
from .rules import in_deterministic_scope


def _site_finding(
    rule_id: str, graph: CallGraph, caller_key: str, line: int, col: int,
    message: str,
) -> Finding:
    node = graph.nodes[caller_key]
    return Finding(
        rule_id=rule_id,
        path=node.path,
        line=line,
        col=col,
        message=message,
    )


@register_project_rule
class CancellationFlowRule(ProjectRule):
    """A function on a solve path that *accepts* a stop callback but
    calls a loop-bearing, stop-accepting callee without forwarding it
    has silently made that subtree uncancellable — the exact bug class
    per-file RPR002 cannot see, because every file looks fine in
    isolation."""

    rule_id = "RPR008"
    title = "cancellation must flow from solve entry points to every loop"
    rationale = (
        "PR 5/6 threaded should_stop through the descents; a wrapper "
        "that accepts the callback and drops it at a module boundary "
        "re-opens the uninterruptible-query gap invisibly to per-file "
        "rules"
    )

    def check_project(self, graph: CallGraph) -> Iterator[Finding]:
        for key in sorted(graph.nodes):
            if key not in graph.reachable and key not in graph.entry_points:
                continue
            if not graph.accepts_stop_effective(key):
                continue
            node = graph.nodes[key]
            for edge in graph.callees_of(key):
                if edge.nested or edge.site.passes_stop:
                    continue
                callee = graph.nodes[edge.callee]
                if not callee.facts.accepts_stop:
                    continue
                if edge.callee not in graph.loop_bearing:
                    continue
                yield _site_finding(
                    self.rule_id,
                    graph,
                    key,
                    edge.site.line,
                    edge.site.col,
                    f"`{node.facts.qname}` accepts a stop/cancel channel "
                    f"but calls loop-bearing `{callee.facts.qname}` "
                    f"({callee.rel}) without forwarding it: the callee "
                    "accepts should_stop/ctx and can block indefinitely, "
                    "so cancellation dies at this call (pass the callback "
                    "or a ctx-derived predicate through)",
                )


@register_project_rule
class DeadlineFlowRule(ProjectRule):
    """A function holding a ``Deadline``/``Budget`` that hands work to
    a transitively blocking callee without giving it a deadline, a
    child, a share, or a remaining-time bound lets that callee outlive
    the budget its caller promised to respect."""

    rule_id = "RPR009"
    title = "deadlines must flow downward into every blocking callee"
    rationale = (
        "PR 7 unified expiry semantics behind Deadline/Budget; a callee "
        "that blocks without receiving deadline/child/share/remaining "
        "breaks anytime degradation for every caller above it"
    )

    def check_project(self, graph: CallGraph) -> Iterator[Finding]:
        for key in sorted(graph.nodes):
            if not graph.accepts_deadline_effective(key):
                continue
            node = graph.nodes[key]
            for edge in graph.callees_of(key):
                if edge.nested or edge.site.passes_deadline:
                    continue
                callee = graph.nodes[edge.callee]
                if not (
                    callee.facts.accepts_deadline
                    or callee.facts.accepts_time_limit
                ):
                    continue
                if edge.callee not in graph.loop_bearing:
                    continue
                yield _site_finding(
                    self.rule_id,
                    graph,
                    key,
                    edge.site.line,
                    edge.site.col,
                    f"`{node.facts.qname}` holds a Deadline/Budget but "
                    f"calls blocking `{callee.facts.qname}` "
                    f"({callee.rel}) without passing a deadline, child, "
                    "share, or time_limit: the callee can outlive the "
                    "caller's budget (pass deadline.remaining()/child()/"
                    "share() or the budget itself)",
                )


@register_project_rule
class TransitiveTaintRule(ProjectRule):
    """Deterministic-scope code calling a helper in another module that
    (transitively) consults unseeded randomness, the wall clock, or
    hash-ordered iteration imports that nondeterminism into solver
    decisions — invisible to per-file RPR003, which only sees the
    caller's own file."""

    rule_id = "RPR010"
    title = "deterministic scope must not call transitively nondeterministic helpers"
    rationale = (
        "the differential oracle (pool == single == scratch == "
        "exact-dsatur) rots just as silently when the drift hides one "
        "module away; taint is propagated over the call graph with a "
        "witness chain to the root cause"
    )

    def check_project(self, graph: CallGraph) -> Iterator[Finding]:
        for key in sorted(graph.nodes):
            node = graph.nodes[key]
            if not in_deterministic_scope(node.rel):
                continue
            for edge in graph.callees_of(key):
                callee = graph.nodes[edge.callee]
                if callee.module == node.module:
                    continue
                if in_deterministic_scope(callee.rel):
                    # The chain will be flagged (or RPR003'd) where it
                    # leaves the deterministic scope, not at every hop.
                    continue
                if not graph.tainted(edge.callee):
                    continue
                witness = graph.taint_witness[edge.callee]
                yield _site_finding(
                    self.rule_id,
                    graph,
                    key,
                    edge.site.line,
                    edge.site.col,
                    f"deterministic-scope `{node.facts.qname}` calls "
                    f"`{callee.facts.qname}` ({callee.rel}), which is "
                    f"transitively nondeterministic: {witness}; sort/seed "
                    "at the source or keep the helper out of "
                    "solver-decision paths",
                )
