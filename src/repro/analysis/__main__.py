"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit status is 0 when no findings remain after suppressions, 1 when
findings exist, 2 on usage/parse errors — so CI can gate on it
directly (``make analyze``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import rules as _rules  # noqa: F401  (import registers the rules)
from .core import all_rules, get_rules
from .report import render_human, render_json
from .runner import has_findings, run


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Solver-invariant static checker (rules RPR001-RPR006).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of diff-style text",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules with their rationale and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    rule_ids: Optional[List[str]] = None
    if args.rules:
        rule_ids = [part for part in args.rules.split(",") if part.strip()]

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    try:
        reports = run(paths, rule_ids)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rules = get_rules(rule_ids)
    if args.json:
        print(render_json(reports, rules))
    else:
        print(render_human(reports, rules))
    return 1 if has_findings(reports) else 0


if __name__ == "__main__":
    sys.exit(main())
