"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit status is 0 when no findings remain after suppressions, 1 when
findings exist, 2 on usage/parse errors — so CI can gate on it
directly (``make analyze``).

The report (text or ``--json``) goes to stdout; the one-line run stats
(files, cached, rules, findings, seconds) go to stderr, so a warm
cached run's stdout stays byte-identical to a cold one.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Union

from .core import ProjectRule, Rule, all_project_rules, all_rules, select_rules
from .report import format_stats, render_human, render_json
from .runner import has_findings, run_project


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Solver-invariant static checker: per-file rules plus "
            "interprocedural call-graph rules (RPR001-RPR010)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of diff-style text",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules with their rationale and exit",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "incremental facts cache directory: unchanged files (by "
            "content hash) are served from DIR/facts.json without "
            "re-parsing"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="extract facts with N worker processes (default: 1)",
    )
    parser.add_argument(
        "--graph",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the project call graph as JSON to FILE",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        rules_listing: List[Union[Rule, ProjectRule]] = []
        rules_listing.extend(all_rules())
        rules_listing.extend(all_project_rules())
        for rule in rules_listing:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    rule_ids: Optional[List[str]] = None
    if args.rules:
        rule_ids = [part for part in args.rules.split(",") if part.strip()]

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    try:
        file_rules, project_rules = select_rules(rule_ids)
        report = run_project(
            paths, rule_ids, cache_dir=args.cache_dir, jobs=args.jobs
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.graph is not None:
        import json as _json

        args.graph.parent.mkdir(parents=True, exist_ok=True)
        args.graph.write_text(
            _json.dumps(report.graph.to_dict(), indent=2, sort_keys=False)
            + "\n",
            encoding="utf-8",
        )

    shown: List[Union[Rule, ProjectRule]] = []
    shown.extend(file_rules)
    shown.extend(project_rules)
    if args.json:
        print(render_json(report.files, shown))
    else:
        print(render_human(report.files, shown))
    print(format_stats(report.stats), file=sys.stderr)
    return 1 if has_findings(report.files) else 0


if __name__ == "__main__":
    sys.exit(main())
