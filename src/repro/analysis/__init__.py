"""repro.analysis — the solver-invariant static checker.

Generic linters cannot know that clause intake must pass tautology
screening, that solve loops must poll ``should_stop``, or that decision
order feeds a differential oracle.  This package machine-checks those
repo-specific invariants (rules ``RPR001``–``RPR006``) on every PR,
the same way ``scripts/check_bench.py`` machine-checks the perf
trajectory.

Run it with ``python -m repro.analysis src`` or ``make analyze``; see
``docs/invariants.md`` for what each rule protects and why.
"""

from .core import (
    META_RULE_ID,
    FileReport,
    Finding,
    Rule,
    ScopeResolver,
    SourceFile,
    Suppression,
    all_rules,
    check_file,
    get_rules,
    package_rel,
    parse_suppressions,
    register_rule,
)
from .report import render_human, render_json
from .runner import collect_files, has_findings, run

__all__ = [
    "META_RULE_ID",
    "FileReport",
    "Finding",
    "Rule",
    "ScopeResolver",
    "SourceFile",
    "Suppression",
    "all_rules",
    "check_file",
    "collect_files",
    "get_rules",
    "has_findings",
    "package_rel",
    "parse_suppressions",
    "register_rule",
    "render_human",
    "render_json",
    "run",
]
