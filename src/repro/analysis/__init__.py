"""repro.analysis — the solver-invariant static checker.

Generic linters cannot know that clause intake must pass tautology
screening, that solve loops must poll ``should_stop``, or that decision
order feeds a differential oracle.  This package machine-checks those
repo-specific invariants on every PR, the same way
``scripts/check_bench.py`` machine-checks the perf trajectory.

Rules come in two kinds: per-file AST rules (``RPR001``–``RPR007``)
and interprocedural rules over the project call graph
(``RPR008``–``RPR010``), which catch bugs no single file can show —
a cancellation callback dropped at a module boundary, a deadline that
stops flowing, determinism taint imported from a helper module.

Run it with ``python -m repro.analysis src`` or ``make analyze``; see
``docs/invariants.md`` for what each rule protects and why, and
``docs/callgraph.md`` for how the call graph is built.
"""

from .cache import FactsCache, FileEntry
from .callgraph import CallGraph, Edge, Node, build_call_graph
from .core import (
    META_RULE_ID,
    FileReport,
    Finding,
    ProjectRule,
    Rule,
    ScopeResolver,
    SourceFile,
    Suppression,
    all_project_rules,
    all_rules,
    check_file,
    get_rules,
    known_rule_ids,
    package_rel,
    parse_suppressions,
    register_project_rule,
    register_rule,
    select_rules,
)
from .facts import ModuleFacts, extract_module_facts
from .report import format_stats, render_human, render_json
from .runner import (
    FileResult,
    ProjectReport,
    RunStats,
    collect_files,
    has_findings,
    run,
    run_project,
)

__all__ = [
    "META_RULE_ID",
    "CallGraph",
    "Edge",
    "FactsCache",
    "FileEntry",
    "FileReport",
    "FileResult",
    "Finding",
    "ModuleFacts",
    "Node",
    "ProjectReport",
    "ProjectRule",
    "Rule",
    "RunStats",
    "ScopeResolver",
    "SourceFile",
    "Suppression",
    "all_project_rules",
    "all_rules",
    "build_call_graph",
    "check_file",
    "collect_files",
    "extract_module_facts",
    "format_stats",
    "get_rules",
    "has_findings",
    "known_rule_ids",
    "package_rel",
    "parse_suppressions",
    "register_project_rule",
    "register_rule",
    "render_human",
    "render_json",
    "run",
    "run_project",
    "select_rules",
]
